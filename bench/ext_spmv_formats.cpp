// Extension: sparse-format study. The paper attributes part of the A64FX's
// HPCG headroom to vendor-optimised kernels; a key ingredient of those is
// the sparse format (padded SELL/ELL layouts vectorise on SVE where CSR's
// short rows do not). This bench compares the real CSR, ELL and SELL-C-sigma
// kernels — executed through the threaded kernel layer at the --jobs thread
// count — and prices all three formats on the machine models at the same
// thread count via arch::threaded_context.

#include "bench_common.hpp"

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "kern/par.hpp"
#include "kern/sparse/ell.hpp"
#include "kern/sparse/sell.hpp"
#include "util/table.hpp"

namespace {

using armstice::util::Table;

std::string format_report() {
    const int jobs = armstice::kern::par::jobs();
    Table t("Extension — CSR vs ELL vs SELL-8-64 for the HPCG operator (model)");
    t.header({"System", "jobs", "CSR GB", "ELL GB", "SELL GB", "SELL padding",
              "CSR est. ms", "ELL est. ms", "SELL est. ms"});

    const auto csr = armstice::kern::poisson27(48, 48, 48);
    const armstice::kern::EllMatrix ell(csr);
    const armstice::kern::SellMatrix sell(csr, 8, 64);
    std::vector<double> x(static_cast<std::size_t>(csr.rows()), 1.0), y(x.size());
    armstice::kern::OpCounts c_csr, c_ell, c_sell;
    csr.spmv(x, y, &c_csr);
    ell.spmv(x, y, &c_ell);
    sell.spmv(x, y, &c_sell);

    for (const auto& sys : armstice::arch::system_catalog()) {
        const armstice::arch::CostModel model;
        // Price the formats the way the measured kernels run: one process,
        // `jobs` threads packing memory domains in order.
        const auto ctx = armstice::arch::threaded_context(sys, jobs);

        // CSR: gather-limited. ELL/SELL: streaming layouts, vectorise.
        armstice::arch::ComputePhase p_csr;
        p_csr.flops = c_csr.flops;
        p_csr.main_bytes = c_csr.bytes();
        p_csr.pattern = armstice::arch::MemPattern::gather;
        armstice::arch::ComputePhase p_ell = p_csr;
        p_ell.main_bytes = c_ell.bytes();
        p_ell.pattern = armstice::arch::MemPattern::stream;
        armstice::arch::ComputePhase p_sell = p_ell;
        p_sell.main_bytes = c_sell.bytes();

        t.row({sys.name, Table::num(ctx.threads, 0),
               Table::num(c_csr.bytes() / 1e9, 3), Table::num(c_ell.bytes() / 1e9, 3),
               Table::num(c_sell.bytes() / 1e9, 3),
               Table::num(sell.padding_ratio(), 3),
               Table::num(model.phase_time(p_csr, ctx) * 1e3, 2),
               Table::num(model.phase_time(p_ell, ctx) * 1e3, 2),
               Table::num(model.phase_time(p_sell, ctx) * 1e3, 2)});
    }
    return t.render() +
           "\nELL trades extra traffic (padding) for streaming access — a large win\n"
           "on the A64FX, whose per-core gather rate is the binding constraint, and\n"
           "a slight loss on the DDR machines that are domain-bandwidth-bound\n"
           "either way. SELL-C-sigma keeps the streaming access while sigma-window\n"
           "sorting trims the padding back to ~1x. This is the mechanism behind\n"
           "the vendor-optimised HPCG variants the paper benchmarks in Table III.\n"
           "Microbenchmarks below execute the real kernels at this --jobs value;\n"
           "rerun with --jobs 1/2/4/8 for a measured scaling column.\n";
}

void BM_SpmvCsr(benchmark::State& state) {
    const auto a = armstice::kern::poisson27(24, 24, 24);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    for (auto _ : state) {
        a.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
    state.counters["jobs"] = armstice::kern::par::jobs();
}
BENCHMARK(BM_SpmvCsr)->UseRealTime();

void BM_SpmvEll(benchmark::State& state) {
    const auto csr = armstice::kern::poisson27(24, 24, 24);
    const armstice::kern::EllMatrix a(csr);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    for (auto _ : state) {
        a.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
    state.counters["jobs"] = armstice::kern::par::jobs();
}
BENCHMARK(BM_SpmvEll)->UseRealTime();

void BM_SpmvSell(benchmark::State& state) {
    const auto csr = armstice::kern::poisson27(24, 24, 24);
    const armstice::kern::SellMatrix a(csr, 8, 64);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    for (auto _ : state) {
        a.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
    state.counters["jobs"] = armstice::kern::par::jobs();
}
BENCHMARK(BM_SpmvSell)->UseRealTime();

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, format_report());
}
