// Extension: sparse-format study. The paper attributes part of the A64FX's
// HPCG headroom to vendor-optimised kernels; a key ingredient of those is
// the sparse format (padded SELL/ELL layouts vectorise on SVE where CSR's
// short rows do not). This bench compares the real CSR and ELL kernels and
// prices both formats on the machine models.

#include "bench_common.hpp"

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "kern/sparse/ell.hpp"
#include "util/table.hpp"

namespace {

using armstice::util::Table;

std::string format_report() {
    Table t("Extension — CSR vs ELLPACK for the HPCG operator (model)");
    t.header({"System", "CSR GB touched", "ELL GB touched", "ELL padding",
              "CSR est. ms", "ELL est. ms"});

    const auto csr = armstice::kern::poisson27(48, 48, 48);
    const armstice::kern::EllMatrix ell(csr);
    std::vector<double> x(static_cast<std::size_t>(csr.rows()), 1.0), y(x.size());
    armstice::kern::OpCounts c_csr, c_ell;
    csr.spmv(x, y, &c_csr);
    ell.spmv(x, y, &c_ell);

    for (const auto& sys : armstice::arch::system_catalog()) {
        const armstice::arch::CostModel model;
        armstice::arch::ExecContext ctx;
        ctx.cpu = &sys.node.cpu;
        ctx.streams_on_domain = sys.node.cores_per_domain();

        // CSR: gather-limited. ELL: streaming layout, vectorises.
        armstice::arch::ComputePhase p_csr;
        p_csr.flops = c_csr.flops;
        p_csr.main_bytes = c_csr.bytes();
        p_csr.pattern = armstice::arch::MemPattern::gather;
        armstice::arch::ComputePhase p_ell = p_csr;
        p_ell.main_bytes = c_ell.bytes();
        p_ell.pattern = armstice::arch::MemPattern::stream;

        t.row({sys.name, Table::num(c_csr.bytes() / 1e9, 3),
               Table::num(c_ell.bytes() / 1e9, 3),
               Table::num(ell.padding_ratio(), 3),
               Table::num(model.phase_time(p_csr, ctx) * 1e3, 2),
               Table::num(model.phase_time(p_ell, ctx) * 1e3, 2)});
    }
    return t.render() +
           "\nELL trades ~4% extra traffic (padding) for streaming access — a large\n"
           "win on the A64FX, whose per-core gather rate is the binding constraint,\n"
           "and a slight loss on the DDR machines that are domain-bandwidth-bound\n"
           "either way. This is the mechanism behind the vendor-optimised HPCG\n"
           "variants the paper benchmarks in Table III.\n";
}

void BM_SpmvCsr(benchmark::State& state) {
    const auto a = armstice::kern::poisson27(24, 24, 24);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    for (auto _ : state) {
        a.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvCsr);

void BM_SpmvEll(benchmark::State& state) {
    const auto csr = armstice::kern::poisson27(24, 24, 24);
    const armstice::kern::EllMatrix a(csr);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0), y(x.size());
    for (auto _ : state) {
        a.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvEll);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, format_report());
}
