// Extension: TofuD topology sensitivity. The paper (§VI.B.2) ran Nekbone
// with default Tofu settings and notes "we have not yet explored the options
// with the different topologies of the TofuD interconnect ... a larger and
// more challenging test would be instructive". Here we run that experiment
// in the model: the same 16-node job placed on differently shaped torus
// allocations, with a communication-heavier variant to expose the effect.

#include "bench_common.hpp"

#include "arch/system.hpp"
#include "net/collectives.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"

namespace {

using armstice::util::Table;

std::string topology_report() {
    std::string out;

    Table t("Extension — 16-node TofuD allocation shapes");
    t.header({"Allocation", "Diameter", "Mean hops", "Allreduce(8B) us",
              "Alltoall(64KB) us"});
    const auto shapes = std::vector<std::vector<int>>{
        {16, 1, 1},  // a chain along one axis (fragmented allocation)
        {8, 2, 1},
        {4, 4, 1},
        {4, 2, 2},   // compact block (the scheduler's preferred shape)
    };
    for (const auto& dims : shapes) {
        const armstice::net::TorusTopology topo(dims);
        // Price collectives on a network with this topology by constructing
        // the link model directly.
        const auto params = armstice::net::link_params(armstice::arch::NetKind::tofud);
        // Latency terms from the shape:
        const double stage = params.latency_s + topo.mean_hops() * params.per_hop_s +
                             params.msg_overhead_s;
        const double allreduce_us =
            (2.0 * 4.0 * (stage + 8.0 / params.bandwidth) +  // 4 = log2(16)
             2.0 * 12.0 * (params.shm_latency_s + params.msg_overhead_s)) *
            1e6;
        const double alltoall_us =
            15.0 * (stage + 65536.0 / params.bandwidth) * 1e6;
        t.row({topo.name(), std::to_string(topo.diameter()),
               Table::num(topo.mean_hops()), Table::num(allreduce_us, 1),
               Table::num(alltoall_us, 1)});
    }
    out += t.render();
    out += "\nThe per-hop latency term makes a 16x1x1 chain ~2x worse on mean hops\n"
           "than a compact 4x2x2 block; for Nekbone's 8-byte allreduces this is a\n"
           "microsecond-level effect (consistent with the paper's near-ideal\n"
           "Table VII efficiencies), but alltoall-heavy codes (CASTEP's\n"
           "distributed FFTs) see the full factor.\n";
    return out;
}

void BM_TorusDiameter(benchmark::State& state) {
    const armstice::net::TorusTopology topo(
        {static_cast<int>(state.range(0)), 2, 2});
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo.mean_hops());
    }
}
BENCHMARK(BM_TorusDiameter)->Arg(4)->Arg(12);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, topology_report());
}
