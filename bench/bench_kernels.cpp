// Kernel throughput bench — measures the real kernels behind the reference
// applications through the threaded execution layer (kern::par), serial
// (--jobs 1) vs threaded (kThreadedJobs), at paper-relevant sizes: an
// HPCG-class 27-point operator in CSR and SELL-8-64, CG on the same
// operator, a 64^3 compressible Taylor-Green RK3 step (OpenSBLI), the
// Nekbone spectral operator at polynomial order 15, and HPCG-vector-length
// BLAS-1. For every scenario the serial and threaded outputs are compared
// bit-for-bit before timing is reported — a nondeterministic kernel fails
// the bench rather than producing a number.
//
// Timing is best-of-7 wall clock (CLOCK_MONOTONIC): the threaded runs use
// multiple cores, so thread CPU time would not show the speedup. The JSON
// written next to the working directory (BENCH_kernels.json) records the
// host's online CPU count — threaded/serial ratios are only meaningful
// relative to it (on a 1-CPU CI container the expected ratio is ~1x, and
// the bit-identity checks are the signal).
//
// Build Release (bench targets force -O2 even under sanitizer/debug
// configs — see bench/CMakeLists.txt) before quoting numbers.

#include "kern/dense/blas.hpp"
#include "kern/nek/spectral.hpp"
#include "kern/par.hpp"
#include "kern/sparse/cg.hpp"
#include "kern/sparse/sell.hpp"
#include "kern/stencil/taylor_green.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <sys/resource.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace {

namespace ak = armstice::kern;
namespace par = armstice::kern::par;
using armstice::util::format;

constexpr int kThreadedJobs = 8;
int g_reps = 7;  ///< best-of reps; --smoke drops to 2 for the CI gate

double wall_now() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

long peak_rss_kb() {
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;  // KiB on Linux
}

struct Scenario {
    std::string kernel;
    std::string size;
    double ops = 0;            ///< flops per kernel invocation (analytic)
    double serial_seconds = 0;
    double threaded_seconds = 0;
    double serial_ops_per_sec = 0;
    double threaded_ops_per_sec = 0;
    double speedup = 0;
    bool bit_identical = false;
    long peak_rss_kb = 0;
};

/// Time `body` best-of-kReps at the given jobs value; `result` receives the
/// output vector of the final rep for the bit-identity comparison.
double time_at_jobs(int jobs, const std::function<void(std::vector<double>&)>& body,
                    std::vector<double>& result) {
    par::set_jobs(jobs);
    double best = 1e300;
    for (int rep = 0; rep < g_reps; ++rep) {
        const double t0 = wall_now();
        body(result);
        const double t1 = wall_now();
        best = std::min(best, t1 - t0);
    }
    par::set_jobs(0);
    return best;
}

Scenario measure(const std::string& kernel, const std::string& size, double ops,
                 const std::function<void(std::vector<double>&)>& body) {
    Scenario s;
    s.kernel = kernel;
    s.size = size;
    s.ops = ops;

    std::vector<double> serial_out, threaded_out;
    s.serial_seconds = time_at_jobs(1, body, serial_out);
    s.threaded_seconds = time_at_jobs(kThreadedJobs, body, threaded_out);
    s.bit_identical = serial_out == threaded_out;  // element-wise ==, bit-exact

    s.serial_ops_per_sec = ops / s.serial_seconds;
    s.threaded_ops_per_sec = ops / s.threaded_seconds;
    s.speedup = s.serial_seconds / s.threaded_seconds;
    s.peak_rss_kb = peak_rss_kb();
    std::printf("  %-12s %-14s %10.3g flops  serial %8.4f s  jobs=%d %8.4f s  "
                "x%.2f  %s\n",
                kernel.c_str(), size.c_str(), ops, s.serial_seconds, kThreadedJobs,
                s.threaded_seconds, s.speedup,
                s.bit_identical ? "bit-identical" : "OUTPUTS DIFFER");
    return s;
}

std::vector<double> random_vector(std::size_t n, unsigned long seed) {
    armstice::util::Rng rng(seed);
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    return v;
}

void write_json(const std::vector<Scenario>& scenarios, bool all_identical,
                bool blocked_identical) {
    std::string j = "{\n  \"bench\": \"kernels\",\n  \"unit\": \"flops/sec\",\n";
    j += format("  \"threaded_jobs\": %d,\n", kThreadedJobs);
    j += format("  \"host_cpus\": %ld,\n", sysconf(_SC_NPROCESSORS_ONLN));
    j += "  \"note\": \"speedup is wall-clock serial/threaded; it is bounded by "
         "host_cpus, so a 1-CPU container reports ~1x while the bit_identical "
         "flags still verify the deterministic scheme\",\n";
    j += format("  \"blocked_matches_unblocked\": %s,\n",
                blocked_identical ? "true" : "false");
    j += format("  \"all_bit_identical\": %s,\n  \"scenarios\": [\n",
                all_identical ? "true" : "false");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto& s = scenarios[i];
        j += format("    {\"kernel\": \"%s\", \"size\": \"%s\", \"flops\": %.0f, "
                    "\"serial_seconds\": %.6f, \"threaded_seconds\": %.6f, "
                    "\"serial_ops_per_sec\": %.0f, \"threaded_ops_per_sec\": %.0f, "
                    "\"speedup\": %.2f, \"bit_identical\": %s, "
                    "\"peak_rss_kb\": %ld}%s\n",
                    s.kernel.c_str(), s.size.c_str(), s.ops, s.serial_seconds,
                    s.threaded_seconds, s.serial_ops_per_sec, s.threaded_ops_per_sec,
                    s.speedup, s.bit_identical ? "true" : "false", s.peak_rss_kb,
                    i + 1 < scenarios.size() ? "," : "");
    }
    j += "  ]\n}\n";
    if (!armstice::util::write_file_atomic("BENCH_kernels.json", j)) {
        std::fprintf(stderr, "bench_kernels: could not write BENCH_kernels.json\n");
    }
}

} // namespace

int main(int argc, char** argv) {
    // --smoke: the CI gate. Shrunken sizes, best-of-2, no JSON rewrite —
    // but every bit-identity assertion (jobs 1 vs 8, blocked vs unblocked)
    // still runs and still fails the process on a mismatch.
    const bool smoke =
        argc > 1 && std::string(argv[1]) == "--smoke";
    if (smoke) g_reps = 2;
    const int grid = smoke ? 32 : 64;       // 27-pt operator / TGV edge
    const int cg_grid = smoke ? 24 : 48;    // CG operator edge
    const int gemm_n = smoke ? 96 : 256;    // dense blocked-vs-naive edge
    const std::size_t vlen = smoke ? 32u * 32u * 32u : 104u * 104u * 104u;

    std::printf("kernel throughput bench%s: serial vs jobs=%d, best of %d "
                "wall-clock reps, %ld online CPUs\n",
                smoke ? " (--smoke)" : "", kThreadedJobs, g_reps,
                sysconf(_SC_NPROCESSORS_ONLN));
    std::vector<Scenario> scenarios;
    bool blocked_identical = true;

    /// Compare a blocked kernel's output with its unblocked reference
    /// (computed at kThreadedJobs) bit-for-bit; a mismatch fails the bench.
    const auto check_pair = [&](const std::string& what,
                                const std::function<void(std::vector<double>&)>& blocked,
                                const std::function<void(std::vector<double>&)>& unblocked) {
        par::set_jobs(kThreadedJobs);
        std::vector<double> b, u;
        blocked(b);
        unblocked(u);
        par::set_jobs(0);
        const bool ok = b == u;
        blocked_identical = blocked_identical && ok;
        std::printf("  %-28s blocked vs unblocked: %s\n", what.c_str(),
                    ok ? "bit-identical" : "OUTPUTS DIFFER");
    };

    // HPCG-class 27-point operator — column-tiled CSR SpMV vs the unblocked
    // reference row loop. 64^3 local grid (the paper's per-process class
    // scaled to fit a CI container; the 104^3 node problem has the same
    // >LLC working set per core at 8 jobs).
    {
        const auto csr = ak::poisson27(grid, grid, grid);
        const auto x = random_vector(static_cast<std::size_t>(csr.rows()), 1);
        const std::string sz = format("%d^3 27pt", grid);
        scenarios.push_back(measure(
            "spmv_csr", sz, csr.spmv_flops(), [&](std::vector<double>& y) {
                y.resize(x.size());
                csr.spmv(x, y);
            }));
        scenarios.push_back(measure(
            "spmv_csr_unblk", sz, csr.spmv_flops(), [&](std::vector<double>& y) {
                y.resize(x.size());
                csr.spmv_unblocked(x, y);
            }));
        check_pair("spmv_csr " + sz,
                   [&](std::vector<double>& y) {
                       y.resize(x.size());
                       csr.spmv(x, y);
                   },
                   [&](std::vector<double>& y) {
                       y.resize(x.size());
                       csr.spmv_unblocked(x, y);
                   });

        const ak::SellMatrix sell(csr, 8, 64);
        scenarios.push_back(measure(
            "spmv_sell", sz, csr.spmv_flops(), [&](std::vector<double>& y) {
                y.resize(x.size());
                sell.spmv(x, y);
            }));
    }

    // Dense blocked kernels vs their naive references (gemm kBlock = 64,
    // zgemm kZBlock = 48; gemm_n does not divide either).
    {
        const int m = gemm_n;
        const auto a = random_vector(static_cast<std::size_t>(m) * m, 6);
        const auto b = random_vector(static_cast<std::size_t>(m) * m, 7);
        const std::string sz = format("%dx%dx%d", m, m, m);
        scenarios.push_back(measure("gemm_blk", sz, ak::gemm_flops(m, m, m),
                                    [&](std::vector<double>& c) {
                                        c.assign(static_cast<std::size_t>(m) * m, 0.0);
                                        ak::gemm(a, b, c, m, m, m);
                                    }));
        scenarios.push_back(measure("gemm_naive", sz, ak::gemm_flops(m, m, m),
                                    [&](std::vector<double>& c) {
                                        c.assign(static_cast<std::size_t>(m) * m, 0.0);
                                        ak::gemm_naive(a, b, c, m, m, m);
                                    }));
        check_pair("gemm " + sz,
                   [&](std::vector<double>& c) {
                       c.assign(static_cast<std::size_t>(m) * m, 0.0);
                       ak::gemm(a, b, c, m, m, m);
                   },
                   [&](std::vector<double>& c) {
                       c.assign(static_cast<std::size_t>(m) * m, 0.0);
                       ak::gemm_naive(a, b, c, m, m, m);
                   });

        const int zm = m / 2;
        std::vector<ak::cplx> za(static_cast<std::size_t>(zm) * zm),
            zb(static_cast<std::size_t>(zm) * zm);
        {
            armstice::util::Rng rng(8);
            for (auto& v : za) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            for (auto& v : zb) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
        }
        const auto flatten = [zm](const std::vector<ak::cplx>& zc,
                                  std::vector<double>& out) {
            out.clear();
            out.reserve(2 * zc.size());
            for (const auto& v : zc) {
                out.push_back(v.real());
                out.push_back(v.imag());
            }
            (void)zm;
        };
        const std::string zsz = format("%dx%dx%d", zm, zm, zm);
        scenarios.push_back(
            measure("zgemm_blk", zsz, ak::zgemm_flops(zm, zm, zm),
                    [&](std::vector<double>& out) {
                        std::vector<ak::cplx> zc(static_cast<std::size_t>(zm) * zm);
                        ak::zgemm(za, zb, zc, zm, zm, zm);
                        flatten(zc, out);
                    }));
        scenarios.push_back(
            measure("zgemm_naive", zsz, ak::zgemm_flops(zm, zm, zm),
                    [&](std::vector<double>& out) {
                        std::vector<ak::cplx> zc(static_cast<std::size_t>(zm) * zm);
                        ak::zgemm_naive(za, zb, zc, zm, zm, zm);
                        flatten(zc, out);
                    }));
        check_pair("zgemm " + zsz,
                   [&](std::vector<double>& out) {
                       std::vector<ak::cplx> zc(static_cast<std::size_t>(zm) * zm);
                       ak::zgemm(za, zb, zc, zm, zm, zm);
                       flatten(zc, out);
                   },
                   [&](std::vector<double>& out) {
                       std::vector<ak::cplx> zc(static_cast<std::size_t>(zm) * zm);
                       ak::zgemm_naive(za, zb, zc, zm, zm, zm);
                       flatten(zc, out);
                   });
    }

    // CG on the 27-point operator: 25 iterations, Jacobi-preconditioned; the
    // result vector is solution + residual history, so bit-identity covers
    // the dot/norm reductions driving convergence decisions.
    {
        const auto a = ak::poisson27(cg_grid, cg_grid, cg_grid);
        const auto b = random_vector(static_cast<std::size_t>(a.rows()), 2);
        const auto precond = ak::jacobi_preconditioner(a);
        const double ops = 25.0 * ak::cg_iter_flops(a);
        scenarios.push_back(
            measure("cg_27pt", format("%d^3 x25", cg_grid), ops,
                    [&](std::vector<double>& out) {
                std::vector<double> x(b.size(), 0.0);
                auto res = ak::cg_solve(a, b, x, {/*max_iters=*/25, /*rel_tol=*/0.0},
                                        precond);
                out = std::move(x);
                out.insert(out.end(), res.residuals.begin(), res.residuals.end());
            }));
    }

    // OpenSBLI Taylor-Green vortex, one RK3 step from the analytic initial
    // condition (state + diagnostics form the compared output): the j-tiled
    // sweep (default tile) timed against the unblocked full-extent sweep.
    {
        const double n3 = static_cast<double>(grid) * grid * grid;
        const double ops = ak::TaylorGreen::step_flops_per_point() * n3;
        const std::string sz = format("%d^3", grid);
        const auto run_tgv = [&](int tile_j, std::vector<double>& out) {
            ak::TaylorGreen tgv(grid, 0.1, 0.0, tile_j);
            tgv.step(1e-3);
            out = tgv.state();
            out.push_back(tgv.kinetic_energy());
            out.push_back(tgv.max_speed());
        };
        scenarios.push_back(measure("tgv_step", sz, ops, [&](std::vector<double>& out) {
            run_tgv(ak::TaylorGreen::kDefaultTileJ, out);
        }));
        scenarios.push_back(
            measure("tgv_step_unblk", sz, ops,
                    [&](std::vector<double>& out) { run_tgv(0, out); }));
        check_pair(
            "tgv_step " + sz,
            [&](std::vector<double>& out) { run_tgv(ak::TaylorGreen::kDefaultTileJ, out); },
            [&](std::vector<double>& out) { run_tgv(0, out); });
    }

    // Nekbone spectral operator, polynomial order 15 (nx1=16), 64 elements.
    {
        const ak::NekMesh mesh(64, 16);
        const auto u = random_vector(static_cast<std::size_t>(mesh.local_dofs()), 3);
        scenarios.push_back(measure("nek_ax", "E=64 N=15", ak::NekMesh::ax_flops(64, 16),
                                    [&](std::vector<double>& w) {
                                        w.resize(u.size());
                                        mesh.ax(u, w);
                                    }));
    }

    // BLAS-1 at the HPCG node-problem vector length (104^3; --smoke 32^3).
    {
        const std::size_t n = vlen;
        const auto x = random_vector(n, 4);
        const auto y = random_vector(n, 5);
        const std::string sz = smoke ? "32^3" : "104^3";
        scenarios.push_back(
            measure("dot", sz, 2.0 * static_cast<double>(n),
                    [&](std::vector<double>& out) { out = {ak::dot(x, y)}; }));
        scenarios.push_back(
            measure("axpy", sz, 2.0 * static_cast<double>(n),
                    [&](std::vector<double>& out) {
                        out = y;
                        ak::axpy(0.5, x, out);
                    }));
    }

    const bool all_identical = std::all_of(
        scenarios.begin(), scenarios.end(), [](const Scenario& s) { return s.bit_identical; });
    if (smoke) {
        // The smoke gate asserts, it does not publish numbers.
        std::printf("smoke: all_bit_identical=%s blocked_matches_unblocked=%s\n",
                    all_identical ? "true" : "false",
                    blocked_identical ? "true" : "false");
    } else {
        write_json(scenarios, all_identical, blocked_identical);
        std::printf("wrote BENCH_kernels.json (all_bit_identical=%s, "
                    "blocked_matches_unblocked=%s)\n",
                    all_identical ? "true" : "false",
                    blocked_identical ? "true" : "false");
    }
    return all_identical && blocked_identical ? 0 : 1;
}
