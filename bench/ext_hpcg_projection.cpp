// Extension: optimisation headroom and full-system projection. The paper's
// conclusions argue that (a) an A64FX-optimised HPCG should gain roughly the
// ~30-45% the Intel/Arm optimised variants demonstrated, and (b) the test
// system is only 48 nodes of the technology that became Fugaku. This bench
// projects both: a hypothetical optimised A64FX HPCG and full 48-node runs.

#include "bench_common.hpp"

#include "apps/hpcg/hpcg.hpp"
#include "util/table.hpp"

#include <cmath>

namespace {

using armstice::util::Table;

std::string projection_report() {
    std::string out;

    {
        Table t("Extension — hypothetical A64FX-optimised HPCG (1 node)");
        t.header({"Variant", "GFLOP/s", "vs unoptimised"});
        const auto base = armstice::apps::run_hpcg(armstice::arch::a64fx(), 1);
        t.row({"unoptimised (paper: 38.26)", Table::num(base.res.gflops), "1.00"});
        // Apply the geometric mean of the NGIO (+44%) and Fulhame (+43%)
        // optimisation gains the paper measured.
        const double gain = std::sqrt((37.61 / 26.16) * (33.80 / 23.58));
        t.row({"projected optimised", Table::num(base.res.gflops * gain),
               Table::num(gain)});
        out += t.render();
        out += "(the paper's conclusion: \"our comparative benchmarks suggesting 30%\n"
               "performance improvements could be possible\" — the cross-platform\n"
               "optimisation gain is 43-44%, bounding the expectation)\n\n";
    }

    {
        Table t("Extension — HPCG scaled to the full 48-node A64FX system");
        t.header({"Nodes", "GFLOP/s", "Parallel efficiency"});
        const std::vector<int> node_counts = {1, 2, 4, 8, 16, 32, 48};
        std::vector<armstice::core::SweepPoint> pts;
        for (int nodes : node_counts) {
            pts.push_back(armstice::core::sweep_point("ext-hpcg-projection", "A64FX",
                                                      nodes, 0, 1, "default"));
        }
        const auto outs =
            armstice::core::SweepRunner().run<armstice::apps::HpcgOutcome>(
                pts, [](const armstice::core::SweepPoint& pt, std::size_t) {
                    return armstice::apps::run_hpcg(armstice::arch::a64fx(), pt.nodes);
                });
        const double g1 = outs[0].res.gflops;
        for (std::size_t i = 0; i < node_counts.size(); ++i) {
            t.row({std::to_string(node_counts[i]), Table::num(outs[i].res.gflops),
                   Table::num(outs[i].res.gflops / (g1 * node_counts[i]), 3)});
        }
        out += t.render();
    }
    return out;
}

void BM_Hpcg48Nodes(benchmark::State& state) {
    armstice::apps::HpcgConfig cfg;
    cfg.iters = 3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            armstice::apps::run_hpcg(armstice::arch::a64fx(),
                                     static_cast<int>(state.range(0)), cfg)
                .res.gflops);
    }
}
BENCHMARK(BM_Hpcg48Nodes)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, projection_report());
}
