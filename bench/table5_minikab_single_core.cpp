// Table V — single-core minikab runtime (paper §VI.A). Prints paper-vs-model
// seconds, then benchmarks the real CG solver the skeleton counts.

#include "bench_common.hpp"

#include "apps/minikab/minikab.hpp"

namespace {

void BM_MinikabReferenceCg(benchmark::State& state) {
    const long n = state.range(0);
    for (auto _ : state) {
        const auto res = armstice::apps::minikab_reference(n, 6, 40);
        benchmark::DoNotOptimize(res.final_residual);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MinikabReferenceCg)->Arg(2000)->Arg(20000)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table5();
    return armstice::benchx::run(argc, argv, armstice::core::render_table5(rows));
}
