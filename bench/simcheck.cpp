// simcheck — command-line driver for the sim::check correctness suite
// (DESIGN.md §10). Generates `--seeds` random program sets, runs each
// through the production Engine, the naive RefEngine and `--perturb`
// perturbed Engine schedules, and requires every RunResult bit-identical;
// every `--deadlock-every`-th case carries a planted deadlock whose
// diagnosis must be detected and byte-identical across all executors.
// Prints the (jobs-invariant) report plus throughput and writes
// BENCH_simcheck.json; exits nonzero on any failure, so it can serve as a
// standalone CI gate next to the ctest `check` label. `--collapse-smoke N`
// additionally gates rank-equivalence collapse (DESIGN.md §11) at N ranks —
// far beyond the fuzz suite's case sizes — `--halo-collapse-smoke N` gates
// the relative-addressed halo path (§11.4: a 3D Cartesian skeleton must end
// with classes << ranks AND stay bit-identical to collapse-off), and
// `--jit-smoke N` does the same for trace-JIT superop execution (§13):
// JIT-on vs JIT-off bit-identity plus an engagement assertion (blocks
// compiled, re-used, and executing ops).

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "sim/placement.hpp"
#include "simmpi/minimpi.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/str.hpp"

#include <time.h>

#include <cstdio>
#include <string>

namespace {

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace am = armstice::simmpi;
namespace ck = armstice::sim::check;
using armstice::util::format;

double wall_now() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Rank-equivalence collapse smoke (DESIGN.md §11): run one SPMD skeleton at
/// `ranks` ranks as a shared ProgramBundle — collapsed, uncollapsed, and
/// collapsed under a perturbed schedule — and require all three RunResults
/// bit-identical. This is the only gate that exercises collapse at a scale
/// (100k ranks in CI) where the fuzz suite's 4..32-rank cases cannot; it is
/// cheap because the collapsed runs simulate O(classes) state machines and
/// the single flat run is pure SPMD. Returns true on bit-identity.
bool collapse_smoke(int ranks) {
    aa::ComputePhase spmv;
    spmv.label = "smoke-spmv";
    spmv.flops = 2.0 * 27.0 * 4096.0;
    spmv.main_bytes = 12.0 * 27.0 * 4096.0;
    spmv.pattern = aa::MemPattern::gather;
    spmv.efficiency = 0.8;
    aa::ComputePhase axpy = spmv;
    axpy.label = "smoke-axpy";
    axpy.pattern = aa::MemPattern::stream;

    am::ProgramSet ps(ranks);
    for (int it = 0; it < 10; ++it) {
        ps.compute(spmv);
        ps.allreduce(8);
        ps.compute(axpy);
        if (it % 4 == 3) ps.barrier();
    }
    ARMSTICE_CHECK(ps.spmd(), "collapse smoke skeleton must stay SPMD");
    const as::ProgramBundle bundle = ps.take_bundle();

    const int nodes = (ranks + 63) / 64;
    aa::ModelKnobs noiseless;
    noiseless.os_noise = 0;  // rank-keyed noise splits every class
    const as::Engine eng(aa::fulhame(),
                         as::Placement::block(aa::fulhame().node, nodes, ranks, 1),
                         0.8, noiseless);

    const as::RunResult collapsed = eng.run(bundle);
    as::RunOptions flat;
    flat.collapse = false;
    const std::string d1 = ck::diff_results(collapsed, eng.run(bundle, flat));
    as::RunOptions shaken;
    shaken.perturb_seed = 0x5eedful;
    const std::string d2 = ck::diff_results(collapsed, eng.run(bundle, shaken));
    if (!d1.empty()) {
        std::fprintf(stderr, "collapse smoke (%d ranks): collapsed vs flat: %s\n",
                     ranks, d1.c_str());
    }
    if (!d2.empty()) {
        std::fprintf(stderr, "collapse smoke (%d ranks): collapsed vs perturbed: %s\n",
                     ranks, d2.c_str());
    }
    std::printf("collapse smoke: %d ranks, %d classes, %d splits — %s\n", ranks,
                collapsed.collapse_classes, collapsed.collapse_splits,
                d1.empty() && d2.empty() ? "bit-identical" : "MISMATCH");
    return d1.empty() && d2.empty();
}

/// Relative-halo collapse smoke (DESIGN.md §11.4): run a 3D Cartesian halo
/// skeleton at `ranks` ranks as a shared ProgramBundle. halo_exchange emits
/// relative-addressed p2p, so the grid interior shares one structural
/// program and the engine executes it as merged classes — the gate requires
/// (a) the run to end with FAR fewer classes than ranks (the collapse
/// actually carried through the p2p), and (b) bit-identity against
/// collapse-off and a perturbed collapsed schedule. This is the only halo
/// gate at a scale (100k ranks in CI) the fuzz suite and unit tests cannot
/// reach. Returns true when both hold.
bool halo_collapse_smoke(int ranks) {
    aa::ComputePhase spmv;
    spmv.label = "halo-smoke-spmv";
    spmv.flops = 2.0 * 27.0 * 4096.0;
    spmv.main_bytes = 12.0 * 27.0 * 4096.0;
    spmv.pattern = aa::MemPattern::gather;
    spmv.efficiency = 0.8;

    const auto dims = am::dims_create(ranks, 3);
    const auto neighbors = am::cart_neighbors(dims, /*periodic=*/false);
    am::ProgramSet ps(ranks);
    for (int it = 0; it < 2; ++it) {
        ps.halo_exchange(neighbors, 8.0 * 16.0 * 16.0);
        ps.compute(spmv);
        ps.allreduce(8);
    }
    const as::ProgramBundle bundle = ps.take_bundle();

    const int nodes = (ranks + 63) / 64;
    aa::ModelKnobs noiseless;
    noiseless.os_noise = 0;  // rank-keyed noise splits every class
    const as::Engine eng(aa::fulhame(),
                         as::Placement::block(aa::fulhame().node, nodes, ranks, 1),
                         0.8, noiseless);

    const as::RunResult collapsed = eng.run(bundle);
    as::RunOptions flat;
    flat.collapse = false;
    const std::string d1 = ck::diff_results(collapsed, eng.run(bundle, flat));
    as::RunOptions shaken;
    shaken.perturb_seed = 0x4a105eedULL;
    const std::string d2 = ck::diff_results(collapsed, eng.run(bundle, shaken));
    if (!d1.empty()) {
        std::fprintf(stderr,
                     "halo collapse smoke (%d ranks): collapsed vs flat: %s\n",
                     ranks, d1.c_str());
    }
    if (!d2.empty()) {
        std::fprintf(stderr,
                     "halo collapse smoke (%d ranks): collapsed vs perturbed: %s\n",
                     ranks, d2.c_str());
    }
    // "Far fewer": the interior must stay merged. A 3D halo has <= 27
    // structural boundary patterns; splits add node-edge and arrival-order
    // classes but never approach O(ranks).
    const bool merged = collapsed.collapse_classes * 16 <= ranks;
    if (!merged) {
        std::fprintf(stderr,
                     "halo collapse smoke (%d ranks): %d classes — interior did"
                     " not stay merged\n",
                     ranks, collapsed.collapse_classes);
    }
    const bool ok = d1.empty() && d2.empty() && merged;
    std::printf("halo collapse smoke: %d ranks, %d classes, %d splits"
                " (p2p %d, placement %d) — %s\n",
                ranks, collapsed.collapse_classes, collapsed.collapse_splits,
                collapsed.collapse_split_p2p, collapsed.collapse_split_placement,
                ok ? "bit-identical" : "MISMATCH");
    return ok;
}

/// Trace-JIT smoke (DESIGN.md §13): run a halo-exchange + collective
/// skeleton at `ranks` ranks — far beyond the fuzz suite's 4..32-rank cases
/// — and require superop execution bit-identical to the interpreter on both
/// program paths: the bundled form (run tables cached on the Program) and
/// the raw per-rank vector (the engine derives its own tables). Also asserts
/// the JIT actually engaged — blocks were compiled, executed most of the ops
/// and were re-used across iterations — so the gate cannot silently pass by
/// falling back to the interpreter. Returns true on bit-identity + engagement.
bool jit_smoke(int ranks) {
    aa::ComputePhase spmv;
    spmv.label = "jit-smoke-spmv";
    spmv.flops = 2.0 * 27.0 * 4096.0;
    spmv.main_bytes = 12.0 * 27.0 * 4096.0;
    spmv.pattern = aa::MemPattern::gather;
    spmv.efficiency = 0.8;
    aa::ComputePhase axpy = spmv;
    axpy.label = "jit-smoke-axpy";
    axpy.pattern = aa::MemPattern::stream;

    const auto dims = am::dims_create(ranks, 3);
    const auto neighbors = am::cart_neighbors(dims, /*periodic=*/false);
    am::ProgramSet ps(ranks);
    for (int it = 0; it < 12; ++it) {
        ps.halo_exchange(neighbors, 8.0 * 16.0 * 16.0);
        ps.compute(spmv);
        ps.compute(axpy);
        ps.allreduce(8);
    }
    const std::vector<as::Program> progs = ps.take();
    const as::ProgramBundle bundle = as::ProgramBundle::from(progs);

    const int nodes = (ranks + 63) / 64;
    const as::Engine eng(aa::fulhame(),
                         as::Placement::block(aa::fulhame().node, nodes, ranks, 1),
                         0.8);
    const as::RunResult jit_on = eng.run(bundle);
    as::RunOptions off;
    off.jit = false;
    const std::string d1 = ck::diff_results(jit_on, eng.run(bundle, off));
    const std::string d2 = ck::diff_results(jit_on, eng.run(progs));
    if (!d1.empty()) {
        std::fprintf(stderr, "jit smoke (%d ranks): jit on vs off: %s\n", ranks,
                     d1.c_str());
    }
    if (!d2.empty()) {
        std::fprintf(stderr, "jit smoke (%d ranks): bundle vs raw vector: %s\n",
                     ranks, d2.c_str());
    }
    const bool engaged = jit_on.jit_ops > 0 &&
                         jit_on.jit_block_runs > jit_on.jit_blocks;
    if (!engaged) {
        std::fprintf(stderr,
                     "jit smoke (%d ranks): JIT did not engage (%d blocks, "
                     "%lld block runs, %lld ops)\n",
                     ranks, jit_on.jit_blocks, jit_on.jit_block_runs,
                     jit_on.jit_ops);
    }
    const bool ok = d1.empty() && d2.empty() && engaged;
    std::printf("jit smoke: %d ranks, %d blocks, %lld block runs, %lld jit ops"
                " — %s\n",
                ranks, jit_on.jit_blocks, jit_on.jit_block_runs, jit_on.jit_ops,
                ok ? "bit-identical" : "MISMATCH");
    return ok;
}

void write_json(const ck::CheckConfig& cfg, const ck::CheckReport& rep,
                double seconds, int smoke_ranks, bool smoke_ok,
                int halo_ranks, bool halo_ok, int jit_ranks, bool jit_ok) {
    std::string j = "{\n  \"bench\": \"simcheck\",\n  \"unit\": \"seeds/sec\",\n";
    j += format("  \"seeds\": %d,\n  \"first_seed\": %llu,\n", cfg.seeds,
                static_cast<unsigned long long>(cfg.first_seed));
    j += format("  \"perturbations\": %d,\n  \"deadlock_cases\": %d,\n",
                rep.perturbations, rep.deadlock_cases);
    j += format("  \"jobs\": %d,\n  \"failures\": %zu,\n", cfg.jobs,
                rep.failures.size());
    j += format("  \"collapse_smoke_ranks\": %d,\n  \"collapse_smoke_ok\": %s,\n",
                smoke_ranks, smoke_ok ? "true" : "false");
    j += format("  \"halo_collapse_smoke_ranks\": %d,\n"
                "  \"halo_collapse_smoke_ok\": %s,\n",
                halo_ranks, halo_ok ? "true" : "false");
    j += format("  \"jit_smoke_ranks\": %d,\n  \"jit_smoke_ok\": %s,\n",
                jit_ranks, jit_ok ? "true" : "false");
    j += format("  \"seconds\": %.3f,\n  \"seeds_per_sec\": %.2f\n}\n", seconds,
                seconds > 0 ? cfg.seeds / seconds : 0.0);
    if (!armstice::util::write_file_atomic("BENCH_simcheck.json", j)) {
        std::fprintf(stderr, "simcheck: could not write BENCH_simcheck.json\n");
    }
}

} // namespace

int main(int argc, char** argv) {
    armstice::util::Cli cli("simcheck",
                            "differential / perturbation / deadlock checker for"
                            " the discrete-event engine");
    cli.option("seeds", "number of generated cases", "500");
    cli.option("first-seed", "seed of the first case", "1");
    cli.option("ranks", "fixed rank count (0 = random per case, 4..32)", "0");
    cli.option("perturb", "perturbed schedules per case", "8");
    cli.option("deadlock-every", "every M-th case plants a deadlock (0 = never)",
               "8");
    cli.option("jobs", "checker threads", "1");
    cli.option("collapse-smoke",
               "also smoke-test rank-equivalence collapse at this many ranks"
               " (0 = skip)",
               "0");
    cli.option("halo-collapse-smoke",
               "also smoke-test relative-halo collapse (3D Cartesian skeleton)"
               " at this many ranks (0 = skip)",
               "0");
    cli.option("jit-smoke",
               "also differential-test trace-JIT superop execution at this"
               " many ranks (0 = skip)",
               "0");
    ck::CheckConfig cfg;
    int smoke_ranks = 0;
    int halo_ranks = 0;
    int jit_ranks = 0;
    try {
        cli.parse(argc, argv);
        cfg.seeds = static_cast<int>(cli.get_long("seeds"));
        cfg.first_seed = static_cast<std::uint64_t>(cli.get_long("first-seed"));
        cfg.ranks = static_cast<int>(cli.get_long("ranks"));
        cfg.perturbations = static_cast<int>(cli.get_long("perturb"));
        cfg.deadlock_every = static_cast<int>(cli.get_long("deadlock-every"));
        cfg.jobs = static_cast<int>(cli.get_long("jobs"));
        smoke_ranks = static_cast<int>(cli.get_long("collapse-smoke"));
        halo_ranks = static_cast<int>(cli.get_long("halo-collapse-smoke"));
        jit_ranks = static_cast<int>(cli.get_long("jit-smoke"));
    } catch (const armstice::util::Error& e) {
        std::fprintf(stderr, "simcheck: %s\n%s", e.what(), cli.usage().c_str());
        return 2;
    }

    std::printf("simcheck: %d seeds from %llu, perturb %d, deadlock every %d,"
                " jobs %d\n",
                cfg.seeds, static_cast<unsigned long long>(cfg.first_seed),
                cfg.perturbations, cfg.deadlock_every, cfg.jobs);
    const double t0 = wall_now();
    const ck::CheckReport rep = ck::run_suite(aa::fulhame(), cfg);
    const double dt = wall_now() - t0;
    std::printf("%s\n", rep.render().c_str());
    std::printf("%.2f s wall, %.2f seeds/sec\n", dt,
                dt > 0 ? cfg.seeds / dt : 0.0);
    const bool smoke_ok = smoke_ranks <= 0 || collapse_smoke(smoke_ranks);
    const bool halo_ok = halo_ranks <= 0 || halo_collapse_smoke(halo_ranks);
    const bool jit_ok = jit_ranks <= 0 || jit_smoke(jit_ranks);
    write_json(cfg, rep, dt, smoke_ranks, smoke_ok, halo_ranks, halo_ok,
               jit_ranks, jit_ok);
    return rep.ok() && smoke_ok && halo_ok && jit_ok ? 0 : 1;
}
