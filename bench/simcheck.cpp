// simcheck — command-line driver for the sim::check correctness suite
// (DESIGN.md §10). Generates `--seeds` random program sets, runs each
// through the production Engine, the naive RefEngine and `--perturb`
// perturbed Engine schedules, and requires every RunResult bit-identical;
// every `--deadlock-every`-th case carries a planted deadlock whose
// diagnosis must be detected and byte-identical across all executors.
// Prints the (jobs-invariant) report plus throughput and writes
// BENCH_simcheck.json; exits nonzero on any failure, so it can serve as a
// standalone CI gate next to the ctest `check` label.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/str.hpp"

#include <time.h>

#include <cstdio>
#include <string>

namespace {

namespace aa = armstice::arch;
namespace ck = armstice::sim::check;
using armstice::util::format;

double wall_now() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void write_json(const ck::CheckConfig& cfg, const ck::CheckReport& rep,
                double seconds) {
    std::string j = "{\n  \"bench\": \"simcheck\",\n  \"unit\": \"seeds/sec\",\n";
    j += format("  \"seeds\": %d,\n  \"first_seed\": %llu,\n", cfg.seeds,
                static_cast<unsigned long long>(cfg.first_seed));
    j += format("  \"perturbations\": %d,\n  \"deadlock_cases\": %d,\n",
                rep.perturbations, rep.deadlock_cases);
    j += format("  \"jobs\": %d,\n  \"failures\": %zu,\n", cfg.jobs,
                rep.failures.size());
    j += format("  \"seconds\": %.3f,\n  \"seeds_per_sec\": %.2f\n}\n", seconds,
                seconds > 0 ? cfg.seeds / seconds : 0.0);
    if (!armstice::util::write_file_atomic("BENCH_simcheck.json", j)) {
        std::fprintf(stderr, "simcheck: could not write BENCH_simcheck.json\n");
    }
}

} // namespace

int main(int argc, char** argv) {
    armstice::util::Cli cli("simcheck",
                            "differential / perturbation / deadlock checker for"
                            " the discrete-event engine");
    cli.option("seeds", "number of generated cases", "500");
    cli.option("first-seed", "seed of the first case", "1");
    cli.option("ranks", "fixed rank count (0 = random per case, 4..32)", "0");
    cli.option("perturb", "perturbed schedules per case", "8");
    cli.option("deadlock-every", "every M-th case plants a deadlock (0 = never)",
               "8");
    cli.option("jobs", "checker threads", "1");
    ck::CheckConfig cfg;
    try {
        cli.parse(argc, argv);
        cfg.seeds = static_cast<int>(cli.get_long("seeds"));
        cfg.first_seed = static_cast<std::uint64_t>(cli.get_long("first-seed"));
        cfg.ranks = static_cast<int>(cli.get_long("ranks"));
        cfg.perturbations = static_cast<int>(cli.get_long("perturb"));
        cfg.deadlock_every = static_cast<int>(cli.get_long("deadlock-every"));
        cfg.jobs = static_cast<int>(cli.get_long("jobs"));
    } catch (const armstice::util::Error& e) {
        std::fprintf(stderr, "simcheck: %s\n%s", e.what(), cli.usage().c_str());
        return 2;
    }

    std::printf("simcheck: %d seeds from %llu, perturb %d, deadlock every %d,"
                " jobs %d\n",
                cfg.seeds, static_cast<unsigned long long>(cfg.first_seed),
                cfg.perturbations, cfg.deadlock_every, cfg.jobs);
    const double t0 = wall_now();
    const ck::CheckReport rep = ck::run_suite(aa::fulhame(), cfg);
    const double dt = wall_now() - t0;
    std::printf("%s\n", rep.render().c_str());
    std::printf("%.2f s wall, %.2f seeds/sec\n", dt,
                dt > 0 ? cfg.seeds / dt : 0.0);
    write_json(cfg, rep, dt);
    return rep.ok() ? 0 : 1;
}
