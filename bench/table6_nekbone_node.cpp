// Table VI — Nekbone node performance, -O3 vs fast-math (paper §VI.B).
// Prints paper-vs-model GFLOP/s, then benchmarks the real spectral-element
// ax kernel (the >75%-of-runtime kernel the paper describes).

#include "bench_common.hpp"

#include "kern/nek/spectral.hpp"

namespace {

void BM_NekAx(benchmark::State& state) {
    const int elems = static_cast<int>(state.range(0));
    const int nx1 = static_cast<int>(state.range(1));
    const armstice::kern::NekMesh mesh(elems, nx1);
    std::vector<double> u(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    std::vector<double> w(u.size());
    for (auto _ : state) {
        mesh.ax(u, w);
        benchmark::DoNotOptimize(w.data());
    }
    state.counters["flops"] = benchmark::Counter(
        armstice::kern::NekMesh::ax_flops(elems, nx1) * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NekAx)->Args({8, 8})->Args({8, 16})->Args({32, 16})
    ->Unit(benchmark::kMillisecond);

void BM_GllSetup(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(armstice::kern::gll_deriv_matrix(n));
    }
}
BENCHMARK(BM_GllSetup)->Arg(8)->Arg(16);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table6();
    return armstice::benchx::run(argc, argv, armstice::core::render_table6(rows));
}
