// Figure 5 — CASTEP TiN single-node performance vs core count (paper
// §VII.B.1), plus microbenchmarks of the real FFT/ZGEMM kernels standing in
// for FFTW/MKL/SSL2.

#include "bench_common.hpp"

#include "kern/dense/blas.hpp"
#include "kern/fft/fft.hpp"

namespace {

void BM_Fft3d(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    std::vector<armstice::kern::cplx> data(
        static_cast<std::size_t>(n) * n * static_cast<std::size_t>(n),
        armstice::kern::cplx(1.0, 0.5));
    for (auto _ : state) {
        armstice::kern::fft3d(data, n);
        benchmark::DoNotOptimize(data.data());
    }
    state.counters["flops"] = benchmark::Counter(
        armstice::kern::fft3d_flops(n) * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Zgemm(benchmark::State& state) {
    const int b = static_cast<int>(state.range(0));
    const int k = 256;
    std::vector<armstice::kern::cplx> a(static_cast<std::size_t>(b) * k,
                                        armstice::kern::cplx(1.0, -1.0));
    std::vector<armstice::kern::cplx> c(static_cast<std::size_t>(b) * b);
    for (auto _ : state) {
        armstice::kern::zgemm(a, a, c, b, k, b);
        benchmark::DoNotOptimize(c.data());
    }
}
BENCHMARK(BM_Zgemm)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto series = armstice::core::run_fig5();
    armstice::core::save_fig5(series, "fig5");
    return armstice::benchx::run(argc, argv, armstice::core::render_fig5(series));
}
