// Table IX — CASTEP TiN best single-node performance (paper §VII.B.1).

#include "bench_common.hpp"

#include "apps/castep/castep.hpp"

namespace {

void BM_SimulateCastepNode(benchmark::State& state) {
    armstice::apps::CastepConfig cfg;
    cfg.nodes = 1;
    cfg.ranks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto out = armstice::apps::run_castep(armstice::arch::ngio(), cfg);
        benchmark::DoNotOptimize(out.scf_cycles_per_s);
    }
}
BENCHMARK(BM_SimulateCastepNode)->Arg(8)->Arg(48)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table9();
    return armstice::benchx::run(argc, argv, armstice::core::render_table9(rows));
}
