// Extension: energy efficiency. The paper's introduction leads with the
// A64FX's Green500 credentials (16.876 GFLOPs/W on HPL) but the evaluation
// never quantifies efficiency. With the node power model (arch/power.hpp)
// we compute GFLOPs/W and energy-to-solution for the paper's benchmarks.

#include "bench_common.hpp"

#include "apps/hpcg/hpcg.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "arch/power.hpp"
#include "util/table.hpp"

namespace {

using armstice::util::Table;

std::string energy_report() {
    std::string out;

    Table t("Extension — modelled energy efficiency, single node");
    t.header({"System", "Node peak W", "HPCG GF/s", "HPCG GF/W",
              "Nekbone GF/s", "Nekbone GF/W"});
    const auto& catalog = armstice::arch::system_catalog();

    std::vector<armstice::core::SweepPoint> hpcg_pts;
    std::vector<armstice::core::SweepPoint> nek_pts;
    for (const auto& sys : catalog) {
        hpcg_pts.push_back(armstice::core::sweep_point("ext-energy-hpcg", sys.name,
                                                       1, 0, 1, "default"));
        nek_pts.push_back(armstice::core::sweep_point("ext-energy-nekbone", sys.name,
                                                      1, 0, 1, "node-config"));
    }
    armstice::core::SweepRunner runner;
    const auto hpcgs = runner.run<armstice::apps::HpcgOutcome>(
        hpcg_pts, [](const armstice::core::SweepPoint& pt, std::size_t) {
            return armstice::apps::run_hpcg(armstice::arch::system_by_name(pt.system),
                                            1);
        });
    const auto neks = runner.run<armstice::apps::AppResult>(
        nek_pts, [](const armstice::core::SweepPoint& pt, std::size_t) {
            const auto& sys = armstice::arch::system_by_name(pt.system);
            return armstice::apps::run_nekbone(
                sys, armstice::apps::nekbone_node_config(sys, 1, false));
        });

    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const auto& sys = catalog[i];
        const auto power = armstice::arch::power_spec(sys);
        const auto& hpcg = hpcgs[i];
        const auto& nek = neks[i];
        const double hpcg_gfw = armstice::arch::gflops_per_watt(
            sys, hpcg.res.run.total_flops, hpcg.res.run.mean_compute(),
            hpcg.res.seconds, 1);
        const double nek_gfw = armstice::arch::gflops_per_watt(
            sys, nek.run.total_flops, nek.run.mean_compute(), nek.seconds, 1);

        t.row({sys.name, Table::num(power.peak_w(), 0), Table::num(hpcg.res.gflops),
               Table::num(hpcg_gfw, 3), Table::num(nek.gflops),
               Table::num(nek_gfw, 3)});
    }
    out += t.render();
    out += "\nReading: the A64FX's HPCG/Nekbone wins compound with its ~2x lower\n"
           "node power — its efficiency lead is larger than its performance lead,\n"
           "consistent with the Green500 result the paper's introduction cites.\n";
    return out;
}

void BM_EnergyModel(benchmark::State& state) {
    const auto& sys = armstice::arch::a64fx();
    const auto p = armstice::arch::power_spec(sys);
    for (auto _ : state) {
        benchmark::DoNotOptimize(armstice::arch::node_energy_j(p, 1.0, 2.0));
    }
}
BENCHMARK(BM_EnergyModel);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, energy_report());
}
