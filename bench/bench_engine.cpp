// Engine throughput bench — measures the discrete-event core itself, not a
// paper artefact. Two program skeletons (HPCG's multigrid-CG iteration and
// COSA's harmonic-balance multigrid loop) run at 48/256/1024 ranks on
// Fulhame-shaped nodes (64 ranks/node at the top end, the paper's largest
// per-node count), and the bench reports engine ops/sec, wall seconds and
// per-scenario peak RSS for each scenario, then writes BENCH_engine.json
// next to the working directory so the perf trajectory of the engine is
// recorded.
//
// Every scenario runs as a pair by default: trace-JIT superop execution on
// (DESIGN.md §13, the RunOptions default) and off (plain interpreter), with
// the two RunResults required bit-identical before any number is written —
// the same measure-then-prove pattern as `bench_kernels --smoke`. Pass
// `--jit on` or `--jit off` to measure a single mode (no identity check
// without the pair). Programs go through ProgramBundle, the form every app
// in this repo hands the engine (bit-identical to the raw vector path, and
// it amortises the derived op-key/run-table sidecars the JIT consumes).
//
// The JSON carries two measurement sets: "baseline" (numbers recorded on the
// pre-optimization engine when this bench was introduced, kept as literals
// below) and "current" (measured by this run). Rows with a matching baseline
// entry carry "speedup_vs_baseline"; rows without one (the SPMD scale rows)
// omit the field rather than reporting a fake 0. Build Release (the default;
// bench targets force -O2 even under sanitizer/debug configs — see
// bench/CMakeLists.txt) before quoting numbers.

#include "arch/system.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"
#include "simmpi/minimpi.hpp"
#include "util/fileio.hpp"
#include "util/str.hpp"

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

namespace aa = armstice::arch;
namespace as = armstice::sim;
namespace am = armstice::simmpi;
using armstice::util::format;

// ---- skeleton builders -----------------------------------------------------

aa::ComputePhase phase(const char* label, double flops, double bytes,
                       aa::MemPattern pattern) {
    aa::ComputePhase p;
    p.label = label;
    p.flops = flops;
    p.main_bytes = bytes;
    p.pattern = pattern;
    p.efficiency = 0.8;
    return p;
}

/// HPCG-shaped skeleton: per iteration a level-0 SpMV + dot, a 3-level
/// V-cycle (halo exchange + SymGS/SpMV per level) and the CG vector tail
/// with three allreduces. Mirrors apps/hpcg/hpcg.cpp at a small grid.
am::ProgramSet hpcg_skeleton(int ranks, int iters) {
    const auto dims = am::dims_create(ranks, 3);
    const auto neighbors = am::cart_neighbors(dims, /*periodic=*/false);
    constexpr int kLevels = 3;
    const double rows = 16.0 * 16.0 * 16.0;
    const double face = 8.0 * 16.0 * 16.0;

    const auto spmv = phase("spmv0", 2.0 * 27.0 * rows, 12.0 * 27.0 * rows,
                            aa::MemPattern::gather);
    const auto symgs = phase("symgs", 4.0 * 27.0 * rows, 24.0 * 27.0 * rows,
                             aa::MemPattern::gather);
    const auto dot = phase("ddot", 2.0 * rows, 16.0 * rows, aa::MemPattern::stream);
    const auto axpy = phase("waxpby", 3.0 * rows, 24.0 * rows, aa::MemPattern::stream);

    am::ProgramSet ps(ranks);
    for (int it = 0; it < iters; ++it) {
        ps.halo_exchange(neighbors, face);
        ps.compute(spmv);
        ps.compute(dot);
        ps.allreduce(8);
        for (int l = 0; l < kLevels - 1; ++l) {
            ps.halo_exchange(neighbors, face);
            ps.compute(symgs);
            ps.halo_exchange(neighbors, face);
            ps.compute(spmv);
        }
        ps.halo_exchange(neighbors, face);
        ps.compute(symgs);
        for (int l = kLevels - 2; l >= 0; --l) {
            ps.halo_exchange(neighbors, face);
            ps.compute(symgs);
        }
        ps.compute(dot);
        ps.allreduce(8);
        ps.compute(axpy);
        ps.compute(dot);
        ps.allreduce(8);
    }
    return ps;
}

/// COSA-shaped skeleton: the paper's 800-block harmonic-balance case with
/// round-robin block ownership — a per-rank block sweep, a ring halo
/// exchange among active ranks, and a residual allreduce per iteration. At
/// 1024 ranks a quarter of the ranks own no blocks (exactly the imbalance
/// regime of Fig 4). Mirrors apps/cosa/cosa.cpp.
am::ProgramSet cosa_skeleton(int ranks, int iters) {
    constexpr int kBlocks = 800;
    const int active = std::min(ranks, kBlocks);
    std::vector<int> blocks_of(static_cast<std::size_t>(ranks), 0);
    for (int b = 0; b < kBlocks; ++b) blocks_of[static_cast<std::size_t>(b % ranks)]++;

    std::vector<std::vector<int>> neighbors(static_cast<std::size_t>(ranks));
    std::vector<std::vector<double>> halo(static_cast<std::size_t>(ranks));
    for (int r = 0; r < active; ++r) {
        const double b = 4.6e5 * blocks_of[static_cast<std::size_t>(r)];
        if (r > 0) {
            neighbors[static_cast<std::size_t>(r)].push_back(r - 1);
            halo[static_cast<std::size_t>(r)].push_back(b);
        }
        if (r + 1 < active) {
            neighbors[static_cast<std::size_t>(r)].push_back(r + 1);
            halo[static_cast<std::size_t>(r)].push_back(b);
        }
    }

    am::ProgramSet ps(ranks);
    ps.mark("cosa-hb-mg");
    for (int it = 0; it < iters; ++it) {
        ps.compute_by_rank([&](int r) {
            const int nblocks = blocks_of[static_cast<std::size_t>(r)];
            auto p = phase("hb-mg-iteration", nblocks * 1.16e8, nblocks * 5.0e8,
                           aa::MemPattern::stream);
            p.vector_fraction = 0.8;
            return p;
        });
        if (ranks > 1 && active > 1) ps.halo_exchange(neighbors, halo);
        ps.allreduce(8);
    }
    return ps;
}

/// Pure-SPMD HPCG-shaped skeleton for the collapse scaling rows: the same
/// compute phases and allreduce cadence as hpcg_skeleton, but no halo
/// exchanges — point-to-point ops are rank-asymmetric (distinct dst lists)
/// and split the engine's rank-equivalence classes (DESIGN.md §11), and the
/// scale rows exist to measure the collapsed engine. The caller must also
/// zero os_noise: the noise term is rank-keyed, so any nonzero noise splits
/// every class at the first ComputeOp.
am::ProgramSet hpcg_spmd_skeleton(int ranks, int iters) {
    constexpr int kLevels = 3;
    const double rows = 16.0 * 16.0 * 16.0;
    const auto spmv = phase("spmv0", 2.0 * 27.0 * rows, 12.0 * 27.0 * rows,
                            aa::MemPattern::gather);
    const auto symgs = phase("symgs", 4.0 * 27.0 * rows, 24.0 * 27.0 * rows,
                             aa::MemPattern::gather);
    const auto dot = phase("ddot", 2.0 * rows, 16.0 * rows, aa::MemPattern::stream);
    const auto axpy = phase("waxpby", 3.0 * rows, 24.0 * rows, aa::MemPattern::stream);

    am::ProgramSet ps(ranks);
    for (int it = 0; it < iters; ++it) {
        ps.compute(spmv);
        ps.compute(dot);
        ps.allreduce(8);
        for (int l = 0; l < kLevels - 1; ++l) {
            ps.compute(symgs);
            ps.compute(spmv);
        }
        ps.compute(symgs);
        for (int l = kLevels - 2; l >= 0; --l) ps.compute(symgs);
        ps.compute(dot);
        ps.allreduce(8);
        ps.compute(axpy);
        ps.compute(dot);
        ps.allreduce(8);
    }
    return ps;
}

// ---- measurement -----------------------------------------------------------

struct Scenario {
    std::string app;
    int ranks = 0;
    bool jit = true;          ///< RunOptions::jit for this row
    long ops = 0;
    double seconds = 0;       ///< best-of-reps CPU time of one Engine::run
    double ops_per_sec = 0;
    long peak_rss_kb = 0;     ///< peak RSS during THIS scenario (see rss_scope)
    /// "scenario" when /proc/self/clear_refs let us reset VmHWM before the
    /// runs (the value is this scenario's own high-water mark), "process"
    /// when the reset is unsupported and the value is the cumulative process
    /// peak — labelled so a row can never pass off an earlier scenario's
    /// allocation as its own.
    bool rss_per_scenario = false;
    bool collapse = true;     ///< RunOptions::collapse for this row
    int collapse_classes = 0; ///< rank-equivalence classes the run ended with
    int collapse_splits = 0;  ///< split events, broken down by cause below
    int split_p2p = 0;        ///< absolute p2p / wildcard / rel-arrival splits
    int split_noise = 0;      ///< rank-keyed OS-noise compute splits
    int split_placement = 0;  ///< rel-send hop-tier (node edge) splits
    int jit_blocks = 0;       ///< superop blocks compiled (jit rows)
    long long jit_block_runs = 0;
    long long jit_ops = 0;
    bool paired = false;      ///< jit-on/off pair ran and proved bit-identity
};

/// Cumulative process high-water mark (getrusage). Only meaningful as a
/// whole-process number — the million-rank footprint gate at the end of
/// main() — never as a per-scenario figure.
long process_peak_rss_kb() {
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss;  // KiB on Linux
}

/// Reset the kernel's per-mm RSS high-water mark (VmHWM) so the next
/// vm_hwm_kb() read covers only what happened since. Linux-specific
/// (write "5" to /proc/self/clear_refs); returns false where unsupported,
/// in which case rows fall back to the cumulative peak and say so.
bool reset_vm_hwm() {
    std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
    if (f == nullptr) return false;
    const bool wrote = std::fputs("5", f) >= 0;
    return (std::fclose(f) == 0) && wrote;
}

/// Current VmHWM from /proc/self/status, in KiB (-1 if unreadable). After a
/// successful reset_vm_hwm() this is the peak RSS since the reset (floored
/// at the RSS current at reset time — memory already resident stays counted).
long vm_hwm_kb() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return -1;
    long kb = -1;
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    return kb;
}

/// Thread CPU seconds. Engine::run is single-threaded, so this is exactly the
/// work done, immune to the scheduler parking us behind other processes —
/// best-of-reps wall time still swings 2x on a loaded box.
double cpu_now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Record this scenario's RSS peak: per-scenario VmHWM when the kernel lets
/// us reset it, cumulative process peak (honestly labelled) otherwise.
void finish_rss(Scenario* s, bool reset_ok) {
    const long hwm = reset_ok ? vm_hwm_kb() : -1;
    s->rss_per_scenario = hwm >= 0;
    s->peak_rss_kb = s->rss_per_scenario ? hwm : process_peak_rss_kb();
}

Scenario measure(const std::string& app, int ranks,
                 const as::ProgramBundle& progs, bool jit, as::RunResult* out) {
    const int nodes = (ranks + 63) / 64;  // Fulhame: 64 cores/node
    const as::Engine engine(aa::fulhame(),
                            as::Placement::block(aa::fulhame().node, nodes, ranks, 1),
                            0.8, aa::ModelKnobs{});

    Scenario s;
    s.app = app;
    s.ranks = ranks;
    s.jit = jit;
    for (int r = 0; r < progs.ranks(); ++r) {
        s.ops += static_cast<long>(progs.of(r).ops.size());
    }
    as::RunOptions opts;
    opts.jit = jit;

    const bool rss_reset = reset_vm_hwm();
    constexpr int kReps = 7;
    double best = 1e300;
    double makespan = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        const double t0 = cpu_now();
        const auto res = engine.run(progs, opts);
        const double t1 = cpu_now();
        best = std::min(best, t1 - t0);
        makespan = res.makespan;
        s.collapse_classes = res.collapse_classes;
        s.collapse_splits = res.collapse_splits;
        s.split_p2p = res.collapse_split_p2p;
        s.split_noise = res.collapse_split_noise;
        s.split_placement = res.collapse_split_placement;
        s.jit_blocks = res.jit_blocks;
        s.jit_block_runs = res.jit_block_runs;
        s.jit_ops = res.jit_ops;
        if (out != nullptr) *out = res;
    }
    s.seconds = best;
    s.ops_per_sec = static_cast<double>(s.ops) / best;
    finish_rss(&s, rss_reset);
    std::printf("  %-5s %5d ranks  jit %-3s  %9ld ops  %8.4f s  %10.0f ops/s"
                "  rss %ld MiB%s  (makespan %.3f s)\n",
                app.c_str(), ranks, jit ? "on" : "off", s.ops, s.seconds,
                s.ops_per_sec, s.peak_rss_kb / 1024,
                s.rss_per_scenario ? "" : " (process)", makespan);
    return s;
}

/// Collapse scaling rows (DESIGN.md §11): run the SPMD skeleton as a shared
/// ProgramBundle with os_noise=0 so the engine simulates one state machine
/// per equivalence class instead of one per rank. `ops` counts simulated
/// rank-ops (ranks x ops-per-rank) — the collapsed engine executes only
/// O(classes) of them, which is exactly the speedup the row records.
/// When `check_flat` is set the same engine re-runs with collapse disabled
/// and the two RunResults must be bit-identical (check::diff_results); a
/// mismatch aborts the bench, because scale numbers from a result that
/// diverges from the uncollapsed engine would be meaningless.
Scenario measure_scale(const std::string& app, int ranks,
                       const as::ProgramBundle& bundle, bool jit,
                       bool check_flat, as::RunResult* out,
                       bool collapse = true) {
    const int nodes = (ranks + 63) / 64;  // Fulhame: 64 cores/node
    aa::ModelKnobs noiseless;
    noiseless.os_noise = 0;  // rank-keyed noise would split every class
    const as::Engine engine(aa::fulhame(),
                            as::Placement::block(aa::fulhame().node, nodes, ranks, 1),
                            0.8, noiseless);

    Scenario s;
    s.app = app;
    s.ranks = ranks;
    s.jit = jit;
    s.collapse = collapse;
    // Simulated rank-ops: sum per rank (halo skeletons give boundary ranks
    // shorter programs, so ranks x ops-of-rank-0 would miscount).
    for (int r = 0; r < bundle.ranks(); ++r) {
        s.ops += static_cast<long>(bundle.of(r).ops.size());
    }
    as::RunOptions opts;
    opts.jit = jit;
    opts.collapse = collapse;

    const bool rss_reset = reset_vm_hwm();
    constexpr int kReps = 3;
    double best = 1e300;
    double makespan = 0;
    as::RunResult res;
    for (int rep = 0; rep < kReps; ++rep) {
        const double t0 = cpu_now();
        res = engine.run(bundle, opts);
        const double t1 = cpu_now();
        best = std::min(best, t1 - t0);
        makespan = res.makespan;
    }
    s.seconds = best;
    s.ops_per_sec = static_cast<double>(s.ops) / best;
    s.collapse_classes = res.collapse_classes;
    s.collapse_splits = res.collapse_splits;
    s.split_p2p = res.collapse_split_p2p;
    s.split_noise = res.collapse_split_noise;
    s.split_placement = res.collapse_split_placement;
    s.jit_blocks = res.jit_blocks;
    s.jit_block_runs = res.jit_block_runs;
    s.jit_ops = res.jit_ops;
    if (out != nullptr) *out = res;

    if (check_flat) {
        as::RunOptions flat = opts;
        flat.collapse = false;
        const auto ref = engine.run(bundle, flat);
        const std::string diff = as::check::diff_results(res, ref);
        if (!diff.empty()) {
            std::fprintf(stderr,
                         "bench_engine: collapse differential FAILED at %d "
                         "ranks: %s\n",
                         ranks, diff.c_str());
            std::exit(1);
        }
    }

    finish_rss(&s, rss_reset);
    std::printf("  %-10s %8d ranks  jit %-3s  %11ld ops  %8.4f s  %12.3g ops/s"
                "  rss %ld MiB%s  classes %d  splits %d (p2p %d, noise %d, "
                "placement %d)%s  (makespan %.3f s)\n",
                app.c_str(), ranks, jit ? "on" : "off", s.ops, s.seconds,
                s.ops_per_sec, s.peak_rss_kb / 1024,
                s.rss_per_scenario ? "" : " (process)", s.collapse_classes,
                s.collapse_splits, s.split_p2p, s.split_noise, s.split_placement,
                collapse ? "" : "  [collapse off]", makespan);
    return s;
}

/// ops/sec recorded on the pre-optimization engine (commit 5470295) — the
/// denominator of the speedups this PR reports. Methodology: this same bench
/// source built Release in a scratch worktree of the parent commit, run
/// interleaved with the current build on the same box, best CPU time of 7
/// reps per scenario (CLOCK_THREAD_CPUTIME_ID, so co-tenant load does not
/// skew either side). The baseline predates the trace-JIT, so jit-on and
/// jit-off rows share the same denominator (jit-off isolates the
/// interpreter-path gains, jit-on adds the superop gain on top). Regenerate
/// the same way if the scenarios change.
struct BaselinePoint {
    const char* app;
    int ranks;
    double ops_per_sec;
};
constexpr BaselinePoint kBaseline[] = {
    {"hpcg", 48, 41093610},  {"hpcg", 256, 38647352}, {"hpcg", 1024, 22389714},
    {"cosa", 48, 49875329},  {"cosa", 256, 46483694}, {"cosa", 1024, 23915198},
};

std::string json_escape(const std::string& s) { return s; }  // labels are plain

void write_json(const std::vector<Scenario>& scenarios) {
    std::string j = "{\n  \"bench\": \"engine\",\n  \"unit\": \"ops/sec\",\n";
    j += "  \"baseline\": [\n";
    for (std::size_t i = 0; i < std::size(kBaseline); ++i) {
        const auto& b = kBaseline[i];
        j += format("    {\"app\": \"%s\", \"ranks\": %d, \"ops_per_sec\": %.0f}%s\n",
                    b.app, b.ranks, b.ops_per_sec,
                    i + 1 < std::size(kBaseline) ? "," : "");
    }
    j += "  ],\n  \"current\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto& s = scenarios[i];
        double base = 0;
        for (const auto& b : kBaseline) {
            if (s.app == b.app && s.ranks == b.ranks) base = b.ops_per_sec;
        }
        j += format("    {\"app\": \"%s\", \"ranks\": %d, \"jit\": %s, "
                    "\"collapse\": %s, "
                    "\"ops\": %ld, \"seconds\": %.6f, \"ops_per_sec\": %.0f, "
                    "\"peak_rss_kb\": %ld, \"rss_scope\": \"%s\", "
                    "\"collapse_classes\": %d, \"collapse_splits\": %d, "
                    "\"split_p2p\": %d, \"split_noise\": %d, "
                    "\"split_placement\": %d",
                    json_escape(s.app).c_str(), s.ranks,
                    s.jit ? "true" : "false", s.collapse ? "true" : "false",
                    s.ops, s.seconds, s.ops_per_sec,
                    s.peak_rss_kb, s.rss_per_scenario ? "scenario" : "process",
                    s.collapse_classes, s.collapse_splits, s.split_p2p,
                    s.split_noise, s.split_placement);
        if (s.jit) {
            j += format(", \"jit_blocks\": %d, \"jit_block_runs\": %lld, "
                        "\"jit_ops\": %lld",
                        s.jit_blocks, s.jit_block_runs, s.jit_ops);
        }
        // A row only carries bit_identical when its jit-on/off pair actually
        // ran and was diffed (a mismatch aborts before the JSON is written),
        // and only carries a speedup when a baseline entry exists — absent
        // fields mean "not measured", never a made-up zero.
        if (s.paired) j += ", \"bit_identical\": true";
        if (base > 0) {
            j += format(", \"speedup_vs_baseline\": %.2f", s.ops_per_sec / base);
        }
        j += format("}%s\n", i + 1 < scenarios.size() ? "," : "");
    }
    j += "  ]\n}\n";
    if (!armstice::util::write_file_atomic("BENCH_engine.json", j)) {
        std::fprintf(stderr, "bench_engine: could not write BENCH_engine.json\n");
    }
}

enum class JitMode { both, on, off };

} // namespace

int main(int argc, char** argv) {
    JitMode mode = JitMode::both;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jit") == 0 && i + 1 < argc) {
            const char* v = argv[++i];
            if (std::strcmp(v, "on") == 0) {
                mode = JitMode::on;
            } else if (std::strcmp(v, "off") == 0) {
                mode = JitMode::off;
            } else if (std::strcmp(v, "both") == 0) {
                mode = JitMode::both;
            } else {
                std::fprintf(stderr, "bench_engine: --jit takes on|off|both\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: bench_engine [--jit on|off|both]\n"
                         "  both (default) measures each scenario twice and "
                         "requires the two RunResults bit-identical\n");
            return 2;
        }
    }

    std::printf("engine throughput bench (Fulhame nodes, 64 ranks/node, "
                "default noise)\n");
    std::vector<Scenario> scenarios;

    // Measure jit-on and/or jit-off rows for one scenario; with both modes,
    // prove bit-identity between the pair before recording either row (the
    // bench's own differential — scale numbers from a JIT that diverges from
    // the interpreter would be meaningless).
    const auto run_pair = [&](const std::string& app, int ranks,
                              const as::ProgramBundle& bundle, bool scale,
                              bool check_flat) {
        as::RunResult on_res, off_res;
        const std::size_t first = scenarios.size();
        if (mode != JitMode::off) {
            scenarios.push_back(scale ? measure_scale(app, ranks, bundle, true,
                                                      check_flat, &on_res)
                                      : measure(app, ranks, bundle, true, &on_res));
        }
        if (mode != JitMode::on) {
            scenarios.push_back(scale ? measure_scale(app, ranks, bundle, false,
                                                      /*check_flat=*/false,
                                                      &off_res)
                                      : measure(app, ranks, bundle, false, &off_res));
        }
        if (mode == JitMode::both) {
            const std::string d = as::check::diff_results(on_res, off_res);
            if (!d.empty()) {
                std::fprintf(stderr,
                             "bench_engine: jit differential FAILED for %s at "
                             "%d ranks: %s\n",
                             app.c_str(), ranks, d.c_str());
                std::exit(1);
            }
            for (std::size_t i = first; i < scenarios.size(); ++i) {
                scenarios[i].paired = true;
            }
        }
    };

    for (int ranks : {48, 256, 1024}) {
        run_pair("hpcg", ranks, hpcg_skeleton(ranks, /*iters=*/20).take_bundle(),
                 /*scale=*/false, /*check_flat=*/false);
    }
    for (int ranks : {48, 256, 1024}) {
        run_pair("cosa", ranks, cosa_skeleton(ranks, /*iters=*/200).take_bundle(),
                 /*scale=*/false, /*check_flat=*/false);
    }

    // Relative-halo collapse rows (DESIGN.md §11.4): the SAME halo skeletons
    // as the throughput rows above, but under os_noise=0 so the collapse is
    // observable — halo_exchange's relative addressing keeps the grid/chain
    // interior merged through the p2p, ending with classes << ranks. The
    // jit-on row also proves bit-identity against collapse-off (check_flat),
    // the pair proves jit-on vs jit-off, and an explicit collapse-off row
    // records what the engine pays without the merge.
    std::printf("halo collapse rows (relative-addressed halos, os_noise=0, "
                "DESIGN.md §11.4)\n");
    {
        const auto hpcg_halo = hpcg_skeleton(1024, /*iters=*/20).take_bundle();
        run_pair("hpcg-halo", 1024, hpcg_halo, /*scale=*/true,
                 /*check_flat=*/true);
        scenarios.push_back(measure_scale("hpcg-halo", 1024, hpcg_halo,
                                          /*jit=*/true, /*check_flat=*/false,
                                          nullptr, /*collapse=*/false));
        const auto cosa_halo = cosa_skeleton(1024, /*iters=*/200).take_bundle();
        run_pair("cosa-halo", 1024, cosa_halo, /*scale=*/true,
                 /*check_flat=*/true);
        scenarios.push_back(measure_scale("cosa-halo", 1024, cosa_halo,
                                          /*jit=*/true, /*check_flat=*/false,
                                          nullptr, /*collapse=*/false));
    }

    std::printf("collapse scaling (SPMD hpcg skeleton, os_noise=0, "
                "DESIGN.md §11)\n");
    for (int ranks : {100000, 1000000}) {
        am::ProgramSet ps = hpcg_spmd_skeleton(ranks, /*iters=*/20);
        if (!ps.spmd()) {
            std::fprintf(stderr,
                         "bench_engine: scale skeleton forked — no longer "
                         "SPMD, scale rows would not collapse\n");
            return 1;
        }
        // Differential vs the uncollapsed engine at 100k ranks only: the
        // flat run simulates one state machine per rank and exists to prove
        // bit-identity, not to wait on at a million ranks.
        run_pair("hpcg-spmd", ranks, ps.take_bundle(), /*scale=*/true,
                 /*check_flat=*/ranks == 100000);
    }
    // Footprint gate: a million collapsed ranks must stay O(classes) state
    // plus O(ranks) final stats arrays. 512 MiB is ~4x the measured peak —
    // headroom for allocator noise, a hard stop for an O(ranks)-state
    // regression (which lands around several GiB here). Process-wide peak on
    // purpose: per-scenario VmHWM resets must not launder a regression.
    const long rss_kb = process_peak_rss_kb();
    if (rss_kb > 512 * 1024) {
        std::fprintf(stderr,
                     "bench_engine: peak RSS %ld MiB exceeds the 512 MiB "
                     "million-rank budget\n",
                     rss_kb / 1024);
        return 1;
    }

    write_json(scenarios);
    std::printf("wrote BENCH_engine.json\n");
    return 0;
}
