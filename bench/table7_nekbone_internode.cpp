// Table VII — Nekbone inter-node parallel efficiency (paper §VI.B.2), weak
// scaling to 16 nodes on the TofuD / EDR IB / Aries models.

#include "bench_common.hpp"

#include "apps/nekbone/nekbone.hpp"
#include "net/collectives.hpp"

namespace {

void BM_AllreduceModel(benchmark::State& state) {
    const armstice::net::Network net(armstice::arch::NetKind::tofud, 16);
    const armstice::net::CollectiveModel coll(net);
    armstice::net::CommLayout layout{16, 48};
    for (auto _ : state) {
        benchmark::DoNotOptimize(coll.allreduce(layout, 8.0));
    }
}
BENCHMARK(BM_AllreduceModel);

void BM_SimulateNekbone16Nodes(benchmark::State& state) {
    const auto& sys = armstice::arch::fulhame();
    for (auto _ : state) {
        const auto out = armstice::apps::run_nekbone(
            sys, armstice::apps::nekbone_node_config(sys, 16, false));
        benchmark::DoNotOptimize(out.seconds);
    }
}
BENCHMARK(BM_SimulateNekbone16Nodes)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table7();
    return armstice::benchx::run(argc, argv, armstice::core::render_table7(rows));
}
