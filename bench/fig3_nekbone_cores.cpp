// Figure 3 — Nekbone single-node core scaling (paper §VI.B.1). The log-scale
// plot reproduces the paper's key observation: IvyBridge saturates its DDR3
// bandwidth beyond ~4 cores while the A64FX and ThunderX2 keep scaling.

#include "bench_common.hpp"

#include "apps/nekbone/nekbone.hpp"

namespace {

void BM_SimulateNekboneCoreSweep(benchmark::State& state) {
    armstice::apps::NekboneConfig cfg;
    cfg.nodes = 1;
    cfg.ranks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto out = armstice::apps::run_nekbone(armstice::arch::a64fx(), cfg);
        benchmark::DoNotOptimize(out.gflops);
    }
}
BENCHMARK(BM_SimulateNekboneCoreSweep)->Arg(1)->Arg(48)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto series = armstice::core::run_fig3();
    armstice::core::save_fig3(series, "fig3");
    return armstice::benchx::run(argc, argv, armstice::core::render_fig3(series));
}
