// The reproduction scorecard: every published number vs the model, plus
// the qualitative findings, in one table. The capstone artefact of the
// reproduction (see EXPERIMENTS.md for per-table discussion).

#include "bench_common.hpp"

#include "core/score.hpp"

namespace {

void BM_FullScorecard(benchmark::State& state) {
    // The scorecard re-runs the entire evaluation; this measures the cost
    // of reproducing the paper end to end.
    for (auto _ : state) {
        benchmark::DoNotOptimize(armstice::core::compute_scorecard().total_points());
    }
}
BENCHMARK(BM_FullScorecard)->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto card = armstice::core::compute_scorecard();
    return armstice::benchx::run(argc, argv, armstice::core::render_scorecard(card));
}
