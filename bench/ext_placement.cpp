// Extension: process placement. The paper pins processes and threads
// (§III.a) and under-populates nodes when memory demands it (minikab's
// plain-MPI runs). This bench quantifies the choice the paper's batch
// scripts made implicitly: packing an under-populated job onto few domains
// (block) vs scattering it across all of them (round-robin), on a
// bandwidth-bound kernel.

#include "bench_common.hpp"

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

namespace {

using armstice::util::Table;

double run_with(const armstice::sim::Placement& placement,
                const armstice::arch::SystemSpec& sys, int ranks) {
    armstice::arch::ModelKnobs knobs;
    knobs.os_noise = 0.0;
    const armstice::sim::Engine engine(sys, placement, 0.7, knobs);
    std::vector<armstice::sim::Program> progs(static_cast<std::size_t>(ranks));
    armstice::arch::ComputePhase phase;
    phase.label = "stream";
    phase.main_bytes = 2e9;
    phase.flops = 1.0;
    for (auto& p : progs) p.compute(phase);
    return engine.run(progs).makespan;
}

std::string placement_report() {
    Table t("Extension — block vs scatter placement, 6-rank STREAM-like job");
    t.header({"System", "Nodes", "Block (s)", "Scatter (s)", "Scatter speedup"});
    const int ranks = 6;
    const int nodes = 1;
    const auto& catalog = armstice::arch::system_catalog();

    std::vector<armstice::core::SweepPoint> pts;
    for (const auto& sys : catalog) {
        for (const char* mode : {"block", "scatter"}) {
            pts.push_back(armstice::core::sweep_point("ext-placement", sys.name,
                                                      nodes, ranks, 1, mode));
        }
    }
    const auto times = armstice::core::SweepRunner().run<double>(
        pts, [&](const armstice::core::SweepPoint& pt, std::size_t) {
            const auto& sys = armstice::arch::system_by_name(pt.system);
            const auto placement =
                pt.config == "block"
                    ? armstice::sim::Placement::block(sys.node, nodes, ranks, 1)
                    : armstice::sim::Placement::round_robin(sys.node, nodes, ranks, 1);
            return run_with(placement, sys, ranks);
        });

    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const double tb = times[2 * i];
        const double ts = times[2 * i + 1];
        t.row({catalog[i].name, std::to_string(nodes), Table::num(tb, 3),
               Table::num(ts, 3), Table::num(tb / ts)});
    }
    return t.render() +
           "\nScatter placement cycles the ranks across the node's memory domains\n"
           "instead of packing one; the win is largest on the A64FX, whose four\n"
           "CMG-local HBM stacks are the sharpest per-domain resource. This is\n"
           "why the paper's best minikab hybrid configuration pins one process\n"
           "per CMG.\n";
}

void BM_PlacementBuild(benchmark::State& state) {
    const auto& sys = armstice::arch::a64fx();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            armstice::sim::Placement::round_robin(sys.node, 8, 384, 1));
    }
}
BENCHMARK(BM_PlacementBuild);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, placement_report());
}
