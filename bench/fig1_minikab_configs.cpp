// Figure 1 — minikab process/thread configurations on 2 A64FX nodes
// (paper §VI.A). Prints the config sweep including the plain-MPI memory
// ceiling, then benchmarks hybrid-placement simulation.

#include "bench_common.hpp"

#include "apps/minikab/minikab.hpp"

namespace {

void BM_SimulateHybridMinikab(benchmark::State& state) {
    armstice::apps::MinikabConfig cfg;
    cfg.nodes = 2;
    cfg.ranks = 8;
    cfg.threads = 12;
    for (auto _ : state) {
        const auto out = armstice::apps::run_minikab(armstice::arch::a64fx(), cfg);
        benchmark::DoNotOptimize(out.seconds);
    }
}
BENCHMARK(BM_SimulateHybridMinikab)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto series = armstice::core::run_fig1();
    armstice::core::save_fig1(series, "fig1");
    return armstice::benchx::run(argc, argv, armstice::core::render_fig1(series));
}
