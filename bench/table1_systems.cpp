// Table I & II — system and toolchain catalog dump, plus microbenchmarks of
// the cost model and topology routines every experiment relies on.

#include "bench_common.hpp"

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "net/network.hpp"

namespace {

void BM_CostModelPhaseTime(benchmark::State& state) {
    const auto& sys = armstice::arch::a64fx();
    armstice::arch::CostModel model;
    armstice::arch::ComputePhase phase;
    phase.flops = 1e9;
    phase.main_bytes = 1e8;
    phase.pattern = armstice::arch::MemPattern::gather;
    armstice::arch::ExecContext ctx;
    ctx.cpu = &sys.node.cpu;
    ctx.streams_on_domain = 12;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.phase_time(phase, ctx));
    }
}
BENCHMARK(BM_CostModelPhaseTime);

void BM_TorusMeanHops(benchmark::State& state) {
    const armstice::net::Network net(armstice::arch::NetKind::tofud,
                                     static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.mean_latency());
    }
}
BENCHMARK(BM_TorusMeanHops)->Arg(8)->Arg(48);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, armstice::core::render_system_catalog());
}
