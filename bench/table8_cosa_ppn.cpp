// Table VIII — COSA processes per node (paper §VII.A.2), plus the block
// distributions those process counts induce (the input to Fig 4).

#include "bench_common.hpp"

#include "apps/cosa/cosa.hpp"
#include "core/paper_data.hpp"
#include "util/table.hpp"

namespace {

std::string render_distributions() {
    armstice::util::Table t(
        "Block distribution per system at 16 nodes (800 blocks, Fig 4 input)");
    t.header({"System", "Ranks", "Active ranks", "Max blocks/rank", "Balance"});
    for (const auto& p : armstice::core::paper::kTable8) {
        armstice::apps::CosaConfig cfg;
        const int ranks = 16 * p.ppn;
        const auto d = armstice::apps::cosa_distribution(cfg, ranks);
        t.row({p.system, std::to_string(ranks), std::to_string(d.active_ranks),
               std::to_string(d.max_blocks_per_rank),
               armstice::util::Table::num(d.balance(), 3)});
    }
    return t.render();
}

void BM_BlockDistribution(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            armstice::kern::BlockDistribution::round_robin(800,
                                                           static_cast<int>(state.range(0))));
    }
}
BENCHMARK(BM_BlockDistribution)->Arg(768)->Arg(1024);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(
        argc, argv, armstice::core::render_table8() + "\n" + render_distributions());
}
