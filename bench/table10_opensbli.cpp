// Table X — OpenSBLI Taylor-Green 64^3 runtimes (paper §VII.C), plus
// microbenchmarks of the real compressible TGV stepper.

#include "bench_common.hpp"

#include "kern/stencil/taylor_green.hpp"

namespace {

void BM_TaylorGreenStep(benchmark::State& state) {
    armstice::kern::TaylorGreen tg(static_cast<int>(state.range(0)));
    const double dt = tg.stable_dt();
    for (auto _ : state) {
        tg.step(dt);
        benchmark::DoNotOptimize(tg.kinetic_energy());
    }
    const double n3 = static_cast<double>(state.range(0)) * state.range(0) * state.range(0);
    state.counters["flops"] = benchmark::Counter(
        armstice::kern::TaylorGreen::step_flops_per_point() * n3 * state.iterations(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TaylorGreenStep)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table10();
    return armstice::benchx::run(argc, argv, armstice::core::render_table10(rows));
}
