// Figure 2 — minikab strong scaling on A64FX vs Fulhame (paper §VI.A).

#include "bench_common.hpp"

#include "apps/minikab/minikab.hpp"

namespace {

void BM_SimulateMinikabScale(benchmark::State& state) {
    armstice::apps::MinikabConfig cfg;
    cfg.nodes = static_cast<int>(state.range(0));
    cfg.ranks = 64 * cfg.nodes;
    for (auto _ : state) {
        const auto out = armstice::apps::run_minikab(armstice::arch::fulhame(), cfg);
        benchmark::DoNotOptimize(out.seconds);
    }
}
BENCHMARK(BM_SimulateMinikabScale)->Arg(1)->Arg(6)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto series = armstice::core::run_fig2();
    armstice::core::save_fig2(series, "fig2");
    return armstice::benchx::run(argc, argv, armstice::core::render_fig2(series));
}
