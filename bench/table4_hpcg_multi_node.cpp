// Table IV — multi-node HPCG scaling (paper §V.A). Prints paper-vs-model
// GFLOP/s at 1/2/4/8 nodes, then benchmarks the discrete-event engine on
// the HPCG program itself (the simulator is the system under test here).

#include "bench_common.hpp"

#include "apps/hpcg/hpcg.hpp"

namespace {

void BM_SimulateHpcg(benchmark::State& state) {
    const int nodes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto out = armstice::apps::run_hpcg(armstice::arch::a64fx(), nodes);
        benchmark::DoNotOptimize(out.res.gflops);
    }
}
BENCHMARK(BM_SimulateHpcg)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table4();
    return armstice::benchx::run(argc, argv, armstice::core::render_table4(rows));
}
