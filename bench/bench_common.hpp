#pragma once
// Shared scaffolding for the per-artefact bench binaries: every binary
// (a) prints its paper table/figure with paper-vs-model values, (b) dumps a
// CSV next to the binary, and (c) runs google-benchmark microbenchmarks of
// the kernels/simulator that produce the artefact.

#include "core/experiments.hpp"
#include "core/report.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace armstice::benchx {

/// Print the artefact then hand over to google-benchmark.
inline int run(int argc, char** argv, const std::string& artefact_text) {
    std::fputs(artefact_text.c_str(), stdout);
    std::fputs("\n--- microbenchmarks of the code behind this artefact ---\n", stdout);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace armstice::benchx
