#pragma once
// Shared scaffolding for the per-artefact bench binaries: every binary
// (a) prints its paper table/figure with paper-vs-model values, (b) dumps a
// CSV next to the binary, and (c) runs google-benchmark microbenchmarks of
// the kernels/simulator that produce the artefact.
//
// Sweep execution is parallel: call init() first in main() — it consumes
// `--jobs N` (or ARMSTICE_JOBS) and installs the pool size used by every
// core::SweepRunner behind the artefact functions AND the kern::par thread
// count used by the real kernels (spmv/cg/stencil/spectral), and it
// consumes `--cache-dir DIR` (or ARMSTICE_CACHE) to install the persistent
// on-disk sweep cache shared across bench processes. run() appends a footer
// with the pool size, point count and memo/disk cache hit rates. Results
// are ordered by point index and kernels reduce deterministically
// (DESIGN.md §9), so --jobs 8 output is byte-identical to --jobs 1, and
// cached results are byte-identical to evaluated ones (doubles persist
// bit-exact).

#include "core/app_codecs.hpp"
#include "core/cache.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/runner.hpp"
#include "kern/par.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace armstice::benchx {

/// Parse and strip sweep-execution options before the artefact sweeps run.
/// Must be the first statement of every bench main(). Exits with a short
/// message on a malformed --jobs/--cache-dir instead of an
/// uncaught-exception abort.
inline void init(int& argc, char** argv) {
    try {
        core::set_default_jobs(
            util::jobs_from_args(argc, argv, core::default_jobs()));
        kern::par::set_jobs(core::default_jobs());
        core::set_cache_dir(util::cache_dir_from_args(argc, argv));
    } catch (const util::Error& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        std::exit(2);
    }
}

/// Print the artefact, hand over to google-benchmark, then report how the
/// sweeps behind the artefact executed.
inline int run(int argc, char** argv, const std::string& artefact_text) {
    std::fputs(artefact_text.c_str(), stdout);
    std::fputs("\n--- microbenchmarks of the code behind this artefact ---\n", stdout);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::fputs(core::sweep_footer().c_str(), stdout);
    return 0;
}

} // namespace armstice::benchx
