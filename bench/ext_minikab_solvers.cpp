// Extension: minikab's solver-algorithm option. The paper describes minikab
// as a vehicle for "testing a range of parallel implementation techniques"
// (decomposition, solver algorithm, communication approach) but benchmarks
// only the default CG. We model the other two algorithms — Jacobi-
// preconditioned CG and pipelined (single-allreduce) CG — at scale, where
// their different communication schedules matter.

#include "bench_common.hpp"

#include "apps/minikab/minikab.hpp"
#include "util/table.hpp"

namespace {

using armstice::apps::MinikabSolver;
using armstice::util::Table;

std::string solver_report() {
    Table t("Extension — minikab solver variants, best A64FX setup (model)");
    t.header({"Solver", "2 nodes (s)", "8 nodes (s)", "32 nodes (s)",
              "reduction points/iter"});
    for (MinikabSolver solver : {MinikabSolver::cg, MinikabSolver::jacobi_pcg,
                                 MinikabSolver::pipelined_cg}) {
        std::vector<std::string> cells{armstice::apps::minikab_solver_name(solver)};
        for (int nodes : {2, 8, 32}) {
            armstice::apps::MinikabConfig cfg;
            cfg.nodes = nodes;
            cfg.ranks = 4 * nodes;  // one process per CMG
            cfg.threads = 12;
            cfg.solver = solver;
            const auto out = armstice::apps::run_minikab(armstice::arch::a64fx(), cfg);
            cells.push_back(Table::num(out.seconds, 2));
        }
        cells.push_back(solver == MinikabSolver::pipelined_cg ? "1" : "2");
        t.row(cells);
    }
    return t.render() +
           "\nJacobi preconditioning wins on iteration count (~25% fewer on the\n"
           "stiff structural matrix, measured with the real solver in\n"
           "kern/sparse); pipelined CG halves the per-iteration synchronisation,\n"
           "which grows in value with node count — at the paper's 8-node scale\n"
           "the difference is small, exactly why the paper's default-CG numbers\n"
           "are representative.\n";
}

void BM_JacobiPcgReference(benchmark::State& state) {
    for (auto _ : state) {
        const auto res = armstice::apps::minikab_reference(
            2000, 6, 200, MinikabSolver::jacobi_pcg);
        benchmark::DoNotOptimize(res.iterations);
    }
}
BENCHMARK(BM_JacobiPcgReference)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    return armstice::benchx::run(argc, argv, solver_report());
}
