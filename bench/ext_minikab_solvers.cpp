// Extension: minikab's solver-algorithm option. The paper describes minikab
// as a vehicle for "testing a range of parallel implementation techniques"
// (decomposition, solver algorithm, communication approach) but benchmarks
// only the default CG. We model the other two algorithms — Jacobi-
// preconditioned CG and pipelined (single-allreduce) CG — at scale, where
// their different communication schedules matter.

#include "bench_common.hpp"

#include "apps/minikab/minikab.hpp"
#include "util/table.hpp"

namespace {

using armstice::apps::MinikabSolver;
using armstice::util::Table;

std::string solver_report() {
    Table t("Extension — minikab solver variants, best A64FX setup (model)");
    t.header({"Solver", "2 nodes (s)", "8 nodes (s)", "32 nodes (s)",
              "reduction points/iter"});
    const std::vector<MinikabSolver> solvers = {
        MinikabSolver::cg, MinikabSolver::jacobi_pcg, MinikabSolver::pipelined_cg};
    const std::vector<int> node_counts = {2, 8, 32};

    std::vector<armstice::core::SweepPoint> pts;
    std::vector<armstice::apps::MinikabConfig> cfgs;
    for (MinikabSolver solver : solvers) {
        for (int nodes : node_counts) {
            armstice::apps::MinikabConfig cfg;
            cfg.nodes = nodes;
            cfg.ranks = 4 * nodes;  // one process per CMG
            cfg.threads = 12;
            cfg.solver = solver;
            pts.push_back(armstice::core::sweep_point(
                "ext-minikab-solvers", "A64FX", cfg.nodes, cfg.ranks, cfg.threads,
                "solver=" + std::to_string(static_cast<int>(solver))));
            cfgs.push_back(cfg);
        }
    }
    const auto outs = armstice::core::SweepRunner().run<armstice::apps::AppResult>(
        pts, [&cfgs](const armstice::core::SweepPoint&, std::size_t i) {
            return armstice::apps::run_minikab(armstice::arch::a64fx(), cfgs[i]);
        });

    for (std::size_t s = 0; s < solvers.size(); ++s) {
        std::vector<std::string> cells{armstice::apps::minikab_solver_name(solvers[s])};
        for (std::size_t k = 0; k < node_counts.size(); ++k) {
            cells.push_back(Table::num(outs[s * node_counts.size() + k].seconds, 2));
        }
        cells.push_back(solvers[s] == MinikabSolver::pipelined_cg ? "1" : "2");
        t.row(cells);
    }
    return t.render() +
           "\nJacobi preconditioning wins on iteration count (~25% fewer on the\n"
           "stiff structural matrix, measured with the real solver in\n"
           "kern/sparse); pipelined CG halves the per-iteration synchronisation,\n"
           "which grows in value with node count — at the paper's 8-node scale\n"
           "the difference is small, exactly why the paper's default-CG numbers\n"
           "are representative.\n";
}

void BM_JacobiPcgReference(benchmark::State& state) {
    for (auto _ : state) {
        const auto res = armstice::apps::minikab_reference(
            2000, 6, 200, MinikabSolver::jacobi_pcg);
        benchmark::DoNotOptimize(res.iterations);
    }
}
BENCHMARK(BM_JacobiPcgReference)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, solver_report());
}
