// Figure 4 — COSA strong scaling to 16 nodes (paper §VII.A.3): the A64FX
// cannot fit the ~60 GB case on one node, leads from 2-8 nodes, and is
// overtaken by Fulhame at 16 nodes through the 800-block load imbalance.

#include "bench_common.hpp"

#include "apps/cosa/cosa.hpp"

namespace {

void BM_SimulateCosa(benchmark::State& state) {
    armstice::apps::CosaConfig cfg;
    cfg.nodes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const auto out = armstice::apps::run_cosa(armstice::arch::fulhame(), cfg);
        benchmark::DoNotOptimize(out.seconds);
    }
}
BENCHMARK(BM_SimulateCosa)->Arg(2)->Arg(16)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto series = armstice::core::run_fig4();
    armstice::core::save_fig4(series, "fig4");
    return armstice::benchx::run(argc, argv, armstice::core::render_fig4(series));
}
