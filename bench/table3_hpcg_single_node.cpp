// Table III — single-node HPCG (paper §V.A). Prints paper-vs-model GFLOP/s
// for all five systems plus the vendor-optimised variants, then benchmarks
// the real sparse kernels behind the skeleton (SpMV, SymGS, MG V-cycle).

#include "bench_common.hpp"

#include "kern/sparse/multigrid.hpp"

namespace {

void BM_Spmv27(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto a = armstice::kern::poisson27(n, n, n);
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> y(x.size());
    for (auto _ : state) {
        a.spmv(x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv27)->Arg(16)->Arg(32);

void BM_SymGs27(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const auto a = armstice::kern::poisson27(n, n, n);
    std::vector<double> r(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> x(r.size(), 0.0);
    for (auto _ : state) {
        a.symgs(r, x);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SymGs27)->Arg(16)->Arg(32);

void BM_MgVcycle(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    const armstice::kern::Multigrid mg(n, n, n, 3);
    std::vector<double> r(static_cast<std::size_t>(mg.rows(0)), 1.0);
    std::vector<double> z(r.size());
    for (auto _ : state) {
        mg.vcycle(r, z);
        benchmark::DoNotOptimize(z.data());
    }
}
BENCHMARK(BM_MgVcycle)->Arg(16)->Arg(32);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    const auto rows = armstice::core::run_table3();
    return armstice::benchx::run(argc, argv, armstice::core::render_table3(rows));
}
