// Ablation bench (DESIGN.md §4.6): re-runs headline experiments with
// individual model components disabled to show each is load-bearing.
//  * no contention  -> single-node core scaling becomes implausibly linear
//    (Fig 3's IvyBridge saturation disappears);
//  * no per-core bandwidth caps -> Table V's single-core SpMV times collapse
//    (a single A64FX core would see the full 210 GB/s CMG bandwidth);
//  * no gather penalty -> HPCG overshoots on the SVE/AVX-512 machines;
//  * no capacity rule -> COSA "fits" on one A64FX node and minikab plain MPI
//    "fits" 96 processes, both contradicting the paper;
//  * no OS noise -> Nekbone inter-node parallel efficiencies sit at 1.00.

#include "bench_common.hpp"

#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "util/table.hpp"

namespace {

using armstice::arch::ModelKnobs;
using armstice::util::Table;

std::string ablate() {
    std::string out;

    {
        Table t("Ablation — Table V single-core minikab (A64FX seconds)");
        t.header({"Model", "Runtime (s)"});
        armstice::apps::MinikabConfig cfg;
        t.row({"full model", Table::num(
                                 armstice::apps::run_minikab(armstice::arch::a64fx(), cfg)
                                     .seconds,
                                 0)});
        cfg.knobs.core_bw_cap = false;
        t.row({"no per-core bw cap",
               Table::num(armstice::apps::run_minikab(armstice::arch::a64fx(), cfg).seconds,
                          0)});
        out += t.render() + "(paper: 1182 s — without the concurrency cap one core "
               "would see the whole CMG's HBM bandwidth)\n\n";
    }

    {
        Table t("Ablation — Table III single-node HPCG (GFLOP/s)");
        t.header({"Model", "A64FX", "EPCC NGIO"});
        auto run = [](const ModelKnobs& knobs) {
            armstice::apps::HpcgConfig cfg;
            cfg.knobs = knobs;
            const double a = armstice::apps::run_hpcg(armstice::arch::a64fx(), 1, cfg)
                                 .res.gflops;
            const double n = armstice::apps::run_hpcg(armstice::arch::ngio(), 1, cfg)
                                 .res.gflops;
            return std::pair<double, double>{a, n};
        };
        const auto full = run({});
        ModelKnobs k;
        k.gather_penalty = false;
        k.core_bw_cap = false;
        const auto nogather = run(k);
        t.row({"full model", Table::num(full.first), Table::num(full.second)});
        t.row({"no gather penalty/caps", Table::num(nogather.first),
               Table::num(nogather.second)});
        out += t.render() + "(paper: 38.26 / 26.16)\n\n";
    }

    {
        Table t("Ablation — capacity rule");
        t.header({"Experiment", "Full model", "No capacity rule"});
        armstice::apps::CosaConfig cosa;
        cosa.nodes = 1;
        const auto with_cap = armstice::apps::run_cosa(armstice::arch::a64fx(), cosa);
        // The capacity rule lives in the placement check; emulate "no rule"
        // by extrapolating a 1-node runtime from the feasible 2-node run.
        armstice::apps::CosaConfig big = cosa;
        big.nodes = 2;
        const auto two = armstice::apps::run_cosa(armstice::arch::a64fx(), big);
        t.row({"COSA on 1 A64FX node",
               with_cap.feasible ? Table::num(with_cap.seconds, 1) : "infeasible (OOM)",
               two.feasible ? Table::num(two.seconds * 2.0, 1) + " (extrapolated)"
                            : "-"});
        out += t.render() + "(paper: the case does not fit one 32 GB node)\n\n";
    }

    {
        Table t("Ablation — Table VII Nekbone 16-node parallel efficiency");
        t.header({"Model", "A64FX PE(16)"});
        auto pe = [](double noise) {
            armstice::apps::NekboneConfig c1 = armstice::apps::nekbone_node_config(
                armstice::arch::a64fx(), 1, false);
            armstice::apps::NekboneConfig c16 = armstice::apps::nekbone_node_config(
                armstice::arch::a64fx(), 16, false);
            c1.knobs.os_noise = noise;
            c16.knobs.os_noise = noise;
            const double t1 =
                armstice::apps::run_nekbone(armstice::arch::a64fx(), c1).seconds;
            const double t16 =
                armstice::apps::run_nekbone(armstice::arch::a64fx(), c16).seconds;
            return t1 / t16;
        };
        t.row({"full model", Table::num(pe(0.012))});
        t.row({"no OS noise", Table::num(pe(0.0))});
        out += t.render() + "(paper: 0.96)\n";
    }

    return out;
}

void BM_AblationHpcg(benchmark::State& state) {
    armstice::apps::HpcgConfig cfg;
    cfg.knobs.contention = state.range(0) != 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            armstice::apps::run_hpcg(armstice::arch::a64fx(), 1, cfg).res.gflops);
    }
}
BENCHMARK(BM_AblationHpcg)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    armstice::benchx::init(argc, argv);
    return armstice::benchx::run(argc, argv, ablate()); }
