// armstice_serve — the armstice-as-a-service daemon (DESIGN.md §14).
//
// Default mode: bind a unix and/or TCP endpoint and serve sweep / figure /
// scorecard / stats requests until SIGINT/SIGTERM. --smoke runs the
// self-test the CI workflow gates on: an in-process server, a burst of
// concurrent identical sweeps from a small client fleet, and hard checks
// that (a) every client streamed complete bit-identical results, (b) the
// request-coalescing counter engaged (> 0), and (c) exactly one underlying
// computation ran per distinct point key.

#include "core/cache.hpp"
#include "core/runner.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace {

namespace serve = armstice::serve;
namespace util = armstice::util;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// The smoke workload: a few distinct minikab/nekbone points, cheap enough
/// that the whole smoke finishes in seconds.
std::vector<serve::PointSpec> smoke_specs() {
    std::vector<serve::PointSpec> specs;
    for (int nodes = 1; nodes <= 2; ++nodes) {
        serve::PointSpec p;
        p.app = "minikab";
        p.system = "A64FX";
        p.nodes = nodes;
        p.ranks = 8 * nodes;
        p.threads = 1;
        p.config = "rows=200000;nnz=3000000;iters=40";
        specs.push_back(p);
    }
    for (int nodes = 1; nodes <= 2; ++nodes) {
        serve::PointSpec p;
        p.app = "nekbone";
        p.system = "A64FX";
        p.nodes = nodes;
        p.ranks = 8 * nodes;
        p.config = "elems=8;nx1=8;iters=20";
        specs.push_back(p);
    }
    return specs;
}

int run_smoke() {
    const std::string sock_path =
        (std::filesystem::temp_directory_path() /
         util::format("armstice-serve-smoke-%d.sock", static_cast<int>(::getpid())))
            .string();
    serve::ServerConfig cfg;
    cfg.unix_path = sock_path;
    cfg.workers = 2;
    cfg.max_inflight = 64;
    serve::Server server(cfg);
    server.start();

    const std::vector<serve::PointSpec> specs = smoke_specs();
    constexpr int kClients = 8;
    std::vector<serve::Client::SweepReply> replies(kClients);
    std::vector<std::string> failures(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                serve::Client client = serve::Client::connect_unix_path(sock_path);
                replies[c] = client.sweep(specs);
            } catch (const std::exception& e) {
                failures[c] = e.what();
            }
        });
    }
    for (auto& t : clients) t.join();

    int rc = 0;
    for (int c = 0; c < kClients; ++c) {
        if (!failures[c].empty()) {
            std::fprintf(stderr, "smoke: client %d failed: %s\n", c,
                         failures[c].c_str());
            rc = 1;
            continue;
        }
        const auto& reply = replies[c];
        if (reply.retry || reply.points.size() != specs.size()) {
            std::fprintf(stderr, "smoke: client %d got %zu/%zu points%s\n", c,
                         reply.points.size(), specs.size(),
                         reply.retry ? " (RETRY_LATER)" : "");
            rc = 1;
            continue;
        }
        for (std::size_t i = 0; i < specs.size(); ++i) {
            if (!reply.points[i].ok) {
                std::fprintf(stderr, "smoke: client %d point %zu errored: %s\n", c,
                             i, reply.points[i].payload.c_str());
                rc = 1;
            } else if (reply.points[i].payload != replies[0].points[i].payload) {
                std::fprintf(stderr,
                             "smoke: client %d point %zu diverges from client 0 "
                             "(serving is not bit-identical)\n",
                             c, i);
                rc = 1;
            }
        }
    }

    const serve::StatsResult stats = server.stats_snapshot();
    std::printf(
        "[smoke] clients=%d points/request=%zu | computed=%llu coalesced=%llu "
        "cache_hits=%llu retries=%llu\n",
        kClients, specs.size(), static_cast<unsigned long long>(stats.computed),
        static_cast<unsigned long long>(stats.coalesced),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.retries));
    if (stats.coalesced == 0) {
        std::fprintf(stderr,
                     "smoke: coalesce counter is 0 — concurrent identical sweeps "
                     "did not share computations\n");
        rc = 1;
    }
    if (stats.computed != specs.size()) {
        std::fprintf(stderr,
                     "smoke: %llu computations for %zu distinct keys (expected "
                     "exactly one per key)\n",
                     static_cast<unsigned long long>(stats.computed),
                     specs.size());
        rc = 1;
    }
    server.stop();
    std::printf("[smoke] %s\n", rc == 0 ? "OK" : "FAILED");
    return rc;
}

} // namespace

int main(int argc, char** argv) {
    // --jobs / --cache-dir first, like every bench binary (the figure and
    // scorecard artefacts behind serve requests sweep through SweepRunner).
    try {
        armstice::core::set_default_jobs(
            util::jobs_from_args(argc, argv, armstice::core::default_jobs()));
        armstice::core::set_cache_dir(util::cache_dir_from_args(argc, argv));
    } catch (const util::Error& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }

    util::Cli cli("armstice_serve",
                  "Concurrent sweep server: shared cache, request coalescing, "
                  "bounded admission (DESIGN.md §14).");
    cli.option("unix", "unix-domain socket path to listen on", "");
    cli.option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "-1");
    cli.option("workers", "compute threads", "4");
    cli.option("max-inflight", "admission bound on fresh computations", "256");
    cli.option("max-sessions", "concurrent client connections", "64");
    cli.flag("smoke", "run the in-process self-test and exit");
    try {
        cli.parse(argc, argv);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "%s\n%s", e.what(), cli.usage().c_str());
        return 2;
    }

    if (cli.has("smoke")) {
        try {
            return run_smoke();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "smoke: %s\n", e.what());
            return 1;
        }
    }

    serve::ServerConfig cfg;
    cfg.unix_path = cli.get("unix");
    cfg.tcp_port = static_cast<int>(cli.get_long("port"));
    cfg.workers = static_cast<int>(cli.get_long("workers"));
    cfg.max_inflight = static_cast<std::size_t>(cli.get_long("max-inflight"));
    cfg.max_sessions = static_cast<int>(cli.get_long("max-sessions"));
    if (cfg.unix_path.empty() && cfg.tcp_port < 0) {
        cfg.tcp_port = 0;  // default: ephemeral TCP, port printed below
    }

    serve::Server server(cfg);
    try {
        server.start();
    } catch (const util::Error& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
    if (!server.unix_path().empty()) {
        std::printf("[serve] listening on unix:%s\n", server.unix_path().c_str());
    }
    if (server.tcp_port() >= 0) {
        std::printf("[serve] listening on tcp:127.0.0.1:%d\n", server.tcp_port());
    }
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    const serve::StatsResult stats = server.stats_snapshot();
    std::printf(
        "[serve] shutting down | requests=%llu points=%llu cache_hits=%llu "
        "coalesced=%llu computed=%llu retries=%llu qps=%.1f\n",
        static_cast<unsigned long long>(stats.requests),
        static_cast<unsigned long long>(stats.points),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.coalesced),
        static_cast<unsigned long long>(stats.computed),
        static_cast<unsigned long long>(stats.retries), stats.qps);
    server.stop();
    return 0;
}
