// armstice_serve_load — load driver for the serving daemon (DESIGN.md §14).
//
// Spins up an in-process serve::Server on a private unix socket, then hammers
// it with N client threads each issuing M sweep requests drawn
// deterministically (seeded xoshiro) from a pool of K distinct point keys.
// Because requests overlap heavily, the run exercises all three service
// paths — fresh computation, request coalescing, and cache hits — and the
// numbers recorded in BENCH_serve.json are the throughput of the full stack:
// socket framing + coalescing map + SweepRunner + result encoding.
//
// Every client verifies its streams: all points ok, and byte-identical to a
// reference reply for the same key set. The driver exits non-zero on any
// divergence, so the bench doubles as a correctness soak.

#include "core/cache.hpp"
#include "core/runner.hpp"
#include "serve/catalog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fileio.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace {

namespace serve = armstice::serve;
namespace util = armstice::util;

/// K distinct point keys: minikab and nekbone configs laddered over size and
/// node count. Deterministic — the pool depends only on `keys`.
std::vector<serve::PointSpec> build_pool(int keys) {
    std::vector<serve::PointSpec> pool;
    pool.reserve(static_cast<std::size_t>(keys));
    for (int k = 0; k < keys; ++k) {
        serve::PointSpec p;
        p.system = "A64FX";
        p.nodes = 1 + k % 4;
        p.ranks = 8 * p.nodes;
        if (k % 2 == 0) {
            p.app = "minikab";
            p.threads = 1;
            p.config = util::format("rows=%d;nnz=%d;iters=%d", 150000 + 10000 * (k / 2),
                                    2000000 + 100000 * (k / 2), 30 + 5 * (k % 3));
        } else {
            p.app = "nekbone";
            p.config = util::format("elems=%d;nx1=8;iters=%d", 6 + k / 2, 15 + 5 * (k % 3));
        }
        pool.push_back(p);
    }
    return pool;
}

struct ClientTally {
    std::uint64_t requests = 0;
    std::uint64_t points = 0;
    std::uint64_t retries = 0;
    std::string failure;
};

} // namespace

int main(int argc, char** argv) {
    try {
        armstice::core::set_default_jobs(
            util::jobs_from_args(argc, argv, armstice::core::default_jobs()));
        armstice::core::set_cache_dir(util::cache_dir_from_args(argc, argv));
    } catch (const util::Error& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    }

    util::Cli cli("armstice_serve_load",
                  "Load driver for armstice_serve: concurrent clients, "
                  "overlapping keys, records BENCH_serve.json.");
    cli.option("clients", "concurrent client threads", "8");
    cli.option("requests", "sweep requests per client", "25");
    cli.option("keys", "distinct point keys in the pool", "12");
    cli.option("points", "points per sweep request", "4");
    cli.option("workers", "server compute threads", "4");
    cli.option("max-inflight", "server admission bound", "256");
    cli.option("seed", "base RNG seed", "42");
    cli.option("json", "output path ('' = no file)", "BENCH_serve.json");
    try {
        cli.parse(argc, argv);
    } catch (const util::Error& e) {
        std::fprintf(stderr, "%s\n%s", e.what(), cli.usage().c_str());
        return 2;
    }

    const int clients = static_cast<int>(cli.get_long("clients"));
    const int requests = static_cast<int>(cli.get_long("requests"));
    const int keys = static_cast<int>(cli.get_long("keys"));
    const int points = static_cast<int>(cli.get_long("points"));
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_long("seed"));
    if (clients < 1 || requests < 1 || keys < 1 || points < 1) {
        std::fprintf(stderr, "armstice_serve_load: all sizes must be >= 1\n");
        return 2;
    }

    const std::vector<serve::PointSpec> pool = build_pool(keys);

    // Reference payload per pool key, computed through the batch path once so
    // every served byte can be checked against SweepRunner ground truth.
    std::vector<std::string> reference(pool.size());
    {
        const std::vector<armstice::apps::AppResult> batch =
            serve::batch_eval(pool, armstice::core::default_jobs());
        for (std::size_t i = 0; i < pool.size(); ++i) {
            reference[i] = serve::encode_result(batch[i]);
        }
    }

    const std::string sock_path =
        (std::filesystem::temp_directory_path() /
         util::format("armstice-serve-load-%d.sock", static_cast<int>(::getpid())))
            .string();
    serve::ServerConfig cfg;
    cfg.unix_path = sock_path;
    cfg.workers = static_cast<int>(cli.get_long("workers"));
    cfg.max_inflight = static_cast<std::size_t>(cli.get_long("max-inflight"));
    cfg.max_sessions = clients + 4;
    serve::Server server(cfg);
    server.start();

    std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
    const auto t0 = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(clients));
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                ClientTally& tally = tallies[static_cast<std::size_t>(c)];
                try {
                    serve::Client client = serve::Client::connect_unix_path(sock_path);
                    util::Rng rng(seed + static_cast<std::uint64_t>(c) * 0x9e3779b9ULL);
                    for (int r = 0; r < requests; ++r) {
                        std::vector<serve::PointSpec> specs;
                        std::vector<std::size_t> picked;
                        specs.reserve(static_cast<std::size_t>(points));
                        for (int p = 0; p < points; ++p) {
                            const std::size_t k =
                                static_cast<std::size_t>(rng.next_below(pool.size()));
                            picked.push_back(k);
                            specs.push_back(pool[k]);
                        }
                        const serve::Client::SweepReply reply = client.sweep(specs);
                        if (reply.retry) {
                            ++tally.retries;
                            --r;  // overload backoff: retry the same request
                            std::this_thread::sleep_for(std::chrono::milliseconds(5));
                            continue;
                        }
                        ++tally.requests;
                        if (reply.points.size() != specs.size()) {
                            tally.failure = util::format("short stream: %zu/%zu points",
                                                         reply.points.size(), specs.size());
                            return;
                        }
                        for (std::size_t i = 0; i < specs.size(); ++i) {
                            ++tally.points;
                            if (!reply.points[i].ok) {
                                tally.failure = "point error: " + reply.points[i].payload;
                                return;
                            }
                            if (reply.points[i].payload != reference[picked[i]]) {
                                tally.failure = util::format(
                                    "served bytes diverge from batch SweepRunner for "
                                    "pool key %zu",
                                    picked[i]);
                                return;
                            }
                        }
                    }
                } catch (const std::exception& e) {
                    tally.failure = e.what();
                }
            });
        }
        for (auto& t : threads) t.join();
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    int rc = 0;
    std::uint64_t total_requests = 0, total_points = 0, total_retries = 0;
    for (int c = 0; c < clients; ++c) {
        const ClientTally& tally = tallies[static_cast<std::size_t>(c)];
        if (!tally.failure.empty()) {
            std::fprintf(stderr, "client %d failed: %s\n", c, tally.failure.c_str());
            rc = 1;
        }
        total_requests += tally.requests;
        total_points += tally.points;
        total_retries += tally.retries;
    }

    const serve::StatsResult stats = server.stats_snapshot();
    server.stop();

    const double qps = wall_s > 0 ? static_cast<double>(total_requests) / wall_s : 0.0;
    const double pps = wall_s > 0 ? static_cast<double>(total_points) / wall_s : 0.0;
    const double hit_rate =
        stats.points > 0 ? static_cast<double>(stats.cache_hits) / static_cast<double>(stats.points)
                         : 0.0;
    const double coalesce_rate =
        stats.points > 0 ? static_cast<double>(stats.coalesced) / static_cast<double>(stats.points)
                         : 0.0;

    std::printf(
        "[serve-load] clients=%d requests=%llu points=%llu wall=%.3fs | "
        "qps=%.1f points/s=%.1f\n",
        clients, static_cast<unsigned long long>(total_requests),
        static_cast<unsigned long long>(total_points), wall_s, qps, pps);
    std::printf(
        "[serve-load] computed=%llu (distinct keys=%d) cache_hits=%llu (%.1f%%) "
        "coalesced=%llu (%.1f%%) retries=%llu rss=%.1fMiB\n",
        static_cast<unsigned long long>(stats.computed), keys,
        static_cast<unsigned long long>(stats.cache_hits), 100.0 * hit_rate,
        static_cast<unsigned long long>(stats.coalesced), 100.0 * coalesce_rate,
        static_cast<unsigned long long>(total_retries),
        static_cast<double>(stats.rss_bytes) / (1024.0 * 1024.0));

    if (stats.computed > static_cast<std::uint64_t>(keys)) {
        std::fprintf(stderr,
                     "serve-load: %llu computations for %d distinct keys — "
                     "coalescing failed to dedup\n",
                     static_cast<unsigned long long>(stats.computed), keys);
        rc = 1;
    }

    const std::string json_path = cli.get("json");
    if (rc == 0 && !json_path.empty()) {
        std::string json = "{\n";
        json += "  \"bench\": \"serve\",\n";
        json += util::format("  \"clients\": %d,\n", clients);
        json += util::format("  \"requests_per_client\": %d,\n", requests);
        json += util::format("  \"distinct_keys\": %d,\n", keys);
        json += util::format("  \"points_per_request\": %d,\n", points);
        json += util::format("  \"workers\": %d,\n", cfg.workers);
        json += util::format("  \"wall_seconds\": %.6f,\n", wall_s);
        json += util::format("  \"requests\": %llu,\n",
                             static_cast<unsigned long long>(total_requests));
        json += util::format("  \"points_served\": %llu,\n",
                             static_cast<unsigned long long>(total_points));
        json += util::format("  \"qps\": %.1f,\n", qps);
        json += util::format("  \"points_per_sec\": %.1f,\n", pps);
        json += util::format("  \"computed\": %llu,\n",
                             static_cast<unsigned long long>(stats.computed));
        json += util::format("  \"cache_hits\": %llu,\n",
                             static_cast<unsigned long long>(stats.cache_hits));
        json += util::format("  \"cache_hit_rate\": %.4f,\n", hit_rate);
        json += util::format("  \"coalesced\": %llu,\n",
                             static_cast<unsigned long long>(stats.coalesced));
        json += util::format("  \"coalesce_rate\": %.4f,\n", coalesce_rate);
        json += util::format("  \"retries\": %llu,\n",
                             static_cast<unsigned long long>(total_retries));
        json += util::format("  \"rss_bytes\": %llu,\n",
                             static_cast<unsigned long long>(stats.rss_bytes));
        json += "  \"bit_identical_to_batch\": true\n";
        json += "}\n";
        if (!util::write_file_atomic(json_path, json)) {
            std::fprintf(stderr, "serve-load: failed to write %s\n",
                         json_path.c_str());
            return 1;
        }
        std::printf("[serve-load] wrote %s\n", json_path.c_str());
    }
    return rc;
}
