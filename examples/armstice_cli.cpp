// armstice_cli — a command-line driver for the simulator. Subcommands:
//
//   example_armstice_cli systems
//   example_armstice_cli run <app> --system <name> [--nodes N] [--ranks R]
//                        [--threads T] [--fastmath] [--optimized]
//   example_armstice_cli sweep <app> --system <name> [--max-nodes N]
//
// Apps: hpcg, minikab, nekbone, cosa, castep, opensbli.

#include "apps/castep/castep.hpp"
#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "apps/opensbli/opensbli.hpp"
#include "arch/power.hpp"
#include "core/report.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

#include <cstdio>

namespace {

using namespace armstice;

struct RunSummary {
    apps::AppResult res;
    std::string metric;
};

RunSummary run_app(const std::string& app, const arch::SystemSpec& sys, int nodes,
                   int ranks, int threads, bool fastmath, bool optimized) {
    RunSummary out;
    if (app == "hpcg") {
        apps::HpcgConfig cfg;
        cfg.optimized = optimized;
        const auto r = apps::run_hpcg(sys, nodes, cfg);
        out.res = r.res;
        out.metric = util::format("%.2f GFLOP/s (%.1f%% of peak)", r.res.gflops,
                                  r.pct_peak);
    } else if (app == "minikab") {
        apps::MinikabConfig cfg;
        cfg.nodes = nodes;
        cfg.ranks = ranks > 0 ? ranks : nodes * sys.node.cores() / threads;
        cfg.threads = threads;
        out.res = apps::run_minikab(sys, cfg);
        out.metric = util::format("%.1f s solver runtime", out.res.seconds);
    } else if (app == "nekbone") {
        auto cfg = apps::nekbone_node_config(sys, nodes, fastmath);
        if (ranks > 0) cfg.ranks = ranks;
        out.res = apps::run_nekbone(sys, cfg);
        out.metric = util::format("%.2f GFLOP/s", out.res.gflops);
    } else if (app == "cosa") {
        apps::CosaConfig cfg;
        cfg.nodes = nodes;
        out.res = apps::run_cosa(sys, cfg);
        out.metric = util::format("%.1f s for 100 iterations", out.res.seconds);
    } else if (app == "castep") {
        apps::CastepConfig cfg;
        cfg.nodes = nodes;
        cfg.ranks = ranks > 0 ? ranks : nodes * sys.node.cores();
        cfg.threads = threads;
        const auto r = apps::run_castep(sys, cfg);
        out.res = r.res;
        out.metric = util::format("%.3f SCF cycles/s", r.scf_cycles_per_s);
    } else if (app == "opensbli") {
        apps::OpensbliConfig cfg;
        cfg.nodes = nodes;
        if (ranks > 0) cfg.ranks = ranks;
        out.res = apps::run_opensbli(sys, cfg);
        out.metric = util::format("%.2f s total runtime", out.res.seconds);
    } else {
        throw util::Error("unknown app '" + app +
                          "' (hpcg|minikab|nekbone|cosa|castep|opensbli)");
    }
    return out;
}

int cmd_run(util::Cli& cli) {
    const auto& sys = arch::system_by_name(cli.get("system"));
    const int nodes = static_cast<int>(cli.get_long("nodes"));
    const auto summary =
        run_app(cli.positionals()[1], sys, nodes,
                cli.has("ranks") ? static_cast<int>(cli.get_long("ranks")) : 0,
                static_cast<int>(cli.get_long("threads")), cli.has("fastmath"),
                cli.has("optimized"));
    if (!summary.res.feasible) {
        std::printf("infeasible: %s\n", summary.res.note.c_str());
        return 1;
    }
    std::printf("%s on %s, %d node(s): %s\n", cli.positionals()[1].c_str(),
                sys.name.c_str(), nodes, summary.metric.c_str());
    std::printf("  compute %.3f s | recv wait %.3f s | collectives %.3f s "
                "(per-rank means)\n",
                summary.res.run.mean_compute(), summary.res.run.mean_recv_wait(),
                summary.res.run.mean_collective_wait());
    const double gfw = arch::gflops_per_watt(sys, summary.res.run.total_flops,
                                             summary.res.run.mean_compute(),
                                             summary.res.seconds, nodes);
    std::printf("  modelled energy efficiency: %.3f GFLOPs/W\n", gfw);
    return 0;
}

int cmd_sweep(util::Cli& cli) {
    const auto& sys = arch::system_by_name(cli.get("system"));
    const int max_nodes = static_cast<int>(cli.get_long("max-nodes"));
    util::Table t(cli.positionals()[1] + " on " + sys.name + " (node sweep)");
    t.header({"Nodes", "Result", "Seconds"});
    for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
        const auto summary = run_app(cli.positionals()[1], sys, nodes, 0,
                                     static_cast<int>(cli.get_long("threads")),
                                     cli.has("fastmath"), cli.has("optimized"));
        t.row({std::to_string(nodes),
               summary.res.feasible ? summary.metric : "infeasible (memory)",
               summary.res.feasible ? util::Table::num(summary.res.seconds, 3) : "-"});
    }
    t.print();
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    using namespace armstice;
    util::Cli cli("example_armstice_cli",
                  "drive the armstice simulator from the command line");
    cli.positional("command", "systems | run <app> | sweep <app>")
        .option("system", "system name from Table I", "A64FX")
        .option("nodes", "node count", "1")
        .option("max-nodes", "sweep upper bound", "16")
        .option("ranks", "MPI ranks (default: app-specific)")
        .option("threads", "OpenMP threads per rank", "1")
        .flag("fastmath", "build with -Kfast/-ffast-math (nekbone)")
        .flag("optimized", "vendor-optimised variant (hpcg)")
        .flag("help", "show usage");

    try {
        cli.parse(argc, argv);
        if (cli.has("help") || cli.positionals().empty()) {
            std::fputs(cli.usage().c_str(), stdout);
            return cli.positionals().empty() && !cli.has("help") ? 1 : 0;
        }
        const std::string& cmd = cli.positionals()[0];
        if (cmd == "systems") {
            std::fputs(core::render_system_catalog().c_str(), stdout);
            return 0;
        }
        ARMSTICE_CHECK(cli.positionals().size() >= 2,
                       "run/sweep need an app name\n" + cli.usage());
        if (cmd == "run") return cmd_run(cli);
        if (cmd == "sweep") return cmd_sweep(cli);
        throw util::Error("unknown command '" + cmd + "'\n" + cli.usage());
    } catch (const util::Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
