// Example: export a simulated execution timeline as Chrome-tracing JSON
// (open chrome://tracing or https://ui.perfetto.dev and load the file).
//
// The scenario is a deliberately imbalanced CG-like loop on one A64FX node:
// one CMG's ranks get 30% more work, so the trace shows the classic
// "staircase into the allreduce" pattern every HPC profiler user knows.

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "simmpi/minimpi.hpp"

#include <cstdio>

int main(int argc, char** argv) {
    using namespace armstice;
    const std::string path = argc > 1 ? argv[1] : "timeline.json";

    const auto& sys = arch::a64fx();
    const int ranks = 48;
    simmpi::ProgramSet ps(ranks);
    for (int iter = 0; iter < 5; ++iter) {
        ps.compute_by_rank([&](int r) {
            arch::ComputePhase p;
            p.label = "spmv";
            p.flops = 2e8;
            p.main_bytes = 1.2e8 * (r < 12 ? 1.3 : 1.0);  // CMG 0 overloaded
            p.pattern = arch::MemPattern::gather;
            return p;
        });
        ps.allreduce(8);
    }

    auto placement = sim::Placement::block(sys.node, 1, ranks, 1);
    const sim::Engine engine(sys, std::move(placement), 0.62);
    sim::Trace trace;
    const auto result = engine.run(ps.take(), &trace);

    trace.write_chrome_json(path);
    std::printf("simulated %d ranks for %.3f s; wrote %zu spans to %s\n", ranks,
                result.makespan, trace.size(), path.c_str());
    std::printf("  compute      %7.3f rank-seconds\n",
                trace.total_seconds(sim::SpanKind::compute));
    std::printf("  collectives  %7.3f rank-seconds (the imbalance bill)\n",
                trace.total_seconds(sim::SpanKind::collective));
    std::printf("Open the file in chrome://tracing — ranks 0-11 (the overloaded\n"
                "CMG) compute while ranks 12-47 wait at every allreduce.\n");
    return 0;
}
