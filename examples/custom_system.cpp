// Example: evaluate a hypothetical next-generation processor with the same
// model the paper reproduction uses. We sketch an "A64FX-NEXT" — more cores,
// higher clock, HBM3-class bandwidth — and ask how the paper's benchmarks
// would have looked on it.

#include "apps/hpcg/hpcg.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "arch/system.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

#include <cstdio>

int main() {
    using namespace armstice;
    using namespace armstice::util;

    // Start from the real A64FX and upgrade it.
    arch::SystemSpec next = arch::a64fx();
    next.name = "A64FX";  // keep the calibration lookups (same residuals)
    auto& cpu = next.node.cpu;
    cpu.name = "A64FX-NEXT (hypothetical)";
    cpu.freq_hz = 2.6 * GHz;
    cpu.cores_per_group = 16;                    // 64 cores per node
    cpu.domain.bandwidth = 320.0 * GB_per_s;     // HBM3-class per CMG
    cpu.domain.capacity_bytes = 16.0 * GiB;      // 64 GB per node
    cpu.core_stream_bw = 70.0 * GB_per_s;
    cpu.core_gather_bw = 11.0 * GB_per_s;
    next.table_peak_gflops = next.node.peak_gflops();

    std::puts("What-if: the paper's benchmarks on a hypothetical A64FX-NEXT\n");

    Table t("Single-node results, baseline A64FX vs A64FX-NEXT (model)");
    t.header({"Benchmark", "A64FX", "A64FX-NEXT", "speedup"});

    {
        const auto base = apps::run_hpcg(arch::a64fx(), 1);
        const auto up = apps::run_hpcg(next, 1);
        t.row({"HPCG (GFLOP/s)", Table::num(base.res.gflops), Table::num(up.res.gflops),
               Table::num(up.res.gflops / base.res.gflops)});
    }
    {
        const auto base = apps::run_nekbone(
            arch::a64fx(), apps::nekbone_node_config(arch::a64fx(), 1, true));
        const auto up =
            apps::run_nekbone(next, apps::nekbone_node_config(next, 1, true));
        t.row({"Nekbone fast-math (GFLOP/s)", Table::num(base.gflops),
               Table::num(up.gflops), Table::num(up.gflops / base.gflops)});
    }
    t.print();

    std::puts("\nDoubling node memory also changes feasibility: with 64 GB the");
    std::puts("COSA case from Fig 4 would fit on a single node (32 GB did not).");
    return 0;
}
