// Quickstart: simulate HPCG on two of the paper's systems and print the
// paper-vs-model comparison for the headline single-node result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include "apps/hpcg/hpcg.hpp"
#include "arch/system.hpp"
#include "util/table.hpp"

#include <cstdio>

int main() {
    using namespace armstice;

    std::puts("armstice quickstart — single-node HPCG on A64FX vs Cascade Lake\n");

    util::Table table("HPCG --nx=80 --ny=80 --nz=80, one fully populated node");
    table.header({"System", "GFLOP/s (model)", "% of peak", "paper value"});

    for (const auto* name : {"A64FX", "EPCC NGIO"}) {
        const auto& sys = arch::system_by_name(name);
        const auto out = apps::run_hpcg(sys, /*nodes=*/1);
        table.row({sys.name, util::Table::num(out.res.gflops),
                   util::Table::num(out.pct_peak, 1),
                   sys.name == std::string("A64FX") ? "38.26" : "26.16"});
    }
    table.print();

    std::puts("\nWhere the time goes on the A64FX (per-phase compute seconds,");
    std::puts("summed over ranks):");
    const auto out = apps::run_hpcg(arch::a64fx(), 1);
    for (const auto& [label, seconds] : out.res.run.phase_compute) {
        std::printf("  %-14s %8.3f s\n", label.c_str(), seconds);
    }
    return 0;
}
