// Example: "port" a new application onto the simulator. This is what a user
// does to ask "how would my code behave on the paper's five machines?" —
// describe the per-iteration work as counted phases, express the
// communication with MiniMpi, and sweep systems and node counts.
//
// The demo app is a 2D weather-advection kernel: one stencil sweep + one
// halo exchange + one reduction per timestep.

#include "apps/common.hpp"
#include "arch/system.hpp"
#include "arch/toolchain.hpp"
#include "util/table.hpp"

#include <cstdio>

namespace {

armstice::apps::AppResult simulate_weather(const armstice::arch::SystemSpec& sys,
                                           int nodes) {
    using namespace armstice;

    const int ranks = nodes * sys.node.cores();
    const long grid = 4096;  // global 4096^2 cells, 60 doubles each
    const double cells_per_rank = static_cast<double>(grid) * grid / ranks;

    // One timestep of our app, per rank: a 9-point stencil update over the
    // local cells (exact counts!), then a halo swap, then a CFL reduction.
    arch::ComputePhase sweep;
    sweep.label = "advection-sweep";
    sweep.flops = 85.0 * cells_per_rank;           // 9-pt update + limiter
    sweep.main_bytes = 60.0 * 8.0 * cells_per_rank;
    sweep.pattern = arch::MemPattern::stream;
    sweep.vector_fraction = 0.9;
    sweep.efficiency = 0.8;

    const auto dims = simmpi::dims_create(ranks, 2);
    const auto neighbors = simmpi::cart_neighbors(dims, /*periodic=*/true);
    const double halo_bytes = 8.0 * 60.0 * (grid / dims[0]);

    simmpi::ProgramSet ps(ranks);
    ps.mark("weather-step");
    for (int step = 0; step < 50; ++step) {
        ps.halo_exchange(neighbors, halo_bytes);
        ps.compute(sweep);
        ps.allreduce(8);  // CFL number
    }

    const double footprint = 60.0 * 8.0 * cells_per_rank + 100e6;
    const auto tc = arch::toolchain_for(sys.name, "custom-app");  // fallback
    return apps::run_on(sys, nodes, ranks, /*threads=*/1, tc.vec_quality,
                        std::move(ps), footprint);
}

} // namespace

int main() {
    using namespace armstice;

    std::puts("Porting a custom application across the paper's five systems\n");

    util::Table t("2D advection demo app, 50 timesteps (model)");
    t.header({"System", "1 node (s)", "4 nodes (s)", "scaling efficiency"});
    for (const auto& sys : arch::system_catalog()) {
        const auto one = simulate_weather(sys, 1);
        const auto four = simulate_weather(sys, 4);
        t.row({sys.name, util::Table::num(one.seconds, 3),
               util::Table::num(four.seconds, 3),
               util::Table::num(
                   apps::parallel_efficiency_strong(one.seconds, four.seconds, 4))});
    }
    t.print();

    std::puts("\nInterpretation: the bandwidth-hungry sweep favours the A64FX's");
    std::puts("HBM2 exactly as HPCG does in the paper; scaling efficiency tracks");
    std::puts("each machine's interconnect latency model.");
    return 0;
}
