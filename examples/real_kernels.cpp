// Example: run the *real* numerical kernels behind every application model —
// no simulation here, just the actual mathematics at laptop scale, with the
// exact operation counts the simulator prices.

#include "apps/hpcg/hpcg.hpp"
#include "apps/opensbli/opensbli.hpp"
#include "kern/fft/fft.hpp"
#include "kern/nek/spectral.hpp"

#include <cstdio>

int main() {
    using namespace armstice;

    std::puts("armstice real-kernel tour\n");

    // 1. The HPCG mathematics: multigrid-preconditioned CG on the 27-point
    //    operator (16^3 here instead of the paper's 80^3 per rank).
    {
        const auto res = apps::hpcg_reference(16, 3, 50);
        std::printf("mini-HPCG  : %d iterations, final rel. residual %.2e, "
                    "%.0f MFLOPs executed\n",
                    res.iterations, res.final_residual, res.counts.flops / 1e6);
    }

    // 2. The Nekbone mathematics: spectral-element CG with the GLL ax kernel.
    {
        const kern::NekMesh mesh(6, 8);
        std::vector<double> f(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
        mesh.mask(f);
        std::vector<double> u(f.size(), 0.0);
        const auto res = mesh.cg(f, u, 300);
        std::printf("nekbone CG : %d iterations, rel. residual %.2e "
                    "(ax kernel: %.0f KFLOPs/apply)\n",
                    res.iterations, res.final_residual,
                    kern::NekMesh::ax_flops(6, 8) / 1e3);
    }

    // 3. The CASTEP substrate: a 3D FFT round trip.
    {
        const int n = 32;
        std::vector<kern::cplx> field(static_cast<std::size_t>(n) * n * n,
                                      kern::cplx(1.0, -0.5));
        kern::OpCounts counts;
        kern::fft3d(field, n, &counts);
        kern::ifft3d(field, n, &counts);
        std::printf("3D FFT     : %d^3 round trip, %.1f MFLOPs, max drift %.1e\n", n,
                    counts.flops / 1e6, std::abs(field[0] - kern::cplx(1.0, -0.5)));
    }

    // 4. The OpenSBLI mathematics: the compressible Taylor-Green vortex.
    {
        const auto ref = apps::opensbli_reference(16, 20);
        std::printf("TGV solver : 20 RK3 steps on 16^3, mass drift %.1e, "
                    "KE %.4f -> %.4f\n",
                    ref.mass_drift, ref.ke_initial, ref.ke_final);
    }

    std::puts("\nEvery number above comes from executed mathematics; the "
              "simulator\nprices exactly these operation counts (see DESIGN.md).");
    return 0;
}
