#pragma once
// ELLPACK sparse format — the padded, vector-friendly layout SIMD/SVE
// machines prefer for SpMV (and the format the A64FX's own HPCG
// optimisations use). Provided alongside CSR so the format trade-off the
// paper's HPCG discussion implies can be studied directly
// (bench/ext_spmv_formats).

#include "kern/sparse/csr.hpp"

namespace armstice::kern {

class EllMatrix {
public:
    /// Convert from CSR; pads every row to the longest row's width.
    explicit EllMatrix(const CsrMatrix& csr);

    [[nodiscard]] long rows() const { return rows_; }
    [[nodiscard]] long cols() const { return cols_; }
    [[nodiscard]] int width() const { return width_; }
    /// Stored entries including padding.
    [[nodiscard]] long padded_nnz() const { return rows_ * width_; }
    /// Real (unpadded) nonzeros.
    [[nodiscard]] long nnz() const { return nnz_; }
    /// Padding overhead ratio: padded / real entries (1.0 = no padding).
    [[nodiscard]] double padding_ratio() const {
        return nnz_ > 0 ? static_cast<double>(padded_nnz()) / nnz_ : 1.0;
    }

    /// y = A*x. Column-major (lane-major) storage: entry k of every row is
    /// contiguous, the layout that vectorises across rows.
    void spmv(std::span<const double> x, std::span<double> y,
              OpCounts* counts = nullptr) const;

private:
    long rows_ = 0;
    long cols_ = 0;
    long nnz_ = 0;
    int width_ = 0;
    std::vector<int> col_idx_;   ///< rows_ x width_, lane-major, -1 = padding
    std::vector<double> vals_;
};

} // namespace armstice::kern
