#include "kern/sparse/sell.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <numeric>

namespace armstice::kern {

SellMatrix::SellMatrix(const CsrMatrix& csr, int chunk, int sigma)
    : rows_(csr.rows()), cols_(csr.cols()), nnz_(csr.nnz()), chunk_(chunk),
      sigma_(sigma) {
    ARMSTICE_CHECK(chunk >= 1, "SELL chunk must be >= 1");
    ARMSTICE_CHECK(sigma >= chunk && sigma % chunk == 0,
                   "SELL sigma must be a multiple of the chunk size");

    const auto row_ptr = csr.row_ptr();
    auto row_len = [&](long r) {
        return static_cast<int>(row_ptr[static_cast<std::size_t>(r) + 1] -
                                row_ptr[static_cast<std::size_t>(r)]);
    };

    // Sort rows by descending length inside each sigma window.
    perm_.resize(static_cast<std::size_t>(rows_));
    std::iota(perm_.begin(), perm_.end(), 0L);
    for (long w = 0; w < rows_; w += sigma_) {
        const long end = std::min(rows_, w + sigma_);
        std::sort(perm_.begin() + w, perm_.begin() + end, [&](long a, long b) {
            return row_len(a) != row_len(b) ? row_len(a) > row_len(b) : a < b;
        });
    }

    // Lay out chunks.
    const long n_chunks = (rows_ + chunk_ - 1) / chunk_;
    chunk_start_.resize(static_cast<std::size_t>(n_chunks) + 1, 0);
    chunk_width_.resize(static_cast<std::size_t>(n_chunks), 0);
    for (long c = 0; c < n_chunks; ++c) {
        int width = 0;
        for (int lane = 0; lane < chunk_; ++lane) {
            const long r = c * chunk_ + lane;
            if (r < rows_) width = std::max(width, row_len(perm_[static_cast<std::size_t>(r)]));
        }
        chunk_width_[static_cast<std::size_t>(c)] = width;
        chunk_start_[static_cast<std::size_t>(c) + 1] =
            chunk_start_[static_cast<std::size_t>(c)] +
            static_cast<long>(width) * chunk_;
    }
    padded_nnz_ = chunk_start_[static_cast<std::size_t>(n_chunks)];

    col_idx_.assign(static_cast<std::size_t>(padded_nnz_), -1);
    vals_.assign(static_cast<std::size_t>(padded_nnz_), 0.0);
    const auto cols = csr.col_idx();
    const auto vals = csr.vals();
    for (long c = 0; c < n_chunks; ++c) {
        const long base = chunk_start_[static_cast<std::size_t>(c)];
        for (int lane = 0; lane < chunk_; ++lane) {
            const long slot = c * chunk_ + lane;
            if (slot >= rows_) continue;
            const long src = perm_[static_cast<std::size_t>(slot)];
            int k = 0;
            for (long e = row_ptr[static_cast<std::size_t>(src)];
                 e < row_ptr[static_cast<std::size_t>(src) + 1]; ++e, ++k) {
                const std::size_t idx =
                    static_cast<std::size_t>(base + static_cast<long>(k) * chunk_ + lane);
                col_idx_[idx] = cols[static_cast<std::size_t>(e)];
                vals_[idx] = vals[static_cast<std::size_t>(e)];
            }
        }
    }
}

void SellMatrix::spmv(std::span<const double> x, std::span<double> y,
                      OpCounts* counts) const {
    ARMSTICE_CHECK(x.size() == static_cast<std::size_t>(cols_), "sell spmv x size");
    ARMSTICE_CHECK(y.size() == static_cast<std::size_t>(rows_), "sell spmv y size");
    // Chunk-aligned row-block parallel (align = chunk_, so no chunk is ever
    // split across tasks); the per-task lane accumulator reproduces the
    // serial per-chunk accumulation order exactly.
    par::parallel_for(
        rows_,
        [&](par::Range rows) {
            std::vector<double> acc(static_cast<std::size_t>(chunk_));
            const long c0 = rows.begin / chunk_;
            const long c1 = (rows.end + chunk_ - 1) / chunk_;
            for (long c = c0; c < c1; ++c) {
                std::fill(acc.begin(), acc.end(), 0.0);
                const long base = chunk_start_[static_cast<std::size_t>(c)];
                const int width = chunk_width_[static_cast<std::size_t>(c)];
                for (int k = 0; k < width; ++k) {
                    for (int lane = 0; lane < chunk_; ++lane) {
                        const std::size_t idx = static_cast<std::size_t>(
                            base + static_cast<long>(k) * chunk_ + lane);
                        const int col = col_idx_[idx];
                        if (col >= 0) {
                            acc[static_cast<std::size_t>(lane)] +=
                                vals_[idx] * x[static_cast<std::size_t>(col)];
                        }
                    }
                }
                for (int lane = 0; lane < chunk_; ++lane) {
                    const long slot = c * chunk_ + lane;
                    if (slot < rows_) {
                        y[static_cast<std::size_t>(perm_[static_cast<std::size_t>(slot)])] =
                            acc[static_cast<std::size_t>(lane)];
                    }
                }
            }
        },
        /*align=*/chunk_);
    if (counts) {
        counts->flops += 2.0 * static_cast<double>(nnz_);
        counts->bytes_read += 12.0 * static_cast<double>(padded_nnz_) +
                              8.0 * static_cast<double>(rows_);
        counts->bytes_written += 8.0 * static_cast<double>(rows_);
    }
}

} // namespace armstice::kern
