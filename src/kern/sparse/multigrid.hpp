#pragma once
// Geometric multigrid on nested 3D grids with SymGS smoothing and injection
// transfer operators — exactly the HPCG preconditioner structure (4 levels,
// coarsening by 2 in each dimension).

#include "kern/sparse/csr.hpp"

#include <memory>

namespace armstice::kern {

class Multigrid {
public:
    /// Grid dims must be divisible by 2^(levels-1).
    Multigrid(int nx, int ny, int nz, int levels);

    [[nodiscard]] int levels() const { return static_cast<int>(grids_.size()); }
    [[nodiscard]] const CsrMatrix& matrix(int level) const;
    [[nodiscard]] long rows(int level) const;

    /// One V-cycle applying M^{-1} r -> x (x zero-initialised internally);
    /// usable directly as a kern::Preconditioner.
    void vcycle(std::span<const double> r, std::span<double> x,
                OpCounts* counts = nullptr) const;

private:
    struct Level {
        int nx, ny, nz;
        CsrMatrix a;
        std::vector<long> f2c;  ///< coarse row -> fine row (injection)
    };
    void cycle(int level, std::span<const double> r, std::span<double> x,
               OpCounts* counts) const;
    std::vector<Level> grids_;
};

} // namespace armstice::kern
