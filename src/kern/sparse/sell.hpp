#pragma once
// SELL-C-sigma sparse format (Kreutzer et al., SIAM J. Sci. Comput. 2014) —
// the sliced-ELLPACK layout designed for wide-SIMD architectures and used by
// A64FX-optimised sparse kernels: rows are sorted by length inside windows
// of sigma rows, grouped into chunks of C rows, and each chunk padded only
// to its own longest row. Compared to plain ELL this bounds padding while
// keeping the vectorisable chunk-column-major access.

#include "kern/sparse/csr.hpp"

namespace armstice::kern {

class SellMatrix {
public:
    /// Build from CSR. `chunk` (C) should match the SIMD width in rows
    /// (8 for SVE-512 doubles); `sigma` is the sorting-window size in rows
    /// (a multiple of C; larger windows reduce padding, perturb locality).
    explicit SellMatrix(const CsrMatrix& csr, int chunk = 8, int sigma = 64);

    [[nodiscard]] long rows() const { return rows_; }
    [[nodiscard]] long cols() const { return cols_; }
    [[nodiscard]] int chunk() const { return chunk_; }
    [[nodiscard]] int sigma() const { return sigma_; }
    [[nodiscard]] long nnz() const { return nnz_; }
    [[nodiscard]] long padded_nnz() const { return padded_nnz_; }
    [[nodiscard]] double padding_ratio() const {
        return nnz_ > 0 ? static_cast<double>(padded_nnz_) / nnz_ : 1.0;
    }

    /// y = A*x (handles the internal row permutation transparently).
    void spmv(std::span<const double> x, std::span<double> y,
              OpCounts* counts = nullptr) const;

private:
    long rows_ = 0;
    long cols_ = 0;
    long nnz_ = 0;
    long padded_nnz_ = 0;
    int chunk_;
    int sigma_;
    std::vector<long> perm_;         ///< storage row -> original row
    std::vector<long> chunk_start_;  ///< chunk -> offset into vals_/col_idx_
    std::vector<int> chunk_width_;   ///< chunk -> padded row length
    std::vector<int> col_idx_;       ///< -1 = padding
    std::vector<double> vals_;
};

} // namespace armstice::kern
