#pragma once
// Conjugate-gradient solver — the core of HPCG, minikab, Nekbone and the
// COSA smoother. Plain CG plus preconditioned CG with a caller-supplied
// preconditioner (HPCG uses the multigrid V-cycle, minikab runs plain).

#include "kern/sparse/csr.hpp"

#include <functional>

namespace armstice::kern {

struct CgOptions {
    int max_iters = 500;
    double rel_tol = 1e-8;
};

struct CgResult {
    int iterations = 0;
    bool converged = false;
    double final_residual = 0;      ///< ||b - Ax|| / ||b||
    std::vector<double> residuals;  ///< per-iteration relative residuals
    OpCounts counts;
};

/// Preconditioner: z <- M^{-1} r. Identity when empty.
using Preconditioner =
    std::function<void(std::span<const double> r, std::span<double> z, OpCounts*)>;

/// Solve A x = b; x holds the initial guess on entry, the solution on exit.
CgResult cg_solve(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                  const CgOptions& opts = {}, const Preconditioner& precond = {});

/// Exact per-iteration counts for plain CG on `a` (skeleton cross-checks):
/// 1 SpMV + 2 dots + 3 axpy-likes.
double cg_iter_flops(const CsrMatrix& a);
double cg_iter_bytes(const CsrMatrix& a);

/// Jacobi (diagonal) preconditioner for `a`: z = D^{-1} r. The matrix must
/// have nonzero diagonals. The returned callable references `a`'s diagonal
/// by value and is safe to outlive the call site.
Preconditioner jacobi_preconditioner(const CsrMatrix& a);

} // namespace armstice::kern
