#include "kern/sparse/cg.hpp"

#include "kern/dense/blas.hpp"
#include "kern/par.hpp"
#include "util/error.hpp"

#include <cmath>

namespace armstice::kern {

CgResult cg_solve(const CsrMatrix& a, std::span<const double> b, std::span<double> x,
                  const CgOptions& opts, const Preconditioner& precond) {
    ARMSTICE_CHECK(a.rows() == a.cols(), "cg needs a square matrix");
    const std::size_t n = static_cast<std::size_t>(a.rows());
    ARMSTICE_CHECK(b.size() == n && x.size() == n, "cg vector size mismatch");

    CgResult res;
    OpCounts& c = res.counts;

    std::vector<double> r(n), z(n), p(n), ap(n);
    a.spmv(x, ap, &c);
    par::parallel_for(static_cast<long>(n), [&](par::Range rr) {
        for (long i = rr.begin; i < rr.end; ++i) {
            const auto u = static_cast<std::size_t>(i);
            r[u] = b[u] - ap[u];
        }
    });
    c.flops += static_cast<double>(n);

    const double bnorm = norm2(b, &c);
    if (bnorm == 0.0) {
        std::fill(x.begin(), x.end(), 0.0);
        res.converged = true;
        return res;
    }

    auto apply_precond = [&](std::span<const double> rr, std::span<double> zz) {
        if (precond) {
            precond(rr, zz, &c);
        } else {
            std::copy(rr.begin(), rr.end(), zz.begin());
        }
    };

    apply_precond(r, z);
    std::copy(z.begin(), z.end(), p.begin());
    double rz = dot(r, z, &c);

    for (int it = 0; it < opts.max_iters; ++it) {
        a.spmv(p, ap, &c);
        const double pap = dot(p, ap, &c);
        ARMSTICE_CHECK(pap > 0.0, "cg: matrix not positive definite");
        const double alpha = rz / pap;
        axpy(alpha, p, x, &c);
        axpy(-alpha, ap, r, &c);

        const double rnorm = norm2(r, &c) / bnorm;
        res.residuals.push_back(rnorm);
        res.iterations = it + 1;
        if (rnorm < opts.rel_tol) {
            res.converged = true;
            break;
        }

        apply_precond(r, z);
        const double rz_new = dot(r, z, &c);
        const double beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta*p
        par::parallel_for(static_cast<long>(n), [&](par::Range rr) {
            for (long i = rr.begin; i < rr.end; ++i) {
                const auto u = static_cast<std::size_t>(i);
                p[u] = z[u] + beta * p[u];
            }
        });
        c.flops += 2.0 * static_cast<double>(n);
        c.bytes_read += 16.0 * static_cast<double>(n);
        c.bytes_written += 8.0 * static_cast<double>(n);
    }

    res.final_residual = res.residuals.empty() ? 0.0 : res.residuals.back();
    return res;
}

Preconditioner jacobi_preconditioner(const CsrMatrix& a) {
    auto diag = a.diagonal();
    for (double d : diag) {
        ARMSTICE_CHECK(d != 0.0, "jacobi preconditioner requires nonzero diagonal");
    }
    return [diag = std::move(diag)](std::span<const double> r, std::span<double> z,
                                    OpCounts* counts) {
        ARMSTICE_CHECK(r.size() == diag.size() && z.size() == diag.size(),
                       "jacobi size mismatch");
        par::parallel_for(static_cast<long>(diag.size()), [&](par::Range rr) {
            for (long i = rr.begin; i < rr.end; ++i) {
                const auto u = static_cast<std::size_t>(i);
                z[u] = r[u] / diag[u];
            }
        });
        if (counts) {
            counts->flops += static_cast<double>(diag.size());
            counts->bytes_read += 16.0 * static_cast<double>(diag.size());
            counts->bytes_written += 8.0 * static_cast<double>(diag.size());
        }
    };
}

double cg_iter_flops(const CsrMatrix& a) {
    const double n = static_cast<double>(a.rows());
    // spmv + 2 dots (pAp, r.r via norm) + axpy x2 + p-update.
    return a.spmv_flops() + 2.0 * (2.0 * n) + 2.0 * (2.0 * n) + 2.0 * n;
}

double cg_iter_bytes(const CsrMatrix& a) {
    const double n = static_cast<double>(a.rows());
    return a.spmv_bytes() + 2.0 * 16.0 * n + 2.0 * 24.0 * n + 24.0 * n;
}

} // namespace armstice::kern
