#include "kern/sparse/ell.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>

namespace armstice::kern {

EllMatrix::EllMatrix(const CsrMatrix& csr)
    : rows_(csr.rows()), cols_(csr.cols()), nnz_(csr.nnz()) {
    const auto row_ptr = csr.row_ptr();
    for (long i = 0; i < rows_; ++i) {
        width_ = std::max(width_, static_cast<int>(row_ptr[static_cast<std::size_t>(i) + 1] -
                                                   row_ptr[static_cast<std::size_t>(i)]));
    }
    col_idx_.assign(static_cast<std::size_t>(rows_) * width_, -1);
    vals_.assign(col_idx_.size(), 0.0);
    const auto cols = csr.col_idx();
    const auto vals = csr.vals();
    for (long i = 0; i < rows_; ++i) {
        int lane = 0;
        for (long k = row_ptr[static_cast<std::size_t>(i)];
             k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k, ++lane) {
            // Lane-major: all rows' lane-k entries are adjacent.
            const std::size_t idx =
                static_cast<std::size_t>(lane) * rows_ + static_cast<std::size_t>(i);
            col_idx_[idx] = cols[static_cast<std::size_t>(k)];
            vals_[idx] = vals[static_cast<std::size_t>(k)];
        }
    }
}

void EllMatrix::spmv(std::span<const double> x, std::span<double> y,
                     OpCounts* counts) const {
    ARMSTICE_CHECK(x.size() == static_cast<std::size_t>(cols_), "ell spmv x size");
    ARMSTICE_CHECK(y.size() == static_cast<std::size_t>(rows_), "ell spmv y size");
    // Row-block parallel, lane-outer within each block: every y[i]
    // accumulates its lanes in the same 0..width order as the serial sweep,
    // so the partitioning cannot change a single bit of the result.
    par::parallel_for(rows_, [&](par::Range rows) {
        for (long i = rows.begin; i < rows.end; ++i) y[static_cast<std::size_t>(i)] = 0.0;
        for (int lane = 0; lane < width_; ++lane) {
            const std::size_t base = static_cast<std::size_t>(lane) * rows_;
            for (long i = rows.begin; i < rows.end; ++i) {
                const int c = col_idx_[base + static_cast<std::size_t>(i)];
                if (c >= 0) {
                    y[static_cast<std::size_t>(i)] +=
                        vals_[base + static_cast<std::size_t>(i)] *
                        x[static_cast<std::size_t>(c)];
                }
            }
        }
    });
    if (counts) {
        // Padded entries cost memory traffic even though they contribute no
        // useful flops — the format's trade-off, made explicit here.
        counts->flops += 2.0 * static_cast<double>(nnz_);
        counts->bytes_read += 12.0 * static_cast<double>(padded_nnz()) +
                              8.0 * static_cast<double>(rows_);
        counts->bytes_written += 8.0 * static_cast<double>(rows_);
    }
}

} // namespace armstice::kern
