#include "kern/sparse/multigrid.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>

namespace armstice::kern {

Multigrid::Multigrid(int nx, int ny, int nz, int levels) {
    ARMSTICE_CHECK(levels >= 1, "multigrid needs >=1 level");
    int cx = nx, cy = ny, cz = nz;
    for (int l = 0; l < levels; ++l) {
        ARMSTICE_CHECK(cx >= 2 && cy >= 2 && cz >= 2,
                       "grid too small for requested multigrid depth");
        Level lvl{cx, cy, cz, poisson27(cx, cy, cz), {}};
        grids_.push_back(std::move(lvl));
        if (l + 1 < levels) {
            ARMSTICE_CHECK(cx % 2 == 0 && cy % 2 == 0 && cz % 2 == 0,
                           "grid dims must be divisible by 2 per level");
            const int fx = cx;
            const int fy = cy;
            cx /= 2;
            cy /= 2;
            cz /= 2;
            // Injection map: coarse (x,y,z) -> fine (2x,2y,2z).
            auto& f2c = grids_.back().f2c;
            f2c.resize(static_cast<std::size_t>(cx) * cy * cz);
            for (int z = 0; z < cz; ++z) {
                for (int y = 0; y < cy; ++y) {
                    for (int x = 0; x < cx; ++x) {
                        const long coarse = (static_cast<long>(z) * cy + y) * cx + x;
                        const long fine =
                            (static_cast<long>(2 * z) * fy + 2 * y) * fx + 2 * x;
                        f2c[static_cast<std::size_t>(coarse)] = fine;
                    }
                }
            }
        }
    }
}

const CsrMatrix& Multigrid::matrix(int level) const {
    ARMSTICE_CHECK(level >= 0 && level < levels(), "level out of range");
    return grids_[static_cast<std::size_t>(level)].a;
}

long Multigrid::rows(int level) const { return matrix(level).rows(); }

void Multigrid::vcycle(std::span<const double> r, std::span<double> x,
                       OpCounts* counts) const {
    std::fill(x.begin(), x.end(), 0.0);
    cycle(0, r, x, counts);
}

void Multigrid::cycle(int level, std::span<const double> r, std::span<double> x,
                      OpCounts* counts) const {
    const Level& lvl = grids_[static_cast<std::size_t>(level)];
    const std::size_t n = static_cast<std::size_t>(lvl.a.rows());
    ARMSTICE_CHECK(r.size() == n && x.size() == n, "multigrid level size mismatch");

    lvl.a.symgs(r, x, counts);  // pre-smooth (x contains the smoothed guess)

    if (level + 1 < levels()) {
        // Residual on the fine grid.
        std::vector<double> ax(n), res(n);
        lvl.a.spmv(x, ax, counts);
        par::parallel_for(static_cast<long>(n), [&](par::Range rr) {
            for (long i = rr.begin; i < rr.end; ++i) {
                const auto u = static_cast<std::size_t>(i);
                res[u] = r[u] - ax[u];
            }
        });
        if (counts) {
            counts->flops += static_cast<double>(n);
            counts->bytes_read += 16.0 * static_cast<double>(n);
            counts->bytes_written += 8.0 * static_cast<double>(n);
        }

        // Restrict by injection, solve coarse, prolong by injection-add.
        const Level& coarse = grids_[static_cast<std::size_t>(level) + 1];
        const std::size_t nc = static_cast<std::size_t>(coarse.a.rows());
        std::vector<double> rc(nc), xc(nc, 0.0);
        // Injection restrict/prolong: f2c is injective, so the gather and the
        // scatter-add both write disjoint elements per iteration.
        par::parallel_for(static_cast<long>(nc), [&](par::Range rr) {
            for (long i = rr.begin; i < rr.end; ++i) {
                const auto u = static_cast<std::size_t>(i);
                rc[u] = res[static_cast<std::size_t>(lvl.f2c[u])];
            }
        });
        cycle(level + 1, rc, xc, counts);
        par::parallel_for(static_cast<long>(nc), [&](par::Range rr) {
            for (long i = rr.begin; i < rr.end; ++i) {
                const auto u = static_cast<std::size_t>(i);
                x[static_cast<std::size_t>(lvl.f2c[u])] += xc[u];
            }
        });
        if (counts) {
            counts->flops += static_cast<double>(nc);
            counts->bytes_read += 24.0 * static_cast<double>(nc);
            counts->bytes_written += 16.0 * static_cast<double>(nc);
        }

        lvl.a.symgs(r, x, counts);  // post-smooth
    }
}

} // namespace armstice::kern
