#pragma once
// Compressed sparse row matrices and SpMV — the substrate for HPCG, minikab
// and the COSA smoother models. Real implementations with exact operation
// counting.

#include "kern/counters.hpp"

#include <span>
#include <vector>

namespace armstice::kern {

struct Triplet {
    long row = 0;
    long col = 0;
    double val = 0;
};

class CsrMatrix {
public:
    CsrMatrix() = default;
    /// Build from (unsorted, possibly duplicate) triplets; duplicates sum.
    CsrMatrix(long rows, long cols, std::vector<Triplet> entries);

    [[nodiscard]] long rows() const { return rows_; }
    [[nodiscard]] long cols() const { return cols_; }
    [[nodiscard]] long nnz() const { return static_cast<long>(vals_.size()); }

    [[nodiscard]] std::span<const long> row_ptr() const { return row_ptr_; }
    [[nodiscard]] std::span<const int> col_idx() const { return col_idx_; }
    [[nodiscard]] std::span<const double> vals() const { return vals_; }

    /// y = A*x, column-tiled for cache (DESIGN.md §12). Exact counts:
    /// 2*nnz flops; matrix traffic 12 B/nnz (8 B value + 4 B column index) +
    /// row pointers + vector traffic. Bit-identical to spmv_unblocked() at
    /// every par::jobs() value.
    void spmv(std::span<const double> x, std::span<double> y,
              OpCounts* counts = nullptr) const;

    /// Reference unblocked y = A*x (the pre-blocking row loop), kept for the
    /// conformance tests and bench_kernels' in-bench identity check.
    void spmv_unblocked(std::span<const double> x, std::span<double> y,
                        OpCounts* counts = nullptr) const;

    /// Diagonal entry of each row (zero when absent).
    [[nodiscard]] std::vector<double> diagonal() const;

    /// In-place symmetric Gauss-Seidel sweep (forward then backward) for
    /// x <- SymGS(A, r, x): the HPCG smoother. Requires nonzero diagonals.
    void symgs(std::span<const double> r, std::span<double> x,
               OpCounts* counts = nullptr) const;

    /// Analytic per-SpMV counts used by the skeletons.
    [[nodiscard]] double spmv_flops() const { return 2.0 * static_cast<double>(nnz()); }
    [[nodiscard]] double spmv_bytes() const;

private:
    void add_spmv_counts(OpCounts* counts) const;

    long rows_ = 0;
    long cols_ = 0;
    std::vector<long> row_ptr_;
    std::vector<int> col_idx_;
    std::vector<double> vals_;
};

/// 3D Poisson operator on an nx x ny x nz grid with a 27-point stencil
/// (the HPCG matrix: diagonal 26, off-diagonals -1, Dirichlet boundary).
CsrMatrix poisson27(int nx, int ny, int nz);

/// 7-point Laplacian variant (COSA/OpenSBLI-style smoother tests).
CsrMatrix poisson7(int nx, int ny, int nz);

/// Random SPD matrix: diagonally dominant with `extra` off-diagonals per row
/// (used by property tests and the minikab reference at laptop scale).
CsrMatrix random_spd(long n, int extra, unsigned long seed);

} // namespace armstice::kern
