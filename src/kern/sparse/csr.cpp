#include "kern/sparse/csr.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace armstice::kern {

CsrMatrix::CsrMatrix(long rows, long cols, std::vector<Triplet> entries)
    : rows_(rows), cols_(cols) {
    ARMSTICE_CHECK(rows >= 0 && cols >= 0, "negative matrix shape");
    // Column indices are stored as int (8 B value + 4 B index is the 12 B/nnz
    // traffic the counts and the cost model price); reject shapes that the
    // narrowing below would silently corrupt.
    ARMSTICE_CHECK(cols <= static_cast<long>(std::numeric_limits<int>::max()),
                   "matrix has more columns than the int column-index storage holds");
    ARMSTICE_CHECK(entries.size() <=
                       static_cast<std::size_t>(std::numeric_limits<int>::max()),
                   "more triplets than the int-indexed nnz storage holds");
    for (const auto& t : entries) {
        ARMSTICE_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                       "triplet out of range");
    }
    std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    });
    row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
    col_idx_.reserve(entries.size());
    vals_.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size();) {
        std::size_t j = i;
        double sum = 0.0;
        while (j < entries.size() && entries[j].row == entries[i].row &&
               entries[j].col == entries[i].col) {
            sum += entries[j].val;
            ++j;
        }
        col_idx_.push_back(static_cast<int>(entries[i].col));
        vals_.push_back(sum);
        ++row_ptr_[static_cast<std::size_t>(entries[i].row) + 1];
        i = j;
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
        row_ptr_[r + 1] += row_ptr_[r];
    }
}

namespace {
/// SpMV cache-blocking tiles (DESIGN.md §12). The column tile bounds the
/// slice of x a core gathers from at any moment: 64 Ki doubles = 512 KiB,
/// inside a core's share of the A64FX 8 MiB CMG L2. The row tile bounds the
/// cursor array kept on the stack.
constexpr long kSpmvColTile = 64 * 1024;
constexpr int kSpmvRowTile = 256;
} // namespace

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y,
                     OpCounts* counts) const {
    ARMSTICE_CHECK(x.size() == static_cast<std::size_t>(cols_), "spmv x size");
    ARMSTICE_CHECK(y.size() == static_cast<std::size_t>(rows_), "spmv y size");
    // Row-block parallel with column tiling inside each task. Rows are
    // stored column-sorted (the constructor sorts by (row, col)), so walking
    // the column tiles in ascending order with one cursor per row adds each
    // row's products in exactly the ascending-k order of the unblocked loop
    // (spmv_unblocked); the partial sum parked in y[i] between tiles is a
    // double round-tripped through a double — exact. Bit-identical at any
    // jobs value.
    par::parallel_for(rows_, [&](par::Range rows) {
        long cursor[kSpmvRowTile];
        for (long r0 = rows.begin; r0 < rows.end; r0 += kSpmvRowTile) {
            const long r1 = std::min<long>(rows.end, r0 + kSpmvRowTile);
            for (long i = r0; i < r1; ++i) {
                y[static_cast<std::size_t>(i)] = 0.0;
                cursor[i - r0] = row_ptr_[static_cast<std::size_t>(i)];
            }
            for (long c0 = 0; c0 < cols_; c0 += kSpmvColTile) {
                const long c1 = std::min<long>(cols_, c0 + kSpmvColTile);
                for (long i = r0; i < r1; ++i) {
                    long k = cursor[i - r0];
                    const long kend = row_ptr_[static_cast<std::size_t>(i) + 1];
                    double sum = y[static_cast<std::size_t>(i)];
                    while (k < kend && col_idx_[static_cast<std::size_t>(k)] < c1) {
                        sum += vals_[static_cast<std::size_t>(k)] *
                               x[static_cast<std::size_t>(
                                   col_idx_[static_cast<std::size_t>(k)])];
                        ++k;
                    }
                    y[static_cast<std::size_t>(i)] = sum;
                    cursor[i - r0] = k;
                }
            }
        }
    });
    if (counts) {
        add_spmv_counts(counts);
        counts->ws_bytes =
            std::max(counts->ws_bytes,
                     8.0 * static_cast<double>(std::min(cols_, kSpmvColTile)) +
                         16.0 * std::min<long>(rows_, kSpmvRowTile));
    }
}

void CsrMatrix::spmv_unblocked(std::span<const double> x, std::span<double> y,
                               OpCounts* counts) const {
    ARMSTICE_CHECK(x.size() == static_cast<std::size_t>(cols_), "spmv x size");
    ARMSTICE_CHECK(y.size() == static_cast<std::size_t>(rows_), "spmv y size");
    // Row-block parallel: each row's dot product is accumulated serially in
    // column order by exactly one task, so y is bit-identical at any jobs.
    par::parallel_for(rows_, [&](par::Range rows) {
        for (long i = rows.begin; i < rows.end; ++i) {
            double sum = 0.0;
            for (long k = row_ptr_[static_cast<std::size_t>(i)];
                 k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
                sum += vals_[static_cast<std::size_t>(k)] *
                       x[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
            }
            y[static_cast<std::size_t>(i)] = sum;
        }
    });
    if (counts) add_spmv_counts(counts);
}

void CsrMatrix::add_spmv_counts(OpCounts* counts) const {
    counts->flops += spmv_flops();
    counts->bytes_read += 12.0 * static_cast<double>(nnz()) +
                          8.0 * static_cast<double>(rows_) +  // row ptrs
                          8.0 * static_cast<double>(rows_);   // x (gathered, ~1 touch/row amortised)
    counts->bytes_written += 8.0 * static_cast<double>(rows_);
}

double CsrMatrix::spmv_bytes() const {
    return 12.0 * static_cast<double>(nnz()) + 24.0 * static_cast<double>(rows_);
}

std::vector<double> CsrMatrix::diagonal() const {
    std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
    for (long i = 0; i < rows_; ++i) {
        for (long k = row_ptr_[static_cast<std::size_t>(i)];
             k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
            if (col_idx_[static_cast<std::size_t>(k)] == i) {
                d[static_cast<std::size_t>(i)] = vals_[static_cast<std::size_t>(k)];
            }
        }
    }
    return d;
}

void CsrMatrix::symgs(std::span<const double> r, std::span<double> x,
                      OpCounts* counts) const {
    ARMSTICE_CHECK(rows_ == cols_, "symgs needs a square matrix");
    ARMSTICE_CHECK(r.size() == static_cast<std::size_t>(rows_), "symgs r size");
    ARMSTICE_CHECK(x.size() == static_cast<std::size_t>(rows_), "symgs x size");

    auto sweep_row = [&](long i) {
        double sum = r[static_cast<std::size_t>(i)];
        double diag = 0.0;
        for (long k = row_ptr_[static_cast<std::size_t>(i)];
             k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
            const long j = col_idx_[static_cast<std::size_t>(k)];
            const double v = vals_[static_cast<std::size_t>(k)];
            if (j == i) {
                diag = v;
            } else {
                sum -= v * x[static_cast<std::size_t>(j)];
            }
        }
        ARMSTICE_CHECK(diag != 0.0, "symgs requires nonzero diagonal");
        x[static_cast<std::size_t>(i)] = sum / diag;
    };

    for (long i = 0; i < rows_; ++i) sweep_row(i);          // forward
    for (long i = rows_ - 1; i >= 0; --i) sweep_row(i);     // backward
    if (counts) {
        counts->flops += 4.0 * static_cast<double>(nnz());  // two sweeps x 2nnz
        counts->bytes_read += 2.0 * (12.0 * static_cast<double>(nnz()) +
                                     16.0 * static_cast<double>(rows_));
        counts->bytes_written += 2.0 * 8.0 * static_cast<double>(rows_);
    }
}

namespace {

CsrMatrix poisson_stencil(int nx, int ny, int nz, bool full27) {
    ARMSTICE_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "bad grid");
    const long n = static_cast<long>(nx) * ny * nz;
    std::vector<Triplet> trip;
    trip.reserve(static_cast<std::size_t>(n) * (full27 ? 27 : 7));
    auto id = [&](int x, int y, int z) {
        return (static_cast<long>(z) * ny + y) * nx + x;
    };
    for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                const long row = id(x, y, z);
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            if (!full27 && std::abs(dx) + std::abs(dy) + std::abs(dz) > 1) {
                                continue;
                            }
                            const int xx = x + dx, yy = y + dy, zz = z + dz;
                            if (xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 ||
                                zz >= nz) {
                                continue;
                            }
                            const long col = id(xx, yy, zz);
                            const bool diag = (row == col);
                            const double v = full27 ? (diag ? 26.0 : -1.0)
                                                    : (diag ? 6.0 : -1.0);
                            trip.push_back({row, col, v});
                        }
                    }
                }
            }
        }
    }
    return CsrMatrix(n, n, std::move(trip));
}

} // namespace

CsrMatrix poisson27(int nx, int ny, int nz) { return poisson_stencil(nx, ny, nz, true); }
CsrMatrix poisson7(int nx, int ny, int nz) { return poisson_stencil(nx, ny, nz, false); }

CsrMatrix random_spd(long n, int extra, unsigned long seed) {
    ARMSTICE_CHECK(n >= 1 && extra >= 0, "bad random_spd shape");
    util::Rng rng(seed);
    std::vector<Triplet> trip;
    trip.reserve(static_cast<std::size_t>(n) * (1 + 2 * extra));
    // Symmetric off-diagonals, then a dominant diagonal.
    std::vector<double> rowsum(static_cast<std::size_t>(n), 0.0);
    for (long i = 0; i < n; ++i) {
        for (int e = 0; e < extra; ++e) {
            const long j = static_cast<long>(rng.next_below(static_cast<std::uint64_t>(n)));
            if (j == i) continue;
            const double v = -rng.uniform(0.1, 1.0);
            trip.push_back({i, j, v});
            trip.push_back({j, i, v});
            rowsum[static_cast<std::size_t>(i)] += std::abs(v);
            rowsum[static_cast<std::size_t>(j)] += std::abs(v);
        }
    }
    for (long i = 0; i < n; ++i) {
        trip.push_back({i, i, rowsum[static_cast<std::size_t>(i)] + 1.0});
    }
    return CsrMatrix(n, n, std::move(trip));
}

} // namespace armstice::kern
