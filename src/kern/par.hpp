#pragma once
// kern::par — the deterministic multithreaded execution layer under every
// real kernel (DESIGN.md §9). One process-wide util::ThreadPool, sized by
// set_jobs() (bench --jobs) or ARMSTICE_JOBS, runs statically partitioned
// index ranges.
//
// The determinism contract, enforced by tests/kern/test_kern_threads.cpp:
// kernel outputs are bit-identical at every jobs value. Two rules make that
// hold:
//
//  1. parallel_for is only used for loops whose iterations write disjoint
//     outputs and read shared inputs — each output element is computed by
//     exactly one iteration, by the same expression, regardless of how the
//     range is partitioned. Partition boundaries may therefore depend on
//     the thread count.
//
//  2. Reductions never accumulate across partition boundaries. reduce_sum
//     cuts [0, n) into fixed kReduceBlock-element blocks whose boundaries
//     depend only on n; each block partial is summed serially in index
//     order, and the partials combine by a pairwise tree over the block
//     array — the same tree at --jobs 1 and --jobs 8. dot/norm2/CG
//     residual histories are bit-identical across thread counts.
//
// OpCounts need no special handling: every kernel adds its exact analytic
// totals once, outside the parallel region, so counts are identical across
// thread counts by construction.

#include <functional>
#include <vector>

namespace armstice::kern::par {

/// Worker threads used by parallel_for/reduce_sum: the last set_jobs value
/// if >= 1, else the ARMSTICE_JOBS environment variable, else 1 (serial —
/// kernels never pay thread startup unasked).
int jobs();

/// Install the process-wide kernel thread count (bench --jobs; tests).
/// Values < 1 reset to the environment/serial default. Must not be called
/// while kernels are executing on other threads.
void set_jobs(int jobs);

/// One contiguous index range [begin, end).
struct Range {
    long begin = 0;
    long end = 0;
    [[nodiscard]] long size() const { return end - begin; }
};

/// Split [0, n) into at most `max_parts` contiguous non-empty ranges whose
/// boundaries fall on multiples of `align` (the SELL chunk size, a stencil
/// plane, ...; the final boundary is n itself). Earlier parts are at most
/// one align-unit larger than later ones — the same balanced rule
/// kern::tile_cells uses for mesh decomposition.
std::vector<Range> split(long n, int max_parts, long align = 1);

/// Run body(range) over a partition of [0, n). Serial (one body({0, n})
/// call on the calling thread) when jobs() == 1, when n < grain, or when
/// invoked from inside another parallel region (nested parallelism runs
/// inline rather than deadlocking the shared pool). The body must write
/// disjoint outputs per index — see rule 1 above. Exceptions thrown by the
/// body are rethrown on the calling thread after the batch drains.
void parallel_for(long n, const std::function<void(Range)>& body, long align = 1,
                  long grain = 4096);

/// Fixed reduction block: boundaries at multiples of kReduceBlock depend
/// only on the problem size, never on the thread count. 4096 doubles keeps
/// a block's partial in L1 while giving 8 workers >= 30 blocks at the
/// HPCG-class vector sizes the benches measure.
inline constexpr long kReduceBlock = 4096;

/// Deterministic blocked pairwise sum: block_sum(range) must return the
/// serial in-order sum of its block (ranges are exactly the kReduceBlock
/// grid over [0, n)); the partials combine pairwise in index order.
double reduce_sum(long n, const std::function<double(Range)>& block_sum);

/// Same block structure for a max reduction (max is exactly associative, so
/// this is bit-identical to a serial scan for any partition; the blocked
/// form just parallelises it). `block_max` returns the max over its range.
double reduce_max(long n, const std::function<double(Range)>& block_max);

/// Pairwise tree sum of v[0..n) — the combiner reduce_sum applies to block
/// partials, exposed for tests and for callers that precompute partials.
double pairwise_sum(const double* v, std::size_t n);

} // namespace armstice::kern::par
