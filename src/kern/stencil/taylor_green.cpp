#include "kern/stencil/taylor_green.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace armstice::kern {
namespace {
constexpr double kPi = std::numbers::pi;
} // namespace

TaylorGreen::TaylorGreen(int n, double mach, double viscosity, int tile_j)
    : n_(n), h_(2.0 * kPi / n), tile_j_(tile_j > 0 ? tile_j : n), nu_(viscosity) {
    ARMSTICE_CHECK(n >= 8, "TaylorGreen grid too small (need >=8 for the stencil)");
    ARMSTICE_CHECK(mach > 0.0 && mach < 0.5, "TaylorGreen expects subsonic Mach");
    ARMSTICE_CHECK(viscosity >= 0.0, "negative viscosity");
    ARMSTICE_CHECK(tile_j >= 0, "negative stencil tile");
    const std::size_t nn = static_cast<std::size_t>(n) * n * n;
    u_.assign(static_cast<std::size_t>(kVars) * nn, 0.0);

    // Base state: rho0 = 1, p0 = 1/gamma so the sound speed c = 1; the
    // reference velocity is then V0 = mach.
    const double rho0 = 1.0;
    const double p0 = 1.0 / gamma_;
    const double v0 = mach;

    for (int k = 0; k < n; ++k) {
        for (int j = 0; j < n; ++j) {
            for (int i = 0; i < n; ++i) {
                const double x = (i + 0.5) * h_;
                const double y = (j + 0.5) * h_;
                const double z = (k + 0.5) * h_;
                const std::size_t p =
                    (static_cast<std::size_t>(k) * n + j) * n + static_cast<std::size_t>(i);
                const double uu = v0 * std::sin(x) * std::cos(y) * std::cos(z);
                const double vv = -v0 * std::cos(x) * std::sin(y) * std::cos(z);
                const double ww = 0.0;
                const double pp =
                    p0 + rho0 * v0 * v0 / 16.0 *
                             (std::cos(2 * x) + std::cos(2 * y)) * (std::cos(2 * z) + 2.0);
                const double rho = rho0;  // low-Mach: density perturbation ~ M^2, folded into p
                u_[0 * nn + p] = rho;
                u_[1 * nn + p] = rho * uu;
                u_[2 * nn + p] = rho * vv;
                u_[3 * nn + p] = rho * ww;
                u_[4 * nn + p] =
                    pp / (gamma_ - 1.0) + 0.5 * rho * (uu * uu + vv * vv + ww * ww);
            }
        }
    }
}

double TaylorGreen::stable_dt() const {
    // CFL for 4th-order central + RK3 with c ~= 1 and |u| << c, combined
    // with the explicit-diffusion limit dt <= h^2/(6 nu) when viscous.
    const double advective = 0.4 * h_ / (1.0 + 2.0 * max_speed());
    if (nu_ <= 0.0) return advective;
    const double viscous = 0.2 * h_ * h_ / (6.0 * nu_);
    return std::min(advective, viscous);
}

void TaylorGreen::rhs(const std::vector<double>& u, std::vector<double>& out,
                      OpCounts* counts) const {
    const int n = n_;
    const std::size_t nn = static_cast<std::size_t>(n) * n * n;
    out.assign(u.size(), 0.0);

    auto wrap = [n](int i) { return (i + n) % n; };
    auto idx = [n](int i, int j, int k) {
        return (static_cast<std::size_t>(k) * n + j) * n + static_cast<std::size_t>(i);
    };

    // Flux vector in one direction at one point.
    struct Flux {
        double f[kVars];
    };
    auto point_flux = [&](std::size_t p, int dir) -> Flux {
        const double rho = u[0 * nn + p];
        const double mx = u[1 * nn + p];
        const double my = u[2 * nn + p];
        const double mz = u[3 * nn + p];
        const double e = u[4 * nn + p];
        const double inv_rho = 1.0 / rho;
        const double vx = mx * inv_rho, vy = my * inv_rho, vz = mz * inv_rho;
        const double pr = (gamma_ - 1.0) * (e - 0.5 * rho * (vx * vx + vy * vy + vz * vz));
        const double vn = dir == 0 ? vx : (dir == 1 ? vy : vz);
        Flux fl;
        fl.f[0] = rho * vn;
        fl.f[1] = mx * vn + (dir == 0 ? pr : 0.0);
        fl.f[2] = my * vn + (dir == 1 ? pr : 0.0);
        fl.f[3] = mz * vn + (dir == 2 ? pr : 0.0);
        fl.f[4] = (e + pr) * vn;
        return fl;
    };

    const double c1 = 8.0 / (12.0 * h_);
    const double c2 = 1.0 / (12.0 * h_);

    // The dir loop stays serial (every point accumulates its three
    // directional contributions in dir order); within a direction the
    // k-planes write disjoint points, so they partition freely, and the j
    // loop is tiled for cache (tile_j_) — pure reordering of disjoint point
    // updates, so the tile size never changes a single bit of out.
    const int tile_j = tile_j_;
    for (int dir = 0; dir < 3; ++dir) {
        par::parallel_for(
            n,
            [&](par::Range planes) {
                for (long k = planes.begin; k < planes.end; ++k) {
                    for (int j0 = 0; j0 < n; j0 += tile_j) {
                    const int jend = std::min(n, j0 + tile_j);
                    for (int j = j0; j < jend; ++j) {
                        for (int i = 0; i < n; ++i) {
                            auto shift = [&](int off) {
                                const int ii = dir == 0 ? wrap(i + off) : i;
                                const int jj = dir == 1 ? wrap(j + off) : j;
                                const int kk =
                                    dir == 2 ? wrap(static_cast<int>(k) + off)
                                             : static_cast<int>(k);
                                return idx(ii, jj, kk);
                            };
                            const Flux fp1 = point_flux(shift(+1), dir);
                            const Flux fm1 = point_flux(shift(-1), dir);
                            const Flux fp2 = point_flux(shift(+2), dir);
                            const Flux fm2 = point_flux(shift(-2), dir);
                            const std::size_t p = idx(i, j, static_cast<int>(k));
                            for (int v = 0; v < kVars; ++v) {
                                out[static_cast<std::size_t>(v) * nn + p] -=
                                    c1 * (fp1.f[v] - fm1.f[v]) - c2 * (fp2.f[v] - fm2.f[v]);
                            }
                        }
                    }
                    }
                }
            },
            /*align=*/1, /*grain=*/2);
    }

    // Momentum diffusion (low-Mach Navier-Stokes regularisation): a
    // second-order Laplacian of each momentum component. For the TGV's
    // single-mode initial field, nabla^2 u = -3u, so kinetic energy decays
    // as exp(-6 nu t) at early times — the property tests check this.
    if (nu_ > 0.0) {
        const double inv_h2 = 1.0 / (h_ * h_);
        for (int v = 1; v <= 3; ++v) {
            const double* uv = &u[static_cast<std::size_t>(v) * nn];
            double* ov = &out[static_cast<std::size_t>(v) * nn];
            par::parallel_for(
                n,
                [&](par::Range planes) {
                    for (long kk = planes.begin; kk < planes.end; ++kk) {
                        const int k = static_cast<int>(kk);
                        for (int j0 = 0; j0 < n; j0 += tile_j) {
                        const int jend = std::min(n, j0 + tile_j);
                        for (int j = j0; j < jend; ++j) {
                            for (int i = 0; i < n; ++i) {
                                const std::size_t p = idx(i, j, k);
                                const double lap =
                                    (uv[idx(wrap(i + 1), j, k)] + uv[idx(wrap(i - 1), j, k)] +
                                     uv[idx(i, wrap(j + 1), k)] + uv[idx(i, wrap(j - 1), k)] +
                                     uv[idx(i, j, wrap(k + 1))] + uv[idx(i, j, wrap(k - 1))] -
                                     6.0 * uv[p]) *
                                    inv_h2;
                                ov[p] += nu_ * lap;
                            }
                        }
                        }
                    }
                },
                /*align=*/1, /*grain=*/2);
        }
        if (counts) {
            counts->flops += 3.0 * 10.0 * static_cast<double>(nn);
            counts->bytes_read += 3.0 * 7.0 * 8.0 * static_cast<double>(nn);
            counts->bytes_written += 3.0 * 8.0 * static_cast<double>(nn);
        }
    }

    if (counts) {
        // Per point per direction: 4 flux evaluations (~24 flops each) +
        // 5 derivative combinations (4 flops each) = 116; x3 directions.
        counts->flops += 348.0 * static_cast<double>(nn);
        counts->bytes_read += 3.0 * 4.0 * kVars * 8.0 * static_cast<double>(nn);
        counts->bytes_written += 3.0 * kVars * 8.0 * static_cast<double>(nn);
        // One j-tile of all conservative variables plus the 4-row stencil
        // halo is what a sweep keeps hot.
        counts->ws_bytes =
            std::max(counts->ws_bytes,
                     8.0 * kVars * n * (std::min(tile_j_, n) + 4.0));
    }
}

void TaylorGreen::step(double dt, OpCounts* counts) {
    ARMSTICE_CHECK(dt > 0.0, "dt must be positive");
    const std::size_t total = u_.size();
    std::vector<double> k1(total), u1(total), u2(total);

    // SSP-RK3 (Shu-Osher). The stage combinations are element-wise.
    rhs(u_, k1, counts);
    par::parallel_for(static_cast<long>(total), [&](par::Range r) {
        for (long i = r.begin; i < r.end; ++i) {
            const auto u = static_cast<std::size_t>(i);
            u1[u] = u_[u] + dt * k1[u];
        }
    });

    rhs(u1, k1, counts);
    par::parallel_for(static_cast<long>(total), [&](par::Range r) {
        for (long i = r.begin; i < r.end; ++i) {
            const auto u = static_cast<std::size_t>(i);
            u2[u] = 0.75 * u_[u] + 0.25 * (u1[u] + dt * k1[u]);
        }
    });

    rhs(u2, k1, counts);
    par::parallel_for(static_cast<long>(total), [&](par::Range r) {
        for (long i = r.begin; i < r.end; ++i) {
            const auto u = static_cast<std::size_t>(i);
            u_[u] = (1.0 / 3.0) * u_[u] + (2.0 / 3.0) * (u2[u] + dt * k1[u]);
        }
    });

    if (counts) {
        counts->flops += 11.0 * static_cast<double>(total);
        counts->bytes_read += 7.0 * 8.0 * static_cast<double>(total);
        counts->bytes_written += 3.0 * 8.0 * static_cast<double>(total);
    }
}

double TaylorGreen::total_mass() const {
    const std::size_t nn = static_cast<std::size_t>(n_) * n_ * n_;
    const double sum = par::reduce_sum(static_cast<long>(nn), [&](par::Range r) {
        double s = 0.0;
        for (long p = r.begin; p < r.end; ++p) s += u_[static_cast<std::size_t>(p)];
        return s;
    });
    return sum * h_ * h_ * h_;
}

double TaylorGreen::kinetic_energy() const {
    const std::size_t nn = static_cast<std::size_t>(n_) * n_ * n_;
    const double sum = par::reduce_sum(static_cast<long>(nn), [&](par::Range r) {
        double s = 0.0;
        for (long i = r.begin; i < r.end; ++i) {
            const auto p = static_cast<std::size_t>(i);
            const double rho = u_[p];
            const double mx = u_[nn + p], my = u_[2 * nn + p], mz = u_[3 * nn + p];
            s += 0.5 * (mx * mx + my * my + mz * mz) / rho;
        }
        return s;
    });
    return sum * h_ * h_ * h_;
}

double TaylorGreen::max_speed() const {
    const std::size_t nn = static_cast<std::size_t>(n_) * n_ * n_;
    return par::reduce_max(static_cast<long>(nn), [&](par::Range r) {
        double vmax = 0.0;
        for (long i = r.begin; i < r.end; ++i) {
            const auto p = static_cast<std::size_t>(i);
            const double rho = u_[p];
            const double mx = u_[nn + p], my = u_[2 * nn + p], mz = u_[3 * nn + p];
            vmax = std::max(vmax, std::sqrt(mx * mx + my * my + mz * mz) / rho);
        }
        return vmax;
    });
}

double TaylorGreen::step_flops_per_point() {
    // 3 RHS evaluations (348 each) + RK combinations (11 per variable-point
    // -> 55 per point).
    return 3.0 * 348.0 + 11.0 * kVars;
}

double TaylorGreen::step_bytes_per_point() {
    return 3.0 * (4.0 + 1.0) * kVars * 8.0 * 3.0 / 3.0 +  // rhs traffic
           10.0 * kVars * 8.0;                             // RK combinations
}

} // namespace armstice::kern
