#pragma once
// Compressible Taylor-Green vortex solver — the real numerics behind the
// OpenSBLI reference application: 3D compressible Euler equations on a
// periodic cube of length 2*pi, 4th-order central differences, SSP-RK3 time
// stepping (the OpenSBLI benchmark's discretisation family).

#include "kern/counters.hpp"

#include <vector>

namespace armstice::kern {

class TaylorGreen {
public:
    /// Default j-tile of the RHS sweeps: 16 rows x 4*kVars flux operands of
    /// n doubles stay inside a core's share of the A64FX CMG L2 up to the
    /// grids the OpenSBLI skeleton uses (DESIGN.md §12).
    static constexpr int kDefaultTileJ = 16;

    /// Periodic n^3 grid, reference Mach number (the classic case is 0.1),
    /// optional kinematic viscosity (0 = inviscid Euler; > 0 adds a
    /// second-order momentum-diffusion term, the low-Mach Navier-Stokes
    /// regularisation OpenSBLI's compressible solver carries).
    /// tile_j blocks the j loop of every stencil sweep; 0 runs the unblocked
    /// reference sweep (full j extent). Any tile gives bit-identical state:
    /// stencil writes are disjoint per point and each point's directional
    /// contributions keep their serial dir order.
    explicit TaylorGreen(int n, double mach = 0.1, double viscosity = 0.0,
                         int tile_j = kDefaultTileJ);

    /// One SSP-RK3 step. dt must satisfy the advective CFL (see stable_dt()).
    void step(double dt, OpCounts* counts = nullptr);

    [[nodiscard]] int n() const { return n_; }
    [[nodiscard]] double stable_dt() const;

    /// Diagnostics (integrals over the domain).
    [[nodiscard]] double total_mass() const;
    [[nodiscard]] double kinetic_energy() const;
    [[nodiscard]] double max_speed() const;

    /// Raw conservative-variable state (kVars * n^3, variable-major) — read
    /// access for diagnostics and the thread-count-invariance tests.
    [[nodiscard]] const std::vector<double>& state() const { return u_; }

    /// Analytic per-point counts for one full RK3 step (3 RHS evaluations),
    /// used by the OpenSBLI skeleton.
    static double step_flops_per_point();
    static double step_bytes_per_point();
    /// Conservative variables per point (rho, rho*u, rho*v, rho*w, E).
    static constexpr int kVars = 5;

private:
    void rhs(const std::vector<double>& u, std::vector<double>& out,
             OpCounts* counts) const;

    int n_;
    double h_;      ///< grid spacing 2*pi/n
    int tile_j_;    ///< j-block of the stencil sweeps (0 = full extent)
    double gamma_ = 1.4;
    double nu_ = 0.0;  ///< kinematic viscosity
    std::vector<double> u_;  ///< kVars * n^3, variable-major
};

} // namespace armstice::kern
