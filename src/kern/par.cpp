#include "kern/par.hpp"

#include "util/error.hpp"
#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>

namespace armstice::kern::par {
namespace {

std::atomic<int> g_jobs{0};  // 0 = unset -> consult ARMSTICE_JOBS, else 1

int env_jobs() {
    const char* env = std::getenv("ARMSTICE_JOBS");
    if (env == nullptr || *env == '\0') return 0;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? static_cast<int>(v) : 0;
}

// Workers executing a parallel_for body set this so a nested parallel_for
// runs inline instead of submitting to (and then waiting on) the pool its
// own task occupies.
thread_local bool tl_in_parallel_region = false;

// The process-wide pool, rebuilt when the requested size changes. Callers
// hold a shared_ptr while running a batch, so a concurrent set_jobs never
// destroys a pool out from under an in-flight kernel.
std::mutex g_pool_mu;
std::shared_ptr<util::ThreadPool> g_pool;  // guarded by g_pool_mu

std::shared_ptr<util::ThreadPool> pool_for(int threads) {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool || g_pool->size() != threads) {
        g_pool = std::make_shared<util::ThreadPool>(threads);
    }
    return g_pool;
}

} // namespace

int jobs() {
    const int set = g_jobs.load(std::memory_order_relaxed);
    if (set >= 1) return set;
    const int env = env_jobs();
    return env >= 1 ? env : 1;
}

void set_jobs(int j) { g_jobs.store(j >= 1 ? j : 0, std::memory_order_relaxed); }

std::vector<Range> split(long n, int max_parts, long align) {
    ARMSTICE_CHECK(n >= 0 && align >= 1, "bad split shape");
    std::vector<Range> out;
    if (n == 0 || max_parts < 1) return out;
    const long units = (n + align - 1) / align;
    const long parts = std::min<long>(units, max_parts);
    out.reserve(static_cast<std::size_t>(parts));
    long unit = 0;
    for (long p = 0; p < parts; ++p) {
        const long take = units / parts + (p < units % parts ? 1 : 0);
        const long begin = unit * align;
        unit += take;
        const long end = std::min(n, unit * align);
        if (end > begin) out.push_back({begin, end});
    }
    return out;
}

void parallel_for(long n, const std::function<void(Range)>& body, long align,
                  long grain) {
    if (n <= 0) return;
    const int j = jobs();
    if (j <= 1 || n < grain || tl_in_parallel_region) {
        body({0, n});
        return;
    }
    const auto parts = split(n, j, align);
    if (parts.size() <= 1) {
        body({0, n});
        return;
    }

    auto pool = pool_for(j);
    std::exception_ptr first_error;
    std::mutex error_mu;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(parts.size());
    for (const Range r : parts) {
        tasks.emplace_back([&, r] {
            tl_in_parallel_region = true;
            try {
                body(r);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error) first_error = std::current_exception();
            }
            tl_in_parallel_region = false;
        });
    }
    pool->run_batch(std::move(tasks));
    if (first_error) std::rethrow_exception(first_error);
}

double reduce_sum(long n, const std::function<double(Range)>& block_sum) {
    if (n <= 0) return 0.0;
    const long nblocks = (n + kReduceBlock - 1) / kReduceBlock;
    std::vector<double> partial(static_cast<std::size_t>(nblocks));
    parallel_for(
        nblocks,
        [&](Range blocks) {
            for (long b = blocks.begin; b < blocks.end; ++b) {
                const long lo = b * kReduceBlock;
                partial[static_cast<std::size_t>(b)] =
                    block_sum({lo, std::min(n, lo + kReduceBlock)});
            }
        },
        /*align=*/1, /*grain=*/2);
    return pairwise_sum(partial.data(), partial.size());
}

double reduce_max(long n, const std::function<double(Range)>& block_max) {
    if (n <= 0) return 0.0;
    const long nblocks = (n + kReduceBlock - 1) / kReduceBlock;
    std::vector<double> partial(static_cast<std::size_t>(nblocks));
    parallel_for(
        nblocks,
        [&](Range blocks) {
            for (long b = blocks.begin; b < blocks.end; ++b) {
                const long lo = b * kReduceBlock;
                partial[static_cast<std::size_t>(b)] =
                    block_max({lo, std::min(n, lo + kReduceBlock)});
            }
        },
        /*align=*/1, /*grain=*/2);
    double m = partial[0];
    for (const double v : partial) m = std::max(m, v);
    return m;
}

double pairwise_sum(const double* v, std::size_t n) {
    if (n == 0) return 0.0;
    if (n <= 8) {
        double s = v[0];
        for (std::size_t i = 1; i < n; ++i) s += v[i];
        return s;
    }
    const std::size_t half = n / 2;
    return pairwise_sum(v, half) + pairwise_sum(v + half, n - half);
}

} // namespace armstice::kern::par
