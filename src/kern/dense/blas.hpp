#pragma once
// blas-lite: the dense kernels the workloads are built from. Real,
// cache-blocked implementations with exact operation counting — these stand
// in for MKL/SSL2/ArmPL in the reference applications (DESIGN.md §2).

#include "kern/counters.hpp"

#include <complex>
#include <span>
#include <vector>

namespace armstice::kern {

using cplx = std::complex<double>;

/// y += a*x  (2n flops).
void axpy(double a, std::span<const double> x, std::span<double> y,
          OpCounts* counts = nullptr);

/// w = a*x + b*y (HPCG's WAXPBY; 3n flops).
void waxpby(double a, std::span<const double> x, double b, std::span<const double> y,
            std::span<double> w, OpCounts* counts = nullptr);

/// dot(x, y) (2n flops). Summed by kern::par's fixed-block pairwise scheme,
/// so the result is bit-identical at every par::jobs() value (and equal to
/// the plain serial loop whenever n <= par::kReduceBlock).
double dot(std::span<const double> x, std::span<const double> y,
           OpCounts* counts = nullptr);

/// ||x||_2 (same deterministic summation as dot).
double norm2(std::span<const double> x, OpCounts* counts = nullptr);

/// y = A*x for row-major A (m x n).
void gemv(std::span<const double> a, int m, int n, std::span<const double> x,
          std::span<double> y, OpCounts* counts = nullptr);

/// C = A*B for row-major matrices (m x k)(k x n), cache-blocked.
/// `beta` selects accumulate (1) or overwrite (0).
void gemm(std::span<const double> a, std::span<const double> b, std::span<double> c,
          int m, int k, int n, double beta = 0.0, OpCounts* counts = nullptr);

/// Complex GEMM (CASTEP's subspace operations are ZGEMMs), cache-blocked;
/// bit-identical to zgemm_naive() at every par::jobs() value.
void zgemm(std::span<const cplx> a, std::span<const cplx> b, std::span<cplx> c,
           int m, int k, int n, OpCounts* counts = nullptr);

/// Reference (naive triple loop) GEMM used by tests to validate gemm().
void gemm_naive(std::span<const double> a, std::span<const double> b,
                std::span<double> c, int m, int k, int n);

/// Reference (unblocked serial) complex GEMM used by tests and bench_kernels
/// to validate zgemm()'s cache blocking.
void zgemm_naive(std::span<const cplx> a, std::span<const cplx> b,
                 std::span<cplx> c, int m, int k, int n);

/// Analytic counts (used by skeletons and verified against instrumented runs).
inline double gemm_flops(long m, long k, long n) { return 2.0 * m * k * n; }
inline double zgemm_flops(long m, long k, long n) { return 8.0 * m * k * n; }

} // namespace armstice::kern
