#include "kern/dense/eigen.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace armstice::kern {
namespace {

double off_diag_norm(const std::vector<double>& a, int n) {
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            const double v = a[static_cast<std::size_t>(i) * n + j];
            sum += 2.0 * v * v;
        }
    }
    return std::sqrt(sum);
}

} // namespace

EigenResult eigen_sym(std::span<const double> a_in, int n, double tol, int max_sweeps,
                      OpCounts* counts) {
    ARMSTICE_CHECK(n >= 1, "eigen_sym needs n >= 1");
    ARMSTICE_CHECK(a_in.size() == static_cast<std::size_t>(n) * n, "eigen_sym size");
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < i; ++j) {
            ARMSTICE_CHECK(std::abs(a_in[static_cast<std::size_t>(i) * n + j] -
                                    a_in[static_cast<std::size_t>(j) * n + i]) <
                               1e-10 * (1.0 + std::abs(a_in[static_cast<std::size_t>(i) * n + j])),
                           "eigen_sym requires a symmetric matrix");
        }
    }

    std::vector<double> a(a_in.begin(), a_in.end());
    std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i) * n + i] = 1.0;

    const double scale = off_diag_norm(a, n) + 1e-300;
    EigenResult res;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        ++res.sweeps;
        for (int p = 0; p < n - 1; ++p) {
            for (int q = p + 1; q < n; ++q) {
                const double apq = a[static_cast<std::size_t>(p) * n + q];
                if (std::abs(apq) < 1e-300) continue;
                const double app = a[static_cast<std::size_t>(p) * n + p];
                const double aqq = a[static_cast<std::size_t>(q) * n + q];
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;
                // Rotate rows/columns p and q of A.
                for (int k = 0; k < n; ++k) {
                    const double akp = a[static_cast<std::size_t>(k) * n + p];
                    const double akq = a[static_cast<std::size_t>(k) * n + q];
                    a[static_cast<std::size_t>(k) * n + p] = c * akp - s * akq;
                    a[static_cast<std::size_t>(k) * n + q] = s * akp + c * akq;
                }
                for (int k = 0; k < n; ++k) {
                    const double apk = a[static_cast<std::size_t>(p) * n + k];
                    const double aqk = a[static_cast<std::size_t>(q) * n + k];
                    a[static_cast<std::size_t>(p) * n + k] = c * apk - s * aqk;
                    a[static_cast<std::size_t>(q) * n + k] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors.
                for (int k = 0; k < n; ++k) {
                    const double vkp = v[static_cast<std::size_t>(k) * n + p];
                    const double vkq = v[static_cast<std::size_t>(k) * n + q];
                    v[static_cast<std::size_t>(k) * n + p] = c * vkp - s * vkq;
                    v[static_cast<std::size_t>(k) * n + q] = s * vkp + c * vkq;
                }
                if (counts) {
                    counts->flops += 18.0 * n;
                    counts->bytes_read += 48.0 * n;
                    counts->bytes_written += 48.0 * n;
                }
            }
        }
        if (off_diag_norm(a, n) < tol * scale) {
            res.converged = true;
            break;
        }
    }

    // Extract and sort ascending.
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int i, int j) {
        return a[static_cast<std::size_t>(i) * n + i] < a[static_cast<std::size_t>(j) * n + j];
    });
    res.values.resize(static_cast<std::size_t>(n));
    res.vectors.resize(static_cast<std::size_t>(n) * n);
    for (int j = 0; j < n; ++j) {
        const int src = order[static_cast<std::size_t>(j)];
        res.values[static_cast<std::size_t>(j)] =
            a[static_cast<std::size_t>(src) * n + src];
        for (int i = 0; i < n; ++i) {
            res.vectors[static_cast<std::size_t>(j) * n + i] =
                v[static_cast<std::size_t>(i) * n + src];
        }
    }
    return res;
}

std::vector<double> cholesky(std::span<const double> a, int n, OpCounts* counts) {
    ARMSTICE_CHECK(n >= 1, "cholesky needs n >= 1");
    ARMSTICE_CHECK(a.size() == static_cast<std::size_t>(n) * n, "cholesky size");
    std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
    for (int j = 0; j < n; ++j) {
        double diag = a[static_cast<std::size_t>(j) * n + j];
        for (int k = 0; k < j; ++k) {
            const double v = l[static_cast<std::size_t>(j) * n + k];
            diag -= v * v;
        }
        ARMSTICE_CHECK(diag > 0.0, "cholesky: matrix not positive definite");
        const double ljj = std::sqrt(diag);
        l[static_cast<std::size_t>(j) * n + j] = ljj;
        for (int i = j + 1; i < n; ++i) {
            double sum = a[static_cast<std::size_t>(i) * n + j];
            for (int k = 0; k < j; ++k) {
                sum -= l[static_cast<std::size_t>(i) * n + k] *
                       l[static_cast<std::size_t>(j) * n + k];
            }
            l[static_cast<std::size_t>(i) * n + j] = sum / ljj;
        }
    }
    if (counts) {
        const double nd = n;
        counts->flops += nd * nd * nd / 3.0;
        counts->bytes_read += 8.0 * nd * nd * nd / 6.0;
        counts->bytes_written += 8.0 * nd * (nd + 1.0) / 2.0;
    }
    return l;
}

std::vector<double> cholesky_solve(std::span<const double> l, int n,
                                   std::span<const double> b, OpCounts* counts) {
    ARMSTICE_CHECK(l.size() == static_cast<std::size_t>(n) * n, "cholesky_solve L size");
    ARMSTICE_CHECK(b.size() == static_cast<std::size_t>(n), "cholesky_solve b size");
    std::vector<double> y(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {  // L y = b
        double sum = b[static_cast<std::size_t>(i)];
        for (int k = 0; k < i; ++k) {
            sum -= l[static_cast<std::size_t>(i) * n + k] * y[static_cast<std::size_t>(k)];
        }
        y[static_cast<std::size_t>(i)] = sum / l[static_cast<std::size_t>(i) * n + i];
    }
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int i = n - 1; i >= 0; --i) {  // L^T x = y
        double sum = y[static_cast<std::size_t>(i)];
        for (int k = i + 1; k < n; ++k) {
            sum -= l[static_cast<std::size_t>(k) * n + i] * x[static_cast<std::size_t>(k)];
        }
        x[static_cast<std::size_t>(i)] = sum / l[static_cast<std::size_t>(i) * n + i];
    }
    if (counts) {
        counts->flops += 2.0 * static_cast<double>(n) * n;
        counts->bytes_read += 16.0 * static_cast<double>(n) * n;
        counts->bytes_written += 16.0 * static_cast<double>(n);
    }
    return x;
}

} // namespace armstice::kern
