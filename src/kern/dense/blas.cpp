#include "kern/dense/blas.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::kern {
namespace {
/// Block edge for the cache-blocked GEMM: 64x64 doubles = 32 KiB per tile,
/// three tiles fit comfortably in a 256 KiB L2.
constexpr int kBlock = 64;
/// Block edge for the cache-blocked ZGEMM: 48x48 complex doubles = 36 KiB
/// per tile; three tiles (~108 KiB) fit both an x86 256 KiB private L2 and a
/// core's share of the A64FX 8 MiB CMG L2 (DESIGN.md §12).
constexpr int kZBlock = 48;
} // namespace

void axpy(double a, std::span<const double> x, std::span<double> y, OpCounts* counts) {
    ARMSTICE_CHECK(x.size() == y.size(), "axpy size mismatch");
    par::parallel_for(static_cast<long>(x.size()), [&](par::Range r) {
        for (long i = r.begin; i < r.end; ++i) {
            y[static_cast<std::size_t>(i)] += a * x[static_cast<std::size_t>(i)];
        }
    });
    if (counts) {
        counts->flops += 2.0 * static_cast<double>(x.size());
        counts->bytes_read += 16.0 * static_cast<double>(x.size());
        counts->bytes_written += 8.0 * static_cast<double>(x.size());
    }
}

void waxpby(double a, std::span<const double> x, double b, std::span<const double> y,
            std::span<double> w, OpCounts* counts) {
    ARMSTICE_CHECK(x.size() == y.size() && x.size() == w.size(), "waxpby size mismatch");
    par::parallel_for(static_cast<long>(x.size()), [&](par::Range r) {
        for (long i = r.begin; i < r.end; ++i) {
            const auto u = static_cast<std::size_t>(i);
            w[u] = a * x[u] + b * y[u];
        }
    });
    if (counts) {
        counts->flops += 3.0 * static_cast<double>(x.size());
        counts->bytes_read += 16.0 * static_cast<double>(x.size());
        counts->bytes_written += 8.0 * static_cast<double>(x.size());
    }
}

double dot(std::span<const double> x, std::span<const double> y, OpCounts* counts) {
    ARMSTICE_CHECK(x.size() == y.size(), "dot size mismatch");
    const double sum = par::reduce_sum(static_cast<long>(x.size()), [&](par::Range r) {
        double s = 0.0;
        for (long i = r.begin; i < r.end; ++i) {
            s += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
        }
        return s;
    });
    if (counts) {
        counts->flops += 2.0 * static_cast<double>(x.size());
        counts->bytes_read += 16.0 * static_cast<double>(x.size());
    }
    return sum;
}

double norm2(std::span<const double> x, OpCounts* counts) {
    return std::sqrt(dot(x, x, counts));
}

void gemv(std::span<const double> a, int m, int n, std::span<const double> x,
          std::span<double> y, OpCounts* counts) {
    ARMSTICE_CHECK(a.size() == static_cast<std::size_t>(m) * n, "gemv A size mismatch");
    ARMSTICE_CHECK(x.size() == static_cast<std::size_t>(n), "gemv x size mismatch");
    ARMSTICE_CHECK(y.size() == static_cast<std::size_t>(m), "gemv y size mismatch");
    // Row-parallel; each y[i] is one serially accumulated row dot product.
    par::parallel_for(
        m,
        [&](par::Range rows) {
            for (long i = rows.begin; i < rows.end; ++i) {
                double sum = 0.0;
                const double* row = &a[static_cast<std::size_t>(i) * n];
                for (int j = 0; j < n; ++j) sum += row[j] * x[static_cast<std::size_t>(j)];
                y[static_cast<std::size_t>(i)] = sum;
            }
        },
        /*align=*/1, /*grain=*/64);
    if (counts) {
        counts->flops += 2.0 * m * n;
        counts->bytes_read += 8.0 * (static_cast<double>(m) * n + n);
        counts->bytes_written += 8.0 * m;
    }
}

void gemm(std::span<const double> a, std::span<const double> b, std::span<double> c,
          int m, int k, int n, double beta, OpCounts* counts) {
    ARMSTICE_CHECK(a.size() == static_cast<std::size_t>(m) * k, "gemm A size mismatch");
    ARMSTICE_CHECK(b.size() == static_cast<std::size_t>(k) * n, "gemm B size mismatch");
    ARMSTICE_CHECK(c.size() == static_cast<std::size_t>(m) * n, "gemm C size mismatch");
    if (beta == 0.0) std::fill(c.begin(), c.end(), 0.0);

    // Parallel over kBlock-aligned row stripes: each C row belongs to one
    // task and sees the same p0/j0 update order as the serial blocking.
    par::parallel_for(
        m,
        [&](par::Range rows) {
            for (long i0 = rows.begin; i0 < rows.end; i0 += kBlock) {
                const long i1 = std::min<long>(rows.end, i0 + kBlock);
                for (int p0 = 0; p0 < k; p0 += kBlock) {
                    const int p1 = std::min(k, p0 + kBlock);
                    for (int j0 = 0; j0 < n; j0 += kBlock) {
                        const int j1 = std::min(n, j0 + kBlock);
                        for (long i = i0; i < i1; ++i) {
                            double* crow = &c[static_cast<std::size_t>(i) * n];
                            const double* arow = &a[static_cast<std::size_t>(i) * k];
                            for (int p = p0; p < p1; ++p) {
                                const double aip = arow[p];
                                const double* brow = &b[static_cast<std::size_t>(p) * n];
                                for (int j = j0; j < j1; ++j) crow[j] += aip * brow[j];
                            }
                        }
                    }
                }
            }
        },
        /*align=*/kBlock, /*grain=*/kBlock);
    if (counts) {
        counts->flops += gemm_flops(m, k, n);
        counts->bytes_read += 8.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n);
        counts->bytes_written += 8.0 * static_cast<double>(m) * n;
        counts->ws_bytes = std::max(
            counts->ws_bytes,
            std::min(3.0 * kBlock * kBlock,
                     static_cast<double>(m) * k + static_cast<double>(k) * n +
                         static_cast<double>(m) * n) *
                8.0);
    }
}

void zgemm(std::span<const cplx> a, std::span<const cplx> b, std::span<cplx> c,
           int m, int k, int n, OpCounts* counts) {
    ARMSTICE_CHECK(a.size() == static_cast<std::size_t>(m) * k, "zgemm A size mismatch");
    ARMSTICE_CHECK(b.size() == static_cast<std::size_t>(k) * n, "zgemm B size mismatch");
    ARMSTICE_CHECK(c.size() == static_cast<std::size_t>(m) * n, "zgemm C size mismatch");
    std::fill(c.begin(), c.end(), cplx{0.0, 0.0});
    // Blocked like gemm(): kZBlock-aligned row stripes, p0/j0 tile loops
    // inside. Each c[i][j] still receives its k additions in ascending-p
    // order (p0 blocks ascend, p ascends within a block), so the result is
    // bit-identical to the unblocked row loop — zgemm_naive() — at any jobs.
    par::parallel_for(
        m,
        [&](par::Range rows) {
            for (long i0 = rows.begin; i0 < rows.end; i0 += kZBlock) {
                const long i1 = std::min<long>(rows.end, i0 + kZBlock);
                for (int p0 = 0; p0 < k; p0 += kZBlock) {
                    const int p1 = std::min(k, p0 + kZBlock);
                    for (int j0 = 0; j0 < n; j0 += kZBlock) {
                        const int j1 = std::min(n, j0 + kZBlock);
                        for (long i = i0; i < i1; ++i) {
                            cplx* crow = &c[static_cast<std::size_t>(i) * n];
                            const cplx* arow = &a[static_cast<std::size_t>(i) * k];
                            for (int p = p0; p < p1; ++p) {
                                const cplx aip = arow[p];
                                const cplx* brow = &b[static_cast<std::size_t>(p) * n];
                                for (int j = j0; j < j1; ++j) crow[j] += aip * brow[j];
                            }
                        }
                    }
                }
            }
        },
        /*align=*/kZBlock, /*grain=*/kZBlock);
    if (counts) {
        counts->flops += zgemm_flops(m, k, n);
        counts->bytes_read +=
            16.0 * (static_cast<double>(m) * k + static_cast<double>(k) * n);
        counts->bytes_written += 16.0 * static_cast<double>(m) * n;
        counts->ws_bytes = std::max(
            counts->ws_bytes,
            std::min(3.0 * kZBlock * kZBlock,
                     static_cast<double>(m) * k + static_cast<double>(k) * n +
                         static_cast<double>(m) * n) *
                16.0);
    }
}

void zgemm_naive(std::span<const cplx> a, std::span<const cplx> b,
                 std::span<cplx> c, int m, int k, int n) {
    ARMSTICE_CHECK(c.size() == static_cast<std::size_t>(m) * n, "zgemm_naive C size");
    std::fill(c.begin(), c.end(), cplx{0.0, 0.0});
    // Pointer arithmetic via data(): &span[i] on a degenerate (k or n == 0)
    // operand would bind a reference into an empty span.
    for (int i = 0; i < m; ++i) {
        cplx* crow = c.data() + static_cast<std::size_t>(i) * n;
        const cplx* arow = a.data() + static_cast<std::size_t>(i) * k;
        for (int p = 0; p < k; ++p) {
            const cplx aip = arow[p];
            const cplx* brow = b.data() + static_cast<std::size_t>(p) * n;
            for (int j = 0; j < n; ++j) crow[j] += aip * brow[j];
        }
    }
}

void gemm_naive(std::span<const double> a, std::span<const double> b,
                std::span<double> c, int m, int k, int n) {
    ARMSTICE_CHECK(c.size() == static_cast<std::size_t>(m) * n, "gemm_naive C size");
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
            double sum = 0.0;
            for (int p = 0; p < k; ++p) {
                sum += a[static_cast<std::size_t>(i) * k + p] *
                       b[static_cast<std::size_t>(p) * n + j];
            }
            c[static_cast<std::size_t>(i) * n + j] = sum;
        }
    }
}

} // namespace armstice::kern
