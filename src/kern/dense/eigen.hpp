#pragma once
// Dense symmetric eigensolver (cyclic Jacobi) and Cholesky factorisation —
// the subspace-diagonalisation substrate of the CASTEP reference (plane-wave
// DFT diagonalises the bands x bands subspace Hamiltonian every SCF cycle).

#include "kern/counters.hpp"

#include <span>
#include <vector>

namespace armstice::kern {

struct EigenResult {
    std::vector<double> values;   ///< ascending eigenvalues
    std::vector<double> vectors;  ///< column-major: vectors[j*n + i] = v_j[i]
    int sweeps = 0;               ///< Jacobi sweeps performed
    bool converged = false;
};

/// Eigendecomposition of a symmetric n x n matrix (row-major) by cyclic
/// Jacobi rotations. Throws util::Error if `a` is not square/symmetric.
EigenResult eigen_sym(std::span<const double> a, int n, double tol = 1e-12,
                      int max_sweeps = 30, OpCounts* counts = nullptr);

/// Cholesky factorisation A = L L^T of an SPD matrix (row-major); returns
/// the lower factor. Throws util::Error when A is not positive definite.
std::vector<double> cholesky(std::span<const double> a, int n,
                             OpCounts* counts = nullptr);

/// Solve A x = b given the Cholesky factor L (forward + back substitution).
std::vector<double> cholesky_solve(std::span<const double> l, int n,
                                   std::span<const double> b,
                                   OpCounts* counts = nullptr);

} // namespace armstice::kern
