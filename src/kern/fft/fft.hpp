#pragma once
// Complex FFTs — the substrate standing in for FFTW/MKL-DFT/SSL2 in the
// CASTEP reference application. Iterative radix-2 Cooley-Tukey with exact
// operation counting (the conventional 5 N log2 N flop convention).

#include "kern/counters.hpp"
#include "kern/dense/blas.hpp"

#include <span>
#include <vector>

namespace armstice::kern {

/// In-place forward DFT of power-of-two length.
void fft(std::span<cplx> data, OpCounts* counts = nullptr);
/// In-place inverse DFT (normalised by 1/N).
void ifft(std::span<cplx> data, OpCounts* counts = nullptr);

/// Naive O(N^2) DFT used by tests to validate fft().
std::vector<cplx> dft_naive(std::span<const cplx> data);

/// Forward/inverse DFT of *arbitrary* length via Bluestein's chirp-z
/// algorithm (built on the power-of-two FFT). Real plane-wave codes use
/// non-power-of-two grids (CASTEP's TiN grid is 90^3); this provides them
/// in O(n log n).
void fft_any(std::span<cplx> data, OpCounts* counts = nullptr);
void ifft_any(std::span<cplx> data, OpCounts* counts = nullptr);

/// In-place 3D FFT on an n x n x n cube (n power of two): 1D transforms
/// along x, then y, then z (strided pencils).
void fft3d(std::span<cplx> data, int n, OpCounts* counts = nullptr);
void ifft3d(std::span<cplx> data, int n, OpCounts* counts = nullptr);

/// Conventional flop counts used by the CASTEP skeleton.
double fft_flops(long n);              ///< 5 n log2 n
double fft3d_flops(long n);            ///< 3 n^2 pencils of fft_flops(n)

} // namespace armstice::kern
