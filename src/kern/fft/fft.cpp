#include "kern/fft/fft.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <cmath>
#include <numbers>

namespace armstice::kern {
namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

int log2_int(std::size_t n) {
    int l = 0;
    while ((std::size_t{1} << l) < n) ++l;
    return l;
}

void fft_impl(std::span<cplx> a, bool inverse) {
    const std::size_t n = a.size();
    ARMSTICE_CHECK(is_pow2(n), "fft length must be a power of two");
    if (n <= 1) return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(a[i], a[j]);
    }

    const double sign = inverse ? 1.0 : -1.0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
        const cplx wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            cplx w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const cplx u = a[i + k];
                const cplx v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        const double inv = 1.0 / static_cast<double>(n);
        for (auto& x : a) x *= inv;
    }
}

} // namespace

double fft_flops(long n) {
    if (n <= 1) return 0.0;
    return 5.0 * static_cast<double>(n) * log2_int(static_cast<std::size_t>(n));
}

double fft3d_flops(long n) {
    return 3.0 * static_cast<double>(n) * static_cast<double>(n) * fft_flops(n);
}

void fft(std::span<cplx> data, OpCounts* counts) {
    fft_impl(data, false);
    if (counts) {
        counts->flops += fft_flops(static_cast<long>(data.size()));
        // log2(n) passes over the data.
        const double passes = log2_int(data.size());
        counts->bytes_read += 16.0 * static_cast<double>(data.size()) * passes;
        counts->bytes_written += 16.0 * static_cast<double>(data.size()) * passes;
    }
}

void ifft(std::span<cplx> data, OpCounts* counts) {
    fft_impl(data, true);
    if (counts) {
        counts->flops += fft_flops(static_cast<long>(data.size())) +
                         2.0 * static_cast<double>(data.size());
        const double passes = log2_int(data.size()) + 1.0;
        counts->bytes_read += 16.0 * static_cast<double>(data.size()) * passes;
        counts->bytes_written += 16.0 * static_cast<double>(data.size()) * passes;
    }
}

std::vector<cplx> dft_naive(std::span<const cplx> data) {
    const std::size_t n = data.size();
    std::vector<cplx> out(n, cplx{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                               static_cast<double>(n);
            out[k] += data[j] * cplx(std::cos(ang), std::sin(ang));
        }
    }
    return out;
}

void fft_any(std::span<cplx> data, OpCounts* counts) {
    const std::size_t n = data.size();
    if (n <= 1) return;
    if (is_pow2(n)) {
        fft(data, counts);
        return;
    }
    // Bluestein: x_k * w^(k^2/2) convolved with the conjugate chirp, where
    // w = exp(-2*pi*i/n). Phases use k^2 mod 2n to stay accurate for large k.
    const std::size_t m = std::size_t{1} << (log2_int(2 * n - 1));
    auto chirp = [&](std::size_t k, double sign) {
        const unsigned long long k2 =
            (static_cast<unsigned long long>(k) * k) % (2 * n);
        const double ang = sign * std::numbers::pi * static_cast<double>(k2) /
                           static_cast<double>(n);
        return cplx(std::cos(ang), std::sin(ang));
    };

    std::vector<cplx> a(m, cplx{0, 0}), b(m, cplx{0, 0});
    for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp(k, -1.0);
    b[0] = chirp(0, +1.0);
    for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = chirp(k, +1.0);

    fft(a, counts);
    fft(b, counts);
    for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
    ifft(a, counts);
    for (std::size_t k = 0; k < n; ++k) data[k] = a[k] * chirp(k, -1.0);
    if (counts) {
        counts->flops += 14.0 * static_cast<double>(n) + 6.0 * static_cast<double>(m);
        counts->bytes_read += 16.0 * 4.0 * static_cast<double>(m);
        counts->bytes_written += 16.0 * 2.0 * static_cast<double>(m);
    }
}

void ifft_any(std::span<cplx> data, OpCounts* counts) {
    const std::size_t n = data.size();
    if (n <= 1) return;
    // DFT^-1(x) = conj(DFT(conj(x))) / n.
    for (auto& x : data) x = std::conj(x);
    fft_any(data, counts);
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : data) x = std::conj(x) * inv;
    if (counts) {
        counts->flops += 2.0 * static_cast<double>(n);
        counts->bytes_read += 16.0 * 2.0 * static_cast<double>(n);
        counts->bytes_written += 16.0 * 2.0 * static_cast<double>(n);
    }
}

namespace {

void fft3d_impl(std::span<cplx> data, int n, bool inverse, OpCounts* counts) {
    ARMSTICE_CHECK(n >= 1 && is_pow2(static_cast<std::size_t>(n)),
                   "fft3d size must be a power of two");
    const std::size_t nn = static_cast<std::size_t>(n);
    ARMSTICE_CHECK(data.size() == nn * nn * nn, "fft3d data size mismatch");
    auto line = [&](std::size_t base, std::size_t stride, std::span<cplx> buf) {
        for (std::size_t i = 0; i < nn; ++i) buf[i] = data[base + i * stride];
        fft_impl(buf, inverse);
        for (std::size_t i = 0; i < nn; ++i) data[base + i * stride] = buf[i];
    };
    // Each pass transforms n^2 disjoint pencil lines — parallel over lines
    // with per-task scratch. Counts are added analytically below (the exact
    // integer totals the per-line instrumentation used to accumulate), so
    // they never depend on how the lines were partitioned.
    auto pass = [&](auto base_of) {
        par::parallel_for(
            static_cast<long>(nn * nn),
            [&](par::Range lines) {
                std::vector<cplx> buf(nn);
                for (long l = lines.begin; l < lines.end; ++l) {
                    const auto [base, stride] = base_of(static_cast<std::size_t>(l));
                    line(base, stride, buf);
                }
            },
            /*align=*/1, /*grain=*/16);
    };
    struct Pencil {
        std::size_t base, stride;
    };
    // x-pencils (contiguous), y-pencils (stride n), z-pencils (stride n^2).
    pass([&](std::size_t l) { return Pencil{l * nn, 1}; });
    pass([&](std::size_t l) { return Pencil{(l / nn) * nn * nn + l % nn, nn}; });
    pass([&](std::size_t l) { return Pencil{(l / nn) * nn + l % nn, nn * nn}; });

    if (counts) {
        const double lines_total = 3.0 * static_cast<double>(nn) * static_cast<double>(nn);
        const double per_line_flops =
            fft_flops(n) + (inverse ? 2.0 * static_cast<double>(nn) : 0.0);
        const double passes = log2_int(nn) + (inverse ? 1.0 : 0.0);
        counts->flops += lines_total * per_line_flops;
        counts->bytes_read += lines_total * 16.0 * static_cast<double>(nn) * passes;
        counts->bytes_written += lines_total * 16.0 * static_cast<double>(nn) * passes;
    }
}

} // namespace

void fft3d(std::span<cplx> data, int n, OpCounts* counts) {
    fft3d_impl(data, n, false, counts);
}

void ifft3d(std::span<cplx> data, int n, OpCounts* counts) {
    fft3d_impl(data, n, true, counts);
}

} // namespace armstice::kern
