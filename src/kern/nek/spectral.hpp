#pragma once
// Spectral-element kernels — the real numerics behind the Nekbone reference:
// Gauss-Lobatto-Legendre quadrature, the GLL differentiation matrix, and the
// matrix-free `ax` operator (local_grad3 -> geometric factors ->
// local_grad3^T -> direct-stiffness summation), which is the kernel the
// paper reports accounts for >75% of Nekbone's runtime.

#include "kern/counters.hpp"
#include "kern/sparse/cg.hpp"  // CgResult

#include <span>
#include <vector>

namespace armstice::kern {

/// Gauss-Lobatto-Legendre points (ascending in [-1,1]) and weights for
/// `n` points (polynomial order n-1).
void gll_points(int n, std::vector<double>& x, std::vector<double>& w);

/// GLL differentiation matrix D (row-major n x n): (Du)_i = sum_j D_ij u_j.
std::vector<double> gll_deriv_matrix(int n);

/// A chain of E spectral elements, each nx1^3 GLL points, coupled by shared
/// faces along x (Nekbone's "linear geometry"). The ax operator applies the
/// Poisson stiffness with diagonal geometric factors.
class NekMesh {
public:
    NekMesh(int nelems, int nx1);

    [[nodiscard]] int nelems() const { return nelems_; }
    [[nodiscard]] int nx1() const { return nx1_; }
    /// Element-local dofs (duplicated at shared faces, Nekbone layout).
    [[nodiscard]] long local_dofs() const {
        return static_cast<long>(nelems_) * nx1_ * nx1_ * nx1_;
    }

    /// w = A u (includes direct-stiffness summation and the Dirichlet mask
    /// on the first face, which makes A SPD on the masked space).
    void ax(std::span<const double> u, std::span<double> w,
            OpCounts* counts = nullptr) const;

    /// Nekbone's solver: CG on A u = f for `iters` iterations (Nekbone runs
    /// a fixed iteration count rather than to tolerance).
    CgResult cg(std::span<const double> f, std::span<double> u, int iters) const;

    /// Direct-stiffness summation (gather-scatter over shared faces).
    void dssum(std::span<double> u, OpCounts* counts = nullptr) const;
    /// Zero the masked (Dirichlet) dofs: the x=0 face of element 0.
    void mask(std::span<double> u) const;

    /// Exact analytic flop count of one ax call (cross-checked in tests):
    /// 12*nx1^4 + 15*nx1^3 per element plus dssum adds.
    static double ax_flops(int nelems, int nx1);

private:
    int nelems_;
    int nx1_;
    std::vector<double> dmat_;   ///< nx1 x nx1 differentiation matrix
    std::vector<double> geom_;   ///< diagonal geometric factor per point
};

} // namespace armstice::kern
