#include "kern/nek/spectral.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace armstice::kern {
namespace {

/// Legendre P_N(x) and its derivative via the three-term recurrence.
void legendre(int n, double x, double& p, double& dp) {
    double p0 = 1.0, p1 = x;
    if (n == 0) {
        p = 1.0;
        dp = 0.0;
        return;
    }
    for (int k = 2; k <= n; ++k) {
        const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) / k;
        p0 = p1;
        p1 = pk;
    }
    p = p1;
    // P'_N(x) = N (x P_N - P_{N-1}) / (x^2 - 1), valid for |x| != 1.
    dp = (std::abs(x) < 1.0) ? n * (x * p1 - p0) / (x * x - 1.0) : 0.0;
}

} // namespace

void gll_points(int n, std::vector<double>& x, std::vector<double>& w) {
    ARMSTICE_CHECK(n >= 2, "GLL needs >=2 points");
    const int big_n = n - 1;  // polynomial order
    x.assign(static_cast<std::size_t>(n), 0.0);
    w.assign(static_cast<std::size_t>(n), 0.0);
    x[0] = -1.0;
    x[static_cast<std::size_t>(n - 1)] = 1.0;

    // Interior points: roots of P'_N. Newton from Chebyshev-Lobatto guesses.
    for (int j = 1; j < n - 1; ++j) {
        double xi = -std::cos(std::numbers::pi * j / big_n);
        for (int it = 0; it < 100; ++it) {
            double p, dp;
            legendre(big_n, xi, p, dp);
            // f = P'_N, f' = P''_N = (2x P'_N - N(N+1) P_N) / (1 - x^2).
            const double f = dp;
            const double fp = (2.0 * xi * dp - big_n * (big_n + 1.0) * p) /
                              (1.0 - xi * xi);
            const double step = f / fp;
            xi -= step;
            if (std::abs(step) < 1e-15) break;
        }
        x[static_cast<std::size_t>(j)] = xi;
    }
    std::sort(x.begin(), x.end());

    for (int j = 0; j < n; ++j) {
        double p, dp;
        legendre(big_n, x[static_cast<std::size_t>(j)], p, dp);
        w[static_cast<std::size_t>(j)] = 2.0 / (big_n * (big_n + 1.0) * p * p);
    }
}

std::vector<double> gll_deriv_matrix(int n) {
    std::vector<double> x, w;
    gll_points(n, x, w);
    const int big_n = n - 1;
    std::vector<double> d(static_cast<std::size_t>(n) * n, 0.0);
    std::vector<double> pn(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        double p, dp;
        legendre(big_n, x[static_cast<std::size_t>(i)], p, dp);
        pn[static_cast<std::size_t>(i)] = p;
    }
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (i == j) continue;
            d[static_cast<std::size_t>(i) * n + j] =
                pn[static_cast<std::size_t>(i)] /
                (pn[static_cast<std::size_t>(j)] *
                 (x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)]));
        }
    }
    d[0] = -big_n * (big_n + 1.0) / 4.0;
    d[static_cast<std::size_t>(n) * n - 1] = big_n * (big_n + 1.0) / 4.0;
    return d;
}

NekMesh::NekMesh(int nelems, int nx1) : nelems_(nelems), nx1_(nx1) {
    ARMSTICE_CHECK(nelems >= 1, "NekMesh needs >=1 element");
    ARMSTICE_CHECK(nx1 >= 2, "NekMesh needs >=2 points per direction");
    dmat_ = gll_deriv_matrix(nx1);
    std::vector<double> x, w;
    gll_points(nx1, x, w);
    // Diagonal geometric factor: quadrature weight product (unit-cube
    // elements); stored once per point, reused by all elements.
    geom_.resize(static_cast<std::size_t>(nx1) * nx1 * nx1);
    for (int k = 0; k < nx1; ++k) {
        for (int j = 0; j < nx1; ++j) {
            for (int i = 0; i < nx1; ++i) {
                geom_[(static_cast<std::size_t>(k) * nx1 + j) * nx1 +
                      static_cast<std::size_t>(i)] =
                    w[static_cast<std::size_t>(i)] * w[static_cast<std::size_t>(j)] *
                    w[static_cast<std::size_t>(k)];
            }
        }
    }
}

void NekMesh::dssum(std::span<double> u, OpCounts* counts) const {
    const int n = nx1_;
    const std::size_t epts = static_cast<std::size_t>(n) * n * n;
    for (int e = 0; e + 1 < nelems_; ++e) {
        double* left = &u[static_cast<std::size_t>(e) * epts];
        double* right = &u[(static_cast<std::size_t>(e) + 1) * epts];
        for (int k = 0; k < n; ++k) {
            for (int j = 0; j < n; ++j) {
                const std::size_t lo =
                    (static_cast<std::size_t>(k) * n + j) * n + static_cast<std::size_t>(n - 1);
                const std::size_t ro = (static_cast<std::size_t>(k) * n + j) * n;
                const double s = left[lo] + right[ro];
                left[lo] = s;
                right[ro] = s;
            }
        }
    }
    if (counts) {
        counts->flops += static_cast<double>(nelems_ - 1) * n * n;
        counts->bytes_read += 16.0 * static_cast<double>(nelems_ - 1) * n * n;
        counts->bytes_written += 16.0 * static_cast<double>(nelems_ - 1) * n * n;
    }
}

void NekMesh::mask(std::span<double> u) const {
    const int n = nx1_;
    for (int k = 0; k < n; ++k) {
        for (int j = 0; j < n; ++j) {
            u[(static_cast<std::size_t>(k) * n + j) * n] = 0.0;  // x=0 face of elem 0
        }
    }
}

void NekMesh::ax(std::span<const double> u, std::span<double> w, OpCounts* counts) const {
    const int n = nx1_;
    const std::size_t epts = static_cast<std::size_t>(n) * n * n;
    ARMSTICE_CHECK(u.size() == static_cast<std::size_t>(local_dofs()), "ax u size");
    ARMSTICE_CHECK(w.size() == u.size(), "ax w size");

    const double* d = dmat_.data();

    // Element-parallel: every element writes only its own w block, with
    // per-task gradient scratch. dssum (the inter-element face coupling)
    // runs serially afterwards.
    par::parallel_for(
        nelems_,
        [&](par::Range elems) {
            std::vector<double> ur(epts), us(epts), ut(epts);
            for (long e = elems.begin; e < elems.end; ++e) {
                const double* ue = &u[static_cast<std::size_t>(e) * epts];
                double* we = &w[static_cast<std::size_t>(e) * epts];
                auto at = [n](int i, int j, int k) {
                    return (static_cast<std::size_t>(k) * n + j) * n +
                           static_cast<std::size_t>(i);
                };

                // local_grad3: ur = D u (x), us = u D^T (y), ut = (z).
                for (int k = 0; k < n; ++k) {
                    for (int j = 0; j < n; ++j) {
                        for (int i = 0; i < n; ++i) {
                            double sr = 0, ss = 0, st = 0;
                            for (int l = 0; l < n; ++l) {
                                sr += d[static_cast<std::size_t>(i) * n + l] * ue[at(l, j, k)];
                                ss += d[static_cast<std::size_t>(j) * n + l] * ue[at(i, l, k)];
                                st += d[static_cast<std::size_t>(k) * n + l] * ue[at(i, j, l)];
                            }
                            ur[at(i, j, k)] = sr;
                            us[at(i, j, k)] = ss;
                            ut[at(i, j, k)] = st;
                        }
                    }
                }

                // Geometric factors (diagonal metric: g2=g3=g5=0, g1=g4=g6=geom).
                // Nekbone applies the full 6-term symmetric metric; we keep the
                // 15-flop structure with the off-diagonal terms explicitly zero.
                for (std::size_t p = 0; p < epts; ++p) {
                    const double g1 = geom_[p], g4 = geom_[p], g6 = geom_[p];
                    const double g2 = 0.0, g3 = 0.0, g5 = 0.0;
                    const double a = g1 * ur[p] + g2 * us[p] + g3 * ut[p];
                    const double b = g2 * ur[p] + g4 * us[p] + g5 * ut[p];
                    const double c = g3 * ur[p] + g5 * us[p] + g6 * ut[p];
                    ur[p] = a;
                    us[p] = b;
                    ut[p] = c;
                }

                // local_grad3^T: w = D^T ur + us D + ...
                for (int k = 0; k < n; ++k) {
                    for (int j = 0; j < n; ++j) {
                        for (int i = 0; i < n; ++i) {
                            double sum = 0;
                            for (int l = 0; l < n; ++l) {
                                sum += d[static_cast<std::size_t>(l) * n + i] * ur[at(l, j, k)];
                                sum += d[static_cast<std::size_t>(l) * n + j] * us[at(i, l, k)];
                                sum += d[static_cast<std::size_t>(l) * n + k] * ut[at(i, j, l)];
                            }
                            we[at(i, j, k)] = sum;
                        }
                    }
                }
            }
        },
        /*align=*/1, /*grain=*/2);

    if (counts) {
        counts->flops += ax_flops(nelems_, n) -
                         static_cast<double>(nelems_ - 1) * n * n;  // dssum adds below
        const double epts_d = static_cast<double>(epts);
        counts->bytes_read += nelems_ * (8.0 * epts_d * 8.0);   // u, D rows, temps
        counts->bytes_written += nelems_ * (8.0 * epts_d * 4.0);
    }

    dssum(w, counts);
    mask(w);
}

double NekMesh::ax_flops(int nelems, int nx1) {
    const double n4 = static_cast<double>(nx1) * nx1 * nx1 * nx1;
    const double n3 = static_cast<double>(nx1) * nx1 * nx1;
    // grad: 3 directions x 2 flops x n^4; metric: 15 n^3; grad^T: 6 n^4;
    // dssum: (E-1) n^2.
    return nelems * (12.0 * n4 + 15.0 * n3) +
           static_cast<double>(nelems - 1) * nx1 * nx1;
}

CgResult NekMesh::cg(std::span<const double> f, std::span<double> u, int iters) const {
    const std::size_t n = static_cast<std::size_t>(local_dofs());
    ARMSTICE_CHECK(f.size() == n && u.size() == n, "nek cg size mismatch");
    ARMSTICE_CHECK(iters >= 1, "nek cg needs >=1 iteration");

    // Multiplicity weights: shared face dofs count 1/2 (Nekbone's vmult).
    std::vector<double> vmult(n, 1.0);
    {
        const int nn = nx1_;
        const std::size_t epts = static_cast<std::size_t>(nn) * nn * nn;
        for (int e = 0; e + 1 < nelems_; ++e) {
            for (int k = 0; k < nn; ++k) {
                for (int j = 0; j < nn; ++j) {
                    vmult[static_cast<std::size_t>(e) * epts +
                          (static_cast<std::size_t>(k) * nn + j) * nn + (nn - 1)] = 0.5;
                    vmult[(static_cast<std::size_t>(e) + 1) * epts +
                          (static_cast<std::size_t>(k) * nn + j) * nn] = 0.5;
                }
            }
        }
    }
    // Multiplicity-weighted dot via the fixed-block pairwise reduction, so
    // the CG residual history is bit-identical at every thread count.
    auto wdot = [&](std::span<const double> a, std::span<const double> b) {
        return par::reduce_sum(static_cast<long>(n), [&](par::Range r) {
            double s = 0;
            for (long i = r.begin; i < r.end; ++i) {
                const auto u = static_cast<std::size_t>(i);
                s += a[u] * b[u] * vmult[u];
            }
            return s;
        });
    };

    CgResult res;
    std::vector<double> r(f.begin(), f.end()), p(n), apv(n);
    std::fill(u.begin(), u.end(), 0.0);
    mask(r);
    std::copy(r.begin(), r.end(), p.begin());
    double rr = wdot(r, r);
    const double r0 = std::sqrt(rr);
    res.counts.flops += 3.0 * static_cast<double>(n);

    for (int it = 0; it < iters && rr > 0.0; ++it) {
        ax(p, apv, &res.counts);
        const double pap = wdot(p, apv);
        ARMSTICE_CHECK(pap > 0.0, "nek cg: operator not SPD");
        const double alpha = rr / pap;
        par::parallel_for(static_cast<long>(n), [&](par::Range rng) {
            for (long i = rng.begin; i < rng.end; ++i) {
                const auto ii = static_cast<std::size_t>(i);
                u[ii] += alpha * p[ii];
                r[ii] -= alpha * apv[ii];
            }
        });
        const double rr_new = wdot(r, r);
        const double beta = rr_new / rr;
        rr = rr_new;
        par::parallel_for(static_cast<long>(n), [&](par::Range rng) {
            for (long i = rng.begin; i < rng.end; ++i) {
                const auto ii = static_cast<std::size_t>(i);
                p[ii] = r[ii] + beta * p[ii];
            }
        });
        res.counts.flops += 13.0 * static_cast<double>(n);
        res.iterations = it + 1;
        res.residuals.push_back(r0 > 0 ? std::sqrt(rr) / r0 : 0.0);
    }
    res.final_residual = res.residuals.empty() ? 0.0 : res.residuals.back();
    res.converged = res.final_residual < 1e-6;
    return res;
}

} // namespace armstice::kern
