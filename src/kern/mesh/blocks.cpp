#include "kern/mesh/blocks.hpp"

#include "kern/par.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::kern {

BlockDistribution BlockDistribution::round_robin(int blocks, int ranks) {
    ARMSTICE_CHECK(blocks >= 1 && ranks >= 1, "bad distribution shape");
    BlockDistribution d;
    d.blocks = blocks;
    d.ranks = ranks;
    d.owner.resize(static_cast<std::size_t>(blocks));
    d.blocks_of.assign(static_cast<std::size_t>(ranks), 0);
    for (int b = 0; b < blocks; ++b) {
        const int r = b % ranks;
        d.owner[static_cast<std::size_t>(b)] = r;
        d.blocks_of[static_cast<std::size_t>(r)] += 1;
    }
    d.max_blocks_per_rank = *std::max_element(d.blocks_of.begin(), d.blocks_of.end());
    d.active_ranks = static_cast<int>(
        std::count_if(d.blocks_of.begin(), d.blocks_of.end(), [](int c) { return c > 0; }));
    return d;
}

double BlockDistribution::balance() const {
    ARMSTICE_CHECK(max_blocks_per_rank > 0, "empty distribution");
    const double mean = static_cast<double>(blocks) / ranks;
    return mean / max_blocks_per_rank;
}

std::vector<long> tile_cells(long nx, long ny, int blocks) {
    ARMSTICE_CHECK(nx >= 1 && ny >= 1 && blocks >= 1, "bad tiling shape");
    // Near-square tiling: bx x by tiles with bx*by >= blocks, bx ~ sqrt.
    int bx = std::max(1, static_cast<int>(std::floor(std::sqrt(static_cast<double>(blocks)))));
    while (blocks % bx != 0) --bx;
    const int by = blocks / bx;
    // Each axis uses kern::par's balanced partition (earlier parts one cell
    // larger); split() omits empty parts, so tiles past the axis extent get
    // zero cells.
    const auto row_parts = par::split(ny, by);
    const auto col_parts = par::split(nx, bx);
    std::vector<long> cells;
    cells.reserve(static_cast<std::size_t>(blocks));
    for (int j = 0; j < by; ++j) {
        const long rows =
            j < static_cast<int>(row_parts.size()) ? row_parts[static_cast<std::size_t>(j)].size() : 0;
        for (int i = 0; i < bx; ++i) {
            const long cols =
                i < static_cast<int>(col_parts.size()) ? col_parts[static_cast<std::size_t>(i)].size() : 0;
            cells.push_back(rows * cols);
        }
    }
    return cells;
}

} // namespace armstice::kern
