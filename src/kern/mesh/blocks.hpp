#pragma once
// Structured block decomposition — COSA's parallelisation unit. The paper's
// Fig 4 crossover is a load-balance effect of distributing 800 grid blocks
// over process counts that do not divide 800; this module computes exactly
// that distribution.

#include <vector>

namespace armstice::kern {

struct BlockDistribution {
    int blocks = 0;
    int ranks = 0;
    std::vector<int> owner;        ///< block -> rank
    std::vector<int> blocks_of;    ///< rank -> number of blocks
    int max_blocks_per_rank = 0;   ///< the load-balance bottleneck
    int active_ranks = 0;          ///< ranks that own >= 1 block

    /// COSA's distribution: blocks dealt round-robin to ranks. With
    /// blocks < ranks the trailing ranks are idle (Fulhame at 16 nodes:
    /// 1024 processes, 800 blocks -> 224 idle); with blocks % ranks != 0
    /// some ranks carry one extra block (A64FX at 16 nodes: 768 processes,
    /// 32 of them carry 2 blocks).
    static BlockDistribution round_robin(int blocks, int ranks);

    /// Parallel efficiency of the distribution: mean load / max load.
    [[nodiscard]] double balance() const;
};

/// Split an (nx, ny) plane into `blocks` near-square tiles; returns per-block
/// cell counts (used by the COSA reference at laptop scale).
std::vector<long> tile_cells(long nx, long ny, int blocks);

} // namespace armstice::kern
