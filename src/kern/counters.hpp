#pragma once
// Operation counters shared by all real kernels. Each kernel function takes
// an optional OpCounts* and adds the exact FLOPs and memory traffic it
// performs; property tests cross-check these instrumented counts against the
// analytic counts the application skeletons feed the simulator
// (DESIGN.md §1, "Counted exactly").

#include <algorithm>

namespace armstice::kern {

struct OpCounts {
    double flops = 0;
    double bytes_read = 0;
    double bytes_written = 0;
    /// Peak bytes resident while the kernel runs — the working-set input of
    /// the ECM memory-hierarchy model (arch/ecm.hpp). Zero (the default)
    /// means "no reuse information": phases built from such counts keep the
    /// v3 streaming-from-memory pricing bit-exactly, so kernels that do not
    /// report a working set never change model output
    /// (tests/arch/test_ecm_model.cpp pins this).
    double ws_bytes = 0;

    [[nodiscard]] double bytes() const { return bytes_read + bytes_written; }

    OpCounts& operator+=(const OpCounts& o) {
        flops += o.flops;
        bytes_read += o.bytes_read;
        bytes_written += o.bytes_written;
        // Working sets do not add across sequentially executed kernels; the
        // peak footprint is the max of the phases' footprints.
        ws_bytes = std::max(ws_bytes, o.ws_bytes);
        return *this;
    }
};

} // namespace armstice::kern
