#pragma once
// Operation counters shared by all real kernels. Each kernel function takes
// an optional OpCounts* and adds the exact FLOPs and memory traffic it
// performs; property tests cross-check these instrumented counts against the
// analytic counts the application skeletons feed the simulator
// (DESIGN.md §1, "Counted exactly").

namespace armstice::kern {

struct OpCounts {
    double flops = 0;
    double bytes_read = 0;
    double bytes_written = 0;

    [[nodiscard]] double bytes() const { return bytes_read + bytes_written; }

    OpCounts& operator+=(const OpCounts& o) {
        flops += o.flops;
        bytes_read += o.bytes_read;
        bytes_written += o.bytes_written;
        return *this;
    }
};

} // namespace armstice::kern
