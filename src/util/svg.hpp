#pragma once
// SVG line charts — publication-style output for the figure benches, next
// to the ASCII plots (same Series input as util::Plot). Self-contained SVG
// 1.1, no external fonts or scripts.

#include "util/plot.hpp"

#include <string>

namespace armstice::util {

class SvgChart {
public:
    SvgChart(std::string title, std::string xlabel, std::string ylabel);

    SvgChart& add_series(Series s);
    SvgChart& log_y(bool on = true) { log_y_ = on; return *this; }
    SvgChart& size(int width, int height);

    [[nodiscard]] std::string render() const;
    /// Write to a file; throws util::Error on I/O failure.
    void write(const std::string& path) const;

private:
    std::string title_, xlabel_, ylabel_;
    std::vector<Series> series_;
    bool log_y_ = false;
    int width_ = 640;
    int height_ = 420;
};

} // namespace armstice::util
