#pragma once
// Fixed-size thread pool backing core::SweepRunner and the threaded kernel
// layer (kern::par). Deliberately simple — one mutex-guarded FIFO work
// queue, no work stealing: sweep points are coarse (each is a full
// discrete-event simulation, milliseconds to seconds) and kernel tasks are
// contiguous index blocks (tens of microseconds and up), so queue
// contention is negligible and the simple design keeps the shutdown and
// wait-for-drain semantics easy to reason about.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace armstice::util {

class ThreadPool {
public:
    /// Spawn `threads` workers (clamped to >= 1).
    explicit ThreadPool(int threads);
    /// Finishes all queued work, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

    /// Enqueue one task. Tasks must not throw — catch inside the task and
    /// report through captured state (SweepRunner stores exception_ptrs).
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished executing.
    void wait_idle();

    /// Submit `tasks` and block until exactly those tasks have finished
    /// (unlike wait_idle, unrelated work submitted concurrently by other
    /// threads is not waited for). Tasks must not throw — kern::par wraps
    /// bodies and rethrows captured exceptions after the batch completes.
    /// Must not be called from inside a task running on this pool.
    void run_batch(std::vector<std::function<void()>> tasks);

private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers sleep here for tasks
    std::condition_variable idle_cv_;  ///< wait_idle sleeps here for drain
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;  ///< queued + currently executing tasks
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace armstice::util
