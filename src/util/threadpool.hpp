#pragma once
// Fixed-size thread pool backing core::SweepRunner. Deliberately simple —
// one mutex-guarded FIFO work queue, no work stealing: sweep points are
// coarse (each is a full discrete-event simulation, milliseconds to
// seconds), so queue contention is negligible and the simple design keeps
// the shutdown and wait-for-drain semantics easy to reason about.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace armstice::util {

class ThreadPool {
public:
    /// Spawn `threads` workers (clamped to >= 1).
    explicit ThreadPool(int threads);
    /// Finishes all queued work, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

    /// Enqueue one task. Tasks must not throw — catch inside the task and
    /// report through captured state (SweepRunner stores exception_ptrs).
    void submit(std::function<void()> task);

    /// Block until every submitted task has finished executing.
    void wait_idle();

private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers sleep here for tasks
    std::condition_variable idle_cv_;  ///< wait_idle sleeps here for drain
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;  ///< queued + currently executing tasks
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace armstice::util
