#include "util/csv.hpp"

#include "util/error.hpp"

#include <fstream>

namespace armstice::util {

Csv& Csv::header(std::vector<std::string> cols) {
    header_ = std::move(cols);
    return *this;
}

Csv& Csv::row(std::vector<std::string> cells) {
    ARMSTICE_CHECK(header_.empty() || cells.size() == header_.size(),
                   "csv row width mismatch");
    rows_.push_back(std::move(cells));
    return *this;
}

std::string Csv::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    return out + "\"";
}

std::string Csv::render() const {
    std::string out;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i != 0) out += ',';
            out += escape(cells[i]);
        }
        out += '\n';
    };
    if (!header_.empty()) emit(header_);
    for (const auto& r : rows_) emit(r);
    return out;
}

void Csv::write(const std::string& path) const {
    std::ofstream f(path);
    ARMSTICE_CHECK(f.good(), "cannot open " + path);
    f << render();
    ARMSTICE_CHECK(f.good(), "write failed for " + path);
}

} // namespace armstice::util
