#pragma once
// Error handling for armstice: a single exception type carrying a formatted
// message, plus CHECK macros used at API boundaries and for internal
// invariants. Guideline: throw on violated preconditions; never abort.

#include <stdexcept>
#include <string>

namespace armstice::util {

/// Exception thrown on any armstice precondition or invariant violation.
class Error : public std::runtime_error {
public:
    explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// Thrown when a requested placement does not fit in node memory
/// (see DESIGN.md §4.5); callers frequently want to catch this specifically
/// to mark a configuration "infeasible" rather than fail the whole sweep.
class CapacityError : public Error {
public:
    explicit CapacityError(std::string what) : Error(std::move(what)) {}
};

/// Thrown when the discrete-event engine detects that no rank can make
/// progress (mismatched sends/recvs or collective membership).
class DeadlockError : public Error {
public:
    explicit DeadlockError(std::string what) : Error(std::move(what)) {}
};

/// Thrown when a sweep batch is abandoned through core::RunHooks::cancelled
/// (e.g. the serve daemon shutting down mid-batch). Points evaluated before
/// the cancellation was observed keep their cache entries; the batch as a
/// whole produces no results.
class CancelledError : public Error {
public:
    explicit CancelledError(std::string what) : Error(std::move(what)) {}
};

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);

} // namespace armstice::util

/// Precondition/invariant check; throws util::Error with location context.
#define ARMSTICE_CHECK(cond, msg)                                              \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::armstice::util::throw_error(__FILE__, __LINE__,                  \
                                          std::string("check failed: ") +      \
                                              #cond + " — " + (msg));          \
        }                                                                      \
    } while (false)
