#include "util/stats.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::util {

void RunningStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
    ARMSTICE_CHECK(!xs.empty(), "mean of empty vector");
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
    RunningStats rs;
    for (double x : xs) rs.add(x);
    return rs.stddev();
}

double median(std::vector<double> xs) {
    ARMSTICE_CHECK(!xs.empty(), "median of empty vector");
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1) return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double relative_spread(const std::vector<double>& xs) {
    ARMSTICE_CHECK(!xs.empty(), "relative_spread of empty vector");
    const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    ARMSTICE_CHECK(*lo > 0.0, "relative_spread needs positive values");
    return *hi / *lo - 1.0;
}

double geomean(const std::vector<double>& xs) {
    ARMSTICE_CHECK(!xs.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (double x : xs) {
        ARMSTICE_CHECK(x > 0.0, "geomean needs positive values");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace armstice::util
