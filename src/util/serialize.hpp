#pragma once
// Binary serialisation helpers for the persistent sweep-result cache
// (core/cache.hpp). Fixed little-endian layout so cache files written by one
// toolchain load on another; doubles travel bit-exact via bit_cast so a
// warm-cache rerun reproduces cold-run output to the last bit.
//
// ByteReader never throws and never reads out of bounds: any short or
// malformed buffer sets a sticky fail flag and every subsequent read returns
// a zero value. Callers check ok() once at the end — this is what lets the
// cache loader treat arbitrary on-disk garbage as a miss instead of a crash.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace armstice::util {

/// FNV-1a 64-bit — stable content hash for cache file names and payload
/// checksums (not cryptographic; corruption detection only).
inline std::uint64_t fnv1a(std::string_view data) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Length-prefixed byte string.
    void str(std::string_view s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.append(s.data(), s.size());
    }

    [[nodiscard]] const std::string& data() const { return buf_; }
    [[nodiscard]] std::string take() { return std::move(buf_); }

private:
    std::string buf_;
};

class ByteReader {
public:
    explicit ByteReader(std::string_view buf) : buf_(buf) {}

    std::uint8_t u8() {
        if (!need(1)) return 0;
        return static_cast<std::uint8_t>(buf_[pos_++]);
    }

    std::uint32_t u32() {
        if (!need(4)) return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[pos_++]))
                 << (8 * i);
        }
        return v;
    }

    std::uint64_t u64() {
        if (!need(8)) return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_++]))
                 << (8 * i);
        }
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
    bool boolean() { return u8() != 0; }

    std::string str() {
        const std::uint32_t n = u32();
        if (!need(n)) return {};
        std::string s(buf_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    /// Mark the stream as malformed (decoders use this for semantic
    /// violations a plain bounds check cannot see, e.g. impossible counts).
    void invalidate() { failed_ = true; }

    /// True iff no read so far ran past the end of the buffer.
    [[nodiscard]] bool ok() const { return !failed_; }
    /// True iff the whole buffer has been consumed (trailing garbage check).
    [[nodiscard]] bool at_end() const { return !failed_ && pos_ == buf_.size(); }
    [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

private:
    bool need(std::size_t n) {
        if (failed_ || buf_.size() - pos_ < n) {
            failed_ = true;
            return false;
        }
        return true;
    }

    std::string_view buf_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace armstice::util
