#include "util/table.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cstdio>

namespace armstice::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> cols) {
    ARMSTICE_CHECK(rows_.empty(), "header must be set before rows");
    header_ = std::move(cols);
    return *this;
}

Table& Table::row(std::vector<std::string> cells) {
    ARMSTICE_CHECK(!header_.empty(), "set header before adding rows");
    ARMSTICE_CHECK(cells.size() == header_.size(),
                   "row width " + std::to_string(cells.size()) + " != header width " +
                       std::to_string(header_.size()));
    rows_.push_back(std::move(cells));
    return *this;
}

std::string Table::num(double v, int prec) { return fixed(v, prec); }

std::string Table::render() const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

    auto rule = [&] {
        std::string line = "+";
        for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
        return line + "\n";
    };
    auto fmt_row = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string out;
    if (!title_.empty()) out += title_ + "\n";
    out += rule();
    out += fmt_row(header_);
    out += rule();
    for (const auto& r : rows_) out += fmt_row(r);
    out += rule();
    return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

} // namespace armstice::util
