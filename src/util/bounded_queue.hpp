#pragma once
// Bounded MPMC work queue used by serve::SweepService for admission control:
// the queue's fixed capacity IS the serving layer's compute backlog bound.
// try_push_all either enqueues a whole batch atomically or rejects it
// without enqueuing anything — that all-or-nothing property is what turns
// "queue full" into a clean typed RETRY_LATER response instead of a
// half-admitted request.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace armstice::util {

template <class T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity) {}

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.size();
    }

    /// Enqueue one item iff it fits; false when full or closed.
    bool try_push(T item) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() >= capacity_) return false;
            q_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /// Enqueue every item or none: false (nothing enqueued) when the batch
    /// does not fit in the remaining capacity or the queue is closed.
    bool try_push_all(std::vector<T> items) {
        if (items.empty()) return true;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || q_.size() + items.size() > capacity_) return false;
            for (auto& item : items) q_.push_back(std::move(item));
        }
        cv_.notify_all();
        return true;
    }

    /// Block until an item is available or the queue is closed and drained;
    /// nullopt only in the latter case (workers exit on it).
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return closed_ || !q_.empty(); });
        if (q_.empty()) return std::nullopt;
        T item = std::move(q_.front());
        q_.pop_front();
        return item;
    }

    /// Reject future pushes and wake every blocked pop. Queued items still
    /// drain; call drain() instead to discard them.
    void close() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    /// Close and discard everything still queued; returns the discards so
    /// the caller can fail them (serve fulfills their promises with errors).
    std::vector<T> drain() {
        std::vector<T> out;
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
            out.assign(std::make_move_iterator(q_.begin()),
                       std::make_move_iterator(q_.end()));
            q_.clear();
        }
        cv_.notify_all();
        return out;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> q_;
    bool closed_ = false;
};

} // namespace armstice::util
