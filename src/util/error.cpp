#include "util/error.hpp"

namespace armstice::util {

void throw_error(const char* file, int line, const std::string& msg) {
    throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

} // namespace armstice::util
