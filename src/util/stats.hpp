#pragma once
// Summary statistics used by the harness (the paper reports averages over
// three runs and flags >5% variation; `Summary` carries exactly that).

#include <cstddef>
#include <vector>

namespace armstice::util {

/// Online mean/variance/min/max accumulator (Welford).
class RunningStats {
public:
    void add(double x);
    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return mean_; }
    [[nodiscard]] double variance() const;   ///< sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);  ///< by value: sorts a copy

/// Relative spread max/min - 1; the paper's ">5% of average" variation flag.
double relative_spread(const std::vector<double>& xs);

/// Geometric mean (used when aggregating speedups across experiments).
double geomean(const std::vector<double>& xs);

} // namespace armstice::util
