#pragma once
// Deterministic random number generation (xoshiro256** seeded via splitmix64).
// The simulator is fully deterministic; RNG is used only by workload
// generators and property tests, and every use takes an explicit seed so runs
// are reproducible — mirroring the paper's reproducibility methodology (§III.a).

#include <cstdint>

namespace armstice::util {

/// splitmix64 — used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double next_double() {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

    /// Uniform integer in [0, n) for n > 0.
    std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4]{};
};

} // namespace armstice::util
