#pragma once
// StringInterner — thread-safe append-only string <-> id table. Interning a
// string returns a dense uint32 id; ids are assigned in first-seen order and
// never change or disappear, so hot paths can carry ids (array indices)
// instead of heap strings and resolve them back only at reporting time
// (sim/program.hpp's phase-label table is the main user).
//
// Concurrency: lookups take a shared lock; first-time inserts upgrade to an
// exclusive lock. Storage is a deque so the strings (and the string_view
// keys into them) keep stable addresses across growth — str() can hand out
// references that stay valid for the interner's lifetime.

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace armstice::util {

class StringInterner {
public:
    /// Id of `s`, interning it on first sight.
    std::uint32_t id(std::string_view s);

    /// The string behind an id; throws util::Error on an unknown id. The
    /// reference stays valid for the interner's lifetime.
    [[nodiscard]] const std::string& str(std::uint32_t id) const;

    /// Number of interned strings (ids are 0..size()-1).
    [[nodiscard]] std::size_t size() const;

private:
    mutable std::shared_mutex mu_;
    std::deque<std::string> strings_;  ///< id -> string, stable addresses
    std::unordered_map<std::string_view, std::uint32_t> ids_;  ///< views into strings_
};

} // namespace armstice::util
