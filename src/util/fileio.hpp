#pragma once
// Small file-I/O helpers for the persistent cache: whole-file reads and
// atomic temp-file-then-rename writes. Everything here reports failure via
// return values (optional/bool), never exceptions — cache I/O problems must
// degrade to misses, not abort a bench run.

#include <optional>
#include <string>

namespace armstice::util {

/// Read an entire file into a string; nullopt if it cannot be opened/read.
std::optional<std::string> read_file(const std::string& path);

/// Write `content` to `path` atomically: the bytes land in a unique sibling
/// temp file first and are renamed over `path`, so a concurrent reader sees
/// either the old complete file or the new complete file, never a torn one.
/// Returns false (leaving no temp debris behind) on any I/O failure.
bool write_file_atomic(const std::string& path, const std::string& content);

/// mkdir -p. Returns false if the directory does not exist afterwards.
bool ensure_dir(const std::string& path);

} // namespace armstice::util
