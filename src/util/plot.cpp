#include "util/plot.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace armstice::util {
namespace {
constexpr const char* kMarkers = "*o+x#@%&";
}

Plot::Plot(std::string title, std::string xlabel, std::string ylabel)
    : title_(std::move(title)), xlabel_(std::move(xlabel)), ylabel_(std::move(ylabel)) {}

Plot& Plot::add_series(Series s) {
    ARMSTICE_CHECK(s.x.size() == s.y.size(), "series x/y size mismatch");
    ARMSTICE_CHECK(!s.x.empty(), "empty series");
    series_.push_back(std::move(s));
    return *this;
}

Plot& Plot::size(int width, int height) {
    ARMSTICE_CHECK(width >= 20 && height >= 5, "plot too small");
    width_ = width;
    height_ = height;
    return *this;
}

std::string Plot::render() const {
    ARMSTICE_CHECK(!series_.empty(), "no series to plot");

    auto tx = [&](double v) { return log_x_ ? std::log10(v) : v; };
    auto ty = [&](double v) { return log_y_ ? std::log10(v) : v; };

    double xmin = std::numeric_limits<double>::max(), xmax = -xmin;
    double ymin = xmin, ymax = -xmin;
    for (const auto& s : series_) {
        for (double v : s.x) { xmin = std::min(xmin, tx(v)); xmax = std::max(xmax, tx(v)); }
        for (double v : s.y) { ymin = std::min(ymin, ty(v)); ymax = std::max(ymax, ty(v)); }
    }
    if (xmax == xmin) xmax = xmin + 1.0;
    if (ymax == ymin) ymax = ymin + 1.0;

    std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                  std::string(static_cast<std::size_t>(width_), ' '));
    for (std::size_t si = 0; si < series_.size(); ++si) {
        const char mark = kMarkers[si % 8];
        const auto& s = series_[si];
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            const double fx = (tx(s.x[i]) - xmin) / (xmax - xmin);
            const double fy = (ty(s.y[i]) - ymin) / (ymax - ymin);
            const int cx = static_cast<int>(std::lround(fx * (width_ - 1)));
            const int cy = (height_ - 1) - static_cast<int>(std::lround(fy * (height_ - 1)));
            grid[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = mark;
        }
    }

    auto inv_y = [&](double f) { const double v = ymin + f * (ymax - ymin); return log_y_ ? std::pow(10.0, v) : v; };
    auto inv_x = [&](double f) { const double v = xmin + f * (xmax - xmin); return log_x_ ? std::pow(10.0, v) : v; };

    std::string out;
    if (!title_.empty()) out += title_ + "\n";
    for (int r = 0; r < height_; ++r) {
        const double f = 1.0 - static_cast<double>(r) / (height_ - 1);
        std::string label = (r == 0 || r == height_ - 1 || r == height_ / 2)
                                ? format("%10.3g", inv_y(f))
                                : std::string(10, ' ');
        out += label + " |" + grid[static_cast<std::size_t>(r)] + "\n";
    }
    out += std::string(11, ' ') + "+" + std::string(static_cast<std::size_t>(width_), '-') + "\n";
    out += std::string(11, ' ') + format(" %-10.3g", inv_x(0.0)) +
           std::string(static_cast<std::size_t>(std::max(0, width_ - 24)), ' ') +
           format("%10.3g", inv_x(1.0)) + "\n";
    out += std::string(11, ' ') + " x: " + xlabel_ + "   y: " + ylabel_ +
           (log_y_ ? " (log)" : "") + "\n";
    for (std::size_t si = 0; si < series_.size(); ++si) {
        out += format("  %c %s\n", kMarkers[si % 8], series_[si].label.c_str());
    }
    return out;
}

void Plot::print() const { std::fputs(render().c_str(), stdout); }

} // namespace armstice::util
