#pragma once
// ASCII line/scatter plot used by the figure benches (Figs 1-5). Renders
// multiple labelled series onto a character grid, with optional log axes
// (Fig 3 in the paper is log-scale MFLOP/s).

#include <string>
#include <vector>

namespace armstice::util {

struct Series {
    std::string label;
    std::vector<double> x;
    std::vector<double> y;
};

class Plot {
public:
    Plot(std::string title, std::string xlabel, std::string ylabel);

    Plot& add_series(Series s);
    Plot& log_y(bool on = true) { log_y_ = on; return *this; }
    Plot& log_x(bool on = true) { log_x_ = on; return *this; }
    Plot& size(int width, int height);

    [[nodiscard]] std::string render() const;
    void print() const;

private:
    std::string title_, xlabel_, ylabel_;
    std::vector<Series> series_;
    bool log_x_ = false;
    bool log_y_ = false;
    int width_ = 72;
    int height_ = 20;
};

} // namespace armstice::util
