#pragma once
// Tiny command-line parser for the example/driver binaries: GNU-style
// --flag, --key=value and --key value options plus positionals, with typed
// accessors and a generated usage string.

#include <map>
#include <string>
#include <vector>

namespace armstice::util {

class Cli {
public:
    Cli(std::string program, std::string description);

    /// Declare options (for the usage text and validation).
    Cli& flag(const std::string& name, const std::string& help);
    Cli& option(const std::string& name, const std::string& help,
                const std::string& default_value = "");
    Cli& positional(const std::string& name, const std::string& help);

    /// Parse argv; throws util::Error on unknown options or missing values.
    void parse(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& name) const;
    [[nodiscard]] std::string get(const std::string& name) const;
    [[nodiscard]] long get_long(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] const std::vector<std::string>& positionals() const {
        return positionals_given_;
    }

    [[nodiscard]] std::string usage() const;

private:
    struct Opt {
        std::string help;
        std::string default_value;
        bool is_flag = false;
    };
    std::string program_;
    std::string description_;
    std::vector<std::pair<std::string, Opt>> declared_;
    std::vector<std::pair<std::string, std::string>> positional_decl_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_given_;

    [[nodiscard]] const Opt* find(const std::string& name) const;
};

/// Extract a `--jobs N` / `--jobs=N` option from anywhere in argv, removing
/// it so downstream parsers (google-benchmark) never see it. When the flag
/// is absent, falls back to the ARMSTICE_JOBS environment variable, then to
/// `fallback`. Throws util::Error on a missing or non-positive value. Used
/// by every bench binary to size core::SweepRunner's thread pool.
int jobs_from_args(int& argc, char** argv, int fallback = 1);

/// Extract a `--cache-dir DIR` / `--cache-dir=DIR` option from anywhere in
/// argv, removing it so downstream parsers never see it. When the flag is
/// absent, falls back to the ARMSTICE_CACHE environment variable, then to ""
/// (persistent caching disabled). Throws util::Error on a missing value.
/// Used by every bench binary to install core::set_cache_dir.
std::string cache_dir_from_args(int& argc, char** argv);

} // namespace armstice::util
