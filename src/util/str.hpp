#pragma once
// Small string formatting helpers (GCC 12 lacks std::format).

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace armstice::util {

/// printf-style formatting into a std::string.
[[gnu::format(printf, 1, 2)]] inline std::string format(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

/// Fixed-precision double → string ("12.34").
inline std::string fixed(double v, int prec = 2) {
    return format("%.*f", prec, v);
}

/// Join strings with a separator.
inline std::string join(const std::vector<std::string>& parts, const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace armstice::util
