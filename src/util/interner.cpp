#include "util/interner.hpp"

#include "util/error.hpp"

#include <mutex>

namespace armstice::util {

std::uint32_t StringInterner::id(std::string_view s) {
    {
        std::shared_lock lock(mu_);
        const auto it = ids_.find(s);
        if (it != ids_.end()) return it->second;
    }
    std::unique_lock lock(mu_);
    const auto it = ids_.find(s);  // raced insert between the locks
    if (it != ids_.end()) return it->second;
    const auto new_id = static_cast<std::uint32_t>(strings_.size());
    ARMSTICE_CHECK(strings_.size() < UINT32_MAX, "interner id space exhausted");
    strings_.emplace_back(s);
    ids_.emplace(std::string_view(strings_.back()), new_id);
    return new_id;
}

const std::string& StringInterner::str(std::uint32_t id) const {
    std::shared_lock lock(mu_);
    ARMSTICE_CHECK(id < strings_.size(), "unknown interned id");
    return strings_[id];
}

std::size_t StringInterner::size() const {
    std::shared_lock lock(mu_);
    return strings_.size();
}

} // namespace armstice::util
