#include "util/threadpool.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <memory>

namespace armstice::util {

ThreadPool::ThreadPool(int threads) {
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    ARMSTICE_CHECK(task != nullptr, "null task submitted to thread pool");
    {
        std::lock_guard<std::mutex> lock(mu_);
        ARMSTICE_CHECK(!stop_, "submit on a stopping thread pool");
        queue_.push_back(std::move(task));
        ++in_flight_;
    }
    work_cv_.notify_one();
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
    if (tasks.empty()) return;
    struct BatchSync {
        std::mutex m;
        std::condition_variable cv;
        std::size_t left;
    };
    auto sync = std::make_shared<BatchSync>();
    sync->left = tasks.size();
    for (auto& task : tasks) {
        submit([task = std::move(task), sync] {
            task();
            std::lock_guard<std::mutex> lock(sync->m);
            if (--sync->left == 0) sync->cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(sync->m);
    sync->cv.wait(lock, [&] { return sync->left == 0; });
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ set and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (in_flight_ == 0) idle_cv_.notify_all();
        }
    }
}

} // namespace armstice::util
