#pragma once
// CSV writer — every bench can dump machine-readable results next to the
// ASCII artefacts so downstream plotting is possible.

#include <string>
#include <vector>

namespace armstice::util {

class Csv {
public:
    Csv& header(std::vector<std::string> cols);
    Csv& row(std::vector<std::string> cells);

    [[nodiscard]] std::string render() const;
    /// Write to a file; throws util::Error on I/O failure.
    void write(const std::string& path) const;

private:
    static std::string escape(const std::string& cell);
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace armstice::util
