#pragma once
// ASCII table renderer used by every bench binary to print paper-style
// tables (paper value vs model value side by side).

#include <string>
#include <vector>

namespace armstice::util {

class Table {
public:
    explicit Table(std::string title = "");

    /// Set the header row. Must be called before adding rows.
    Table& header(std::vector<std::string> cols);

    /// Append a row; must match header width (checked).
    Table& row(std::vector<std::string> cells);

    /// Convenience: number cells are formatted with `prec` decimals.
    static std::string num(double v, int prec = 2);

    [[nodiscard]] std::string render() const;
    void print() const;  ///< render to stdout

    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace armstice::util
