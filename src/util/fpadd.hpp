#pragma once
// Bit-exact fast-forward for repeated IEEE-754 addition of one constant.
//
// The engine's schedule-invariance contract (DESIGN.md §10.2) pins every
// global reduction to one FP addition order: per rank, ascending. The
// rank-equivalence collapse (§11) makes the values *per class* — a
// million-rank SPMD reduction is "add this class's value v to acc, once per
// member" — but the contract still demands the literal n-step sequence
// acc = fl(acc + v), not acc + n*v (FP addition does not distribute).
//
// add_repeat computes that n-step sequence without n steps: within one
// binade of acc the representable values are a uniform grid of spacing
// u = ulp(acc), so fl(acc + v) advances the grid index by a CONSTANT
// dm = floor(v/u) + (v mod u > u/2), making the trajectory arithmetic until
// it reaches the next binade (where u doubles and dm is re-derived). Exact
// half-ulp ties round to even — parity-dependent — so tie regimes fall back
// to plain hardware steps, as do non-finite/negative inputs. Everything is
// O(binades) ~ O(2100) worst case for the fast regimes; the fallbacks are
// O(n) but bit-exact by construction (they ARE the plain loop).
//
// The result is required to be bit-identical to the plain loop for every
// (acc, v, n) — tests/engine/test_fpadd.cpp fuzzes this across magnitudes,
// subnormals, ties and binade boundaries, and sim::check's differential
// suite re-proves it end-to-end every run (collapsed engine vs RefEngine).

#include <cstdint>

namespace armstice::util::fp {

/// The result of `n` sequential additions `acc = fl(acc + v)` (round to
/// nearest, ties to even — the hardware loop), bit-identical to performing
/// them one at a time.
[[nodiscard]] double add_repeat(double acc, double v, long long n);

} // namespace armstice::util::fp
