#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace armstice::util {
namespace {

LogLevel g_level = LogLevel::warn;
std::function<void(LogLevel, const std::string&)> g_sink;
std::mutex g_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::debug: return "DEBUG";
        case LogLevel::info: return "INFO";
        case LogLevel::warn: return "WARN";
        case LogLevel::error: return "ERROR";
        case LogLevel::off: return "OFF";
    }
    return "?";
}

} // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void set_log_sink(std::function<void(LogLevel, const std::string&)> sink) {
    std::lock_guard<std::mutex> lock(g_mutex);
    g_sink = std::move(sink);
}

void log(LogLevel level, const std::string& msg) {
    if (level < g_level) return;
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_sink) {
        g_sink(level, msg);
    } else {
        std::fprintf(stderr, "[armstice %s] %s\n", level_name(level), msg.c_str());
    }
}

} // namespace armstice::util
