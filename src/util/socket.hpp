#pragma once
// Thin POSIX stream-socket wrapper for the serve daemon (serve::Server /
// serve::Client). Deliberately minimal: blocking sockets, unix-domain and
// 127.0.0.1 TCP only, EINTR-safe full-buffer send/recv, and poll-based
// accept so a listener can be shut down promptly. All failures are reported
// via return values or util::Error at connect/bind time — never errno
// spelunking at call sites, and never SIGPIPE (sends use MSG_NOSIGNAL).

#include <cstddef>
#include <string>

namespace armstice::util {

/// One connected stream socket (RAII over the fd; move-only).
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }

    /// Send the whole buffer; false on any error (peer gone, socket closed).
    bool send_all(const void* data, std::size_t n);
    bool send_all(const std::string& data) {
        return send_all(data.data(), data.size());
    }

    /// Receive exactly `n` bytes; false on EOF or error before `n` arrived.
    bool recv_exact(void* data, std::size_t n);

    /// Close the fd now (also done by the destructor). Safe to call twice.
    void close();

    /// shutdown(SHUT_RDWR) — unblocks a peer thread parked in recv_exact.
    void shutdown();

private:
    int fd_ = -1;
};

/// A listening socket (unix-domain or 127.0.0.1 TCP).
class Listener {
public:
    /// Bind + listen on a unix-domain socket path (unlinks a stale file
    /// first). Throws util::Error on failure.
    static Listener listen_unix(const std::string& path);

    /// Bind + listen on 127.0.0.1:`port` (0 = kernel-assigned; the chosen
    /// port is readable via port()). Throws util::Error on failure.
    static Listener listen_tcp(int port);

    Listener() = default;
    ~Listener();
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;
    Listener(Listener&& other) noexcept;
    Listener& operator=(Listener&& other) noexcept;

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] const std::string& unix_path() const { return path_; }

    /// Wait up to `timeout_ms` for a connection. Returns an invalid Socket
    /// on timeout, on error, or after close() — callers poll a stop flag
    /// between calls.
    Socket accept(int timeout_ms);

    /// Close the listening fd (and unlink the unix path, if any).
    void close();

private:
    int fd_ = -1;
    int port_ = 0;
    std::string path_;  ///< unix socket path to unlink on close
};

/// Connect to a unix-domain socket path. Throws util::Error on failure.
Socket connect_unix(const std::string& path);

/// Connect to 127.0.0.1:`port`. Throws util::Error on failure.
Socket connect_tcp(int port);

} // namespace armstice::util
