#include "util/svg.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

namespace armstice::util {
namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                                    "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};

std::string escape_xml(const std::string& s) {
    std::string out;
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += c;
        }
    }
    return out;
}

/// "Nice" tick values covering [lo, hi].
std::vector<double> ticks(double lo, double hi, int target = 5) {
    std::vector<double> out;
    if (hi <= lo) return {lo};
    const double raw = (hi - lo) / target;
    const double mag = std::pow(10.0, std::floor(std::log10(raw)));
    double step = mag;
    for (double m : {1.0, 2.0, 5.0, 10.0}) {
        if (raw <= m * mag) {
            step = m * mag;
            break;
        }
    }
    for (double v = std::ceil(lo / step) * step; v <= hi + 1e-12 * step; v += step) {
        out.push_back(v);
    }
    return out;
}

} // namespace

SvgChart::SvgChart(std::string title, std::string xlabel, std::string ylabel)
    : title_(std::move(title)), xlabel_(std::move(xlabel)), ylabel_(std::move(ylabel)) {}

SvgChart& SvgChart::add_series(Series s) {
    ARMSTICE_CHECK(s.x.size() == s.y.size() && !s.x.empty(), "bad series");
    series_.push_back(std::move(s));
    return *this;
}

SvgChart& SvgChart::size(int width, int height) {
    ARMSTICE_CHECK(width >= 160 && height >= 120, "svg too small");
    width_ = width;
    height_ = height;
    return *this;
}

std::string SvgChart::render() const {
    ARMSTICE_CHECK(!series_.empty(), "no series to render");
    if (log_y_) {
        for (const auto& s : series_) {
            for (double v : s.y) {
                ARMSTICE_CHECK(v > 0, "log axis needs positive values");
            }
        }
    }
    const double ml = 64, mr = 150, mt = 40, mb = 48;  // margins (legend right)
    const double pw = width_ - ml - mr;
    const double ph = height_ - mt - mb;

    auto ty = [&](double v) { return log_y_ ? std::log10(v) : v; };
    double xmin = std::numeric_limits<double>::max(), xmax = -xmin;
    double ymin = xmin, ymax = -xmin;
    for (const auto& s : series_) {
        for (double v : s.x) { xmin = std::min(xmin, v); xmax = std::max(xmax, v); }
        for (double v : s.y) { ymin = std::min(ymin, ty(v)); ymax = std::max(ymax, ty(v)); }
    }
    if (xmax == xmin) xmax = xmin + 1;
    if (ymax == ymin) ymax = ymin + 1;

    auto px = [&](double v) { return ml + (v - xmin) / (xmax - xmin) * pw; };
    auto py = [&](double v) { return mt + ph - (ty(v) - ymin) / (ymax - ymin) * ph; };

    std::string svg = format(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
        "viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n",
        width_, height_, width_, height_);
    svg += format("<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n", width_, height_);
    svg += format("<text x=\"%.0f\" y=\"24\" font-size=\"15\" font-weight=\"bold\">"
                  "%s</text>\n",
                  ml, escape_xml(title_).c_str());

    // Axes frame.
    svg += format("<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
                  "fill=\"none\" stroke=\"#444\"/>\n",
                  ml, mt, pw, ph);

    // Y ticks/gridlines.
    for (double v : ticks(ymin, ymax)) {
        const double y = mt + ph - (v - ymin) / (ymax - ymin) * ph;
        const double shown = log_y_ ? std::pow(10.0, v) : v;
        svg += format("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                      "stroke=\"#ddd\"/>\n",
                      ml, y, ml + pw, y);
        svg += format("<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                      "text-anchor=\"end\">%.3g</text>\n",
                      ml - 6, y + 4, shown);
    }
    // X ticks.
    for (double v : ticks(xmin, xmax)) {
        const double x = px(v);
        svg += format("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                      "stroke=\"#ddd\"/>\n",
                      x, mt, x, mt + ph);
        svg += format("<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" "
                      "text-anchor=\"middle\">%.3g</text>\n",
                      x, mt + ph + 16, v);
    }
    // Axis labels.
    svg += format("<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" "
                  "text-anchor=\"middle\">%s</text>\n",
                  ml + pw / 2, mt + ph + 36, escape_xml(xlabel_).c_str());
    svg += format("<text x=\"16\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" "
                  "transform=\"rotate(-90 16 %.1f)\">%s%s</text>\n",
                  mt + ph / 2, mt + ph / 2, escape_xml(ylabel_).c_str(),
                  log_y_ ? " (log)" : "");

    // Series polylines + markers + legend.
    for (std::size_t i = 0; i < series_.size(); ++i) {
        const char* color = kPalette[i % 8];
        const auto& s = series_[i];
        std::string pts;
        for (std::size_t k = 0; k < s.x.size(); ++k) {
            pts += format("%.1f,%.1f ", px(s.x[k]), py(s.y[k]));
        }
        svg += format("<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
                      "stroke-width=\"2\"/>\n",
                      pts.c_str(), color);
        for (std::size_t k = 0; k < s.x.size(); ++k) {
            svg += format("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n",
                          px(s.x[k]), py(s.y[k]), color);
        }
        const double ly = mt + 14 + 18.0 * static_cast<double>(i);
        svg += format("<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                      "stroke=\"%s\" stroke-width=\"2\"/>\n",
                      ml + pw + 10, ly, ml + pw + 30, ly, color);
        svg += format("<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n",
                      ml + pw + 36, ly + 4, escape_xml(s.label).c_str());
    }

    svg += "</svg>\n";
    return svg;
}

void SvgChart::write(const std::string& path) const {
    std::ofstream f(path);
    ARMSTICE_CHECK(f.good(), "cannot open " + path);
    f << render();
    ARMSTICE_CHECK(f.good(), "write failed for " + path);
}

} // namespace armstice::util
