#pragma once
// Unit helpers. armstice uses SI base units throughout: seconds, bytes,
// FLOPs, Hz. These constexpr factors make call sites self-documenting
// (e.g. `32 * GiB`, `2.2 * GHz`, `6.8 * GB_per_s`).

namespace armstice::util {

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

inline constexpr double KHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

inline constexpr double GB_per_s = 1e9;  // bytes/second
inline constexpr double MB_per_s = 1e6;

inline constexpr double GFLOP = 1e9;
inline constexpr double MFLOP = 1e6;

inline constexpr double usec = 1e-6;
inline constexpr double nsec = 1e-9;
inline constexpr double msec = 1e-3;

/// Bytes of one cache line on every modelled architecture (A64FX uses 256 B
/// lines in HBM sectors but presents 64 B coherence granules; we model 64 B
/// lines uniformly and fold the difference into calibration).
inline constexpr double cache_line = 64.0;

} // namespace armstice::util
