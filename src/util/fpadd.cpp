#include "util/fpadd.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace armstice::util::fp {
namespace {

/// Fixed-point test must be bitwise: -0.0 + 0.0 == -0.0 compares true as
/// doubles but the stored value changes (to +0.0) on the first step.
inline bool bit_eq(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

} // namespace

double add_repeat(double acc, double v, long long n) {
    // Regimes the grid model below does not cover: non-finite operands,
    // negative operands (the model assumes a rightward march), and v == 0
    // (which still flips -0.0 to +0.0 once). The plain loop IS the
    // specification; the bitwise fixed-point exit makes these O(1) for
    // everything except an adversarial negative-v march.
    if (!(acc >= 0.0) || !(v > 0.0) || !std::isfinite(acc) ||
        !std::isfinite(v)) {
        while (n > 0) {
            const double next = acc + v;
            if (bit_eq(next, acc)) return acc;  // fl(acc+v) == acc: stuck forever
            acc = next;
            --n;
        }
        return acc;
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    while (n > 0) {
        const double next = acc + v;
        if (bit_eq(next, acc)) return acc;  // v under half an ulp: saturated
        // Grid spacing above acc. Representable doubles in [acc, 2^53 * u)
        // are exactly the multiples of u: for normal acc that interval is its
        // binade, for subnormal acc it is the whole subnormal range plus the
        // first normal binade (same uniform grid, u = 2^-1074).
        const double u = std::nextafter(acc, kInf) - acc;
        if (!(v < u * 0x1p53)) {
            acc = next;  // one step spans the whole grid: rebase, re-derive
            --n;
            continue;
        }
        // v = q*u + rem with 0 <= rem < u, all three lines exact: v/u is a
        // power-of-two scale of a value in [u/2, u*2^53) (smaller v already
        // hit the fixed-point or tie exits), q*u <= v, and v - q*u is
        // Sterbenz-exact for q >= 1 and trivially exact for q == 0.
        const double q = std::floor(v / u);
        const double rem = v - q * u;
        // Each step advances the grid index by a constant dm: the true sum
        // sits rem (dm = q) or u - rem (dm = q + 1) away from the landing
        // grid point, both under half a grid cell, so rounding is forced.
        double dm;
        if (rem == 0.0) {
            dm = q;  // exact multiple: lands on the grid, no rounding at all
        } else {
            // rem != 0 implies u > 2^-1074 (no doubles inside (0, 2^-1074)),
            // so half is exact.
            const double half = 0.5 * u;
            if (rem < half) {
                dm = q;
            } else if (rem > half) {
                dm = q + 1.0;
            } else {
                // Exact half-ulp tie: rounds to even, increment depends on
                // the landing mantissa's parity. Step on hardware.
                acc = next;
                --n;
                continue;
            }
        }
        if (!(dm >= 1.0)) {  // defensive: dm == 0 would mean a fixed point
            acc = next;
            --n;
            continue;
        }
        const double m = acc / u;  // exact integer in [0, 2^53)
        const long long room =
            static_cast<long long>(std::floor((0x1p53 - m) / dm));
        if (room < 1) {
            acc = next;  // grid coarsens before one full step of room
            --n;
            continue;
        }
        const long long k = room < n ? room : n;
        // Every integer here is <= 2^53, so the products and sums are exact;
        // (m + k*dm) * u is the value the hardware loop reaches after k
        // steps. In the top binade it overflows to +inf exactly when the
        // k-th hardware step would round there.
        acc = (m + static_cast<double>(k) * dm) * u;
        n -= k;
    }
    return acc;
}

} // namespace armstice::util::fp
