#include "util/cli.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <cstdlib>

namespace armstice::util {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::flag(const std::string& name, const std::string& help) {
    declared_.emplace_back(name, Opt{help, "", true});
    return *this;
}

Cli& Cli::option(const std::string& name, const std::string& help,
                 const std::string& default_value) {
    declared_.emplace_back(name, Opt{help, default_value, false});
    if (!default_value.empty()) values_[name] = default_value;
    return *this;
}

Cli& Cli::positional(const std::string& name, const std::string& help) {
    positional_decl_.emplace_back(name, help);
    return *this;
}

const Cli::Opt* Cli::find(const std::string& name) const {
    for (const auto& [n, opt] : declared_) {
        if (n == name) return &opt;
    }
    return nullptr;
}

void Cli::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_given_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        const Opt* opt = find(arg);
        ARMSTICE_CHECK(opt != nullptr, "unknown option --" + arg + "\n" + usage());
        if (opt->is_flag) {
            ARMSTICE_CHECK(!has_value, "flag --" + arg + " takes no value");
            values_[arg] = "true";
        } else if (has_value) {
            values_[arg] = value;
        } else {
            ARMSTICE_CHECK(i + 1 < argc, "option --" + arg + " needs a value");
            values_[arg] = argv[++i];
        }
    }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Cli::get(const std::string& name) const {
    const auto it = values_.find(name);
    ARMSTICE_CHECK(it != values_.end(), "option --" + name + " not provided");
    return it->second;
}

long Cli::get_long(const std::string& name) const {
    const std::string v = get(name);
    char* end = nullptr;
    const long out = std::strtol(v.c_str(), &end, 10);
    ARMSTICE_CHECK(end != nullptr && *end == '\0',
                   "option --" + name + " expects an integer, got '" + v + "'");
    return out;
}

double Cli::get_double(const std::string& name) const {
    const std::string v = get(name);
    char* end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    ARMSTICE_CHECK(end != nullptr && *end == '\0',
                   "option --" + name + " expects a number, got '" + v + "'");
    return out;
}

int jobs_from_args(int& argc, char** argv, int fallback) {
    auto parse_jobs = [](const std::string& v) {
        char* end = nullptr;
        const long jobs = std::strtol(v.c_str(), &end, 10);
        ARMSTICE_CHECK(end != nullptr && *end == '\0' && !v.empty() && jobs >= 1,
                       "--jobs expects a positive integer, got '" + v + "'");
        return static_cast<int>(jobs);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        int consumed = 0;
        if (arg == "--jobs") {
            ARMSTICE_CHECK(i + 1 < argc, "option --jobs needs a value");
            value = argv[i + 1];
            consumed = 2;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
            consumed = 1;
        } else {
            continue;
        }
        for (int j = i + consumed; j < argc; ++j) argv[j - consumed] = argv[j];
        argc -= consumed;
        argv[argc] = nullptr;
        return parse_jobs(value);
    }

    const char* env = std::getenv("ARMSTICE_JOBS");
    if (env != nullptr && *env != '\0') return parse_jobs(env);
    return fallback;
}

std::string cache_dir_from_args(int& argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        int consumed = 0;
        if (arg == "--cache-dir") {
            ARMSTICE_CHECK(i + 1 < argc, "option --cache-dir needs a value");
            value = argv[i + 1];
            consumed = 2;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            value = arg.substr(12);
            consumed = 1;
        } else {
            continue;
        }
        ARMSTICE_CHECK(!value.empty(), "--cache-dir expects a directory path");
        for (int j = i + consumed; j < argc; ++j) argv[j - consumed] = argv[j];
        argc -= consumed;
        argv[argc] = nullptr;
        return value;
    }

    const char* env = std::getenv("ARMSTICE_CACHE");
    if (env != nullptr && *env != '\0') return env;
    return "";
}

std::string Cli::usage() const {
    std::string out = "usage: " + program_;
    for (const auto& [name, help] : positional_decl_) out += " <" + name + ">";
    if (!declared_.empty()) out += " [options]";
    out += "\n  " + description_ + "\n";
    for (const auto& [name, help] : positional_decl_) {
        out += format("  %-22s %s\n", ("<" + name + ">").c_str(), help.c_str());
    }
    for (const auto& [name, opt] : declared_) {
        std::string left = "--" + name + (opt.is_flag ? "" : " <v>");
        std::string right = opt.help;
        if (!opt.default_value.empty()) right += " (default: " + opt.default_value + ")";
        out += format("  %-22s %s\n", left.c_str(), right.c_str());
    }
    return out;
}

} // namespace armstice::util
