#include "util/socket.hpp"

#include "util/error.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace armstice::util {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw Error(what + ": " + std::strerror(errno));
}

} // namespace

// ---- Socket ----------------------------------------------------------------

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

bool Socket::send_all(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
        const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (sent == 0) return false;
        p += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

bool Socket::recv_exact(void* data, std::size_t n) {
    char* p = static_cast<char*>(data);
    while (n > 0) {
        const ssize_t got = ::recv(fd_, p, n, 0);
        if (got < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (got == 0) return false;  // orderly EOF mid-buffer
        p += got;
        n -= static_cast<std::size_t>(got);
    }
    return true;
}

void Socket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::shutdown() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// ---- Listener --------------------------------------------------------------

Listener Listener::listen_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        throw Error("unix socket path empty or too long: '" + path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(path.c_str());  // stale socket file from a crashed server
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("bind(" + path + ")");
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        throw_errno("listen(" + path + ")");
    }
    Listener l;
    l.fd_ = fd;
    l.path_ = path;
    return l;
}

Listener Listener::listen_tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
    }
    if (::listen(fd, 64) != 0) {
        ::close(fd);
        throw_errno("listen(127.0.0.1:" + std::to_string(port) + ")");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        ::close(fd);
        throw_errno("getsockname");
    }
    Listener l;
    l.fd_ = fd;
    l.port_ = static_cast<int>(ntohs(addr.sin_port));
    return l;
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      path_(std::move(other.path_)) {
    other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
        path_ = std::move(other.path_);
        other.path_.clear();
    }
    return *this;
}

Socket Listener::accept(int timeout_ms) {
    if (fd_ < 0) return Socket();
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r <= 0) return Socket();  // timeout or error (incl. closed fd)
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd < 0) return Socket();
    return Socket(cfd);
}

void Listener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

// ---- connect ---------------------------------------------------------------

Socket connect_unix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        throw Error("unix socket path empty or too long: '" + path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("connect(" + path + ")");
    }
    return Socket(fd);
}

Socket connect_tcp(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    return Socket(fd);
}

} // namespace armstice::util
