#pragma once
// Minimal leveled logger. Single global sink (stderr by default); the
// simulator itself never logs on hot paths — logging is for harness and
// calibration diagnostics.

#include <functional>
#include <string>

namespace armstice::util {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replace the sink (used by tests to capture output). The sink receives the
/// already-formatted line without a trailing newline.
void set_log_sink(std::function<void(LogLevel, const std::string&)> sink);

void log(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log(LogLevel::debug, msg); }
inline void log_info(const std::string& msg) { log(LogLevel::info, msg); }
inline void log_warn(const std::string& msg) { log(LogLevel::warn, msg); }
inline void log_error(const std::string& msg) { log(LogLevel::error, msg); }

} // namespace armstice::util
