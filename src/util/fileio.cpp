#include "util/fileio.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace armstice::util {
namespace {

namespace fs = std::filesystem;

/// Unique-per-writer temp suffix: pid keeps concurrent processes apart, the
/// counter keeps concurrent threads in one process apart.
std::string temp_suffix() {
    static std::atomic<unsigned> counter{0};
#ifdef _WIN32
    const long pid = static_cast<long>(_getpid());
#else
    const long pid = static_cast<long>(::getpid());
#endif
    return ".tmp." + std::to_string(pid) + "." +
           std::to_string(counter.fetch_add(1));
}

} // namespace

std::optional<std::string> read_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f.good()) return std::nullopt;
    std::ostringstream ss;
    ss << f.rdbuf();
    if (f.bad()) return std::nullopt;
    return std::move(ss).str();
}

bool write_file_atomic(const std::string& path, const std::string& content) {
    const std::string tmp = path + temp_suffix();
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f.good()) return false;
        f.write(content.data(), static_cast<std::streamsize>(content.size()));
        f.flush();
        if (!f.good()) {
            f.close();
            std::remove(tmp.c_str());
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool ensure_dir(const std::string& path) {
    std::error_code ec;
    fs::create_directories(path, ec);
    return fs::is_directory(path, ec);
}

} // namespace armstice::util
