#include "serve/protocol.hpp"

#include <cstring>

namespace armstice::serve {
namespace {

// ---- body encoders ---------------------------------------------------------

void put_spec(util::ByteWriter& w, const PointSpec& p) {
    w.str(p.app);
    w.str(p.system);
    w.i32(p.nodes);
    w.i32(p.ranks);
    w.i32(p.threads);
    w.str(p.config);
}

PointSpec get_spec(util::ByteReader& r) {
    PointSpec p;
    p.app = r.str();
    p.system = r.str();
    p.nodes = r.i32();
    p.ranks = r.i32();
    p.threads = r.i32();
    p.config = r.str();
    return p;
}

struct BodyEncoder {
    util::ByteWriter& w;

    void operator()(const Hello& b) {
        w.u32(b.protocol);
        w.u32(b.model_version);
        w.u32(b.max_frame);
    }
    void operator()(const SweepRequest& b) {
        w.u32(static_cast<std::uint32_t>(b.points.size()));
        for (const auto& p : b.points) put_spec(w, p);
    }
    void operator()(const FigureRequest& b) { w.i32(b.figure); }
    void operator()(const ScorecardRequest&) {}
    void operator()(const StatsRequest&) {}
    void operator()(const PointResult& b) {
        w.u32(b.index);
        w.u8(static_cast<std::uint8_t>(b.origin));
        w.boolean(b.ok);
        w.str(b.payload);
    }
    void operator()(const SweepDone& b) {
        w.u32(b.points);
        w.u32(b.cached);
        w.u32(b.coalesced);
        w.u32(b.computed);
        w.u32(b.errors);
    }
    void operator()(const FigureResult& b) {
        w.i32(b.figure);
        w.str(b.csv);
    }
    void operator()(const ScorecardResult& b) { w.str(b.text); }
    void operator()(const StatsResult& b) {
        w.u64(b.requests);
        w.u64(b.sweep_requests);
        w.u64(b.figure_requests);
        w.u64(b.scorecard_requests);
        w.u64(b.stats_requests);
        w.u64(b.points);
        w.u64(b.cache_hits);
        w.u64(b.coalesced);
        w.u64(b.computed);
        w.u64(b.point_errors);
        w.u64(b.retries);
        w.u64(b.protocol_errors);
        w.u64(b.sessions_opened);
        w.u64(b.sessions_active);
        w.u64(b.inflight);
        w.f64(b.uptime_s);
        w.f64(b.qps);
        w.u64(b.rss_bytes);
    }
    void operator()(const ErrorMsg& b) {
        w.u32(static_cast<std::uint32_t>(b.code));
        w.str(b.message);
    }
    void operator()(const RetryLater& b) {
        w.u32(b.inflight);
        w.u32(b.limit);
    }
};

// ---- body decoders ---------------------------------------------------------
// Each returns the body; semantic violations call r.invalidate() and the
// caller maps the reader's state to a DecodeStatus.

Hello get_hello(util::ByteReader& r) {
    Hello b;
    b.protocol = r.u32();
    b.model_version = r.u32();
    b.max_frame = r.u32();
    return b;
}

SweepRequest get_sweep_request(util::ByteReader& r, bool& bad_value) {
    SweepRequest b;
    const std::uint32_t n = r.u32();
    if (!r.ok()) return b;
    if (n == 0 || n > kMaxPointsPerRequest) {
        bad_value = true;
        r.invalidate();
        return b;
    }
    // Each spec costs >= 22 bytes on the wire; bound the reserve by what the
    // buffer can actually hold so a corrupt count cannot balloon allocation.
    if (static_cast<std::uint64_t>(n) * 22 > r.remaining()) {
        r.invalidate();
        return b;
    }
    b.points.reserve(n);
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) b.points.push_back(get_spec(r));
    return b;
}

PointResult get_point_result(util::ByteReader& r, bool& bad_value) {
    PointResult b;
    b.index = r.u32();
    const std::uint8_t origin = r.u8();
    if (r.ok() && origin > static_cast<std::uint8_t>(PointOrigin::kComputed)) {
        bad_value = true;
        r.invalidate();
        return b;
    }
    b.origin = static_cast<PointOrigin>(origin);
    b.ok = r.boolean();
    b.payload = r.str();
    return b;
}

SweepDone get_sweep_done(util::ByteReader& r) {
    SweepDone b;
    b.points = r.u32();
    b.cached = r.u32();
    b.coalesced = r.u32();
    b.computed = r.u32();
    b.errors = r.u32();
    return b;
}

StatsResult get_stats_result(util::ByteReader& r) {
    StatsResult b;
    b.requests = r.u64();
    b.sweep_requests = r.u64();
    b.figure_requests = r.u64();
    b.scorecard_requests = r.u64();
    b.stats_requests = r.u64();
    b.points = r.u64();
    b.cache_hits = r.u64();
    b.coalesced = r.u64();
    b.computed = r.u64();
    b.point_errors = r.u64();
    b.retries = r.u64();
    b.protocol_errors = r.u64();
    b.sessions_opened = r.u64();
    b.sessions_active = r.u64();
    b.inflight = r.u64();
    b.uptime_s = r.f64();
    b.qps = r.f64();
    b.rss_bytes = r.u64();
    return b;
}

ErrorMsg get_error(util::ByteReader& r, bool& bad_value) {
    ErrorMsg b;
    const std::uint32_t code = r.u32();
    if (r.ok() && (code < 1 || code > static_cast<std::uint32_t>(
                                        ErrorCode::kInternal))) {
        bad_value = true;
        r.invalidate();
        return b;
    }
    b.code = static_cast<ErrorCode>(code);
    b.message = r.str();
    return b;
}

RetryLater get_retry_later(util::ByteReader& r) {
    RetryLater b;
    b.inflight = r.u32();
    b.limit = r.u32();
    return b;
}

} // namespace

const char* decode_status_name(DecodeStatus s) {
    switch (s) {
        case DecodeStatus::kOk: return "ok";
        case DecodeStatus::kEmptyFrame: return "empty frame";
        case DecodeStatus::kOversized: return "oversized frame";
        case DecodeStatus::kUnknownType: return "unknown frame type";
        case DecodeStatus::kTruncated: return "truncated frame";
        case DecodeStatus::kTrailingBytes: return "trailing bytes";
        case DecodeStatus::kBadValue: return "impossible field value";
    }
    return "?";
}

FrameType Message::type() const {
    // variant alternative order matches the FrameType numbering (1-based).
    return static_cast<FrameType>(body.index() + 1);
}

std::string encode_message(const Message& m) {
    util::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(m.type()));
    w.u32(m.req_id);
    std::visit(BodyEncoder{w}, m.body);
    return w.take();
}

DecodeStatus decode_message(std::string_view payload, Message& out) {
    if (payload.empty()) return DecodeStatus::kEmptyFrame;
    if (payload.size() > kMaxFrame) return DecodeStatus::kOversized;

    util::ByteReader r(payload);
    const std::uint8_t type = r.u8();
    const std::uint32_t req_id = r.u32();
    if (!r.ok()) return DecodeStatus::kTruncated;
    if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
        type > static_cast<std::uint8_t>(FrameType::kRetryLater)) {
        return DecodeStatus::kUnknownType;
    }

    Message m;
    m.req_id = req_id;
    bool bad_value = false;
    switch (static_cast<FrameType>(type)) {
        case FrameType::kHello: m.body = get_hello(r); break;
        case FrameType::kSweepRequest:
            m.body = get_sweep_request(r, bad_value);
            break;
        case FrameType::kFigureRequest: {
            FigureRequest b;
            b.figure = r.i32();
            m.body = b;
            break;
        }
        case FrameType::kScorecardRequest: m.body = ScorecardRequest{}; break;
        case FrameType::kStatsRequest: m.body = StatsRequest{}; break;
        case FrameType::kPointResult:
            m.body = get_point_result(r, bad_value);
            break;
        case FrameType::kSweepDone: m.body = get_sweep_done(r); break;
        case FrameType::kFigureResult: {
            FigureResult b;
            b.figure = r.i32();
            b.csv = r.str();
            m.body = b;
            break;
        }
        case FrameType::kScorecardResult: {
            ScorecardResult b;
            b.text = r.str();
            m.body = b;
            break;
        }
        case FrameType::kStatsResult: m.body = get_stats_result(r); break;
        case FrameType::kError: m.body = get_error(r, bad_value); break;
        case FrameType::kRetryLater: m.body = get_retry_later(r); break;
    }
    if (bad_value) return DecodeStatus::kBadValue;
    if (!r.ok()) return DecodeStatus::kTruncated;
    if (!r.at_end()) return DecodeStatus::kTrailingBytes;
    out = std::move(m);
    return DecodeStatus::kOk;
}

bool write_frame(util::Socket& s, const Message& m) {
    const std::string payload = encode_message(m);
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(payload.size()));
    std::string frame = w.take();
    frame += payload;
    return s.send_all(frame);
}

ReadStatus read_frame(util::Socket& s, Message& out, DecodeStatus& status) {
    unsigned char len_bytes[4];
    if (!s.recv_exact(len_bytes, 4)) return ReadStatus::kClosed;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
    }
    if (len == 0) {
        status = DecodeStatus::kEmptyFrame;
        return ReadStatus::kMalformed;
    }
    if (len > kMaxFrame) {
        // Reject before reading: the claimed body is never allocated.
        status = DecodeStatus::kOversized;
        return ReadStatus::kMalformed;
    }
    std::string payload(len, '\0');
    if (!s.recv_exact(payload.data(), len)) return ReadStatus::kClosed;
    status = decode_message(payload, out);
    return status == DecodeStatus::kOk ? ReadStatus::kOk : ReadStatus::kMalformed;
}

} // namespace armstice::serve
