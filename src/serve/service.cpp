#include "serve/service.hpp"

#include "core/app_codecs.hpp"  // ResultTraits<apps::AppResult> for SweepRunner::run
#include "util/error.hpp"
#include "util/log.hpp"

#include <any>
#include <exception>
#include <utility>

namespace armstice::serve {

SweepService::SweepService(ServiceConfig cfg, Evaluator evaluator)
    : cfg_(cfg),
      evaluator_(std::move(evaluator)),
      queue_(cfg.max_inflight < 1 ? 1 : cfg.max_inflight) {
    cfg_.workers = cfg_.workers < 1 ? 1 : cfg_.workers;
    cfg_.max_inflight = queue_.capacity();
    workers_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

SweepService::~SweepService() { stop(); }

SweepService::Ticket SweepService::submit(const std::vector<PointSpec>& canonical) {
    Ticket t;
    t.limit = static_cast<std::uint32_t>(cfg_.max_inflight);
    t.futures.reserve(canonical.size());
    t.origin.reserve(canonical.size());

    std::vector<Job> jobs;
    std::vector<std::string> created;  // rollback list on overload

    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || stopping_.load(std::memory_order_relaxed)) {
        t.inflight = static_cast<std::uint32_t>(stats_.inflight);
        ++stats_.overloads;
        return t;  // not admitted; server reports shutting-down separately
    }
    for (const auto& spec : canonical) {
        const std::string key = to_sweep_point(spec).key();
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // A duplicate within this request lands here too: its first
            // occurrence created the pending entry, so it coalesces.
            t.futures.push_back(it->second->future);
            if (it->second->done) {
                t.origin.push_back(PointOrigin::kCached);
                ++t.cached;
            } else {
                t.origin.push_back(PointOrigin::kCoalesced);
                ++t.coalesced;
            }
            continue;
        }
        auto entry = std::make_shared<Entry>();
        entry->future = entry->promise.get_future().share();
        entries_.emplace(key, entry);
        created.push_back(key);
        jobs.push_back(Job{key, spec, std::move(entry)});
        t.futures.push_back(jobs.back().entry->future);
        t.origin.push_back(PointOrigin::kComputed);
        ++t.fresh;
    }

    // All-or-nothing admission: the whole fresh set enters the bounded
    // queue or none of it does. Rolling back is safe because mu_ has been
    // held since classification — no other request can have joined the
    // entries created above.
    if (!queue_.try_push_all(std::move(jobs))) {
        for (const auto& key : created) entries_.erase(key);
        t.futures.clear();
        t.origin.clear();
        t.cached = t.coalesced = t.fresh = 0;
        t.inflight = static_cast<std::uint32_t>(stats_.inflight);
        ++stats_.overloads;
        return t;
    }

    t.admitted = true;
    stats_.points += static_cast<long>(canonical.size());
    stats_.cache_hits += t.cached;
    stats_.coalesced += t.coalesced;
    stats_.inflight += t.fresh;
    return t;
}

ServiceStats SweepService::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void SweepService::stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_) return;
        stopped_ = true;
    }
    stopping_.store(true, std::memory_order_relaxed);
    // Fail everything still queued; running jobs observe stopping_ through
    // the cancellation hook (or finish normally — both are fine).
    for (auto& job : queue_.drain()) {
        PointOutcome out;
        out.error = "serve: server stopping";
        finish_job(job, std::move(out));
    }
    for (auto& w : workers_) w.join();
    workers_.clear();
}

void SweepService::worker_loop() {
    while (auto job = queue_.pop()) run_job(*job);
}

void SweepService::run_job(const Job& job) {
    PointOutcome out;
    bool delivered = false;
    try {
        if (evaluator_) {
            if (stopping_.load(std::memory_order_relaxed)) {
                throw util::CancelledError("serve: server stopping");
            }
            out.payload = evaluator_(job.spec);
            out.ok = true;
        } else {
            // Default path: one-point SweepRunner batch — memo cache, disk
            // probe/flush and damaged-entry degradation all come from the
            // batch machinery, so serving cannot drift from batch mode. The
            // on_result hook completes the entry the moment the result
            // exists (before the persistent-cache flush), and the
            // cancellation hook abandons queued evaluations on shutdown.
            core::RunHooks hooks;
            hooks.on_result = [&](std::size_t, const std::any& value) {
                PointOutcome early;
                early.ok = true;
                early.payload =
                    encode_result(std::any_cast<const apps::AppResult&>(value));
                finish_job(job, std::move(early));
                delivered = true;
            };
            hooks.cancelled = [this] {
                return stopping_.load(std::memory_order_relaxed);
            };
            const std::vector<core::SweepPoint> pts = {to_sweep_point(job.spec)};
            core::SweepRunner(1).run<apps::AppResult>(
                pts,
                [&job](const core::SweepPoint&, std::size_t) {
                    return eval_point(job.spec);
                },
                hooks);
            if (delivered) return;
            out.error = "serve: evaluation produced no result";
        }
    } catch (const std::exception& e) {
        out.ok = false;
        out.payload.clear();
        out.error = e.what();
    }
    if (!delivered) finish_job(job, std::move(out));
}

void SweepService::finish_job(const Job& job, PointOutcome outcome) {
    const bool ok = outcome.ok;
    if (!ok) {
        util::log_warn("serve: point '" + job.key + "' failed: " + outcome.error);
    }
    // Bookkeeping strictly before set_value: anyone who observes the future
    // resolved must also observe the counters reflecting it.
    {
        std::lock_guard<std::mutex> lock(mu_);
        --stats_.inflight;
        if (ok) {
            ++stats_.computed;
            job.entry->done = true;
        } else {
            ++stats_.point_errors;
            // Evict so the next request retries instead of replaying the error.
            auto it = entries_.find(job.key);
            if (it != entries_.end() && it->second == job.entry) entries_.erase(it);
        }
    }
    job.entry->promise.set_value(std::move(outcome));
}

} // namespace armstice::serve
