#include "serve/catalog.hpp"

#include "apps/cosa/cosa.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "arch/system.hpp"
#include "core/app_codecs.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace armstice::serve {
namespace {

// ---- config-string parsing -------------------------------------------------
// "key=value;key=value" with strict validation: unknown keys, duplicate
// keys, empty fields and unparseable numbers all throw. The per-app
// canonical form writes every field in a fixed order with fixed formats, so
// canonical strings are unique per simulation.

std::map<std::string, std::string> parse_kv(const std::string& config) {
    std::map<std::string, std::string> kv;
    std::size_t pos = 0;
    while (pos < config.size()) {
        std::size_t end = config.find(';', pos);
        if (end == std::string::npos) end = config.size();
        const std::string field = config.substr(pos, end - pos);
        pos = end + 1;
        if (field.empty()) {
            throw util::Error("serve: empty config field in '" + config + "'");
        }
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == field.size()) {
            throw util::Error("serve: config field '" + field +
                              "' is not key=value");
        }
        const auto [it, inserted] =
            kv.emplace(field.substr(0, eq), field.substr(eq + 1));
        if (!inserted) {
            throw util::Error("serve: duplicate config key '" + it->first + "'");
        }
    }
    return kv;
}

long take_long(std::map<std::string, std::string>& kv, const std::string& key,
               long fallback, long min_value) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
        throw util::Error("serve: config key '" + key + "' has non-integer value '" +
                          s + "'");
    }
    kv.erase(it);
    if (v < min_value) {
        throw util::Error(util::format("serve: config key '%s' must be >= %ld",
                                       key.c_str(), min_value));
    }
    return v;
}

double take_double(std::map<std::string, std::string>& kv, const std::string& key,
                   double fallback) {
    const auto it = kv.find(key);
    if (it == kv.end()) return fallback;
    const std::string& s = it->second;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0') {
        throw util::Error("serve: config key '" + key + "' has non-numeric value '" +
                          s + "'");
    }
    kv.erase(it);
    if (!(v >= 0)) {
        throw util::Error("serve: config key '" + key + "' must be >= 0");
    }
    return v;
}

void reject_leftovers(const std::map<std::string, std::string>& kv,
                      const std::string& app) {
    if (kv.empty()) return;
    std::vector<std::string> keys;
    keys.reserve(kv.size());
    for (const auto& [k, v] : kv) keys.push_back(k);
    throw util::Error("serve: unknown config key(s) for app '" + app +
                      "': " + util::join(keys, ", "));
}

// ---- per-app canonical configs ---------------------------------------------
// Each app's parse_* returns the fully-populated config struct; canonical_*
// renders it back in fixed order. The canonical string is what enters the
// SweepPoint key, so its format must never change silently (it plays the
// same role as experiments.cpp's sig_* helpers, with a distinct '='-based
// grammar so the two key families cannot collide).

apps::MinikabConfig parse_minikab(const PointSpec& spec) {
    auto kv = parse_kv(spec.config);
    apps::MinikabConfig cfg;
    cfg.rows = take_long(kv, "rows", cfg.rows, 1);
    cfg.nnz = take_double(kv, "nnz", cfg.nnz);
    cfg.iterations = static_cast<int>(take_long(kv, "iters", cfg.iterations, 1));
    if (const auto it = kv.find("solver"); it != kv.end()) {
        if (it->second == "cg") {
            cfg.solver = apps::MinikabSolver::cg;
        } else if (it->second == "jacobi_pcg") {
            cfg.solver = apps::MinikabSolver::jacobi_pcg;
        } else if (it->second == "pipelined_cg") {
            cfg.solver = apps::MinikabSolver::pipelined_cg;
        } else {
            throw util::Error("serve: unknown minikab solver '" + it->second + "'");
        }
        kv.erase(it);
    }
    reject_leftovers(kv, spec.app);
    cfg.nodes = spec.nodes;
    cfg.ranks = spec.ranks;
    cfg.threads = spec.threads;
    return cfg;
}

std::string canonical_minikab(const apps::MinikabConfig& cfg) {
    return util::format("rows=%ld;nnz=%.17g;iters=%d;solver=%s", cfg.rows, cfg.nnz,
                        cfg.iterations, apps::minikab_solver_name(cfg.solver));
}

apps::NekboneConfig parse_nekbone(const PointSpec& spec) {
    auto kv = parse_kv(spec.config);
    apps::NekboneConfig cfg;
    cfg.elems_per_rank =
        static_cast<int>(take_long(kv, "elems", cfg.elems_per_rank, 1));
    cfg.nx1 = static_cast<int>(take_long(kv, "nx1", cfg.nx1, 2));
    cfg.cg_iters = static_cast<int>(take_long(kv, "iters", cfg.cg_iters, 1));
    cfg.fastmath = take_long(kv, "fastmath", cfg.fastmath ? 1 : 0, 0) != 0;
    reject_leftovers(kv, spec.app);
    cfg.nodes = spec.nodes;
    cfg.ranks = spec.ranks;
    return cfg;
}

std::string canonical_nekbone(const apps::NekboneConfig& cfg) {
    return util::format("elems=%d;nx1=%d;iters=%d;fastmath=%d", cfg.elems_per_rank,
                        cfg.nx1, cfg.cg_iters, cfg.fastmath ? 1 : 0);
}

apps::CosaConfig parse_cosa(const PointSpec& spec) {
    auto kv = parse_kv(spec.config);
    apps::CosaConfig cfg;
    cfg.blocks = static_cast<int>(take_long(kv, "blocks", cfg.blocks, 1));
    cfg.total_cells = take_long(kv, "cells", cfg.total_cells, 1);
    cfg.harmonics = static_cast<int>(take_long(kv, "harmonics", cfg.harmonics, 0));
    cfg.iterations = static_cast<int>(take_long(kv, "iters", cfg.iterations, 1));
    reject_leftovers(kv, spec.app);
    cfg.nodes = spec.nodes;
    cfg.ranks_per_node = spec.ranks;  // spec.ranks carries ranks-per-node
    return cfg;
}

std::string canonical_cosa(const apps::CosaConfig& cfg) {
    return util::format("blocks=%d;cells=%ld;harmonics=%d;iters=%d", cfg.blocks,
                        cfg.total_cells, cfg.harmonics, cfg.iterations);
}

void check_placement(const PointSpec& spec) {
    if (spec.nodes < 1 || spec.ranks < 0 || spec.threads < 1) {
        throw util::Error(util::format(
            "serve: bad placement n%d/r%d/t%d for app '%s' (nodes/threads >= 1, "
            "ranks >= 0)",
            spec.nodes, spec.ranks, spec.threads, spec.app.c_str()));
    }
}

} // namespace

const std::vector<std::string>& served_apps() {
    static const std::vector<std::string> apps_ = {"minikab", "nekbone", "cosa"};
    return apps_;
}

PointSpec canonicalize(const PointSpec& spec) {
    check_placement(spec);
    arch::system_by_name(spec.system);  // throws on unknown system
    PointSpec out = spec;
    if (spec.app == "minikab") {
        out.config = canonical_minikab(parse_minikab(spec));
    } else if (spec.app == "nekbone") {
        out.threads = 1;  // nekbone is rank-parallel only
        out.config = canonical_nekbone(parse_nekbone(spec));
    } else if (spec.app == "cosa") {
        out.threads = 1;
        out.config = canonical_cosa(parse_cosa(spec));
    } else {
        throw util::Error("serve: unknown app '" + spec.app + "' (served: " +
                          util::join(served_apps(), ", ") + ")");
    }
    return out;
}

core::SweepPoint to_sweep_point(const PointSpec& canonical) {
    return core::sweep_point(canonical.app, canonical.system, canonical.nodes,
                             canonical.ranks, canonical.threads, canonical.config);
}

apps::AppResult eval_point(const PointSpec& canonical) {
    const arch::SystemSpec& sys = arch::system_by_name(canonical.system);
    if (canonical.app == "minikab") {
        return apps::run_minikab(sys, parse_minikab(canonical));
    }
    if (canonical.app == "nekbone") {
        return apps::run_nekbone(sys, parse_nekbone(canonical));
    }
    if (canonical.app == "cosa") {
        return apps::run_cosa(sys, parse_cosa(canonical));
    }
    throw util::Error("serve: unknown app '" + canonical.app + "'");
}

std::vector<apps::AppResult> batch_eval(const std::vector<PointSpec>& specs,
                                        int jobs) {
    std::vector<PointSpec> canon;
    canon.reserve(specs.size());
    std::vector<core::SweepPoint> pts;
    pts.reserve(specs.size());
    for (const auto& s : specs) {
        canon.push_back(canonicalize(s));
        pts.push_back(to_sweep_point(canon.back()));
    }
    return core::SweepRunner(jobs).run<apps::AppResult>(
        pts, [&canon](const core::SweepPoint&, std::size_t i) {
            return eval_point(canon[i]);
        });
}

std::string encode_result(const apps::AppResult& r) {
    util::ByteWriter w;
    core::ResultTraits<apps::AppResult>::encode(w, r);
    return w.take();
}

apps::AppResult decode_result(const std::string& payload) {
    util::ByteReader r(payload);
    apps::AppResult v = core::ResultTraits<apps::AppResult>::decode(r);
    if (!r.at_end()) {
        throw util::Error("serve: malformed AppResult payload");
    }
    return v;
}

} // namespace armstice::serve
