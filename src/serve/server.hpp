#pragma once
// serve::Server — the armstice-as-a-service daemon core (DESIGN.md §14).
// Accepts concurrent clients on a unix-domain and/or 127.0.0.1 TCP listener,
// speaks the length-prefixed frame protocol (serve/protocol.hpp), and serves
// sweep / figure / scorecard / stats requests from one shared SweepService
// (in-memory + CacheStore-backed cache, request coalescing, bounded
// admission). Sessions are one thread each; sweep results stream back
// per-point in request order as their futures resolve, so a late joiner
// receives bytes the moment the one shared computation finishes.
//
// Embeddable by design: the daemon binary (bench/armstice_serve.cpp), the
// --smoke self-test and the serving test battery all run this class
// in-process.

#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "util/socket.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace armstice::serve {

struct ServerConfig {
    std::string unix_path;    ///< non-empty: listen on this unix socket
    int tcp_port = -1;        ///< >= 0: listen on 127.0.0.1 (0 = ephemeral)
    int workers = 2;          ///< compute threads behind the coalescing map
    std::size_t max_inflight = 64;  ///< admission bound (fresh points)
    int max_sessions = 32;    ///< concurrent connections before SESSION_LIMIT
};

class Server {
public:
    /// `evaluator` overrides the sweep evaluator (tests); empty = default
    /// SweepRunner path.
    explicit Server(ServerConfig cfg, SweepService::Evaluator evaluator = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind the configured listeners and start accepting. Throws
    /// util::Error when neither endpoint is configured or a bind fails.
    void start();

    /// Stop accepting, shut down live sessions, drain the service. Safe to
    /// call twice; also run by the destructor.
    void stop();

    /// Endpoints actually bound (TCP port resolves an ephemeral request).
    [[nodiscard]] int tcp_port() const { return tcp_port_; }
    [[nodiscard]] const std::string& unix_path() const {
        return cfg_.unix_path;
    }

    /// Stats frame as a kStatsRequest would see it right now.
    [[nodiscard]] StatsResult stats_snapshot() const;

    [[nodiscard]] const SweepService& service() const { return service_; }

private:
    struct Session {
        util::Socket sock;
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void accept_loop(util::Listener listener);
    void run_session(std::shared_ptr<Session> session);
    void handle_sweep(Session& s, std::uint32_t req_id, const SweepRequest& req);
    void handle_figure(Session& s, std::uint32_t req_id, const FigureRequest& req);
    void handle_scorecard(Session& s, std::uint32_t req_id);
    void handle_stats(Session& s, std::uint32_t req_id);
    bool send(Session& s, const Message& m);
    void send_error(Session& s, std::uint32_t req_id, ErrorCode code,
                    const std::string& message);
    void reap_finished_sessions();

    ServerConfig cfg_;
    SweepService service_;
    int tcp_port_ = -1;

    std::atomic<bool> stopping_{false};
    bool started_ = false;
    std::vector<std::thread> accept_threads_;

    mutable std::mutex sessions_mu_;
    std::list<std::shared_ptr<Session>> sessions_;

    // Request counters (deterministic; see StatsResult).
    mutable std::mutex stats_mu_;
    std::uint64_t sweep_requests_ = 0;
    std::uint64_t figure_requests_ = 0;
    std::uint64_t scorecard_requests_ = 0;
    std::uint64_t stats_requests_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t protocol_errors_ = 0;
    std::uint64_t sessions_opened_ = 0;
    std::chrono::steady_clock::time_point start_time_{};
};

/// VmRSS of this process in bytes (0 where /proc is unsupported).
std::uint64_t current_rss_bytes();

} // namespace armstice::serve
