#pragma once
// Wire protocol of the serve daemon (DESIGN.md §14): length-prefixed binary
// frames over a stream socket, built on the same util::ByteWriter/ByteReader
// the persistent cache uses — fixed little-endian layout, bit-exact doubles.
//
//   frame    := u32 payload_len | payload           (len excludes itself)
//   payload  := u8 frame_type | u32 req_id | body   (body per frame type)
//
// Hard framing rules (enforced before any body parsing, tested by
// tests/serve/test_protocol.cpp):
//   * payload_len == 0 is malformed (every payload has >= 5 header bytes);
//   * payload_len > kMaxFrame is malformed and the body is never read, so a
//     hostile length cannot drive allocation;
//   * decode of a complete payload must consume it exactly — truncation and
//     trailing bytes are both typed errors, never UB, never an exception.
//
// Every message owns its bytes; decode(encode(m)) round-trips bit-identical
// for all frame types (the protocol round-trip tests assert byte equality
// of re-encoding). req_id is chosen by the client and echoed by the server
// on every frame belonging to that request.

#include "serve/catalog.hpp"
#include "util/serialize.hpp"
#include "util/socket.hpp"

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace armstice::serve {

/// Protocol version spoken by this build; bumped on any wire layout change.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Largest accepted payload (frame minus length prefix). Result payloads
/// are ~50 B/rank, so this comfortably fits multi-thousand-rank results
/// while capping what a malformed length prefix can make the peer allocate.
inline constexpr std::uint32_t kMaxFrame = 8u << 20;

/// Points a single sweep request may carry (admission sanity bound).
inline constexpr std::uint32_t kMaxPointsPerRequest = 4096;

enum class FrameType : std::uint8_t {
    kHello = 1,             ///< server -> client, once per connection
    kSweepRequest = 2,      ///< client -> server
    kFigureRequest = 3,     ///< client -> server
    kScorecardRequest = 4,  ///< client -> server
    kStatsRequest = 5,      ///< client -> server
    kPointResult = 6,       ///< server -> client, one per sweep point (streamed)
    kSweepDone = 7,         ///< server -> client, closes a sweep stream
    kFigureResult = 8,      ///< server -> client
    kScorecardResult = 9,   ///< server -> client
    kStatsResult = 10,      ///< server -> client
    kError = 11,            ///< server -> client, typed request/protocol error
    kRetryLater = 12,       ///< server -> client, admission-control pushback
};

/// Typed decode failures. Decoding NEVER throws and never reads out of
/// bounds — damaged bytes yield one of these.
enum class DecodeStatus : std::uint8_t {
    kOk = 0,
    kEmptyFrame,     ///< zero-length payload
    kOversized,      ///< length prefix exceeds kMaxFrame
    kUnknownType,    ///< frame_type byte not in FrameType
    kTruncated,      ///< body shorter than its own counts/lengths claim
    kTrailingBytes,  ///< body longer than the message it encodes
    kBadValue,       ///< semantically impossible field (e.g. point count 0)
};

const char* decode_status_name(DecodeStatus s);

/// Error codes carried by kError frames.
enum class ErrorCode : std::uint16_t {
    kBadFrame = 1,      ///< malformed frame (echoes the DecodeStatus in text)
    kBadRequest = 2,    ///< well-formed frame, invalid request (bad spec, ...)
    kShuttingDown = 3,  ///< server is stopping
    kSessionLimit = 4,  ///< too many concurrent connections
    kInternal = 5,      ///< evaluation failed unexpectedly
};

// ---- message bodies --------------------------------------------------------

struct Hello {
    std::uint32_t protocol = kProtocolVersion;
    std::uint32_t model_version = 0;  ///< arch::kModelVersion of the server
    std::uint32_t max_frame = kMaxFrame;
};

struct SweepRequest {
    std::vector<PointSpec> points;
};

struct FigureRequest {
    std::int32_t figure = 0;  ///< 1..5
};

struct ScorecardRequest {};

struct StatsRequest {};

/// How a streamed point was satisfied (mirrors the coalescing map states).
enum class PointOrigin : std::uint8_t {
    kCached = 0,    ///< completed entry already in the serve cache
    kCoalesced = 1, ///< joined a computation another request started
    kComputed = 2,  ///< this request's computation
};

struct PointResult {
    std::uint32_t index = 0;  ///< position in the request's point list
    PointOrigin origin = PointOrigin::kComputed;
    bool ok = true;
    std::string payload;  ///< encoded AppResult when ok, error text otherwise
};

struct SweepDone {
    std::uint32_t points = 0;
    std::uint32_t cached = 0;
    std::uint32_t coalesced = 0;
    std::uint32_t computed = 0;
    std::uint32_t errors = 0;
};

struct FigureResult {
    std::int32_t figure = 0;
    std::string csv;  ///< exactly core::figN_csv bytes
};

struct ScorecardResult {
    std::string text;  ///< exactly core::render_scorecard bytes
};

/// Server counters. The integer fields are deterministic functions of the
/// request history (golden-tested); uptime/qps/rss are measurements.
struct StatsResult {
    std::uint64_t requests = 0;
    std::uint64_t sweep_requests = 0;
    std::uint64_t figure_requests = 0;
    std::uint64_t scorecard_requests = 0;
    std::uint64_t stats_requests = 0;
    std::uint64_t points = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t computed = 0;
    std::uint64_t point_errors = 0;
    std::uint64_t retries = 0;          ///< RETRY_LATER frames sent
    std::uint64_t protocol_errors = 0;  ///< malformed frames seen
    std::uint64_t sessions_opened = 0;
    std::uint64_t sessions_active = 0;
    std::uint64_t inflight = 0;  ///< fresh computations queued or running
    double uptime_s = 0;
    double qps = 0;  ///< requests / uptime
    std::uint64_t rss_bytes = 0;
};

struct ErrorMsg {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
};

struct RetryLater {
    std::uint32_t inflight = 0;  ///< fresh computations currently admitted
    std::uint32_t limit = 0;     ///< admission bound that was hit
};

/// One decoded frame: type tag + request id + typed body.
struct Message {
    std::uint32_t req_id = 0;
    std::variant<Hello, SweepRequest, FigureRequest, ScorecardRequest,
                 StatsRequest, PointResult, SweepDone, FigureResult,
                 ScorecardResult, StatsResult, ErrorMsg, RetryLater>
        body;

    [[nodiscard]] FrameType type() const;
};

// ---- codec -----------------------------------------------------------------

/// Serialize to payload bytes (no length prefix).
std::string encode_message(const Message& m);

/// Parse payload bytes. On any failure `out` is untouched and the status
/// says what was wrong. Enforces kEmptyFrame/kOversized for degenerate
/// sizes; socket readers should reject oversized lengths *before* reading
/// the body (see read_frame).
DecodeStatus decode_message(std::string_view payload, Message& out);

// ---- socket framing --------------------------------------------------------

/// Write one frame (length prefix + payload). False when the peer is gone.
bool write_frame(util::Socket& s, const Message& m);

/// Outcome of read_frame: clean frames, clean disconnects and protocol
/// damage are three different things.
enum class ReadStatus : std::uint8_t {
    kOk = 0,
    kClosed,    ///< EOF before/inside a frame — peer hung up
    kMalformed, ///< framing or decode violation; see the DecodeStatus
};

/// Read one frame. On kMalformed, `status` holds the specific violation;
/// oversized length prefixes are rejected without reading (or allocating)
/// the claimed body.
ReadStatus read_frame(util::Socket& s, Message& out, DecodeStatus& status);

} // namespace armstice::serve
