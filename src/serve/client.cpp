#include "serve/client.hpp"

#include "util/error.hpp"

#include <utility>

namespace armstice::serve {
namespace {

[[noreturn]] void throw_error_frame(const ErrorMsg& err) {
    throw util::Error("serve: server error " +
                      std::to_string(static_cast<int>(err.code)) + ": " +
                      err.message);
}

} // namespace

Client::Client(util::Socket sock) : sock_(std::move(sock)) {
    Message m;
    DecodeStatus status = DecodeStatus::kOk;
    if (read_frame(sock_, m, status) != ReadStatus::kOk) {
        throw util::Error("serve: no Hello from server (" +
                          std::string(decode_status_name(status)) + ")");
    }
    if (const auto* err = std::get_if<ErrorMsg>(&m.body)) throw_error_frame(*err);
    const auto* hello = std::get_if<Hello>(&m.body);
    if (hello == nullptr) {
        throw util::Error("serve: handshake frame is not a Hello");
    }
    if (hello->protocol != kProtocolVersion) {
        throw util::Error("serve: protocol version mismatch: server " +
                          std::to_string(hello->protocol) + ", client " +
                          std::to_string(kProtocolVersion));
    }
    hello_ = *hello;
}

Client Client::connect_unix_path(const std::string& path) {
    return Client(util::connect_unix(path));
}

Client Client::connect_tcp_port(int port) {
    return Client(util::connect_tcp(port));
}

bool Client::read_message(Message& out) {
    DecodeStatus status = DecodeStatus::kOk;
    const ReadStatus rs = read_frame(sock_, out, status);
    if (rs == ReadStatus::kMalformed) {
        throw util::Error("serve: malformed frame from server: " +
                          std::string(decode_status_name(status)));
    }
    return rs == ReadStatus::kOk;
}

bool Client::send_raw(const std::string& bytes) { return sock_.send_all(bytes); }

Message Client::request(const Message& req) {
    if (!write_frame(sock_, req)) {
        throw util::Error("serve: connection lost while sending request");
    }
    Message reply;
    if (!read_message(reply)) {
        throw util::Error("serve: connection closed before reply");
    }
    if (const auto* err = std::get_if<ErrorMsg>(&reply.body)) {
        throw_error_frame(*err);
    }
    return reply;
}

Client::SweepReply Client::sweep(
    const std::vector<PointSpec>& specs,
    const std::function<void(const PointResult&)>& on_point) {
    Message req;
    req.req_id = next_req_id_++;
    req.body = SweepRequest{specs};
    if (!write_frame(sock_, req)) {
        throw util::Error("serve: connection lost while sending sweep");
    }

    SweepReply out;
    for (;;) {
        Message m;
        if (!read_message(m)) {
            throw util::Error("serve: connection closed mid-stream");
        }
        if (const auto* err = std::get_if<ErrorMsg>(&m.body)) {
            throw_error_frame(*err);
        }
        if (const auto* retry = std::get_if<RetryLater>(&m.body)) {
            out.retry = true;
            out.retry_info = *retry;
            return out;
        }
        if (auto* point = std::get_if<PointResult>(&m.body)) {
            if (on_point) on_point(*point);
            out.points.push_back(std::move(*point));
            continue;
        }
        if (const auto* done = std::get_if<SweepDone>(&m.body)) {
            out.done = *done;
            return out;
        }
        throw util::Error("serve: unexpected frame in sweep stream");
    }
}

std::string Client::figure(int n) {
    Message req;
    req.req_id = next_req_id_++;
    req.body = FigureRequest{n};
    Message reply = request(req);
    auto* fig = std::get_if<FigureResult>(&reply.body);
    if (fig == nullptr) {
        throw util::Error("serve: figure reply has wrong frame type");
    }
    return std::move(fig->csv);
}

std::string Client::scorecard() {
    Message req;
    req.req_id = next_req_id_++;
    req.body = ScorecardRequest{};
    Message reply = request(req);
    auto* card = std::get_if<ScorecardResult>(&reply.body);
    if (card == nullptr) {
        throw util::Error("serve: scorecard reply has wrong frame type");
    }
    return std::move(card->text);
}

StatsResult Client::stats() {
    Message req;
    req.req_id = next_req_id_++;
    req.body = StatsRequest{};
    Message reply = request(req);
    const auto* stats = std::get_if<StatsResult>(&reply.body);
    if (stats == nullptr) {
        throw util::Error("serve: stats reply has wrong frame type");
    }
    return *stats;
}

void Client::send_sweep_only(const std::vector<PointSpec>& specs) {
    Message req;
    req.req_id = next_req_id_++;
    req.body = SweepRequest{specs};
    if (!write_frame(sock_, req)) {
        throw util::Error("serve: connection lost while sending sweep");
    }
}

} // namespace armstice::serve
