#pragma once
// SweepService — the serving layer's shared result cache with request
// coalescing and admission control (DESIGN.md §14.2). This is the piece that
// turns N concurrent identical sweeps into ONE computation:
//
//   * every canonical point key owns at most one map entry; the first
//     request to name a key becomes its computation, later requests (and
//     duplicate points within one request) attach to the pending
//     shared_future — "late joiners" stream the result the instant the one
//     computation finishes;
//   * completed entries stay resident as the in-memory serving cache
//     (backed transparently by the core memo cache + CacheStore, because
//     computations run through SweepRunner);
//   * admission is all-or-nothing per request: either every fresh
//     computation the request needs fits in the bounded compute queue
//     (util::BoundedQueue::try_push_all) or nothing is enqueued and the
//     caller sends a typed RETRY_LATER — the server never queues unboundedly
//     and never half-admits;
//   * failed computations are evicted on completion so a later request
//     retries instead of serving a cached error.
//
// The service is transport-agnostic (serve::Server adds the socket layer);
// the concurrency tests drive it directly.

#include "serve/catalog.hpp"
#include "serve/protocol.hpp"
#include "util/bounded_queue.hpp"

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace armstice::serve {

struct ServiceConfig {
    int workers = 2;                ///< compute threads
    std::size_t max_inflight = 64;  ///< bounded compute backlog (points)
};

/// Terminal state of one point's computation.
struct PointOutcome {
    bool ok = false;
    std::string payload;  ///< encoded AppResult when ok
    std::string error;    ///< diagnostic when !ok
};

/// Monotone counters (gauge: inflight). All deterministic functions of the
/// request history — the stats frame is golden-testable.
struct ServiceStats {
    long points = 0;        ///< specs submitted through admitted requests
    long cache_hits = 0;    ///< served from a completed entry
    long coalesced = 0;     ///< attached to a pending computation
    long computed = 0;      ///< computations that completed ok
    long point_errors = 0;  ///< computations that failed
    long overloads = 0;     ///< requests rejected by admission control
    long inflight = 0;      ///< fresh computations queued or running
};

class SweepService {
public:
    /// Evaluate one canonical spec to an encoded payload; may throw. The
    /// default runs eval_point through a SweepRunner (memo + disk cache,
    /// early completion via core::RunHooks). Tests inject gated evaluators
    /// to hold computations in flight deterministically.
    using Evaluator = std::function<std::string(const PointSpec&)>;

    explicit SweepService(ServiceConfig cfg, Evaluator evaluator = {});
    ~SweepService();

    SweepService(const SweepService&) = delete;
    SweepService& operator=(const SweepService&) = delete;

    /// Result of admitting one request. When `admitted`, futures[i] resolves
    /// point i of the request (request order); origin[i] says how.
    struct Ticket {
        bool admitted = false;
        std::uint32_t inflight = 0;  ///< gauge at rejection time
        std::uint32_t limit = 0;     ///< admission bound
        std::vector<std::shared_future<PointOutcome>> futures;
        std::vector<PointOrigin> origin;
        std::uint32_t cached = 0;
        std::uint32_t coalesced = 0;
        std::uint32_t fresh = 0;
    };

    /// Admit a request of canonical specs (serve::canonicalize first —
    /// submit never validates). All-or-nothing: on overload, no entry and no
    /// queue slot is consumed.
    Ticket submit(const std::vector<PointSpec>& canonical);

    [[nodiscard]] ServiceStats stats() const;
    [[nodiscard]] std::size_t max_inflight() const { return cfg_.max_inflight; }

    /// Fail queued-but-unstarted computations, let running ones finish, and
    /// join the workers. Idempotent; also run by the destructor.
    void stop();

private:
    struct Entry {
        std::promise<PointOutcome> promise;
        std::shared_future<PointOutcome> future;
        bool done = false;  // guarded by mu_
    };
    struct Job {
        std::string key;
        PointSpec spec;
        std::shared_ptr<Entry> entry;
    };

    void worker_loop();
    void run_job(const Job& job);
    void finish_job(const Job& job, PointOutcome outcome);

    ServiceConfig cfg_;
    Evaluator evaluator_;  ///< empty = default SweepRunner path
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
    ServiceStats stats_;
    util::BoundedQueue<Job> queue_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;  // guarded by mu_
    std::vector<std::thread> workers_;
};

} // namespace armstice::serve
