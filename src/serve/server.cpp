#include "serve/server.hpp"

#include "arch/cost_model.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/score.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/str.hpp"

#include <cstdio>
#include <utility>

namespace armstice::serve {
namespace {

/// The five figure artefacts, computed on demand (their sweeps run through
/// SweepRunner, so repeats hit the memo cache) and rendered with the exact
/// bytes the golden-figure tests pin.
std::string figure_csv(int figure) {
    switch (figure) {
        case 1: return core::fig1_csv(core::run_fig1());
        case 2: return core::fig2_csv(core::run_fig2());
        case 3: return core::fig3_csv(core::run_fig3());
        case 4: return core::fig4_csv(core::run_fig4());
        case 5: return core::fig5_csv(core::run_fig5());
        default:
            throw util::Error(util::format("serve: unknown figure %d (1..5)",
                                           figure));
    }
}

} // namespace

std::uint64_t current_rss_bytes() {
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0;
    char line[256];
    long kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    return kb > 0 ? static_cast<std::uint64_t>(kb) * 1024 : 0;
}

Server::Server(ServerConfig cfg, SweepService::Evaluator evaluator)
    : cfg_(cfg),
      service_(ServiceConfig{cfg.workers, cfg.max_inflight},
               std::move(evaluator)) {}

Server::~Server() { stop(); }

void Server::start() {
    ARMSTICE_CHECK(!started_, "serve: Server::start called twice");
    ARMSTICE_CHECK(!cfg_.unix_path.empty() || cfg_.tcp_port >= 0,
                   "serve: no endpoint configured (unix_path or tcp_port)");
    start_time_ = std::chrono::steady_clock::now();
    if (!cfg_.unix_path.empty()) {
        auto l = util::Listener::listen_unix(cfg_.unix_path);
        accept_threads_.emplace_back(
            [this, l = std::move(l)]() mutable { accept_loop(std::move(l)); });
    }
    if (cfg_.tcp_port >= 0) {
        auto l = util::Listener::listen_tcp(cfg_.tcp_port);
        tcp_port_ = l.port();
        accept_threads_.emplace_back(
            [this, l = std::move(l)]() mutable { accept_loop(std::move(l)); });
    }
    started_ = true;
}

void Server::stop() {
    if (stopping_.exchange(true)) {
        // Second caller still waits for the accept threads (destructor after
        // an explicit stop()).
    }
    for (auto& t : accept_threads_) {
        if (t.joinable()) t.join();
    }
    accept_threads_.clear();
    // Unblock session reads, then join them.
    {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        for (auto& s : sessions_) s->sock.shutdown();
    }
    for (;;) {
        std::shared_ptr<Session> s;
        {
            std::lock_guard<std::mutex> lock(sessions_mu_);
            if (sessions_.empty()) break;
            s = sessions_.front();
            sessions_.pop_front();
        }
        if (s->thread.joinable()) s->thread.join();
    }
    service_.stop();
}

StatsResult Server::stats_snapshot() const {
    const ServiceStats svc = service_.stats();
    StatsResult out;
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        out.sweep_requests = sweep_requests_;
        out.figure_requests = figure_requests_;
        out.scorecard_requests = scorecard_requests_;
        out.stats_requests = stats_requests_;
        out.retries = retries_;
        out.protocol_errors = protocol_errors_;
        out.sessions_opened = sessions_opened_;
    }
    out.requests = out.sweep_requests + out.figure_requests +
                   out.scorecard_requests + out.stats_requests;
    out.points = static_cast<std::uint64_t>(svc.points);
    out.cache_hits = static_cast<std::uint64_t>(svc.cache_hits);
    out.coalesced = static_cast<std::uint64_t>(svc.coalesced);
    out.computed = static_cast<std::uint64_t>(svc.computed);
    out.point_errors = static_cast<std::uint64_t>(svc.point_errors);
    out.inflight = static_cast<std::uint64_t>(svc.inflight);
    {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        out.sessions_active = sessions_.size();
    }
    if (started_) {
        out.uptime_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_time_)
                           .count();
    }
    out.qps = out.uptime_s > 0
                  ? static_cast<double>(out.requests) / out.uptime_s
                  : 0.0;
    out.rss_bytes = current_rss_bytes();
    return out;
}

void Server::accept_loop(util::Listener listener) {
    while (!stopping_.load(std::memory_order_relaxed)) {
        util::Socket sock = listener.accept(/*timeout_ms=*/50);
        if (!sock.valid()) continue;
        reap_finished_sessions();

        auto session = std::make_shared<Session>();
        session->sock = std::move(sock);

        bool at_limit = false;
        {
            std::lock_guard<std::mutex> lock(sessions_mu_);
            at_limit = sessions_.size() >=
                       static_cast<std::size_t>(cfg_.max_sessions);
            if (!at_limit) sessions_.push_back(session);
        }
        if (at_limit) {
            Message m;
            m.body = ErrorMsg{ErrorCode::kSessionLimit,
                              util::format("serve: session limit %d reached",
                                           cfg_.max_sessions)};
            write_frame(session->sock, m);
            continue;  // socket closes with `session`
        }
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++sessions_opened_;
        }
        session->thread = std::thread([this, session] { run_session(session); });
    }
    listener.close();
}

void Server::reap_finished_sessions() {
    std::list<std::shared_ptr<Session>> finished;
    {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            if ((*it)->done.load(std::memory_order_acquire)) {
                finished.push_back(*it);
                it = sessions_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto& s : finished) {
        if (s->thread.joinable()) s->thread.join();
    }
}

bool Server::send(Session& s, const Message& m) {
    return write_frame(s.sock, m);
}

void Server::send_error(Session& s, std::uint32_t req_id, ErrorCode code,
                        const std::string& message) {
    Message m;
    m.req_id = req_id;
    m.body = ErrorMsg{code, message};
    send(s, m);
}

void Server::run_session(std::shared_ptr<Session> session) {
    Session& s = *session;
    {
        Message hello;
        hello.body = Hello{kProtocolVersion, arch::kModelVersion, kMaxFrame};
        if (!send(s, hello)) {
            s.done.store(true, std::memory_order_release);
            return;
        }
    }
    while (!stopping_.load(std::memory_order_relaxed)) {
        Message req;
        DecodeStatus status = DecodeStatus::kOk;
        const ReadStatus rs = read_frame(s.sock, req, status);
        if (rs == ReadStatus::kClosed) break;
        if (rs == ReadStatus::kMalformed) {
            // Framing damage: answer with a typed error and drop the
            // connection — resynchronising a corrupt byte stream is not
            // possible with length-prefixed frames.
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++protocol_errors_;
            }
            send_error(s, 0, ErrorCode::kBadFrame,
                       std::string("serve: malformed frame: ") +
                           decode_status_name(status));
            break;
        }
        const std::uint32_t req_id = req.req_id;
        if (const auto* sweep = std::get_if<SweepRequest>(&req.body)) {
            handle_sweep(s, req_id, *sweep);
        } else if (const auto* fig = std::get_if<FigureRequest>(&req.body)) {
            handle_figure(s, req_id, *fig);
        } else if (std::get_if<ScorecardRequest>(&req.body) != nullptr) {
            handle_scorecard(s, req_id);
        } else if (std::get_if<StatsRequest>(&req.body) != nullptr) {
            handle_stats(s, req_id);
        } else {
            // A client must only send request frames; anything else is a
            // protocol violation.
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++protocol_errors_;
            }
            send_error(s, req_id, ErrorCode::kBadFrame,
                       "serve: unexpected frame type from client");
            break;
        }
    }
    // shutdown, not close: Server::stop() may concurrently call shutdown()
    // on this socket (both only read the fd). The fd itself is released by
    // the Session destructor, strictly after this thread is joined — the
    // peer still sees prompt EOF because SHUT_RDWR sends FIN.
    s.sock.shutdown();
    s.done.store(true, std::memory_order_release);
}

void Server::handle_sweep(Session& s, std::uint32_t req_id,
                          const SweepRequest& req) {
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++sweep_requests_;
    }
    std::vector<PointSpec> canonical;
    canonical.reserve(req.points.size());
    try {
        for (const auto& spec : req.points) {
            canonical.push_back(canonicalize(spec));
        }
    } catch (const util::Error& e) {
        send_error(s, req_id, ErrorCode::kBadRequest, e.what());
        return;
    }

    SweepService::Ticket ticket = service_.submit(canonical);
    if (!ticket.admitted) {
        if (stopping_.load(std::memory_order_relaxed)) {
            send_error(s, req_id, ErrorCode::kShuttingDown,
                       "serve: server stopping");
            return;
        }
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++retries_;
        }
        Message m;
        m.req_id = req_id;
        m.body = RetryLater{ticket.inflight, ticket.limit};
        send(s, m);
        return;
    }

    // Stream per-point frames in request order as futures resolve. A dead
    // peer just ends the streaming loop — the computations belong to the
    // shared service and complete regardless (other sessions may be joined
    // to them).
    std::uint32_t errors = 0;
    for (std::size_t i = 0; i < ticket.futures.size(); ++i) {
        const PointOutcome& out = ticket.futures[i].get();
        Message m;
        m.req_id = req_id;
        PointResult pr;
        pr.index = static_cast<std::uint32_t>(i);
        pr.origin = ticket.origin[i];
        pr.ok = out.ok;
        pr.payload = out.ok ? out.payload : out.error;
        if (!out.ok) ++errors;
        m.body = std::move(pr);
        if (!send(s, m)) return;
    }
    Message done;
    done.req_id = req_id;
    done.body = SweepDone{static_cast<std::uint32_t>(ticket.futures.size()),
                          ticket.cached, ticket.coalesced, ticket.fresh, errors};
    send(s, done);
}

void Server::handle_figure(Session& s, std::uint32_t req_id,
                           const FigureRequest& req) {
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++figure_requests_;
    }
    std::string csv;
    try {
        csv = figure_csv(req.figure);
    } catch (const std::exception& e) {
        send_error(s, req_id, ErrorCode::kBadRequest, e.what());
        return;
    }
    Message m;
    m.req_id = req_id;
    m.body = FigureResult{req.figure, std::move(csv)};
    send(s, m);
}

void Server::handle_scorecard(Session& s, std::uint32_t req_id) {
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++scorecard_requests_;
    }
    std::string text;
    try {
        text = core::render_scorecard(core::compute_scorecard());
    } catch (const std::exception& e) {
        send_error(s, req_id, ErrorCode::kInternal, e.what());
        return;
    }
    Message m;
    m.req_id = req_id;
    m.body = ScorecardResult{std::move(text)};
    send(s, m);
}

void Server::handle_stats(Session& s, std::uint32_t req_id) {
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_requests_;
    }
    Message m;
    m.req_id = req_id;
    m.body = stats_snapshot();
    send(s, m);
}

} // namespace armstice::serve
