#pragma once
// serve::Client — the blocking client side of the serve protocol, used by
// the serving test battery, the load driver and the --smoke self-test. One
// Client is one connection; it is not thread-safe (use one per thread, the
// server handles the concurrency).

#include "serve/protocol.hpp"
#include "util/socket.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace armstice::serve {

class Client {
public:
    /// Connect and consume the server's Hello. Throws util::Error on
    /// connection failure or a protocol violation in the handshake.
    static Client connect_unix_path(const std::string& path);
    static Client connect_tcp_port(int port);

    [[nodiscard]] const Hello& hello() const { return hello_; }

    /// Outcome of one sweep request.
    struct SweepReply {
        bool retry = false;        ///< server sent RETRY_LATER
        RetryLater retry_info;
        std::vector<PointResult> points;  ///< per-point frames, request order
        SweepDone done;
    };

    /// Issue a sweep and collect the streamed reply. `on_point` (optional)
    /// observes each point frame as it arrives. Throws util::Error on an
    /// ERROR frame or protocol violation.
    SweepReply sweep(const std::vector<PointSpec>& specs,
                     const std::function<void(const PointResult&)>& on_point = {});

    /// Fetch figure N's CSV bytes (exactly core::figN_csv).
    std::string figure(int n);

    /// Fetch the rendered reproduction scorecard.
    std::string scorecard();

    /// Fetch the server's stats frame.
    StatsResult stats();

    /// Send a sweep request and return WITHOUT reading any reply — the
    /// disconnect-mid-stream fault tests drop the connection right after.
    void send_sweep_only(const std::vector<PointSpec>& specs);

    /// Send raw bytes on the wire (fault-injection tests).
    bool send_raw(const std::string& bytes);

    /// Read one frame (fault-injection tests peek at error replies).
    /// Returns false on EOF/close.
    bool read_message(Message& out);

    void close() { sock_.close(); }

private:
    explicit Client(util::Socket sock);

    Message request(const Message& req);

    util::Socket sock_;
    Hello hello_;
    std::uint32_t next_req_id_ = 1;
};

} // namespace armstice::serve
