#pragma once
// The serving catalog: which sweeps a serve::Server will evaluate, and how a
// wire-level point spec maps onto the existing app models + SweepRunner
// cache keys.
//
// A PointSpec is the protocol's unit of work: an app family name, a system
// from the arch catalog, a placement (nodes/ranks/threads) and a
// `key=value;...` config string. parse/validation happens ONCE at request
// admission (bad specs become typed ERROR frames, they never reach a compute
// thread), and canonical_config() rewrites the config into a fixed field
// order/format so that two requests describing the same simulation — in any
// key order, with default fields spelled out or omitted — share one cache
// key and therefore one computation (request coalescing is keyed on this).
//
// Serving stays bit-identical to batch mode by construction: both paths
// funnel through the same SweepPoint key and the same apps::run_* call, and
// results travel as ResultTraits<apps::AppResult> bytes (doubles bit-exact).

#include "apps/common.hpp"
#include "core/runner.hpp"

#include <string>
#include <vector>

namespace armstice::serve {

/// One requested sweep point as it appears on the wire.
struct PointSpec {
    std::string app;     ///< "minikab" | "nekbone" | "cosa"
    std::string system;  ///< arch catalog name, e.g. "A64FX"
    int nodes = 1;
    int ranks = 1;
    int threads = 1;
    std::string config;  ///< "key=value;..." app parameters ("" = defaults)
};

inline bool operator==(const PointSpec& a, const PointSpec& b) {
    return a.app == b.app && a.system == b.system && a.nodes == b.nodes &&
           a.ranks == b.ranks && a.threads == b.threads && a.config == b.config;
}

/// Apps the catalog can serve (all AppResult-shaped).
const std::vector<std::string>& served_apps();

/// Validate `spec` and return it with config rewritten canonically.
/// Throws util::Error (unknown app/system, malformed or unknown config keys,
/// non-positive placement) — the server turns this into a BAD_REQUEST frame.
PointSpec canonicalize(const PointSpec& spec);

/// The cache/coalescing key of a canonical spec: identical to the key the
/// batch path uses, so serving and batch mode share memo + disk entries.
core::SweepPoint to_sweep_point(const PointSpec& canonical);

/// Evaluate one canonical spec (no caching — callers go through
/// SweepRunner, which layers memo + disk cache + coalescing on top).
apps::AppResult eval_point(const PointSpec& canonical);

/// Batch reference path: canonicalize + SweepRunner over `specs` with
/// `jobs` threads. This is exactly what the server does per fresh key; the
/// differential tests compare server-streamed bytes against this.
std::vector<apps::AppResult> batch_eval(const std::vector<PointSpec>& specs,
                                        int jobs);

/// Bit-exact wire encoding of a result (ResultTraits<apps::AppResult>).
std::string encode_result(const apps::AppResult& r);

/// Decode a wire payload; throws util::Error on malformed bytes.
apps::AppResult decode_result(const std::string& payload);

} // namespace armstice::serve
