#pragma once
// CASTEP application model (paper §VII.B, Fig 5, Table IX).
//
// CASTEP is a plane-wave density-functional-theory code; the TiN benchmark
// is dominated by (a) batches of 3D FFTs applying the Hamiltonian to each
// band, provided by FFTW/MKL-DFT/SSL2, and (b) dense complex subspace
// algebra (ZGEMM) from MKL/SSL2/ArmPL. The skeleton models one SCF cycle as
// those two phase families plus the distributed-FFT all-to-all transposes
// and subspace allreduces, with per-library quality factors from
// calibration.cpp (the paper used an *early development* FFTW on A64FX).
// The real kernels live in kern/fft and kern/dense.

#include "apps/common.hpp"
#include "kern/counters.hpp"

namespace armstice::apps {

struct CastepConfig {
    // TiN-benchmark computational dimensions (proxy values chosen to land
    // the measured SCF work; chemistry is irrelevant to performance shape).
    int grid = 128;        ///< plane-wave FFT grid per dimension
    int bands = 320;       ///< Kohn-Sham bands
    int h_apps = 12;       ///< H|psi> applications per band per SCF cycle
    int subspace_ops = 6;  ///< B x B x Npw ZGEMM-like operations per cycle
    int scf_cycles = 2;    ///< cycles to simulate (steady state)
    int nodes = 1;
    int ranks = 1;
    int threads = 1;
    arch::ModelKnobs knobs;  ///< model-component switches (ablation)
};

double castep_bytes_per_rank(const CastepConfig& cfg);

struct CastepOutcome {
    AppResult res;
    double scf_cycles_per_s = 0;  ///< the paper's Table IX metric
};

CastepOutcome run_castep(const arch::SystemSpec& sys, const CastepConfig& cfg);

/// Reference: a real mini plane-wave SCF step at laptop scale — applies a
/// diagonal-in-k kinetic operator via kern::fft3d round trips and a subspace
/// ZGEMM, returning the instrumented counts (validates the analytic counts).
kern::OpCounts castep_reference(int grid, int bands);

} // namespace armstice::apps
