#include "apps/castep/castep.hpp"

#include "arch/calibration.hpp"
#include "arch/toolchain.hpp"
#include "kern/dense/blas.hpp"
#include "kern/dense/eigen.hpp"
#include "kern/fft/fft.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#include <algorithm>

namespace armstice::apps {
namespace {

using arch::ComputePhase;
using arch::MemPattern;

} // namespace

double castep_bytes_per_rank(const CastepConfig& cfg) {
    const double n3 = static_cast<double>(cfg.grid) * cfg.grid * cfg.grid;
    const double npw = n3 / 8.0;  // plane waves inside the cutoff sphere
    const double wavefns = 16.0 * cfg.bands * npw / cfg.ranks;
    const double grids = 16.0 * n3 * 6.0 / cfg.ranks;  // density/potential grids
    return wavefns + grids + 250e6;  // + replicated pseudopotentials etc.
}

CastepOutcome run_castep(const arch::SystemSpec& sys, const CastepConfig& cfg) {
    ARMSTICE_CHECK(cfg.ranks >= 1 && cfg.nodes >= 1 && cfg.threads >= 1,
                   "bad castep config");
    const auto tc = arch::toolchain_for(sys.name, "castep");
    const double fft_q = arch::calib::castep_fft_quality(sys);
    const double blas_q = arch::calib::castep_blas_quality(sys);

    const double n3 = static_cast<double>(cfg.grid) * cfg.grid * cfg.grid;
    const double npw = n3 / 8.0;
    const double n_fft = static_cast<double>(cfg.bands) * cfg.h_apps;

    // FFT batch: each H application round-trips one band through real space.
    ComputePhase fft;
    fft.label = "fft-batch";
    fft.flops = n_fft * kern::fft3d_flops(cfg.grid) / cfg.ranks;
    fft.main_bytes = n_fft * 16.0 * n3 * 2.0 / cfg.ranks;  // cache-blocked pencil passes
    fft.pattern = MemPattern::strided;
    fft.vector_fraction = 0.8;
    fft.parallel_fraction = 0.95;
    fft.efficiency = fft_q;

    // Subspace ZGEMMs (B x Npw times Npw x B etc.).
    ComputePhase gemm;
    gemm.label = "subspace-zgemm";
    gemm.flops = cfg.subspace_ops *
                 kern::zgemm_flops(cfg.bands, static_cast<long>(npw), cfg.bands) /
                 cfg.ranks;
    gemm.main_bytes = cfg.subspace_ops * 16.0 * (2.0 * cfg.bands * npw) / cfg.ranks;
    gemm.pattern = MemPattern::stream;
    gemm.vector_fraction = 0.95;
    gemm.parallel_fraction = 0.98;
    gemm.efficiency = blas_q;

    // Everything else: density build, potentials, diagonalisation tails.
    ComputePhase misc;
    misc.label = "density-potential";
    misc.flops = 30.0 * n3 * cfg.bands / 10.0 / cfg.ranks;
    misc.main_bytes = 16.0 * n3 * 12.0 / cfg.ranks;
    misc.pattern = MemPattern::stream;
    misc.efficiency = 0.7;

    simmpi::ProgramSet ps(cfg.ranks);
    ps.mark("castep-scf");
    for (int c = 0; c < cfg.scf_cycles; ++c) {
        ps.compute(fft);
        if (cfg.ranks > 1) {
            // Distributed-FFT transposes: each rank exchanges its share of
            // the grid with every other rank, twice per H application pass.
            const double a2a_bytes = 16.0 * n3 / cfg.ranks / cfg.ranks;
            ps.alltoall(a2a_bytes);
            ps.alltoall(a2a_bytes);
        }
        ps.compute(gemm);
        if (cfg.ranks > 1) {
            ps.allreduce(16.0 * cfg.bands * cfg.bands);  // subspace matrix
        }
        ps.compute(misc);
        if (cfg.ranks > 1) ps.allreduce(8);  // SCF energy/convergence check
    }

    CastepOutcome out;
    out.res = run_on(sys, cfg.nodes, cfg.ranks, cfg.threads, tc.vec_quality,
                     std::move(ps), castep_bytes_per_rank(cfg), cfg.knobs);
    if (out.res.feasible && out.res.seconds > 0) {
        out.scf_cycles_per_s = cfg.scf_cycles / out.res.seconds;
    }
    return out;
}

kern::OpCounts castep_reference(int grid, int bands) {
    kern::OpCounts counts;
    const std::size_t n3 =
        static_cast<std::size_t>(grid) * grid * static_cast<std::size_t>(grid);
    util::Rng rng(11);

    // One H|psi> application per band: FFT to real space, multiply by a
    // local potential, FFT back.
    std::vector<kern::cplx> psi(n3);
    std::vector<double> vloc(n3);
    for (auto& v : vloc) v = rng.uniform(-1.0, 1.0);
    for (int b = 0; b < bands; ++b) {
        for (std::size_t i = 0; i < n3; ++i) {
            psi[i] = kern::cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        }
        kern::fft3d(psi, grid, &counts);
        for (std::size_t i = 0; i < n3; ++i) psi[i] *= vloc[i];
        counts.flops += 2.0 * static_cast<double>(n3);
        kern::ifft3d(psi, grid, &counts);
    }

    // One subspace ZGEMM: S = Psi^H Psi over a reduced plane-wave set.
    const int npw = std::max(8, grid * grid / 4);
    std::vector<kern::cplx> a(static_cast<std::size_t>(bands) * npw);
    std::vector<kern::cplx> s(static_cast<std::size_t>(bands) * bands);
    for (auto& v : a) v = kern::cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    kern::zgemm(a, a, s, bands, npw, bands, &counts);

    // Subspace diagonalisation (the Kohn-Sham rotation): symmetrise the real
    // part of S and eigensolve it with the Jacobi solver.
    std::vector<double> h(static_cast<std::size_t>(bands) * bands);
    for (int i = 0; i < bands; ++i) {
        for (int j = 0; j < bands; ++j) {
            const double v = 0.5 * (s[static_cast<std::size_t>(i) * bands + j].real() +
                                    s[static_cast<std::size_t>(j) * bands + i].real());
            h[static_cast<std::size_t>(i) * bands + j] = v;
        }
    }
    (void)kern::eigen_sym(h, bands, 1e-10, 30, &counts);
    return counts;
}

} // namespace armstice::apps
