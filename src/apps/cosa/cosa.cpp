#include "apps/cosa/cosa.hpp"

#include "arch/calibration.hpp"
#include "arch/toolchain.hpp"
#include "util/error.hpp"

#include <cmath>

namespace armstice::apps {
namespace {

using arch::ComputePhase;
using arch::MemPattern;

/// Doubles stored per cell per HB snapshot: conservative variables, HB
/// source terms, residuals, fluxes, metric terms and the multigrid
/// hierarchy. Anchored by the paper's "~60 GB" footprint for the 800-block,
/// 3.69M-cell, 4-harmonic case: 60e9 / (3.69e6 * 9 * 8 B) = ~226.
constexpr double kDoublesPerCellPerSnapshot = 226.0;

/// Fraction of the block data streamed from main memory per solver
/// iteration. Most of the 226 doubles/cell are flux/metric temporaries that
/// stay cache-resident inside a block sweep; the per-iteration main-memory
/// traffic is roughly one visit to the solution + residual + HB source
/// state (~60% of the block). This ratio makes COSA compute-leaning, which
/// is required for Fig 4's 16-node crossover to be possible at all: were
/// COSA purely bandwidth-bound, the A64FX's HBM advantage (>4x per core)
/// could never be overcome by the 2x block-count imbalance the paper blames.
constexpr double kTouchesPerIteration = 0.6;

/// FLOPs per cell per snapshot per iteration: JST flux + HB source terms +
/// multigrid smoothing across the V-cycle.
constexpr double kFlopsPerCellPerSnapshot = 2800.0;

} // namespace

int cosa_snapshots(const CosaConfig& cfg) { return 2 * cfg.harmonics + 1; }

double cosa_bytes_per_rank(const CosaConfig& cfg, int blocks_on_rank) {
    const double cells_per_block = static_cast<double>(cfg.total_cells) / cfg.blocks;
    const double block_bytes =
        cells_per_block * cosa_snapshots(cfg) * 8.0 * kDoublesPerCellPerSnapshot;
    return blocks_on_rank * block_bytes + 30e6;  // + fixed runtime footprint
}

kern::BlockDistribution cosa_distribution(const CosaConfig& cfg, int ranks) {
    return kern::BlockDistribution::round_robin(cfg.blocks, ranks);
}

AppResult run_cosa(const arch::SystemSpec& sys, const CosaConfig& cfg) {
    ARMSTICE_CHECK(cfg.nodes >= 1, "bad cosa config");
    const int ppn = cfg.ranks_per_node > 0 ? cfg.ranks_per_node : sys.node.cores();
    const int ranks = cfg.nodes * ppn;
    const auto tc = arch::toolchain_for(sys.name, "cosa");
    const double eta = arch::calib::cosa_efficiency(sys);
    const auto dist = cosa_distribution(cfg, ranks);

    const double cells_per_block = static_cast<double>(cfg.total_cells) / cfg.blocks;
    const int snaps = cosa_snapshots(cfg);
    const double block_bytes = cells_per_block * snaps * 8.0 * kDoublesPerCellPerSnapshot;
    const double block_flops = cells_per_block * snaps * kFlopsPerCellPerSnapshot;

    // Inter-block halo: block faces exchange perimeter cells for every
    // snapshot at each of the ~3 multigrid transfer points per iteration.
    const double halo_bytes_per_block =
        std::sqrt(cells_per_block) * 4.0 * snaps * 5.0 * 8.0 * 3.0;

    // Blocks chain: block b talks to b-1/b+1; with round-robin ownership the
    // active ranks form a chain neighbourhood.
    const auto neighbors = simmpi::chain_neighbors(ranks, dist.active_ranks);
    std::vector<std::vector<double>> halo_bytes(static_cast<std::size_t>(ranks));
    for (int r = 0; r < dist.active_ranks; ++r) {
        const double b = halo_bytes_per_block *
                         dist.blocks_of[static_cast<std::size_t>(r)];
        halo_bytes[static_cast<std::size_t>(r)].assign(
            neighbors[static_cast<std::size_t>(r)].size(), b);
    }

    simmpi::ProgramSet ps(ranks);
    ps.mark("cosa-hb-mg");
    for (int it = 0; it < cfg.iterations; ++it) {
        ps.compute_by_rank([&](int r) {
            const int nblocks = dist.blocks_of[static_cast<std::size_t>(r)];
            ComputePhase p;
            p.label = "hb-mg-iteration";
            p.flops = nblocks * block_flops;
            p.main_bytes = nblocks * block_bytes * kTouchesPerIteration;
            p.working_set = nblocks * block_bytes;
            p.pattern = MemPattern::stream;
            p.vector_fraction = 0.8;
            p.efficiency = eta;
            return p;
        });
        if (ranks > 1 && dist.active_ranks > 1) {
            ps.halo_exchange(neighbors, halo_bytes);
        }
        ps.allreduce(8);  // global residual monitor
    }

    // Capacity: the bottleneck node hosts the max-loaded ranks.
    AppResult out = run_on(sys, cfg.nodes, ranks, /*threads=*/1, tc.vec_quality,
                           std::move(ps),
                           cosa_bytes_per_rank(cfg, dist.max_blocks_per_rank),
                           cfg.knobs);
    return out;
}

} // namespace armstice::apps
