#pragma once
// COSA application model (paper §VII.A, Table VIII, Fig 4).
//
// COSA is a harmonic-balance (HB) finite-volume Navier-Stokes solver with
// multigrid integration, parallelised over structured grid blocks. The
// paper's test case: 4 harmonics (9 solution snapshots), 800 blocks,
// 3,690,218 total grid cells, 100 iterations, ~60 GB footprint, I/O
// disabled. Blocks are dealt round-robin to MPI processes, which is the
// whole story of the Fig 4 crossover: at 16 nodes the A64FX runs 768
// processes (32 of them carrying 2 blocks) while Fulhame's 1024 processes
// leave 224 idle but every active one carries exactly 1 block.

#include "apps/common.hpp"
#include "kern/mesh/blocks.hpp"

namespace armstice::apps {

struct CosaConfig {
    int blocks = 800;
    long total_cells = 3'690'218;
    int harmonics = 4;       ///< HB harmonics -> 2*4+1 = 9 solution snapshots
    int iterations = 100;
    int nodes = 1;
    int ranks_per_node = 0;  ///< 0 -> full node (Table VIII)
    arch::ModelKnobs knobs;  ///< model-component switches (ablation)
};

/// Solution snapshots carried by the HB formulation.
int cosa_snapshots(const CosaConfig& cfg);

/// Per-rank memory footprint given its block count (the ~60 GB case).
double cosa_bytes_per_rank(const CosaConfig& cfg, int blocks_on_rank);

/// Simulate one strong-scaling point. Returns infeasible when the blocks do
/// not fit (A64FX at 1 node in the paper).
AppResult run_cosa(const arch::SystemSpec& sys, const CosaConfig& cfg);

/// The block distribution used for a given rank count (exposed for tests
/// and the Table VIII bench).
kern::BlockDistribution cosa_distribution(const CosaConfig& cfg, int ranks);

} // namespace armstice::apps
