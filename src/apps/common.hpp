#pragma once
// Shared plumbing for the six application models: a uniform result type and
// the run helper that owns placement, capacity checking and engine execution.

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "simmpi/minimpi.hpp"

#include <string>

namespace armstice::apps {

/// Result of simulating one application configuration on one system.
struct AppResult {
    bool feasible = true;    ///< false when the capacity model rejected it
    std::string note;        ///< why infeasible / run annotations
    double seconds = 0;      ///< simulated makespan
    double gflops = 0;       ///< counted FLOPs / makespan
    sim::RunResult run;      ///< full engine output (empty when infeasible)
};

/// Place `ranks` x `threads` onto `nodes` nodes of `sys`, check the
/// per-rank footprint, and execute the program set. Capacity violations
/// return an infeasible AppResult instead of throwing.
AppResult run_on(const arch::SystemSpec& sys, int nodes, int ranks, int threads,
                 double vec_quality, simmpi::ProgramSet&& programs,
                 double bytes_per_rank, arch::ModelKnobs knobs = {});

/// Strong-scaling parallel efficiency: t1 / (n * tn) given per-node-count
/// times; weak-scaling PE is t1 / tn.
double parallel_efficiency_strong(double t1, double tn, int n);
double parallel_efficiency_weak(double t1, double tn);

} // namespace armstice::apps
