#include "apps/common.hpp"

#include "util/error.hpp"

namespace armstice::apps {

AppResult run_on(const arch::SystemSpec& sys, int nodes, int ranks, int threads,
                 double vec_quality, simmpi::ProgramSet&& programs,
                 double bytes_per_rank, arch::ModelKnobs knobs) {
    AppResult out;
    try {
        auto placement = sim::Placement::block(sys.node, nodes, ranks, threads);
        placement.check_capacity(bytes_per_rank);
        const sim::Engine engine(sys, std::move(placement), vec_quality, knobs);
        // Bundle path: structurally identical rank programs stay shared all
        // the way into the engine (bit-identical to the take() vector path).
        out.run = engine.run(programs.take_bundle());
        out.seconds = out.run.makespan;
        out.gflops = out.run.gflops();
    } catch (const util::CapacityError& e) {
        out.feasible = false;
        out.note = e.what();
    }
    return out;
}

double parallel_efficiency_strong(double t1, double tn, int n) {
    ARMSTICE_CHECK(t1 > 0 && tn > 0 && n >= 1, "bad efficiency inputs");
    return t1 / (n * tn);
}

double parallel_efficiency_weak(double t1, double tn) {
    ARMSTICE_CHECK(t1 > 0 && tn > 0, "bad efficiency inputs");
    return t1 / tn;
}

} // namespace armstice::apps
