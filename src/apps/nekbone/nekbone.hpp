#pragma once
// Nekbone application model (paper §VI.B, Table VI, Fig 3, Table VII).
//
// Nekbone is the Nek5000 mini-app: CG on the spectral-element Poisson
// operator. Each iteration applies the `ax` kernel — per-element tensor
// contractions with the GLL differentiation matrix (local_grad3), the
// 6-term geometric metric, and local_grad3^T — followed by
// direct-stiffness summation (nearest-neighbour faces) and the CG BLAS-1
// work with two allreduce reduction points. The paper's configuration is
// weak scaling with 200 elements per rank at 16x16x16 polynomial order.
// The real kernel lives in kern/nek and its flop count is cross-checked.

#include "apps/common.hpp"
#include "kern/nek/spectral.hpp"

namespace armstice::apps {

struct NekboneConfig {
    int elems_per_rank = 200;  ///< paper: largest repository test case
    int nx1 = 16;              ///< points per direction (16^3 polynomial order)
    int cg_iters = 100;        ///< Nekbone's fixed iteration count
    int nodes = 1;
    int ranks = 1;
    bool fastmath = false;     ///< -Kfast / -ffast-math build (Table VI)
    arch::ModelKnobs knobs;    ///< model-component switches (ablation)
};

double nekbone_bytes_per_rank(const NekboneConfig& cfg);

AppResult run_nekbone(const arch::SystemSpec& sys, const NekboneConfig& cfg);

/// Full-node configuration used by Tables VI/VII: one rank per core.
NekboneConfig nekbone_node_config(const arch::SystemSpec& sys, int nodes,
                                  bool fastmath = false);

/// Reference: real spectral-element CG at laptop scale.
kern::CgResult nekbone_reference(int elems, int nx1, int iters);

} // namespace armstice::apps
