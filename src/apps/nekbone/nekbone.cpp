#include "apps/nekbone/nekbone.hpp"

#include "arch/calibration.hpp"
#include "arch/toolchain.hpp"
#include "util/error.hpp"

#include <algorithm>

namespace armstice::apps {
namespace {

using arch::ComputePhase;
using arch::MemPattern;

} // namespace

double nekbone_bytes_per_rank(const NekboneConfig& cfg) {
    const double epts = static_cast<double>(cfg.nx1) * cfg.nx1 * cfg.nx1;
    const double n = cfg.elems_per_rank * epts;
    // u, w, r, p, 6 geometric factor arrays, multiplicity, workspace.
    return 8.0 * n * 12.0;
}

AppResult run_nekbone(const arch::SystemSpec& sys, const NekboneConfig& cfg) {
    ARMSTICE_CHECK(cfg.ranks >= 1 && cfg.nodes >= 1, "bad nekbone config");
    const auto tc = arch::toolchain_for(sys.name, "nekbone");
    double eta = arch::calib::nekbone_efficiency(sys);
    if (cfg.fastmath) eta *= arch::calib::nekbone_fastmath_factor(sys);
    eta = std::min(eta, 1.5);  // cost-model efficiency bound

    const double epts = static_cast<double>(cfg.nx1) * cfg.nx1 * cfg.nx1;
    const double n = cfg.elems_per_rank * epts;  // local dofs

    // ax kernel: exact flop count from kern::NekMesh (cross-checked by
    // tests); traffic: u + w + 6 geometry arrays stream from memory, the
    // contraction temporaries stay in cache.
    ComputePhase ax;
    ax.label = "ax";
    ax.flops = kern::NekMesh::ax_flops(cfg.elems_per_rank, cfg.nx1);
    ax.main_bytes = 8.0 * n * (1.0 + 1.0 + 6.0);
    ax.cache_bytes = 8.0 * n * 6.0;      // ur/us/ut read+write in LLC
    ax.working_set = 8.0 * n * 8.0;      // streams the full element set
    ax.pattern = MemPattern::stream;
    ax.vector_fraction = 0.9;
    ax.parallel_fraction = 1.0;  // MPI-only in the paper's runs
    ax.efficiency = eta;

    // CG BLAS-1: 13n flops (2 dots + 3 updates), ~13 array sweeps.
    ComputePhase blas1;
    blas1.label = "cg-blas1";
    blas1.flops = 13.0 * n;
    blas1.main_bytes = 8.0 * n * 13.0;
    blas1.pattern = MemPattern::stream;
    blas1.efficiency = eta;

    // dssum face exchange: ranks form a chain of element slabs.
    const auto neighbors = simmpi::chain_neighbors(cfg.ranks);
    const double face_bytes = 8.0 * cfg.nx1 * cfg.nx1;

    const int sim_iters = std::min(cfg.cg_iters, 60);
    const double scale = static_cast<double>(cfg.cg_iters) / sim_iters;

    simmpi::ProgramSet ps(cfg.ranks);
    ps.mark("nekbone-cg");
    for (int it = 0; it < sim_iters; ++it) {
        ps.compute(ax);
        if (cfg.ranks > 1) ps.halo_exchange(neighbors, face_bytes);
        ps.compute(blas1);
        if (cfg.ranks > 1) {
            ps.allreduce(8);  // pAp
            ps.allreduce(8);  // rr
        }
    }

    AppResult out = run_on(sys, cfg.nodes, cfg.ranks, /*threads=*/1, tc.vec_quality,
                           std::move(ps), nekbone_bytes_per_rank(cfg), cfg.knobs);
    out.seconds *= scale;
    return out;
}

NekboneConfig nekbone_node_config(const arch::SystemSpec& sys, int nodes, bool fastmath) {
    NekboneConfig cfg;
    cfg.nodes = nodes;
    cfg.ranks = nodes * sys.node.cores();
    cfg.fastmath = fastmath;
    return cfg;
}

kern::CgResult nekbone_reference(int elems, int nx1, int iters) {
    const kern::NekMesh mesh(elems, nx1);
    std::vector<double> f(static_cast<std::size_t>(mesh.local_dofs()), 1.0);
    mesh.mask(f);
    std::vector<double> u(f.size(), 0.0);
    return mesh.cg(f, u, iters);
}

} // namespace armstice::apps
