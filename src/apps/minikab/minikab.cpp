#include "apps/minikab/minikab.hpp"

#include "arch/calibration.hpp"
#include "arch/toolchain.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::apps {
namespace {

using arch::ComputePhase;
using arch::MemPattern;

/// Replicated per-process setup data (mesh, ordering, solver workspace).
/// Anchored by Fig 1: the largest plain-MPI configuration fitting two
/// 32 GB A64FX nodes is 48 processes, i.e. ~1.33 GB/process total footprint
/// (24 processes/node fit; 25 do not).
constexpr double kReplicatedBytes = 1.22e9;

/// Interface (halo) size of a row-slab decomposition of the structural
/// problem: cross-section of a ~213^3-dof body, 3 dofs/node coupling.
double slab_interface_bytes(const MinikabConfig& cfg) {
    const double cross_section = std::pow(static_cast<double>(cfg.rows), 2.0 / 3.0);
    return 8.0 * 3.0 * cross_section;
}

/// Iteration-count factor per solver on the Benchmark1-class structural
/// matrix: Jacobi preconditioning cuts iterations ~25% (verified by the
/// reference solver on random SPD systems); pipelining changes only the
/// communication schedule.
double solver_iteration_factor(MinikabSolver s) {
    switch (s) {
        case MinikabSolver::cg: return 1.0;
        case MinikabSolver::jacobi_pcg: return 0.75;
        case MinikabSolver::pipelined_cg: return 1.0;
    }
    return 1.0;
}

} // namespace

const char* minikab_solver_name(MinikabSolver s) {
    switch (s) {
        case MinikabSolver::cg: return "cg";
        case MinikabSolver::jacobi_pcg: return "jacobi-pcg";
        case MinikabSolver::pipelined_cg: return "pipelined-cg";
    }
    return "?";
}

double minikab_bytes_per_rank(const MinikabConfig& cfg) {
    const double share = 1.0 / cfg.ranks;
    const double matrix = (12.0 * cfg.nnz + 8.0 * cfg.rows) * share;
    const double vectors = 8.0 * 8.0 * cfg.rows * share;
    return matrix + vectors + kReplicatedBytes;
}

AppResult run_minikab(const arch::SystemSpec& sys, const MinikabConfig& cfg) {
    ARMSTICE_CHECK(cfg.ranks >= 1 && cfg.nodes >= 1 && cfg.threads >= 1,
                   "bad minikab config");
    const auto tc = arch::toolchain_for(sys.name, "minikab");
    const double eta = arch::calib::minikab_efficiency(sys);

    const double rows_per_rank = static_cast<double>(cfg.rows) / cfg.ranks;
    const double nnz_per_rank = cfg.nnz / cfg.ranks;

    // Per-iteration phases (plain CG): SpMV, two reduction dots, three
    // vector updates. OpenMP parallelises all loops well (the solver is
    // simple); the serial fraction covers the sequential halo pack/unpack.
    ComputePhase spmv;
    spmv.label = "spmv";
    spmv.flops = 2.0 * nnz_per_rank;
    spmv.main_bytes = 12.0 * nnz_per_rank + 24.0 * rows_per_rank;
    spmv.pattern = MemPattern::gather;
    spmv.vector_fraction = 0.85;
    spmv.parallel_fraction = 0.995;
    spmv.efficiency = eta;

    ComputePhase blas1;
    blas1.label = "blas1";
    blas1.flops = (2.0 + 2.0 + 2.0 + 2.0 + 2.0) * rows_per_rank;  // 2 dots + 3 updates
    blas1.main_bytes = (16.0 + 16.0 + 24.0 + 24.0 + 24.0) * rows_per_rank;
    blas1.pattern = MemPattern::stream;
    blas1.parallel_fraction = 0.99;
    blas1.efficiency = eta;

    // Slab decomposition: two neighbours in the chain interior.
    const auto neighbors = simmpi::chain_neighbors(cfg.ranks);
    const double halo = slab_interface_bytes(cfg);

    // Solver-variant work: the Jacobi sweep adds a diagonal solve per
    // iteration; pipelined CG carries two extra recurrence vectors.
    ComputePhase extra;
    extra.label = "solver-extra";
    extra.pattern = MemPattern::stream;
    extra.parallel_fraction = 0.99;
    extra.efficiency = eta;
    if (cfg.solver == MinikabSolver::jacobi_pcg) {
        extra.flops = rows_per_rank;
        extra.main_bytes = 24.0 * rows_per_rank;
    } else if (cfg.solver == MinikabSolver::pipelined_cg) {
        extra.flops = 4.0 * rows_per_rank;
        extra.main_bytes = 48.0 * rows_per_rank;
    }

    // CG iterations are identical in steady state; simulate a window and
    // scale the makespan (exact for a deterministic bulk-synchronous loop).
    const int iterations = static_cast<int>(
        std::lround(cfg.iterations * solver_iteration_factor(cfg.solver)));
    const int sim_iters = std::min(iterations, 120);
    const double scale = static_cast<double>(iterations) / sim_iters;

    simmpi::ProgramSet ps(cfg.ranks);
    ps.mark(std::string("minikab-") + minikab_solver_name(cfg.solver));
    for (int it = 0; it < sim_iters; ++it) {
        if (cfg.ranks > 1) ps.halo_exchange(neighbors, halo);
        ps.compute(spmv);
        ps.compute(blas1);
        if (extra.flops > 0) ps.compute(extra);
        if (cfg.ranks > 1) {
            // Plain/Jacobi CG: two blocking reduction points. Pipelined CG:
            // a single fused allreduce per iteration.
            ps.allreduce(8);
            if (cfg.solver != MinikabSolver::pipelined_cg) ps.allreduce(8);
        }
    }

    AppResult out = run_on(sys, cfg.nodes, cfg.ranks, cfg.threads, tc.vec_quality,
                           std::move(ps), minikab_bytes_per_rank(cfg), cfg.knobs);
    out.seconds *= scale;
    return out;
}

kern::CgResult minikab_reference(long n, int extra_per_row, int max_iters,
                                 MinikabSolver solver) {
    const auto a = kern::random_spd(n, extra_per_row, /*seed=*/42);
    std::vector<double> b(static_cast<std::size_t>(n), 1.0);
    std::vector<double> x(b.size(), 0.0);
    kern::Preconditioner precond;
    if (solver == MinikabSolver::jacobi_pcg) {
        precond = kern::jacobi_preconditioner(a);
    }
    return kern::cg_solve(a, b, x, {.max_iters = max_iters, .rel_tol = 1e-8}, precond);
}

} // namespace armstice::apps
