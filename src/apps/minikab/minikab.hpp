#pragma once
// minikab application model (paper §VI.A, Table V, Figs 1 & 2).
//
// minikab is EPCC's Mini Krylov ASiMoV Benchmark: a plain parallel CG solve
// on the "Benchmark1" sparse matrix (9,573,984 DoF, 696,096,138 nonzeros, a
// large structural problem). The skeleton reproduces the CG iteration's
// traffic exactly (SpMV gather + BLAS-1 + two reductions) under a row-slab
// decomposition, supports hybrid MPI x OpenMP configurations, and carries
// the per-process memory-footprint model that caps plain MPI at 24
// processes per 32 GB A64FX node (the paper's Fig 1 observation).

#include "apps/common.hpp"
#include "kern/sparse/cg.hpp"

namespace armstice::apps {

/// minikab's solver-algorithm command-line option (paper §VI.A: the mini-app
/// exists "to allow testing of a range of parallel implementation
/// techniques"). The paper benchmarks the default; we model all three:
///  * cg            — plain CG: 2 blocking allreduces per iteration.
///  * jacobi_pcg    — diagonally preconditioned CG: extra diagonal sweep,
///                    fewer iterations on the stiff structural matrix.
///  * pipelined_cg  — Ghysels-Vanroose pipelined CG: one allreduce per
///                    iteration, overlapped with the SpMV; extra vector work.
enum class MinikabSolver { cg, jacobi_pcg, pipelined_cg };

const char* minikab_solver_name(MinikabSolver s);

struct MinikabConfig {
    long rows = 9'573'984;       ///< Benchmark1 degrees of freedom
    double nnz = 696'096'138.0;  ///< Benchmark1 nonzeros
    int iterations = 1080;       ///< CG iterations to convergence (calibrated
                                 ///< once against Table V; see minikab.cpp)
    int nodes = 1;
    int ranks = 1;               ///< MPI processes
    int threads = 1;             ///< OpenMP threads per process
    MinikabSolver solver = MinikabSolver::cg;
    arch::ModelKnobs knobs;      ///< model-component switches (ablation)
};

/// Per-process memory footprint: matrix slab + CG vectors + the replicated
/// setup data that makes plain MPI memory-hungry (Fig 1: max 48 processes
/// on 2 nodes).
double minikab_bytes_per_rank(const MinikabConfig& cfg);

/// Simulate one configuration. Infeasible placements (memory) are reported,
/// not thrown.
AppResult run_minikab(const arch::SystemSpec& sys, const MinikabConfig& cfg);

/// Reference: real CG on a random SPD system at laptop scale; `solver`
/// selects plain or Jacobi-preconditioned CG (pipelined CG is numerically
/// identical to plain CG, differing only in communication schedule).
kern::CgResult minikab_reference(long n, int extra_per_row, int max_iters,
                                 MinikabSolver solver = MinikabSolver::cg);

} // namespace armstice::apps
