#include "apps/hpcg/hpcg.hpp"

#include "arch/calibration.hpp"
#include "arch/toolchain.hpp"
#include "util/error.hpp"

#include <cmath>

namespace armstice::apps {
namespace {

using arch::ComputePhase;
using arch::MemPattern;

/// Work at one multigrid level for one rank's local grid.
struct LevelWork {
    double rows = 0;
    double nnz = 0;
    double face_bytes = 0;  ///< halo payload per face per exchange
};

std::vector<LevelWork> level_work(const HpcgConfig& cfg) {
    std::vector<LevelWork> levels;
    int nx = cfg.nx, ny = cfg.ny, nz = cfg.nz;
    for (int l = 0; l < cfg.levels; ++l) {
        ARMSTICE_CHECK(nx % 2 == 0 || l == cfg.levels - 1,
                       "HPCG grid must halve per level");
        LevelWork w;
        w.rows = static_cast<double>(nx) * ny * nz;
        w.nnz = nnz_27pt(nx, ny, nz);
        w.face_bytes = 8.0 * nx * ny;  // one face of the local block
        levels.push_back(w);
        nx /= 2;
        ny /= 2;
        nz /= 2;
    }
    return levels;
}

ComputePhase spmv_phase(const LevelWork& w, double eta, const char* label) {
    ComputePhase p;
    p.label = label;
    p.flops = 2.0 * w.nnz;
    p.main_bytes = 12.0 * w.nnz + 24.0 * w.rows;
    p.pattern = MemPattern::gather;
    p.vector_fraction = 0.85;
    p.efficiency = eta;
    return p;
}

ComputePhase symgs_phase(const LevelWork& w, double eta, const char* label) {
    ComputePhase p;
    p.label = label;
    p.flops = 4.0 * w.nnz;
    p.main_bytes = 2.0 * (12.0 * w.nnz + 16.0 * w.rows) + 16.0 * w.rows;
    p.pattern = MemPattern::gather;  // plus forward/backward dependencies,
                                     // absorbed in the calibrated efficiency
    p.vector_fraction = 0.5;         // SymGS vectorises poorly everywhere
    p.efficiency = eta;
    return p;
}

ComputePhase vector_phase(double rows, double flops_per_row, double bytes_per_row,
                          double eta, const char* label) {
    ComputePhase p;
    p.label = label;
    p.flops = flops_per_row * rows;
    p.main_bytes = bytes_per_row * rows;
    p.pattern = MemPattern::stream;
    p.efficiency = eta;
    return p;
}

} // namespace

double nnz_27pt(long nx, long ny, long nz) {
    return static_cast<double>(3 * nx - 2) * static_cast<double>(3 * ny - 2) *
           static_cast<double>(3 * nz - 2);
}

double hpcg_bytes_per_rank(const HpcgConfig& cfg) {
    double bytes = 0;
    int nx = cfg.nx, ny = cfg.ny, nz = cfg.nz;
    for (int l = 0; l < cfg.levels; ++l) {
        const double rows = static_cast<double>(nx) * ny * nz;
        const double nnz = nnz_27pt(nx, ny, nz);
        bytes += 12.0 * nnz + 8.0 * rows;   // CSR values+cols, row pointers
        bytes += 8.0 * rows * 4.0;          // per-level work vectors
        nx /= 2;
        ny /= 2;
        nz /= 2;
    }
    bytes += 8.0 * static_cast<double>(cfg.nx) * cfg.ny * cfg.nz * 6.0;  // CG vectors
    return bytes;
}

HpcgOutcome run_hpcg(const arch::SystemSpec& sys, int nodes, const HpcgConfig& cfg) {
    ARMSTICE_CHECK(nodes >= 1, "hpcg needs >=1 node");
    const int ranks = nodes * sys.node.cores();  // MPI-only, fully populated
    const auto tc = arch::toolchain_for(sys.name, "hpcg");
    const double eta = arch::calib::hpcg_efficiency(sys, cfg.optimized);
    const auto levels = level_work(cfg);

    // 3D rank grid for halo neighbours.
    const auto dims = simmpi::dims_create(ranks, 3);
    const auto neighbors = simmpi::cart_neighbors(dims, /*periodic=*/false);

    // Every phase is invariant across CG iterations: build each once up
    // front instead of re-deriving the ComputePhase (label assignment and
    // all) on every iteration of a possibly-long solve.
    const int coarsest = cfg.levels - 1;
    const auto spmv0 = spmv_phase(levels[0], eta, "spmv0");
    const auto ddot_pap = vector_phase(levels[0].rows, 2.0, 16.0, eta, "ddot-pAp");
    const auto ddot_rtz = vector_phase(levels[0].rows, 2.0, 16.0, eta, "ddot-rtz");
    const auto waxpby =
        vector_phase(levels[0].rows, 3.0 * 3.0, 24.0 * 3.0, eta, "waxpby");
    const auto norm = vector_phase(levels[0].rows, 2.0, 16.0, eta, "norm");
    const auto symgs_coarse =
        symgs_phase(levels[static_cast<std::size_t>(coarsest)], eta, "symgs-coarse");
    std::vector<ComputePhase> symgs_pre, mg_residual, mg_restrict, symgs_post,
        mg_prolong;
    for (int l = 0; l < coarsest; ++l) {
        const auto& fine = levels[static_cast<std::size_t>(l)];
        const auto& coarse = levels[static_cast<std::size_t>(l) + 1];
        symgs_pre.push_back(symgs_phase(fine, eta, "symgs-pre"));
        mg_residual.push_back(spmv_phase(fine, eta, "mg-residual"));
        mg_restrict.push_back(vector_phase(coarse.rows, 1.0, 40.0, eta, "mg-restrict"));
        mg_prolong.push_back(vector_phase(coarse.rows, 1.0, 40.0, eta, "mg-prolong"));
        symgs_post.push_back(symgs_phase(fine, eta, "symgs-post"));
    }

    // No MarkOp here: per-phase labels (spmv0, symgs-pre, ...) feed the
    // phase_compute breakdown users inspect (see examples/quickstart.cpp).
    simmpi::ProgramSet ps(ranks);
    for (int it = 0; it < cfg.iters; ++it) {
        // Level-0 SpMV (w <- A p) with its halo exchange.
        ps.halo_exchange(neighbors, levels[0].face_bytes);
        ps.compute(spmv0);
        ps.compute(ddot_pap);
        ps.allreduce(8);

        // Multigrid V-cycle preconditioner.
        for (int l = 0; l < coarsest; ++l) {
            const auto li = static_cast<std::size_t>(l);
            ps.halo_exchange(neighbors, levels[li].face_bytes);
            ps.compute(symgs_pre[li]);
            ps.halo_exchange(neighbors, levels[li].face_bytes);
            ps.compute(mg_residual[li]);
            ps.compute(mg_restrict[li]);
        }
        ps.halo_exchange(neighbors, levels[static_cast<std::size_t>(coarsest)].face_bytes);
        ps.compute(symgs_coarse);
        for (int l = coarsest - 1; l >= 0; --l) {
            const auto li = static_cast<std::size_t>(l);
            ps.compute(mg_prolong[li]);
            ps.halo_exchange(neighbors, levels[li].face_bytes);
            ps.compute(symgs_post[li]);
        }

        // CG vector updates and reductions.
        ps.compute(ddot_rtz);
        ps.allreduce(8);
        ps.compute(waxpby);
        ps.compute(norm);
        ps.allreduce(8);
    }

    HpcgOutcome out;
    out.res = run_on(sys, nodes, ranks, /*threads=*/1, tc.vec_quality, std::move(ps),
                     hpcg_bytes_per_rank(cfg), cfg.knobs);
    if (out.res.feasible && sys.table_peak_gflops > 0) {
        out.pct_peak = 100.0 * out.res.gflops / (sys.table_peak_gflops * nodes);
    }
    return out;
}

kern::CgResult hpcg_reference(int n, int levels, int max_iters) {
    const kern::Multigrid mg(n, n, n, levels);
    const auto& a = mg.matrix(0);
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);
    return kern::cg_solve(
        a, b, x, {.max_iters = max_iters, .rel_tol = 1e-9},
        [&](std::span<const double> r, std::span<double> z, kern::OpCounts* c) {
            mg.vcycle(r, z, c);
        });
}

} // namespace armstice::apps
