#pragma once
// HPCG application model (paper §V.A, Tables III & IV).
//
// The skeleton reproduces HPCG 3.x's per-iteration structure exactly:
// preconditioned CG where each iteration performs one level-0 SpMV, one
// 4-level multigrid V-cycle (SymGS pre/post smoothing, residual SpMV,
// injection transfers, one SymGS coarse solve), three WAXPBYs, and three
// reduction points. Work counts are exact for the paper's configuration
// --nx=80 --ny=80 --nz=80 with one MPI rank per core; the real kernels
// behind each phase live in kern/sparse and are cross-checked by tests.

#include "apps/common.hpp"
#include "kern/sparse/cg.hpp"
#include "kern/sparse/multigrid.hpp"

namespace armstice::apps {

struct HpcgConfig {
    int nx = 80, ny = 80, nz = 80;  ///< local grid per rank (paper's values)
    int levels = 4;                 ///< multigrid depth (HPCG default)
    int iters = 10;                 ///< CG iterations to simulate (steady state)
    bool optimized = false;         ///< vendor-optimised variant (Table III)
    arch::ModelKnobs knobs;         ///< model-component switches (ablation)
};

/// Exact nonzero count of the 27-point operator on an n-point grid in each
/// dimension: product of (3n_d - 2). Cross-checked against kern::poisson27.
double nnz_27pt(long nx, long ny, long nz);

/// Per-rank memory footprint of the HPCG data structures (matrix hierarchy
/// + CG vectors) in bytes.
double hpcg_bytes_per_rank(const HpcgConfig& cfg);

struct HpcgOutcome {
    AppResult res;
    double pct_peak = 0;  ///< % of Table I theoretical peak (Table III column)
};

/// Simulate HPCG on `nodes` fully populated nodes of `sys` (one MPI rank per
/// core, the paper's configuration).
HpcgOutcome run_hpcg(const arch::SystemSpec& sys, int nodes, const HpcgConfig& cfg = {});

/// Reference run of the real kernels at laptop scale: multigrid-
/// preconditioned CG on the 27-point operator (validates numerics and the
/// analytic counts the skeleton uses).
kern::CgResult hpcg_reference(int n, int levels = 3, int max_iters = 50);

} // namespace armstice::apps
