#pragma once
// OpenSBLI application model (paper §VII.C, Table X).
//
// OpenSBLI generates C code (via the OPS library) for the compressible
// Taylor-Green vortex: finite-difference RHS kernels + RK time stepping,
// pure MPI. The paper's case is a deliberately small 64^3 grid (to fit the
// A64FX's 32 GB), which makes per-kernel launch overhead and the OPS
// indirection-heavy access pattern dominant — the paper's profiling found
// instruction-fetch waits and L2 integer loads on the A64FX. The real
// numerics live in kern/stencil (TaylorGreen), whose per-point counts the
// skeleton uses.

#include "apps/common.hpp"
#include "kern/stencil/taylor_green.hpp"

namespace armstice::apps {

struct OpensbliConfig {
    int grid = 64;             ///< points per dimension (paper's benchmark)
    int steps = 500;           ///< RK3 steps in the benchmark run
    int kernels_per_step = 50; ///< OPS kernel launches per step (codegen)
    int nodes = 1;
    int ranks = 0;             ///< 0 -> one rank per core (paper: pure MPI)
    arch::ModelKnobs knobs;    ///< model-component switches (ablation)
};

double opensbli_bytes_per_rank(const OpensbliConfig& cfg, int ranks);

AppResult run_opensbli(const arch::SystemSpec& sys, const OpensbliConfig& cfg);

/// Reference: run the real Taylor-Green solver and return diagnostics.
struct TgvReference {
    double mass_drift = 0;     ///< |m(t)-m(0)|/m(0), should be ~machine eps
    double ke_initial = 0;
    double ke_final = 0;
    kern::OpCounts counts;
};
TgvReference opensbli_reference(int grid, int steps);

} // namespace armstice::apps
