#include "apps/opensbli/opensbli.hpp"

#include "arch/calibration.hpp"
#include "arch/toolchain.hpp"
#include "util/error.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::apps {
namespace {

using arch::ComputePhase;
using arch::MemPattern;

} // namespace

double opensbli_bytes_per_rank(const OpensbliConfig& cfg, int ranks) {
    const double n3 = static_cast<double>(cfg.grid) * cfg.grid * cfg.grid;
    // OPS allocates ~30 field arrays (conservatives, primitives, fluxes,
    // RK work arrays) plus halo buffers and the replicated runtime.
    return 8.0 * n3 * 30.0 / ranks + 150e6;
}

AppResult run_opensbli(const arch::SystemSpec& sys, const OpensbliConfig& cfg) {
    ARMSTICE_CHECK(cfg.nodes >= 1, "bad opensbli config");
    const int ranks = cfg.ranks > 0 ? cfg.ranks : cfg.nodes * sys.node.cores();
    const auto tc = arch::toolchain_for(sys.name, "opensbli");
    const double eta = arch::calib::opensbli_efficiency(sys);
    const double kernel_ovh = arch::calib::opensbli_kernel_overhead(sys);

    const double n3 = static_cast<double>(cfg.grid) * cfg.grid * cfg.grid;

    ComputePhase stencil;
    stencil.label = "ops-kernels";
    stencil.flops = n3 * kern::TaylorGreen::step_flops_per_point() / ranks;
    stencil.main_bytes = n3 * kern::TaylorGreen::step_bytes_per_point() / ranks;
    // OPS-generated kernels access fields through block/index indirection.
    stencil.pattern = MemPattern::gather;
    stencil.vector_fraction = 0.7;
    stencil.efficiency = eta;
    stencil.overhead_s = cfg.kernels_per_step * kernel_ovh;

    // 3D Cartesian decomposition; halos carry 2 ghost layers of 5 variables.
    const auto dims = simmpi::dims_create(ranks, 3);
    const auto neighbors = simmpi::cart_neighbors(dims, /*periodic=*/true);
    const double face_pts =
        std::pow(n3 / ranks, 2.0 / 3.0);  // points per subdomain face
    const double halo_bytes = 8.0 * 5.0 * 2.0 * face_pts;

    const int sim_steps = std::min(cfg.steps, 60);
    const double scale = static_cast<double>(cfg.steps) / sim_steps;

    // One RK stage is a third of the step stencil; scale once, not per stage.
    const ComputePhase stage_stencil = stencil.scaled(1.0 / 3.0);

    simmpi::ProgramSet ps(ranks);
    ps.mark("opensbli-tgv");
    for (int s = 0; s < sim_steps; ++s) {
        // OPS exchanges halos once per RK stage (3 per step).
        for (int stage = 0; stage < 3; ++stage) {
            if (ranks > 1) ps.halo_exchange(neighbors, halo_bytes);
            ps.compute(stage_stencil);
        }
    }

    AppResult out = run_on(sys, cfg.nodes, ranks, /*threads=*/1, tc.vec_quality,
                           std::move(ps), opensbli_bytes_per_rank(cfg, ranks), cfg.knobs);
    out.seconds *= scale;
    return out;
}

TgvReference opensbli_reference(int grid, int steps) {
    kern::TaylorGreen tg(grid);
    TgvReference ref;
    ref.ke_initial = tg.kinetic_energy();
    const double m0 = tg.total_mass();
    for (int s = 0; s < steps; ++s) tg.step(tg.stable_dt(), &ref.counts);
    ref.ke_final = tg.kinetic_energy();
    ref.mass_drift = std::abs(tg.total_mass() - m0) / std::abs(m0);
    return ref;
}

} // namespace armstice::apps
