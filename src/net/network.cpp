#include "net/network.hpp"

#include "util/error.hpp"

namespace armstice::net {

LinkParams link_params(arch::NetKind kind) {
    using arch::NetKind;
    LinkParams p;
    switch (kind) {
        case NetKind::tofud:
            // Ajima et al. 2018: 0.49-0.54 us put, 6.8 GB/s/link, 6 TNIs.
            p.latency_s = 0.9e-6;  // MPI-level small-message latency
            p.per_hop_s = 0.08e-6;
            p.bandwidth = 6.1e9;
            p.injection_bw = 28e9;  // multiple TNIs usable by MPI
            p.msg_overhead_s = 0.20e-6;
            p.shm_bandwidth = 20e9;  // on-package CMG-to-CMG ring bus
            break;
        case NetKind::aries:
            p.latency_s = 1.2e-6;
            p.per_hop_s = 0.10e-6;
            p.bandwidth = 8.5e9;
            p.injection_bw = 10e9;
            p.msg_overhead_s = 0.25e-6;
            break;
        case NetKind::fdr_ib:
            p.latency_s = 1.1e-6;
            p.per_hop_s = 0.15e-6;
            p.bandwidth = 6.0e9;
            p.injection_bw = 6.0e9;
            p.msg_overhead_s = 0.30e-6;
            break;
        case NetKind::omnipath:
            p.latency_s = 1.3e-6;
            p.per_hop_s = 0.12e-6;
            p.bandwidth = 11.2e9;
            p.injection_bw = 11.2e9;
            p.msg_overhead_s = 0.35e-6;  // PSM2 onload stack
            break;
        case NetKind::edr_ib:
            p.latency_s = 0.9e-6;
            p.per_hop_s = 0.12e-6;
            p.bandwidth = 11.5e9;
            p.injection_bw = 11.5e9;
            p.msg_overhead_s = 0.25e-6;
            break;
    }
    return p;
}

std::shared_ptr<const Topology> make_topology(arch::NetKind kind, int n_nodes) {
    using arch::NetKind;
    ARMSTICE_CHECK(n_nodes >= 1, "network needs >=1 node");
    switch (kind) {
        case NetKind::tofud:
            return std::make_shared<TorusTopology>(TorusTopology::fit(n_nodes));
        case NetKind::aries:
            return std::make_shared<DragonflyTopology>(n_nodes);
        case NetKind::fdr_ib:
            return std::make_shared<FatTreeTopology>(n_nodes, 18);
        case NetKind::omnipath:
            return std::make_shared<FatTreeTopology>(n_nodes, 24);
        case NetKind::edr_ib:
            return std::make_shared<FatTreeTopology>(n_nodes, 18);
    }
    throw util::Error("unknown NetKind");
}

Network::Network(arch::NetKind kind, int n_nodes)
    : kind_(kind), params_(link_params(kind)), topo_(make_topology(kind, n_nodes)) {}

double Network::p2p_time(int node_a, int node_b, double bytes) const {
    ARMSTICE_CHECK(bytes >= 0, "negative message size");
    if (node_a == node_b) {
        return params_.shm_latency_s + bytes / params_.shm_bandwidth +
               params_.msg_overhead_s;
    }
    const int h = topo_->hops(node_a, node_b);
    return params_.latency_s + h * params_.per_hop_s + bytes / params_.bandwidth +
           params_.msg_overhead_s;
}

double Network::injection_time(double bytes) const {
    return bytes / params_.injection_bw;
}

double Network::mean_latency() const {
    return params_.latency_s + topo_->mean_hops() * params_.per_hop_s;
}

} // namespace armstice::net
