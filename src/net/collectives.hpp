#pragma once
// Algorithm-aware collective cost models. These price the collective
// operations the six workloads use (allreduce every CG iteration, barriers,
// gather for output) on a concrete Network with a concrete process layout.
//
// Algorithms follow the standard MPI implementations:
//  * allreduce:  recursive doubling for small payloads (latency term
//    2*ceil(log2 P) stages), Rabenseifner reduce-scatter + allgather for
//    large payloads (bandwidth term 2*(P-1)/P * n/B).
//  * Hierarchical layout: on-node stages use the shared-memory link, only
//    inter-node stages pay fabric latency (all five systems' MPIs are
//    hierarchy-aware).

#include "net/network.hpp"

namespace armstice::net {

/// Process layout a collective runs over. Derived from the actual Placement
/// occupancy (sim/engine.cpp): `nodes` counts nodes with at least one
/// resident rank (not the job's allocation) and `ranks_per_node` is the
/// *maximum* occupancy of any node (the critical path of on-node stages).
/// `total_ranks` carries the true rank count so non-divisible layouts
/// (e.g. 48 ranks on 5 nodes) are not priced as nodes*ranks_per_node
/// phantom ranks; 0 means "evenly divided", i.e. nodes * ranks_per_node.
struct CommLayout {
    int nodes = 1;           ///< nodes with >= 1 resident rank
    int ranks_per_node = 1;  ///< max ranks resident on any single node
    int total_ranks = 0;     ///< true participant count; 0 -> nodes * ranks_per_node
    /// Minimum occupancy of any occupied node; 0 means "uniform", i.e.
    /// ranks_per_node. Distance-aware collectives (alltoall) price their
    /// critical path from the least-populated node, whose ranks have the
    /// fewest co-resident partners and cross the fabric most often — the
    /// round-robin-placement effect (ROADMAP).
    int min_ranks_per_node = 0;
    [[nodiscard]] int ranks() const {
        return total_ranks > 0 ? total_ranks : nodes * ranks_per_node;
    }
    [[nodiscard]] int min_occupancy() const {
        return min_ranks_per_node > 0 ? min_ranks_per_node : ranks_per_node;
    }
};

class CollectiveModel {
public:
    explicit CollectiveModel(const Network& network) : net_(&network) {}

    /// MPI_Allreduce of `bytes` per rank.
    [[nodiscard]] double allreduce(const CommLayout& layout, double bytes) const;

    /// MPI_Barrier.
    [[nodiscard]] double barrier(const CommLayout& layout) const;

    /// MPI_Bcast of `bytes` from one root.
    [[nodiscard]] double bcast(const CommLayout& layout, double bytes) const;

    /// MPI_Allgather where each rank contributes `bytes_each`.
    [[nodiscard]] double allgather(const CommLayout& layout, double bytes_each) const;

    /// MPI_Alltoall with `bytes_each` per pair (pairwise exchange algorithm).
    [[nodiscard]] double alltoall(const CommLayout& layout, double bytes_each) const;

private:
    [[nodiscard]] double stage_latency() const;  ///< one inter-node stage
    [[nodiscard]] double shm_stage_latency() const;
    const Network* net_;
};

} // namespace armstice::net
