#include "net/topology.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::net {

int Topology::diameter() const {
    int d = 0;
    for (int a = 0; a < nodes(); ++a)
        for (int b = a + 1; b < nodes(); ++b) d = std::max(d, hops(a, b));
    return d;
}

double Topology::mean_hops() const {
    const int n = nodes();
    if (n < 2) return 0.0;
    double sum = 0.0;
    long count = 0;
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (a == b) continue;
            sum += hops(a, b);
            ++count;
        }
    }
    return sum / static_cast<double>(count);
}

// Ordered-pair hop totals below are exact integers accumulated in 64 bits
// and converted to double once; the brute-force pair scan accumulates the
// same integers into a double one at a time. Both are exact below 2^53, so
// the counting forms divide the identical numerator by the identical
// denominator and the results are bit-identical to the scans.

// ---------------------------------------------------------------- torus ----

TorusTopology::TorusTopology(std::vector<int> dims) : dims_(std::move(dims)) {
    ARMSTICE_CHECK(!dims_.empty(), "torus needs >=1 dimension");
    for (int d : dims_) ARMSTICE_CHECK(d >= 1, "torus dims must be >=1");
    strides_.resize(dims_.size());
    int stride = 1;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        strides_[i] = stride;
        stride *= dims_[i];
    }
}

TorusTopology TorusTopology::fit(int n) {
    ARMSTICE_CHECK(n >= 1, "torus needs >=1 node");
    // Near-cubic 3D box with product >= n (TofuD allocations are compact).
    int x = std::max(1, static_cast<int>(std::floor(std::cbrt(static_cast<double>(n)))));
    while (x > 1 && n % x != 0) --x;  // prefer exact factors when available
    const int rest = (n + x - 1) / x;
    int y = std::max(1, static_cast<int>(std::floor(std::sqrt(static_cast<double>(rest)))));
    while (y > 1 && rest % y != 0) --y;
    const int z = (rest + y - 1) / y;
    return TorusTopology({x, y, z});
}

std::string TorusTopology::name() const {
    std::vector<std::string> parts;
    parts.reserve(dims_.size());
    for (int d : dims_) parts.push_back(std::to_string(d));
    return "torus(" + util::join(parts, "x") + ")";
}

int TorusTopology::nodes() const {
    int n = 1;
    for (int d : dims_) n *= d;
    return n;
}

std::vector<int> TorusTopology::coords(int node) const {
    ARMSTICE_CHECK(node >= 0 && node < nodes(), "torus node out of range");
    std::vector<int> c(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        c[i] = node % dims_[i];
        node /= dims_[i];
    }
    return c;
}

int TorusTopology::hops(int a, int b) const {
    if (a == b) return 0;
    // Strides instead of coords(): hops is called per send on the engine's
    // hot path, and materialising two coordinate vectors allocated.
    int h = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const int ca = (a / strides_[i]) % dims_[i];
        const int cb = (b / strides_[i]) % dims_[i];
        const int d = std::abs(ca - cb);
        h += std::min(d, dims_[i] - d);  // shortest way around the ring
    }
    return std::max(1, h);
}

int TorusTopology::diameter() const {
    if (nodes() < 2) return 0;
    // Per-dim ring distances are maximised simultaneously (origin vs the
    // node at floor(d/2) in every dim), and distinct nodes are >= 1 hop.
    int d = 0;
    for (int dim : dims_) d += dim / 2;
    return std::max(1, d);
}

double TorusTopology::mean_hops() const {
    const int n = nodes();
    if (n < 2) return 0.0;
    // Sum of ring distances over ordered coordinate pairs in one dim of size
    // d: each of the d start points sees distances min(t, d-t) for t=1..d-1.
    // Every dim contributes independently ((n/d)^2 ordered pairs share each
    // coordinate pair), and a==b pairs contribute 0, so the clamped >=1 rule
    // never fires on what is counted here (distinct nodes differ in some dim
    // by a ring distance >= 1).
    long long total = 0;
    for (int d : dims_) {
        long long ring = 0;
        for (int t = 1; t < d; ++t) ring += std::min(t, d - t);
        ring *= d;
        const long long rest = n / d;
        total += ring * rest * rest;
    }
    return static_cast<double>(total) /
           static_cast<double>(static_cast<long>(n) * n - n);
}

// ------------------------------------------------------------- fat tree ----

FatTreeTopology::FatTreeTopology(int n_nodes, int nodes_per_leaf)
    : n_nodes_(n_nodes), nodes_per_leaf_(nodes_per_leaf) {
    ARMSTICE_CHECK(n_nodes >= 1, "fat tree needs >=1 node");
    ARMSTICE_CHECK(nodes_per_leaf >= 1, "fat tree needs >=1 node per leaf");
}

std::string FatTreeTopology::name() const {
    return "fat-tree(" + std::to_string(leaves()) + " leaves x " +
           std::to_string(nodes_per_leaf_) + ")";
}

int FatTreeTopology::leaves() const {
    return (n_nodes_ + nodes_per_leaf_ - 1) / nodes_per_leaf_;
}

int FatTreeTopology::hops(int a, int b) const {
    ARMSTICE_CHECK(a >= 0 && a < n_nodes_ && b >= 0 && b < n_nodes_,
                   "fat tree node out of range");
    if (a == b) return 0;
    return (a / nodes_per_leaf_ == b / nodes_per_leaf_) ? 1 : 3;
}

int FatTreeTopology::diameter() const {
    if (n_nodes_ < 2) return 0;
    return n_nodes_ <= nodes_per_leaf_ ? 1 : 3;
}

double FatTreeTopology::mean_hops() const {
    const long long n = n_nodes_;
    if (n < 2) return 0.0;
    // Ordered same-leaf pairs: full leaves of nodes_per_leaf_ plus one
    // remainder leaf; everything else crosses the spine at 3 hops.
    const long long npl = nodes_per_leaf_;
    const long long full = n / npl;
    const long long rem = n % npl;
    const long long same = full * npl * (npl - 1) + rem * (rem - 1);
    const long long pairs = n * (n - 1);
    const long long total = same + (pairs - same) * 3;
    return static_cast<double>(total) / static_cast<double>(pairs);
}

// ------------------------------------------------------------ dragonfly ----

DragonflyTopology::DragonflyTopology(int n_nodes, int nodes_per_router,
                                     int routers_per_group)
    : n_nodes_(n_nodes),
      nodes_per_router_(nodes_per_router),
      routers_per_group_(routers_per_group) {
    ARMSTICE_CHECK(n_nodes >= 1, "dragonfly needs >=1 node");
    ARMSTICE_CHECK(nodes_per_router >= 1 && routers_per_group >= 1,
                   "dragonfly shape invalid");
}

std::string DragonflyTopology::name() const {
    return "dragonfly(" + std::to_string(nodes_per_router_) + "/router, " +
           std::to_string(routers_per_group_) + " routers/group)";
}

int DragonflyTopology::hops(int a, int b) const {
    ARMSTICE_CHECK(a >= 0 && a < n_nodes_ && b >= 0 && b < n_nodes_,
                   "dragonfly node out of range");
    if (a == b) return 0;
    const int ra = a / nodes_per_router_;
    const int rb = b / nodes_per_router_;
    if (ra == rb) return 1;  // same Aries router
    const int ga = ra / routers_per_group_;
    const int gb = rb / routers_per_group_;
    if (ga == gb) return 2;  // intra-group all-to-all: one local link
    // Minimal global route: local hop, global link, local hop (source and
    // destination routers are generally not the gateway routers).
    return 4;
}

int DragonflyTopology::diameter() const {
    if (n_nodes_ < 2) return 0;
    if (n_nodes_ <= nodes_per_router_) return 1;
    if (n_nodes_ <= nodes_per_router_ * routers_per_group_) return 2;
    return 4;
}

double DragonflyTopology::mean_hops() const {
    const long long n = n_nodes_;
    if (n < 2) return 0.0;
    // Ordered pairs per tier: same router (1 hop), same group but different
    // router (2), cross-group (4). Only the last router / last group can be
    // partially filled, so the tier populations are closed-form.
    const auto same_bucket = [](long long total, long long size) {
        const long long full = total / size;
        const long long rem = total % size;
        return full * size * (size - 1) + rem * (rem - 1);
    };
    const long long npr = nodes_per_router_;
    const long long npg = npr * routers_per_group_;
    const long long same_router = same_bucket(n, npr);
    const long long same_group = same_bucket(n, npg);
    const long long pairs = n * (n - 1);
    const long long total =
        same_router + (same_group - same_router) * 2 + (pairs - same_group) * 4;
    return static_cast<double>(total) / static_cast<double>(pairs);
}

} // namespace armstice::net
