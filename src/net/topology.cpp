#include "net/topology.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::net {

int Topology::diameter() const {
    int d = 0;
    for (int a = 0; a < nodes(); ++a)
        for (int b = a + 1; b < nodes(); ++b) d = std::max(d, hops(a, b));
    return d;
}

double Topology::mean_hops() const {
    const int n = nodes();
    if (n < 2) return 0.0;
    double sum = 0.0;
    long count = 0;
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            if (a == b) continue;
            sum += hops(a, b);
            ++count;
        }
    }
    return sum / static_cast<double>(count);
}

// ---------------------------------------------------------------- torus ----

TorusTopology::TorusTopology(std::vector<int> dims) : dims_(std::move(dims)) {
    ARMSTICE_CHECK(!dims_.empty(), "torus needs >=1 dimension");
    for (int d : dims_) ARMSTICE_CHECK(d >= 1, "torus dims must be >=1");
}

TorusTopology TorusTopology::fit(int n) {
    ARMSTICE_CHECK(n >= 1, "torus needs >=1 node");
    // Near-cubic 3D box with product >= n (TofuD allocations are compact).
    int x = std::max(1, static_cast<int>(std::floor(std::cbrt(static_cast<double>(n)))));
    while (x > 1 && n % x != 0) --x;  // prefer exact factors when available
    const int rest = (n + x - 1) / x;
    int y = std::max(1, static_cast<int>(std::floor(std::sqrt(static_cast<double>(rest)))));
    while (y > 1 && rest % y != 0) --y;
    const int z = (rest + y - 1) / y;
    return TorusTopology({x, y, z});
}

std::string TorusTopology::name() const {
    std::vector<std::string> parts;
    parts.reserve(dims_.size());
    for (int d : dims_) parts.push_back(std::to_string(d));
    return "torus(" + util::join(parts, "x") + ")";
}

int TorusTopology::nodes() const {
    int n = 1;
    for (int d : dims_) n *= d;
    return n;
}

std::vector<int> TorusTopology::coords(int node) const {
    ARMSTICE_CHECK(node >= 0 && node < nodes(), "torus node out of range");
    std::vector<int> c(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        c[i] = node % dims_[i];
        node /= dims_[i];
    }
    return c;
}

int TorusTopology::hops(int a, int b) const {
    if (a == b) return 0;
    const auto ca = coords(a);
    const auto cb = coords(b);
    int h = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        const int d = std::abs(ca[i] - cb[i]);
        h += std::min(d, dims_[i] - d);  // shortest way around the ring
    }
    return std::max(1, h);
}

// ------------------------------------------------------------- fat tree ----

FatTreeTopology::FatTreeTopology(int n_nodes, int nodes_per_leaf)
    : n_nodes_(n_nodes), nodes_per_leaf_(nodes_per_leaf) {
    ARMSTICE_CHECK(n_nodes >= 1, "fat tree needs >=1 node");
    ARMSTICE_CHECK(nodes_per_leaf >= 1, "fat tree needs >=1 node per leaf");
}

std::string FatTreeTopology::name() const {
    return "fat-tree(" + std::to_string(leaves()) + " leaves x " +
           std::to_string(nodes_per_leaf_) + ")";
}

int FatTreeTopology::leaves() const {
    return (n_nodes_ + nodes_per_leaf_ - 1) / nodes_per_leaf_;
}

int FatTreeTopology::hops(int a, int b) const {
    ARMSTICE_CHECK(a >= 0 && a < n_nodes_ && b >= 0 && b < n_nodes_,
                   "fat tree node out of range");
    if (a == b) return 0;
    return (a / nodes_per_leaf_ == b / nodes_per_leaf_) ? 1 : 3;
}

// ------------------------------------------------------------ dragonfly ----

DragonflyTopology::DragonflyTopology(int n_nodes, int nodes_per_router,
                                     int routers_per_group)
    : n_nodes_(n_nodes),
      nodes_per_router_(nodes_per_router),
      routers_per_group_(routers_per_group) {
    ARMSTICE_CHECK(n_nodes >= 1, "dragonfly needs >=1 node");
    ARMSTICE_CHECK(nodes_per_router >= 1 && routers_per_group >= 1,
                   "dragonfly shape invalid");
}

std::string DragonflyTopology::name() const {
    return "dragonfly(" + std::to_string(nodes_per_router_) + "/router, " +
           std::to_string(routers_per_group_) + " routers/group)";
}

int DragonflyTopology::hops(int a, int b) const {
    ARMSTICE_CHECK(a >= 0 && a < n_nodes_ && b >= 0 && b < n_nodes_,
                   "dragonfly node out of range");
    if (a == b) return 0;
    const int ra = a / nodes_per_router_;
    const int rb = b / nodes_per_router_;
    if (ra == rb) return 1;  // same Aries router
    const int ga = ra / routers_per_group_;
    const int gb = rb / routers_per_group_;
    if (ga == gb) return 2;  // intra-group all-to-all: one local link
    // Minimal global route: local hop, global link, local hop (source and
    // destination routers are generally not the gateway routers).
    return 4;
}

} // namespace armstice::net
