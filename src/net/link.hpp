#pragma once
// Link-level parameters for the five interconnects (LogGP-style): startup
// latency alpha, per-switch-hop latency, per-link bandwidth beta, node
// injection bandwidth, per-message software overhead o, plus the intra-node
// shared-memory path every MPI uses for co-located ranks.

#include "arch/system.hpp"

namespace armstice::net {

struct LinkParams {
    double latency_s = 1e-6;        ///< alpha: end-to-end 0-hop startup latency
    double per_hop_s = 0.1e-6;      ///< added latency per switch/router hop
    double bandwidth = 10e9;        ///< beta: single-pair link bandwidth (B/s)
    double injection_bw = 10e9;     ///< max aggregate B/s in+out of one node
    double msg_overhead_s = 0.2e-6; ///< o: per-message CPU overhead (send+recv)
    double shm_latency_s = 0.25e-6; ///< intra-node (shared memory) latency
    double shm_bandwidth = 16e9;    ///< intra-node single-pair bandwidth
};

/// Published/measured-anchored parameters per interconnect family:
///  * TofuD: 0.49-0.54 us put latency, 6.8 GB/s per link, 6 TNIs per node
///    (Ajima et al., CLUSTER 2018 — the paper's reference [3]).
///  * Aries: ~1.2 us MPI latency, ~9 GB/s per direction.
///  * FDR IB: 56 Gb/s line rate -> ~6.0 GB/s MPI bandwidth.
///  * OmniPath: 100 Gb/s -> ~11.2 GB/s, slightly higher small-message latency.
///  * EDR IB: 100 Gb/s -> ~11.5 GB/s, ~0.9 us latency.
LinkParams link_params(arch::NetKind kind);

} // namespace armstice::net
