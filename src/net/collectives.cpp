#include "net/collectives.hpp"

#include "util/error.hpp"

#include <cmath>

namespace armstice::net {
namespace {

int ceil_log2(int n) {
    int stages = 0;
    int span = 1;
    while (span < n) {
        span *= 2;
        ++stages;
    }
    return stages;
}

/// Payload size at which MPI allreduce implementations switch from
/// recursive doubling to reduce-scatter + allgather.
constexpr double kRabenseifnerCutover = 16.0 * 1024.0;

} // namespace

double CollectiveModel::stage_latency() const {
    const auto& p = net_->params();
    return p.latency_s + net_->topology().mean_hops() * p.per_hop_s +
           p.msg_overhead_s;
}

double CollectiveModel::shm_stage_latency() const {
    const auto& p = net_->params();
    return p.shm_latency_s + p.msg_overhead_s;
}

double CollectiveModel::allreduce(const CommLayout& layout, double bytes) const {
    ARMSTICE_CHECK(layout.nodes >= 1 && layout.ranks_per_node >= 1,
                   "bad comm layout");
    ARMSTICE_CHECK(bytes >= 0, "negative allreduce payload");
    if (layout.ranks() <= 1) return 0.0;

    // Hierarchical: on-node reduce, inter-node allreduce, on-node bcast.
    const int shm_stages = 2 * ceil_log2(layout.ranks_per_node);
    double t = shm_stages * (shm_stage_latency() + bytes / net_->params().shm_bandwidth);

    if (layout.nodes > 1) {
        const int stages = ceil_log2(layout.nodes);
        if (bytes <= kRabenseifnerCutover) {
            // Recursive doubling: every stage moves the full payload.
            t += 2.0 * stages *
                 (stage_latency() + bytes / net_->params().bandwidth);
        } else {
            // Rabenseifner: reduce-scatter + allgather.
            const double frac =
                static_cast<double>(layout.nodes - 1) / layout.nodes;
            t += 2.0 * stages * stage_latency() +
                 2.0 * frac * bytes / net_->params().bandwidth;
        }
    }
    return t;
}

double CollectiveModel::barrier(const CommLayout& layout) const {
    return allreduce(layout, 8.0);
}

double CollectiveModel::bcast(const CommLayout& layout, double bytes) const {
    ARMSTICE_CHECK(bytes >= 0, "negative bcast payload");
    if (layout.ranks() <= 1) return 0.0;
    double t = ceil_log2(layout.ranks_per_node) *
               (shm_stage_latency() + bytes / net_->params().shm_bandwidth);
    if (layout.nodes > 1) {
        t += ceil_log2(layout.nodes) *
             (stage_latency() + bytes / net_->params().bandwidth);
    }
    return t;
}

double CollectiveModel::allgather(const CommLayout& layout, double bytes_each) const {
    ARMSTICE_CHECK(bytes_each >= 0, "negative allgather payload");
    const int p = layout.ranks();
    if (p <= 1) return 0.0;
    // Ring algorithm: P-1 steps, each forwarding one contribution.
    const double per_step = (layout.nodes > 1)
                                ? stage_latency() + bytes_each / net_->params().bandwidth
                                : shm_stage_latency() +
                                      bytes_each / net_->params().shm_bandwidth;
    return (p - 1) * per_step;
}

double CollectiveModel::alltoall(const CommLayout& layout, double bytes_each) const {
    ARMSTICE_CHECK(bytes_each >= 0, "negative alltoall payload");
    const int p = layout.ranks();
    if (p <= 1) return 0.0;
    // Pairwise exchange: P-1 rounds; a round is off-node unless all ranks
    // share a node.
    const bool on_node = layout.nodes == 1;
    const double per_round =
        on_node ? shm_stage_latency() + bytes_each / net_->params().shm_bandwidth
                : stage_latency() + bytes_each / net_->params().bandwidth;
    return (p - 1) * per_round;
}

} // namespace armstice::net
