#include "net/collectives.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <cmath>

namespace armstice::net {
namespace {

int ceil_log2(int n) {
    int stages = 0;
    int span = 1;
    while (span < n) {
        span *= 2;
        ++stages;
    }
    return stages;
}

/// Payload size at which MPI allreduce implementations switch from
/// recursive doubling to reduce-scatter + allgather.
constexpr double kRabenseifnerCutover = 16.0 * 1024.0;

void check_layout(const CommLayout& layout) {
    ARMSTICE_CHECK(layout.nodes >= 1 && layout.ranks_per_node >= 1,
                   "bad comm layout");
    ARMSTICE_CHECK(layout.total_ranks >= 0, "negative total_ranks");
    if (layout.total_ranks > 0) {
        // Max occupancy times node count bounds the total from above; one
        // rank per occupied node bounds it from below.
        ARMSTICE_CHECK(layout.total_ranks <= layout.nodes * layout.ranks_per_node &&
                           layout.total_ranks >= layout.nodes,
                       "comm layout total_ranks inconsistent with occupancy");
    }
    ARMSTICE_CHECK(layout.min_ranks_per_node >= 0 &&
                       layout.min_ranks_per_node <= layout.ranks_per_node,
                   "comm layout min occupancy exceeds max occupancy");
}

} // namespace

double CollectiveModel::stage_latency() const {
    const auto& p = net_->params();
    return p.latency_s + net_->topology().mean_hops() * p.per_hop_s +
           p.msg_overhead_s;
}

double CollectiveModel::shm_stage_latency() const {
    const auto& p = net_->params();
    return p.shm_latency_s + p.msg_overhead_s;
}

double CollectiveModel::allreduce(const CommLayout& layout, double bytes) const {
    check_layout(layout);
    ARMSTICE_CHECK(bytes >= 0, "negative allreduce payload");
    if (layout.ranks() <= 1) return 0.0;

    // Hierarchical: on-node reduce, inter-node allreduce, on-node bcast.
    const int shm_stages = 2 * ceil_log2(layout.ranks_per_node);
    double t = shm_stages * (shm_stage_latency() + bytes / net_->params().shm_bandwidth);

    if (layout.nodes > 1) {
        const int stages = ceil_log2(layout.nodes);
        if (bytes <= kRabenseifnerCutover) {
            // Recursive doubling: every stage moves the full payload.
            t += 2.0 * stages *
                 (stage_latency() + bytes / net_->params().bandwidth);
        } else {
            // Rabenseifner: reduce-scatter + allgather.
            const double frac =
                static_cast<double>(layout.nodes - 1) / layout.nodes;
            t += 2.0 * stages * stage_latency() +
                 2.0 * frac * bytes / net_->params().bandwidth;
        }
    }
    return t;
}

double CollectiveModel::barrier(const CommLayout& layout) const {
    return allreduce(layout, 8.0);
}

double CollectiveModel::bcast(const CommLayout& layout, double bytes) const {
    check_layout(layout);
    ARMSTICE_CHECK(bytes >= 0, "negative bcast payload");
    if (layout.ranks() <= 1) return 0.0;
    double t = ceil_log2(layout.ranks_per_node) *
               (shm_stage_latency() + bytes / net_->params().shm_bandwidth);
    if (layout.nodes > 1) {
        t += ceil_log2(layout.nodes) *
             (stage_latency() + bytes / net_->params().bandwidth);
    }
    return t;
}

double CollectiveModel::allgather(const CommLayout& layout, double bytes_each) const {
    check_layout(layout);
    ARMSTICE_CHECK(bytes_each >= 0, "negative allgather payload");
    const int p = layout.ranks();
    if (p <= 1) return 0.0;
    // Ring algorithm: P-1 steps, each forwarding one contribution to the
    // next rank. With a hierarchy-aware (blockwise) ring ordering, each full
    // traversal crosses a node boundary once per node; the remaining
    // neighbours are co-resident and use the shared-memory link. Every step
    // off-node was the old behaviour — it overpriced e.g. 48 ranks on 2
    // nodes by ~20x in latency.
    const int off_steps = layout.nodes > 1 ? std::min(p - 1, layout.nodes) : 0;
    const int shm_steps = (p - 1) - off_steps;
    return off_steps * (stage_latency() + bytes_each / net_->params().bandwidth) +
           shm_steps *
               (shm_stage_latency() + bytes_each / net_->params().shm_bandwidth);
}

double CollectiveModel::alltoall(const CommLayout& layout, double bytes_each) const {
    check_layout(layout);
    ARMSTICE_CHECK(bytes_each >= 0, "negative alltoall payload");
    const int p = layout.ranks();
    if (p <= 1) return 0.0;
    // Pairwise exchange: P-1 rounds, round k pairing rank i with a partner k
    // positions away. A rank co-resident with c-1 others completes c-1
    // rounds over shared memory and crosses the fabric for the remaining
    // p-c; the collective finishes when the slowest rank does, and (fabric
    // steps being the expensive ones) that is a rank on the least-populated
    // node. Under block placement every occupied node holds ranks_per_node
    // ranks and this reduces to the old uniform round split; a round-robin
    // placement of the same job leaves some nodes under-populated and now
    // prices higher (ROADMAP: partner distances, not the block assumption).
    const int shm_rounds =
        layout.nodes > 1 ? std::min(p - 1, layout.min_occupancy() - 1) : p - 1;
    const int off_rounds = (p - 1) - shm_rounds;
    return shm_rounds *
               (shm_stage_latency() + bytes_each / net_->params().shm_bandwidth) +
           off_rounds * (stage_latency() + bytes_each / net_->params().bandwidth);
}

} // namespace armstice::net
