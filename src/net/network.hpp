#pragma once
// Network — one interconnect instance sized for a job: topology + link
// parameters + point-to-point and collective cost functions. Consumed by the
// discrete-event engine (sim/engine.cpp), which handles matching/blocking
// semantics and only asks the network "how long does this transfer take".

#include "arch/system.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"

#include <memory>

namespace armstice::net {

class Network {
public:
    /// Build the interconnect of `kind` spanning `n_nodes` nodes.
    Network(arch::NetKind kind, int n_nodes);

    [[nodiscard]] const LinkParams& params() const { return params_; }
    [[nodiscard]] const Topology& topology() const { return *topo_; }
    [[nodiscard]] arch::NetKind kind() const { return kind_; }
    [[nodiscard]] int nodes() const { return topo_->nodes(); }

    /// End-to-end time for one point-to-point message between nodes
    /// (same node -> shared-memory path).
    [[nodiscard]] double p2p_time(int node_a, int node_b, double bytes) const;

    /// Time the sender's NIC is busy injecting the message (used by the
    /// engine to serialise a node's outgoing messages).
    [[nodiscard]] double injection_time(double bytes) const;

    /// Effective startup latency including the mean route (collectives).
    [[nodiscard]] double mean_latency() const;

private:
    arch::NetKind kind_;
    LinkParams params_;
    std::shared_ptr<const Topology> topo_;
};

std::shared_ptr<const Topology> make_topology(arch::NetKind kind, int n_nodes);

} // namespace armstice::net
