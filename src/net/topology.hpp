#pragma once
// Topology models — hop counts between nodes for each interconnect family.
// Hop counts feed the per-hop latency term of Network::p2p_time; bandwidth
// tapering in the fat tree / dragonfly cases is folded into LinkParams
// (both ARCHER's Aries and Fulhame's EDR fabric are described by the paper
// as non-blocking at the scales benchmarked: <= 16 nodes).

#include <memory>
#include <string>
#include <vector>

namespace armstice::net {

class Topology {
public:
    virtual ~Topology() = default;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual int nodes() const = 0;
    /// Switch/router hops on the route between two distinct nodes (>= 1).
    [[nodiscard]] virtual int hops(int a, int b) const = 0;
    /// Maximum hops over all node pairs. The base implementation scans all
    /// pairs (O(nodes^2)); every concrete topology overrides it with a
    /// counting closed form that returns the identical value — required,
    /// since collective pricing calls these per collective and the engine
    /// now runs jobs with 10^4+ nodes (tests/test_net.cpp pins override ==
    /// pair scan on every family).
    [[nodiscard]] virtual int diameter() const;
    /// Mean hops over all distinct ordered pairs (used by collective models).
    /// Overridden with counting forms like diameter(); bit-identical because
    /// the pair scan accumulates small integers into a double, which is exact
    /// below 2^53, so both sides divide the same integer sum by the same
    /// count.
    [[nodiscard]] virtual double mean_hops() const;
};

/// K-dimensional torus (models the TofuD 6D mesh/torus: the three "virtual"
/// axes of a job allocation behave as a 3D torus of node groups).
class TorusTopology final : public Topology {
public:
    explicit TorusTopology(std::vector<int> dims);
    /// Build a near-cubic torus holding at least n nodes.
    static TorusTopology fit(int n);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int nodes() const override;
    [[nodiscard]] int hops(int a, int b) const override;
    [[nodiscard]] int diameter() const override;
    [[nodiscard]] double mean_hops() const override;
    [[nodiscard]] const std::vector<int>& dims() const { return dims_; }
    [[nodiscard]] std::vector<int> coords(int node) const;

private:
    std::vector<int> dims_;
    std::vector<int> strides_;  ///< per-dim divisors for allocation-free coords
};

/// Two-level fat tree (leaf + spine), non-blocking: 1 hop under the same
/// leaf, 3 hops across leaves. Models the EDR/FDR IB and OmniPath fabrics.
class FatTreeTopology final : public Topology {
public:
    FatTreeTopology(int n_nodes, int nodes_per_leaf);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int nodes() const override { return n_nodes_; }
    [[nodiscard]] int hops(int a, int b) const override;
    [[nodiscard]] int diameter() const override;
    [[nodiscard]] double mean_hops() const override;
    [[nodiscard]] int leaves() const;

private:
    int n_nodes_;
    int nodes_per_leaf_;
};

/// Dragonfly (Cray Aries): nodes -> routers (4/router), routers -> groups
/// (16 routers/group, all-to-all local), groups all-to-all global.
/// Hops: same router 1; same group <= 2; across groups <= 5.
class DragonflyTopology final : public Topology {
public:
    DragonflyTopology(int n_nodes, int nodes_per_router = 4, int routers_per_group = 16);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] int nodes() const override { return n_nodes_; }
    [[nodiscard]] int hops(int a, int b) const override;
    [[nodiscard]] int diameter() const override;
    [[nodiscard]] double mean_hops() const override;

private:
    int n_nodes_;
    int nodes_per_router_;
    int routers_per_group_;
};

} // namespace armstice::net
