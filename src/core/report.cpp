#include "core/report.hpp"

#include "arch/system.hpp"
#include "arch/toolchain.hpp"
#include "core/paper_data.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/plot.hpp"
#include "util/str.hpp"
#include "util/svg.hpp"
#include "util/table.hpp"

#include <cstdio>
#include <fstream>

namespace armstice::core {
namespace {

using util::Plot;
using util::Series;
using util::Table;

std::string num(double v, int prec = 2) { return Table::num(v, prec); }

std::string opt_name(bool optimized) { return optimized ? "optimised" : "unoptimised"; }

} // namespace

std::string render_system_catalog() {
    Table t("Table I — Compute node specifications (model inputs)");
    t.header({"System", "Processor", "Cores", "Clock", "Vector", "Peak DP", "Memory",
              "Mem BW", "Interconnect"});
    for (const auto& s : arch::system_catalog()) {
        t.row({s.name, s.node.cpu.name, std::to_string(s.node.cores()),
               num(s.node.cpu.freq_hz / 1e9, 1) + " GHz", s.node.cpu.isa.name(),
               num(s.table_peak_gflops, 1) + " GF",
               num(s.node.mem_capacity() / 1e9, 0) + " GB",
               num(s.node.mem_bandwidth() / 1e9, 0) + " GB/s",
               arch::net_kind_name(s.net)});
    }
    std::string out = t.render();

    Table t2("Table II — Toolchains (per system, per application)");
    t2.header({"System", "App", "Compiler", "Libraries", "vec-quality", "fast-math"});
    for (const auto& s : arch::system_catalog()) {
        for (const char* app : arch::kToolchainApps) {
            const auto tc = arch::toolchain_for(s.name, app);
            t2.row({s.name, app, tc.compiler, util::join(tc.libraries, ", "),
                    num(tc.vec_quality, 2), tc.fastmath ? "yes" : "no"});
        }
    }
    return out + "\n" + t2.render();
}

std::string render_table3(const std::vector<Table3Row>& rows) {
    Table t("Table III — Single node HPCG performance (paper vs model)");
    t.header({"System", "Variant", "Paper GF/s", "Model GF/s", "Delta %",
              "Model % peak"});
    for (const auto& r : rows) {
        const double delta = 100.0 * (r.model_gflops - r.paper_gflops) / r.paper_gflops;
        t.row({r.system, opt_name(r.optimized), num(r.paper_gflops), num(r.model_gflops),
               num(delta, 1), num(r.model_pct_peak, 1)});
    }
    return t.render();
}

std::string render_table4(const std::vector<Table4Row>& rows) {
    Table t("Table IV — Multi-node HPCG GFLOP/s (paper | model)");
    t.header({"System", "Variant", "1 node", "2 nodes", "4 nodes", "8 nodes"});
    for (const auto& r : rows) {
        std::vector<std::string> cells{r.system, opt_name(r.optimized)};
        for (std::size_t i = 0; i < 4; ++i) {
            cells.push_back(num(r.paper[i], 1) + " | " + num(r.model[i], 1));
        }
        t.row(cells);
    }
    return t.render();
}

std::string render_table5(const std::vector<Table5Row>& rows) {
    Table t("Table V — Single core minikab runtime (seconds)");
    t.header({"CPU", "Paper (s)", "Model (s)", "Delta %"});
    for (const auto& r : rows) {
        t.row({r.system, num(r.paper_seconds, 0), num(r.model_seconds, 0),
               num(100.0 * (r.model_seconds - r.paper_seconds) / r.paper_seconds, 1)});
    }
    return t.render();
}

std::string render_fig1(const std::vector<Fig1Series>& series) {
    Table t("Figure 1 — minikab execution setups on 2 A64FX nodes");
    t.header({"Setup", "Cores", "Ranks x Threads", "Runtime (s)", "GFLOP/s", "Fits?"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            t.row({s.label, std::to_string(p.cores),
                   std::to_string(p.ranks) + " x " + std::to_string(p.threads),
                   p.feasible ? num(p.runtime_s, 1) : "-",
                   p.feasible ? num(p.gflops, 1) : "-",
                   p.feasible ? "yes" : "OOM (32 GB/node)"});
        }
    }
    std::string out = t.render();

    Plot plot("Figure 1 — solver runtime vs cores (2 A64FX nodes)", "cores",
              "runtime (s)");
    for (const auto& s : series) {
        Series ps;
        ps.label = s.label;
        for (const auto& p : s.points) {
            if (!p.feasible) continue;
            ps.x.push_back(p.cores);
            ps.y.push_back(p.runtime_s);
        }
        if (!ps.x.empty()) plot.add_series(std::move(ps));
    }
    return out + "\n" + plot.render();
}

std::string render_fig2(const std::vector<Fig2Series>& series) {
    Table t("Figure 2 — minikab strong scaling (Benchmark1)");
    t.header({"System", "Config", "Nodes", "Cores", "Runtime (s)"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            t.row({s.system, s.config, std::to_string(p.nodes), std::to_string(p.cores),
                   num(p.runtime_s, 1)});
        }
    }
    Plot plot("Figure 2 — minikab runtime vs cores (strong scaling)", "cores",
              "runtime (s)");
    for (const auto& s : series) {
        Series ps;
        ps.label = s.system;
        for (const auto& p : s.points) {
            ps.x.push_back(p.cores);
            ps.y.push_back(p.runtime_s);
        }
        plot.add_series(std::move(ps));
    }
    return t.render() + "\n" + plot.render();
}

std::string render_table6(const std::vector<Table6Row>& rows) {
    Table t("Table VI — Nekbone node performance (GFLOP/s)");
    t.header({"System", "Cores", "Paper", "Model", "Paper fast-math", "Model fast-math"});
    for (const auto& r : rows) {
        t.row({r.system, std::to_string(r.cores), num(r.paper_gflops), num(r.model_gflops),
               num(r.paper_fast), num(r.model_fast)});
    }
    return t.render();
}

std::string render_fig3(const std::vector<Fig3Series>& series) {
    Plot plot("Figure 3 — Nekbone single-node scaling (one MPI rank per core)",
              "cores", "MFLOP/s");
    Table t("Figure 3 — data");
    t.header({"System", "Cores", "MFLOP/s"});
    for (const auto& s : series) {
        Series ps;
        ps.label = s.system;
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            ps.x.push_back(s.cores[i]);
            ps.y.push_back(s.mflops[i]);
            t.row({s.system, std::to_string(s.cores[i]), num(s.mflops[i], 0)});
        }
        plot.add_series(std::move(ps));
    }
    return t.render() + "\n" + plot.log_y().render();
}

std::string render_table7(const std::vector<Table7Row>& rows) {
    Table t("Table VII — Nekbone inter-node parallel efficiency (paper | model)");
    t.header({"Node count", "A64FX PE", "Fulhame PE", "ARCHER PE"});
    for (const auto& r : rows) {
        t.row({std::to_string(r.nodes),
               num(r.a64fx_paper) + " | " + num(r.a64fx_model),
               num(r.fulhame_paper) + " | " + num(r.fulhame_model),
               num(r.archer_paper) + " | " + num(r.archer_model)});
    }
    return t.render();
}

std::string render_table8() {
    Table t("Table VIII — COSA processes per node");
    t.header({"System", "Processes per node"});
    for (const auto& p : paper::kTable8) t.row({p.system, std::to_string(p.ppn)});
    return t.render();
}

std::string render_fig4(const std::vector<Fig4Series>& series) {
    Table t("Figure 4 — COSA strong scaling (HB, 800 blocks, 100 iterations)");
    t.header({"System", "PPN", "Nodes", "Runtime (s)", "Note"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            t.row({s.system, std::to_string(s.ppn), std::to_string(p.nodes),
                   p.feasible ? num(p.runtime_s, 1) : "-",
                   p.feasible ? "" : "does not fit in node memory"});
        }
    }
    Plot plot("Figure 4 — COSA runtime vs node count", "nodes", "runtime (s)");
    for (const auto& s : series) {
        Series ps;
        ps.label = s.system;
        for (const auto& p : s.points) {
            if (!p.feasible) continue;
            ps.x.push_back(p.nodes);
            ps.y.push_back(p.runtime_s);
        }
        plot.add_series(std::move(ps));
    }
    return t.render() + "\n" + plot.log_y().render();
}

std::string render_fig5(const std::vector<Fig5Series>& series) {
    Table t("Figure 5 — CASTEP TiN single-node performance vs core count");
    t.header({"System", "Cores", "SCF cycles/s"});
    Plot plot("Figure 5 — CASTEP TiN performance", "cores", "SCF cycles/s");
    for (const auto& s : series) {
        Series ps;
        ps.label = s.system;
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            t.row({s.system, std::to_string(s.cores[i]), num(s.scf_per_s[i], 3)});
            ps.x.push_back(s.cores[i]);
            ps.y.push_back(s.scf_per_s[i]);
        }
        plot.add_series(std::move(ps));
    }
    return t.render() + "\n" + plot.render();
}

std::string render_table9(const std::vector<Table9Row>& rows) {
    Table t("Table IX — CASTEP TiN best single-node performance (SCF cycles/s)");
    t.header({"System", "Cores", "Paper", "Model", "Model ratio to A64FX"});
    double a64_model = 0;
    for (const auto& r : rows) {
        if (r.system == "A64FX") a64_model = r.model;
    }
    for (const auto& r : rows) {
        t.row({r.system, std::to_string(r.cores), num(r.paper, 3), num(r.model, 3),
               a64_model > 0 ? num(r.model / a64_model) : "-"});
    }
    return t.render();
}

std::string render_table10(const std::vector<Table10Row>& rows) {
    Table t("Table X — OpenSBLI total runtime in seconds (paper | model)");
    t.header({"System", "1 node", "2 nodes", "4 nodes", "8 nodes"});
    for (const auto& r : rows) {
        std::vector<std::string> cells{r.system};
        for (std::size_t i = 0; i < 4; ++i) {
            cells.push_back(r.feasible[i]
                                ? num(r.paper[i]) + " | " + num(r.model[i])
                                : "-");
        }
        t.row(cells);
    }
    return t.render();
}

void write_csv(const std::string& path, const std::string& csv_text) {
    std::ofstream f(path);
    if (!f.good()) {
        util::log_warn("could not write " + path);
        return;
    }
    f << csv_text;
}

namespace {

void save_chart(util::SvgChart& chart, const util::Csv& csv, const std::string& stem) {
    try {
        chart.write(stem + ".svg");
        csv.write(stem + ".csv");
        std::printf("(wrote %s.svg and %s.csv)\n", stem.c_str(), stem.c_str());
    } catch (const util::Error& e) {
        util::log_warn(std::string("artefact files not written: ") + e.what());
    }
}

// CSV builders shared by save_figN (file output) and figN_csv (golden-file
// regression tests) so the two can never drift apart.

util::Csv build_fig1_csv(const std::vector<Fig1Series>& series) {
    util::Csv csv;
    csv.header({"setup", "cores", "ranks", "threads", "feasible", "runtime_s",
                "gflops"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            csv.row({s.label, std::to_string(p.cores), std::to_string(p.ranks),
                     std::to_string(p.threads), p.feasible ? "1" : "0",
                     util::fixed(p.runtime_s, 3), util::fixed(p.gflops, 3)});
        }
    }
    return csv;
}

util::Csv build_fig2_csv(const std::vector<Fig2Series>& series) {
    util::Csv csv;
    csv.header({"system", "config", "nodes", "cores", "runtime_s"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            csv.row({s.system, s.config, std::to_string(p.nodes),
                     std::to_string(p.cores), util::fixed(p.runtime_s, 3)});
        }
    }
    return csv;
}

util::Csv build_fig3_csv(const std::vector<Fig3Series>& series) {
    util::Csv csv;
    csv.header({"system", "cores", "mflops"});
    for (const auto& s : series) {
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            csv.row({s.system, std::to_string(s.cores[i]), util::fixed(s.mflops[i], 1)});
        }
    }
    return csv;
}

util::Csv build_fig4_csv(const std::vector<Fig4Series>& series) {
    util::Csv csv;
    csv.header({"system", "ppn", "nodes", "feasible", "runtime_s"});
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            csv.row({s.system, std::to_string(s.ppn), std::to_string(p.nodes),
                     p.feasible ? "1" : "0", util::fixed(p.runtime_s, 3)});
        }
    }
    return csv;
}

util::Csv build_fig5_csv(const std::vector<Fig5Series>& series) {
    util::Csv csv;
    csv.header({"system", "cores", "scf_cycles_per_s"});
    for (const auto& s : series) {
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            csv.row({s.system, std::to_string(s.cores[i]),
                     util::fixed(s.scf_per_s[i], 4)});
        }
    }
    return csv;
}

} // namespace

std::string fig1_csv(const std::vector<Fig1Series>& series) {
    return build_fig1_csv(series).render();
}
std::string fig2_csv(const std::vector<Fig2Series>& series) {
    return build_fig2_csv(series).render();
}
std::string fig3_csv(const std::vector<Fig3Series>& series) {
    return build_fig3_csv(series).render();
}
std::string fig4_csv(const std::vector<Fig4Series>& series) {
    return build_fig4_csv(series).render();
}
std::string fig5_csv(const std::vector<Fig5Series>& series) {
    return build_fig5_csv(series).render();
}

void save_fig1(const std::vector<Fig1Series>& series, const std::string& stem) {
    util::SvgChart chart("Fig 1 — minikab setups on 2 A64FX nodes", "cores",
                         "runtime (s)");
    for (const auto& s : series) {
        util::Series ps{s.label, {}, {}};
        for (const auto& p : s.points) {
            if (!p.feasible) continue;
            ps.x.push_back(p.cores);
            ps.y.push_back(p.runtime_s);
        }
        if (!ps.x.empty()) chart.add_series(std::move(ps));
    }
    save_chart(chart, build_fig1_csv(series), stem);
}

void save_fig2(const std::vector<Fig2Series>& series, const std::string& stem) {
    util::SvgChart chart("Fig 2 — minikab strong scaling", "cores", "runtime (s)");
    for (const auto& s : series) {
        util::Series ps{s.system, {}, {}};
        for (const auto& p : s.points) {
            ps.x.push_back(p.cores);
            ps.y.push_back(p.runtime_s);
        }
        chart.add_series(std::move(ps));
    }
    save_chart(chart, build_fig2_csv(series), stem);
}

void save_fig3(const std::vector<Fig3Series>& series, const std::string& stem) {
    util::SvgChart chart("Fig 3 — Nekbone single-node core scaling", "cores",
                         "MFLOP/s");
    chart.log_y();
    for (const auto& s : series) {
        util::Series ps{s.system, {}, {}};
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            ps.x.push_back(s.cores[i]);
            ps.y.push_back(s.mflops[i]);
        }
        chart.add_series(std::move(ps));
    }
    save_chart(chart, build_fig3_csv(series), stem);
}

void save_fig4(const std::vector<Fig4Series>& series, const std::string& stem) {
    util::SvgChart chart("Fig 4 — COSA strong scaling", "nodes", "runtime (s)");
    chart.log_y();
    for (const auto& s : series) {
        util::Series ps{s.system, {}, {}};
        for (const auto& p : s.points) {
            if (!p.feasible) continue;
            ps.x.push_back(p.nodes);
            ps.y.push_back(p.runtime_s);
        }
        if (!ps.x.empty()) chart.add_series(std::move(ps));
    }
    save_chart(chart, build_fig4_csv(series), stem);
}

void save_fig5(const std::vector<Fig5Series>& series, const std::string& stem) {
    util::SvgChart chart("Fig 5 — CASTEP TiN single-node performance", "cores",
                         "SCF cycles/s");
    for (const auto& s : series) {
        util::Series ps{s.system, {}, {}};
        for (std::size_t i = 0; i < s.cores.size(); ++i) {
            ps.x.push_back(s.cores[i]);
            ps.y.push_back(s.scf_per_s[i]);
        }
        chart.add_series(std::move(ps));
    }
    save_chart(chart, build_fig5_csv(series), stem);
}

} // namespace armstice::core
