#pragma once
// Experiment drivers — one function per paper artefact (Tables III-X,
// Figures 1-5). Each returns structured paper-vs-model rows consumed by the
// bench binaries (printing) and the reproduction tests (shape scoring).
// The per-experiment index lives in DESIGN.md §3.

#include <array>
#include <string>
#include <vector>

namespace armstice::core {

// ---- Table III: single-node HPCG -----------------------------------------
struct Table3Row {
    std::string system;
    bool optimized = false;
    double paper_gflops = 0;
    double model_gflops = 0;
    double model_pct_peak = 0;
};
std::vector<Table3Row> run_table3();

// ---- Table IV: multi-node HPCG --------------------------------------------
struct Table4Row {
    std::string system;
    bool optimized = false;
    std::array<double, 4> paper{};   // 1,2,4,8 nodes
    std::array<double, 4> model{};
};
std::vector<Table4Row> run_table4();

// ---- Table V: single-core minikab -----------------------------------------
struct Table5Row {
    std::string system;
    double paper_seconds = 0;
    double model_seconds = 0;
};
std::vector<Table5Row> run_table5();

// ---- Figure 1: minikab execution setups on 2 A64FX nodes -------------------
struct Fig1Point {
    int cores = 0;
    int ranks = 0;
    int threads = 0;
    bool feasible = false;
    double runtime_s = 0;
    double gflops = 0;
};
struct Fig1Series {
    std::string label;
    std::vector<Fig1Point> points;
};
std::vector<Fig1Series> run_fig1();

// ---- Figure 2: minikab strong scaling, A64FX vs Fulhame --------------------
struct Fig2Point {
    int nodes = 0;
    int cores = 0;
    double runtime_s = 0;
};
struct Fig2Series {
    std::string system;
    std::string config;
    std::vector<Fig2Point> points;
};
std::vector<Fig2Series> run_fig2();

// ---- Table VI: Nekbone node performance ------------------------------------
struct Table6Row {
    std::string system;
    int cores = 0;
    double paper_gflops = 0;
    double model_gflops = 0;
    double paper_fast = 0;
    double model_fast = 0;
};
std::vector<Table6Row> run_table6();

// ---- Figure 3: Nekbone single-node core scaling ----------------------------
struct Fig3Series {
    std::string system;
    std::vector<int> cores;
    std::vector<double> mflops;
};
std::vector<Fig3Series> run_fig3();

// ---- Table VII: Nekbone inter-node parallel efficiency ---------------------
struct Table7Row {
    int nodes = 0;
    double a64fx_paper = 0, a64fx_model = 0;
    double fulhame_paper = 0, fulhame_model = 0;
    double archer_paper = 0, archer_model = 0;
};
std::vector<Table7Row> run_table7();

// ---- Figure 4: COSA strong scaling -----------------------------------------
struct Fig4Point {
    int nodes = 0;
    bool feasible = false;
    double runtime_s = 0;
};
struct Fig4Series {
    std::string system;
    int ppn = 0;
    std::vector<Fig4Point> points;
};
std::vector<Fig4Series> run_fig4();

// ---- Figure 5 / Table IX: CASTEP -------------------------------------------
struct Fig5Series {
    std::string system;
    std::vector<int> cores;
    std::vector<double> scf_per_s;
};
std::vector<Fig5Series> run_fig5();

struct Table9Row {
    std::string system;
    int cores = 0;
    double paper = 0;
    double model = 0;
};
std::vector<Table9Row> run_table9();

// ---- Table X: OpenSBLI ------------------------------------------------------
struct Table10Row {
    std::string system;
    std::array<double, 4> paper{};
    std::array<double, 4> model{};
    std::array<bool, 4> feasible{};
};
std::vector<Table10Row> run_table10();

} // namespace armstice::core
