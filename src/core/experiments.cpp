#include "core/experiments.hpp"

#include "apps/castep/castep.hpp"
#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "apps/opensbli/opensbli.hpp"
#include "core/paper_data.hpp"
#include "util/error.hpp"

#include <algorithm>

namespace armstice::core {
namespace {

const arch::SystemSpec& sys(const std::string& name) {
    return arch::system_by_name(name);
}

} // namespace

// ---------------------------------------------------------------- Table III
std::vector<Table3Row> run_table3() {
    std::vector<Table3Row> rows;
    for (const auto& p : paper::kTable3) {
        apps::HpcgConfig cfg;
        cfg.optimized = p.optimized;
        const auto out = apps::run_hpcg(sys(p.system), 1, cfg);
        Table3Row row;
        row.system = p.system;
        row.optimized = p.optimized;
        row.paper_gflops = p.gflops;
        row.model_gflops = out.res.feasible ? out.res.gflops : 0.0;
        row.model_pct_peak = out.pct_peak;
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------- Table IV
std::vector<Table4Row> run_table4() {
    std::vector<Table4Row> rows;
    for (const auto& p : paper::kTable4) {
        Table4Row row;
        row.system = p.system;
        row.optimized = p.optimized;
        row.paper = p.gflops;
        for (std::size_t i = 0; i < paper::kTable4Nodes.size(); ++i) {
            apps::HpcgConfig cfg;
            cfg.optimized = p.optimized;
            const auto out = apps::run_hpcg(sys(p.system), paper::kTable4Nodes[i], cfg);
            row.model[i] = out.res.feasible ? out.res.gflops : 0.0;
        }
        rows.push_back(row);
    }
    return rows;
}

// ------------------------------------------------------------------ Table V
std::vector<Table5Row> run_table5() {
    std::vector<Table5Row> rows;
    for (const auto& p : paper::kTable5) {
        apps::MinikabConfig cfg;  // 1 node, 1 rank, 1 thread
        const auto out = apps::run_minikab(sys(p.system), cfg);
        rows.push_back({p.system, p.seconds, out.feasible ? out.seconds : 0.0});
    }
    return rows;
}

// ----------------------------------------------------------------- Figure 1
std::vector<Fig1Series> run_fig1() {
    const auto& a64 = arch::a64fx();
    struct Setup {
        const char* label;
        int threads;
        std::vector<int> cores;
    };
    // The five execution setups of Fig 1 on 2 nodes; plain MPI is capped by
    // memory (the capacity model reports configurations beyond 48 processes
    // as infeasible, matching the paper).
    const std::vector<Setup> setups = {
        {"plain MPI", 1, {8, 16, 24, 32, 48, 96}},
        {"4 ranks x 24 thr", 24, {48, 96}},
        {"8 ranks x 12 thr", 12, {24, 48, 96}},
        {"16 ranks x 6 thr", 6, {24, 48, 96}},
        {"32 ranks x 3 thr", 3, {24, 48, 96}},
    };
    std::vector<Fig1Series> series;
    for (const auto& s : setups) {
        Fig1Series fs;
        fs.label = s.label;
        for (int cores : s.cores) {
            if (cores % s.threads != 0) continue;
            apps::MinikabConfig cfg;
            cfg.nodes = 2;
            cfg.threads = s.threads;
            cfg.ranks = cores / s.threads;
            const auto out = apps::run_minikab(a64, cfg);
            Fig1Point pt;
            pt.cores = cores;
            pt.ranks = cfg.ranks;
            pt.threads = s.threads;
            pt.feasible = out.feasible;
            pt.runtime_s = out.seconds;
            pt.gflops = out.gflops;
            fs.points.push_back(pt);
        }
        series.push_back(std::move(fs));
    }
    return series;
}

// ----------------------------------------------------------------- Figure 2
std::vector<Fig2Series> run_fig2() {
    std::vector<Fig2Series> series;

    // A64FX: best setup from Fig 1 — 4 processes/node x 12 threads.
    {
        Fig2Series fs;
        fs.system = "A64FX";
        fs.config = "4 ranks/node x 12 threads";
        for (int nodes : {2, 4, 6, 8}) {
            apps::MinikabConfig cfg;
            cfg.nodes = nodes;
            cfg.ranks = 4 * nodes;
            cfg.threads = 12;
            const auto out = apps::run_minikab(arch::a64fx(), cfg);
            fs.points.push_back({nodes, nodes * 48, out.seconds});
        }
        series.push_back(std::move(fs));
    }
    // Fulhame: plain MPI, fully populated (memory is no concern there).
    {
        Fig2Series fs;
        fs.system = "Fulhame";
        fs.config = "plain MPI, 64 ranks/node";
        for (int nodes : {1, 2, 3, 4, 5, 6}) {
            apps::MinikabConfig cfg;
            cfg.nodes = nodes;
            cfg.ranks = 64 * nodes;
            cfg.threads = 1;
            const auto out = apps::run_minikab(arch::fulhame(), cfg);
            fs.points.push_back({nodes, nodes * 64, out.seconds});
        }
        series.push_back(std::move(fs));
    }
    return series;
}

// ----------------------------------------------------------------- Table VI
std::vector<Table6Row> run_table6() {
    std::vector<Table6Row> rows;
    for (const auto& p : paper::kTable6) {
        const auto& s = sys(p.system);
        const auto plain = apps::run_nekbone(s, apps::nekbone_node_config(s, 1, false));
        const auto fast = apps::run_nekbone(s, apps::nekbone_node_config(s, 1, true));
        Table6Row row;
        row.system = p.system;
        row.cores = p.cores;
        row.paper_gflops = p.gflops;
        row.model_gflops = plain.gflops;
        row.paper_fast = p.gflops_fast;
        row.model_fast = fast.gflops;
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------- Figure 3
std::vector<Fig3Series> run_fig3() {
    std::vector<Fig3Series> series;
    for (const auto& s : arch::system_catalog()) {
        Fig3Series fs;
        fs.system = s.name;
        for (int cores : {1, 2, 4, 8, 12, 16, 24, 32, 48, 64}) {
            if (cores > s.node.cores()) break;
            apps::NekboneConfig cfg;
            cfg.nodes = 1;
            cfg.ranks = cores;
            const auto out = apps::run_nekbone(s, cfg);
            fs.cores.push_back(cores);
            fs.mflops.push_back(out.gflops * 1000.0);
        }
        series.push_back(std::move(fs));
    }
    return series;
}

// ---------------------------------------------------------------- Table VII
std::vector<Table7Row> run_table7() {
    auto pe_curve = [](const arch::SystemSpec& s) {
        std::vector<double> pe;
        double t1 = 0;
        for (int nodes : {1, 2, 4, 8, 16}) {
            const auto out =
                apps::run_nekbone(s, apps::nekbone_node_config(s, nodes, false));
            if (nodes == 1) {
                t1 = out.seconds;
            } else {
                pe.push_back(apps::parallel_efficiency_weak(t1, out.seconds));
            }
        }
        return pe;
    };
    const auto a64 = pe_curve(arch::a64fx());
    const auto ful = pe_curve(arch::fulhame());
    const auto arc = pe_curve(arch::archer());

    std::vector<Table7Row> rows;
    for (std::size_t i = 0; i < paper::kTable7.size(); ++i) {
        const auto& p = paper::kTable7[i];
        Table7Row row;
        row.nodes = p.nodes;
        row.a64fx_paper = p.a64fx;
        row.a64fx_model = a64[i];
        row.fulhame_paper = p.fulhame;
        row.fulhame_model = ful[i];
        row.archer_paper = p.archer;
        row.archer_model = arc[i];
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------- Figure 4
std::vector<Fig4Series> run_fig4() {
    std::vector<Fig4Series> series;
    for (const auto& p : paper::kTable8) {
        const auto& s = sys(p.system);
        Fig4Series fs;
        fs.system = p.system;
        fs.ppn = p.ppn;
        for (int nodes : {1, 2, 4, 8, 16}) {
            apps::CosaConfig cfg;
            cfg.nodes = nodes;
            cfg.ranks_per_node = p.ppn;
            const auto out = apps::run_cosa(s, cfg);
            fs.points.push_back({nodes, out.feasible, out.seconds});
        }
        series.push_back(std::move(fs));
    }
    return series;
}

// ------------------------------------------------------- Figure 5 / Table IX
namespace {
std::vector<int> castep_core_counts(const arch::SystemSpec& s) {
    // The TiN benchmark needs core counts that are factors or multiples of 8;
    // Cirrus (36-core nodes) therefore tops out at 32 (paper §VII.B.1).
    std::vector<int> counts;
    for (int c : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}) {
        if (c <= s.node.cores() && (c <= 8 || c % 8 == 0)) counts.push_back(c);
    }
    return counts;
}
} // namespace

std::vector<Fig5Series> run_fig5() {
    std::vector<Fig5Series> series;
    for (const auto& s : arch::system_catalog()) {
        Fig5Series fs;
        fs.system = s.name;
        for (int cores : castep_core_counts(s)) {
            apps::CastepConfig cfg;
            cfg.nodes = 1;
            cfg.ranks = cores;
            const auto out = apps::run_castep(s, cfg);
            fs.cores.push_back(cores);
            fs.scf_per_s.push_back(out.scf_cycles_per_s);
        }
        series.push_back(std::move(fs));
    }
    return series;
}

std::vector<Table9Row> run_table9() {
    std::vector<Table9Row> rows;
    for (const auto& p : paper::kTable9) {
        apps::CastepConfig cfg;
        cfg.nodes = 1;
        cfg.ranks = p.cores;
        const auto out = apps::run_castep(sys(p.system), cfg);
        rows.push_back({p.system, p.cores, p.scf_cycles_per_s, out.scf_cycles_per_s});
    }
    return rows;
}

// ------------------------------------------------------------------ Table X
std::vector<Table10Row> run_table10() {
    std::vector<Table10Row> rows;
    for (const auto& p : paper::kTable10) {
        Table10Row row;
        row.system = p.system;
        row.paper = p.seconds;
        for (std::size_t i = 0; i < paper::kTable10Nodes.size(); ++i) {
            apps::OpensbliConfig cfg;
            cfg.nodes = paper::kTable10Nodes[i];
            const auto out = apps::run_opensbli(sys(p.system), cfg);
            row.model[i] = out.seconds;
            row.feasible[i] = out.feasible;
        }
        rows.push_back(row);
    }
    return rows;
}

} // namespace armstice::core
