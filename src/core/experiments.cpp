#include "core/experiments.hpp"

#include "apps/castep/castep.hpp"
#include "apps/cosa/cosa.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/minikab/minikab.hpp"
#include "apps/nekbone/nekbone.hpp"
#include "apps/opensbli/opensbli.hpp"
#include "core/app_codecs.hpp"
#include "core/paper_data.hpp"
#include "core/runner.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <utility>

namespace armstice::core {
namespace {

const arch::SystemSpec& sys(const std::string& name) {
    return arch::system_by_name(name);
}

// ---- sweep plumbing --------------------------------------------------------
// Every experiment routes its (system x nodes x ranks x threads x config)
// loop through SweepRunner: points evaluate concurrently on the --jobs pool
// and repeated points (within an artefact, across artefacts in one process,
// across google-benchmark iterations) are served from the memo cache. The
// sig_* helpers serialize *every* config field into the point key so two
// points collide only when they really are the same simulation.

std::string sig_knobs(const arch::ModelKnobs& k) {
    return util::format("k%d%d%d%d%d:%g", k.contention, k.core_bw_cap,
                        k.gather_penalty, k.cache_model, k.amdahl, k.os_noise);
}

std::string sig_hpcg(const apps::HpcgConfig& c) {
    return util::format("g%dx%dx%d;l%d;i%d;opt%d;%s", c.nx, c.ny, c.nz, c.levels,
                        c.iters, c.optimized, sig_knobs(c.knobs).c_str());
}

std::string sig_minikab(const apps::MinikabConfig& c) {
    return util::format("rows%ld;nnz%.0f;i%d;s%d;%s", c.rows, c.nnz, c.iterations,
                        static_cast<int>(c.solver), sig_knobs(c.knobs).c_str());
}

std::string sig_nekbone(const apps::NekboneConfig& c) {
    return util::format("e%d;nx%d;i%d;fm%d;%s", c.elems_per_rank, c.nx1, c.cg_iters,
                        c.fastmath, sig_knobs(c.knobs).c_str());
}

std::string sig_cosa(const apps::CosaConfig& c) {
    return util::format("b%d;c%ld;h%d;i%d;%s", c.blocks, c.total_cells, c.harmonics,
                        c.iterations, sig_knobs(c.knobs).c_str());
}

std::string sig_castep(const apps::CastepConfig& c) {
    return util::format("g%d;b%d;h%d;s%d;scf%d;%s", c.grid, c.bands, c.h_apps,
                        c.subspace_ops, c.scf_cycles, sig_knobs(c.knobs).c_str());
}

std::string sig_opensbli(const apps::OpensbliConfig& c) {
    return util::format("g%d;s%d;k%d;%s", c.grid, c.steps, c.kernels_per_step,
                        sig_knobs(c.knobs).c_str());
}

struct HpcgJob {
    std::string system;
    int nodes = 1;
    apps::HpcgConfig cfg;
};

std::vector<apps::HpcgOutcome> sweep(const std::vector<HpcgJob>& jobs) {
    std::vector<SweepPoint> pts;
    pts.reserve(jobs.size());
    for (const auto& j : jobs) {
        pts.push_back(sweep_point("hpcg", j.system, j.nodes, 0, 1, sig_hpcg(j.cfg)));
    }
    return SweepRunner().run<apps::HpcgOutcome>(
        pts, [&jobs](const SweepPoint& pt, std::size_t i) {
            return apps::run_hpcg(sys(pt.system), jobs[i].nodes, jobs[i].cfg);
        });
}

struct MinikabJob {
    std::string system;
    apps::MinikabConfig cfg;
};

std::vector<apps::AppResult> sweep(const std::vector<MinikabJob>& jobs) {
    std::vector<SweepPoint> pts;
    pts.reserve(jobs.size());
    for (const auto& j : jobs) {
        pts.push_back(sweep_point("minikab", j.system, j.cfg.nodes, j.cfg.ranks,
                                  j.cfg.threads, sig_minikab(j.cfg)));
    }
    return SweepRunner().run<apps::AppResult>(
        pts, [&jobs](const SweepPoint& pt, std::size_t i) {
            return apps::run_minikab(sys(pt.system), jobs[i].cfg);
        });
}

struct NekboneJob {
    std::string system;
    apps::NekboneConfig cfg;
};

std::vector<apps::AppResult> sweep(const std::vector<NekboneJob>& jobs) {
    std::vector<SweepPoint> pts;
    pts.reserve(jobs.size());
    for (const auto& j : jobs) {
        pts.push_back(sweep_point("nekbone", j.system, j.cfg.nodes, j.cfg.ranks, 1,
                                  sig_nekbone(j.cfg)));
    }
    return SweepRunner().run<apps::AppResult>(
        pts, [&jobs](const SweepPoint& pt, std::size_t i) {
            return apps::run_nekbone(sys(pt.system), jobs[i].cfg);
        });
}

struct CosaJob {
    std::string system;
    apps::CosaConfig cfg;
};

std::vector<apps::AppResult> sweep(const std::vector<CosaJob>& jobs) {
    std::vector<SweepPoint> pts;
    pts.reserve(jobs.size());
    for (const auto& j : jobs) {
        pts.push_back(sweep_point("cosa", j.system, j.cfg.nodes, j.cfg.ranks_per_node,
                                  1, sig_cosa(j.cfg)));
    }
    return SweepRunner().run<apps::AppResult>(
        pts, [&jobs](const SweepPoint& pt, std::size_t i) {
            return apps::run_cosa(sys(pt.system), jobs[i].cfg);
        });
}

struct CastepJob {
    std::string system;
    apps::CastepConfig cfg;
};

std::vector<apps::CastepOutcome> sweep(const std::vector<CastepJob>& jobs) {
    std::vector<SweepPoint> pts;
    pts.reserve(jobs.size());
    for (const auto& j : jobs) {
        pts.push_back(sweep_point("castep", j.system, j.cfg.nodes, j.cfg.ranks,
                                  j.cfg.threads, sig_castep(j.cfg)));
    }
    return SweepRunner().run<apps::CastepOutcome>(
        pts, [&jobs](const SweepPoint& pt, std::size_t i) {
            return apps::run_castep(sys(pt.system), jobs[i].cfg);
        });
}

struct OpensbliJob {
    std::string system;
    apps::OpensbliConfig cfg;
};

std::vector<apps::AppResult> sweep(const std::vector<OpensbliJob>& jobs) {
    std::vector<SweepPoint> pts;
    pts.reserve(jobs.size());
    for (const auto& j : jobs) {
        pts.push_back(sweep_point("opensbli", j.system, j.cfg.nodes, j.cfg.ranks, 1,
                                  sig_opensbli(j.cfg)));
    }
    return SweepRunner().run<apps::AppResult>(
        pts, [&jobs](const SweepPoint& pt, std::size_t i) {
            return apps::run_opensbli(sys(pt.system), jobs[i].cfg);
        });
}

} // namespace

// ---------------------------------------------------------------- Table III
std::vector<Table3Row> run_table3() {
    std::vector<HpcgJob> jobs;
    for (const auto& p : paper::kTable3) {
        HpcgJob j;
        j.system = p.system;
        j.cfg.optimized = p.optimized;
        jobs.push_back(std::move(j));
    }
    const auto outs = sweep(jobs);

    std::vector<Table3Row> rows;
    for (std::size_t i = 0; i < paper::kTable3.size(); ++i) {
        const auto& p = paper::kTable3[i];
        const auto& out = outs[i];
        Table3Row row;
        row.system = p.system;
        row.optimized = p.optimized;
        row.paper_gflops = p.gflops;
        row.model_gflops = out.res.feasible ? out.res.gflops : 0.0;
        row.model_pct_peak = out.pct_peak;
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------- Table IV
std::vector<Table4Row> run_table4() {
    const std::size_t ncols = paper::kTable4Nodes.size();
    std::vector<HpcgJob> jobs;
    for (const auto& p : paper::kTable4) {
        for (std::size_t i = 0; i < ncols; ++i) {
            HpcgJob j;
            j.system = p.system;
            j.nodes = paper::kTable4Nodes[i];
            j.cfg.optimized = p.optimized;
            jobs.push_back(std::move(j));
        }
    }
    const auto outs = sweep(jobs);

    std::vector<Table4Row> rows;
    for (std::size_t r = 0; r < paper::kTable4.size(); ++r) {
        const auto& p = paper::kTable4[r];
        Table4Row row;
        row.system = p.system;
        row.optimized = p.optimized;
        row.paper = p.gflops;
        for (std::size_t i = 0; i < ncols; ++i) {
            const auto& out = outs[r * ncols + i];
            row.model[i] = out.res.feasible ? out.res.gflops : 0.0;
        }
        rows.push_back(row);
    }
    return rows;
}

// ------------------------------------------------------------------ Table V
std::vector<Table5Row> run_table5() {
    std::vector<MinikabJob> jobs;
    for (const auto& p : paper::kTable5) {
        jobs.push_back({p.system, apps::MinikabConfig{}});  // 1 node/rank/thread
    }
    const auto outs = sweep(jobs);

    std::vector<Table5Row> rows;
    for (std::size_t i = 0; i < paper::kTable5.size(); ++i) {
        const auto& out = outs[i];
        rows.push_back({paper::kTable5[i].system, paper::kTable5[i].seconds,
                        out.feasible ? out.seconds : 0.0});
    }
    return rows;
}

// ----------------------------------------------------------------- Figure 1
std::vector<Fig1Series> run_fig1() {
    struct Setup {
        const char* label;
        int threads;
        std::vector<int> cores;
    };
    // The five execution setups of Fig 1 on 2 nodes; plain MPI is capped by
    // memory (the capacity model reports configurations beyond 48 processes
    // as infeasible, matching the paper).
    const std::vector<Setup> setups = {
        {"plain MPI", 1, {8, 16, 24, 32, 48, 96}},
        {"4 ranks x 24 thr", 24, {48, 96}},
        {"8 ranks x 12 thr", 12, {24, 48, 96}},
        {"16 ranks x 6 thr", 6, {24, 48, 96}},
        {"32 ranks x 3 thr", 3, {24, 48, 96}},
    };

    std::vector<MinikabJob> jobs;
    std::vector<std::pair<std::size_t, int>> meta;  // (series index, cores)
    for (std::size_t s = 0; s < setups.size(); ++s) {
        for (int cores : setups[s].cores) {
            if (cores % setups[s].threads != 0) continue;
            MinikabJob j;
            j.system = "A64FX";
            j.cfg.nodes = 2;
            j.cfg.threads = setups[s].threads;
            j.cfg.ranks = cores / setups[s].threads;
            jobs.push_back(std::move(j));
            meta.emplace_back(s, cores);
        }
    }
    const auto outs = sweep(jobs);

    std::vector<Fig1Series> series(setups.size());
    for (std::size_t s = 0; s < setups.size(); ++s) series[s].label = setups[s].label;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto& out = outs[i];
        Fig1Point pt;
        pt.cores = meta[i].second;
        pt.ranks = jobs[i].cfg.ranks;
        pt.threads = jobs[i].cfg.threads;
        pt.feasible = out.feasible;
        pt.runtime_s = out.seconds;
        pt.gflops = out.gflops;
        series[meta[i].first].points.push_back(pt);
    }
    return series;
}

// ----------------------------------------------------------------- Figure 2
std::vector<Fig2Series> run_fig2() {
    // A64FX: best setup from Fig 1 — 4 processes/node x 12 threads.
    // Fulhame: plain MPI, fully populated (memory is no concern there).
    const std::vector<int> a64_nodes = {2, 4, 6, 8};
    const std::vector<int> ful_nodes = {1, 2, 3, 4, 5, 6};

    std::vector<MinikabJob> jobs;
    for (int nodes : a64_nodes) {
        MinikabJob j;
        j.system = "A64FX";
        j.cfg.nodes = nodes;
        j.cfg.ranks = 4 * nodes;
        j.cfg.threads = 12;
        jobs.push_back(std::move(j));
    }
    for (int nodes : ful_nodes) {
        MinikabJob j;
        j.system = "Fulhame";
        j.cfg.nodes = nodes;
        j.cfg.ranks = 64 * nodes;
        j.cfg.threads = 1;
        jobs.push_back(std::move(j));
    }
    const auto outs = sweep(jobs);

    std::vector<Fig2Series> series;
    {
        Fig2Series fs;
        fs.system = "A64FX";
        fs.config = "4 ranks/node x 12 threads";
        for (std::size_t i = 0; i < a64_nodes.size(); ++i) {
            fs.points.push_back({a64_nodes[i], a64_nodes[i] * 48, outs[i].seconds});
        }
        series.push_back(std::move(fs));
    }
    {
        Fig2Series fs;
        fs.system = "Fulhame";
        fs.config = "plain MPI, 64 ranks/node";
        for (std::size_t i = 0; i < ful_nodes.size(); ++i) {
            fs.points.push_back({ful_nodes[i], ful_nodes[i] * 64,
                                 outs[a64_nodes.size() + i].seconds});
        }
        series.push_back(std::move(fs));
    }
    return series;
}

// ----------------------------------------------------------------- Table VI
std::vector<Table6Row> run_table6() {
    std::vector<NekboneJob> jobs;
    for (const auto& p : paper::kTable6) {
        const auto& s = sys(p.system);
        jobs.push_back({p.system, apps::nekbone_node_config(s, 1, false)});
        jobs.push_back({p.system, apps::nekbone_node_config(s, 1, true)});
    }
    const auto outs = sweep(jobs);

    std::vector<Table6Row> rows;
    for (std::size_t i = 0; i < paper::kTable6.size(); ++i) {
        const auto& p = paper::kTable6[i];
        const auto& plain = outs[2 * i];
        const auto& fast = outs[2 * i + 1];
        Table6Row row;
        row.system = p.system;
        row.cores = p.cores;
        row.paper_gflops = p.gflops;
        row.model_gflops = plain.gflops;
        row.paper_fast = p.gflops_fast;
        row.model_fast = fast.gflops;
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------- Figure 3
std::vector<Fig3Series> run_fig3() {
    std::vector<NekboneJob> jobs;
    std::vector<std::pair<std::size_t, int>> meta;  // (series index, cores)
    const auto& catalog = arch::system_catalog();
    for (std::size_t s = 0; s < catalog.size(); ++s) {
        for (int cores : {1, 2, 4, 8, 12, 16, 24, 32, 48, 64}) {
            if (cores > catalog[s].node.cores()) break;
            NekboneJob j;
            j.system = catalog[s].name;
            j.cfg.nodes = 1;
            j.cfg.ranks = cores;
            jobs.push_back(std::move(j));
            meta.emplace_back(s, cores);
        }
    }
    const auto outs = sweep(jobs);

    std::vector<Fig3Series> series(catalog.size());
    for (std::size_t s = 0; s < catalog.size(); ++s) series[s].system = catalog[s].name;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        series[meta[i].first].cores.push_back(meta[i].second);
        series[meta[i].first].mflops.push_back(outs[i].gflops * 1000.0);
    }
    return series;
}

// ---------------------------------------------------------------- Table VII
std::vector<Table7Row> run_table7() {
    const std::vector<int> node_counts = {1, 2, 4, 8, 16};
    const std::vector<std::string> systems = {"A64FX", "Fulhame", "ARCHER"};

    std::vector<NekboneJob> jobs;
    for (const auto& name : systems) {
        for (int nodes : node_counts) {
            jobs.push_back({name, apps::nekbone_node_config(sys(name), nodes, false)});
        }
    }
    const auto outs = sweep(jobs);

    // Weak-scaling parallel efficiency per system: PE(n) = t1 / tn.
    std::vector<std::vector<double>> pe(systems.size());
    for (std::size_t s = 0; s < systems.size(); ++s) {
        const double t1 = outs[s * node_counts.size()].seconds;
        for (std::size_t k = 1; k < node_counts.size(); ++k) {
            pe[s].push_back(apps::parallel_efficiency_weak(
                t1, outs[s * node_counts.size() + k].seconds));
        }
    }

    std::vector<Table7Row> rows;
    for (std::size_t i = 0; i < paper::kTable7.size(); ++i) {
        const auto& p = paper::kTable7[i];
        Table7Row row;
        row.nodes = p.nodes;
        row.a64fx_paper = p.a64fx;
        row.a64fx_model = pe[0][i];
        row.fulhame_paper = p.fulhame;
        row.fulhame_model = pe[1][i];
        row.archer_paper = p.archer;
        row.archer_model = pe[2][i];
        rows.push_back(row);
    }
    return rows;
}

// ----------------------------------------------------------------- Figure 4
std::vector<Fig4Series> run_fig4() {
    const std::vector<int> node_counts = {1, 2, 4, 8, 16};
    std::vector<CosaJob> jobs;
    for (const auto& p : paper::kTable8) {
        for (int nodes : node_counts) {
            CosaJob j;
            j.system = p.system;
            j.cfg.nodes = nodes;
            j.cfg.ranks_per_node = p.ppn;
            jobs.push_back(std::move(j));
        }
    }
    const auto outs = sweep(jobs);

    std::vector<Fig4Series> series;
    std::size_t i = 0;
    for (const auto& p : paper::kTable8) {
        Fig4Series fs;
        fs.system = p.system;
        fs.ppn = p.ppn;
        for (int nodes : node_counts) {
            const auto& out = outs[i++];
            fs.points.push_back({nodes, out.feasible, out.seconds});
        }
        series.push_back(std::move(fs));
    }
    return series;
}

// ------------------------------------------------------- Figure 5 / Table IX
namespace {
std::vector<int> castep_core_counts(const arch::SystemSpec& s) {
    // The TiN benchmark needs core counts that are factors or multiples of 8;
    // Cirrus (36-core nodes) therefore tops out at 32 (paper §VII.B.1).
    std::vector<int> counts;
    for (int c : {1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}) {
        if (c <= s.node.cores() && (c <= 8 || c % 8 == 0)) counts.push_back(c);
    }
    return counts;
}
} // namespace

std::vector<Fig5Series> run_fig5() {
    std::vector<CastepJob> jobs;
    std::vector<std::pair<std::size_t, int>> meta;  // (series index, cores)
    const auto& catalog = arch::system_catalog();
    for (std::size_t s = 0; s < catalog.size(); ++s) {
        for (int cores : castep_core_counts(catalog[s])) {
            CastepJob j;
            j.system = catalog[s].name;
            j.cfg.nodes = 1;
            j.cfg.ranks = cores;
            jobs.push_back(std::move(j));
            meta.emplace_back(s, cores);
        }
    }
    const auto outs = sweep(jobs);

    std::vector<Fig5Series> series(catalog.size());
    for (std::size_t s = 0; s < catalog.size(); ++s) series[s].system = catalog[s].name;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        series[meta[i].first].cores.push_back(meta[i].second);
        series[meta[i].first].scf_per_s.push_back(outs[i].scf_cycles_per_s);
    }
    return series;
}

std::vector<Table9Row> run_table9() {
    std::vector<CastepJob> jobs;
    for (const auto& p : paper::kTable9) {
        CastepJob j;
        j.system = p.system;
        j.cfg.nodes = 1;
        j.cfg.ranks = p.cores;
        jobs.push_back(std::move(j));
    }
    const auto outs = sweep(jobs);

    std::vector<Table9Row> rows;
    for (std::size_t i = 0; i < paper::kTable9.size(); ++i) {
        const auto& p = paper::kTable9[i];
        rows.push_back({p.system, p.cores, p.scf_cycles_per_s,
                        outs[i].scf_cycles_per_s});
    }
    return rows;
}

// ------------------------------------------------------------------ Table X
std::vector<Table10Row> run_table10() {
    const std::size_t ncols = paper::kTable10Nodes.size();
    std::vector<OpensbliJob> jobs;
    for (const auto& p : paper::kTable10) {
        for (std::size_t i = 0; i < ncols; ++i) {
            OpensbliJob j;
            j.system = p.system;
            j.cfg.nodes = paper::kTable10Nodes[i];
            jobs.push_back(std::move(j));
        }
    }
    const auto outs = sweep(jobs);

    std::vector<Table10Row> rows;
    for (std::size_t r = 0; r < paper::kTable10.size(); ++r) {
        const auto& p = paper::kTable10[r];
        Table10Row row;
        row.system = p.system;
        row.paper = p.seconds;
        for (std::size_t i = 0; i < ncols; ++i) {
            const auto& out = outs[r * ncols + i];
            row.model[i] = out.seconds;
            row.feasible[i] = out.feasible;
        }
        rows.push_back(row);
    }
    return rows;
}

} // namespace armstice::core
