#pragma once
// Every measured number reported in the paper's evaluation (Tables III-X;
// Figures 1-5 carry no numeric axes and are reproduced by shape). These are
// the ground truth each bench prints beside the model output and the
// reproduction tests score against.

#include <array>
#include <string>
#include <vector>

namespace armstice::core::paper {

// Table III — single-node HPCG.
struct HpcgSingleNode {
    const char* system;
    bool optimized;
    double gflops;
    double pct_peak;
};
inline constexpr std::array<HpcgSingleNode, 7> kTable3 = {{
    {"A64FX", false, 38.26, 1.1},
    {"ARCHER", false, 15.65, 3.0},
    {"Cirrus", false, 17.27, 1.4},
    {"EPCC NGIO", false, 26.16, 1.4},
    {"EPCC NGIO", true, 37.61, 2.0},
    {"Fulhame", false, 23.58, 2.0},
    {"Fulhame", true, 33.80, 3.0},
}};

// Table IV — multi-node HPCG GFLOP/s at 1/2/4/8 nodes.
struct HpcgMultiNode {
    const char* system;
    bool optimized;
    std::array<double, 4> gflops;  // 1, 2, 4, 8 nodes
};
inline constexpr std::array<HpcgMultiNode, 5> kTable4 = {{
    {"A64FX", false, {38.26, 78.94, 157.46, 313.50}},
    {"ARCHER", false, {15.65, 26.25, 55.63, 110.52}},
    {"Cirrus", false, {17.27, 34.26, 68.44, 136.06}},
    {"EPCC NGIO", true, {37.61, 73.90, 147.94, 292.60}},
    {"Fulhame", true, {33.80, 67.68, 133.29, 261.32}},
}};
inline constexpr std::array<int, 4> kTable4Nodes = {1, 2, 4, 8};

// Table V — single-core minikab runtime (seconds).
struct MinikabSingleCore {
    const char* system;
    double seconds;
};
inline constexpr std::array<MinikabSingleCore, 3> kTable5 = {{
    {"A64FX", 1182.0},
    {"EPCC NGIO", 1269.0},
    {"Fulhame", 2415.0},
}};

// Table VI — Nekbone node performance (GFLOP/s), plain -O3 and fast-math.
struct NekboneNode {
    const char* system;
    int cores;
    double gflops;
    double ratio;           // to A64FX
    double gflops_fast;
    double ratio_fast;
};
inline constexpr std::array<NekboneNode, 4> kTable6 = {{
    {"A64FX", 48, 175.74, 1.00, 312.34, 1.00},
    {"EPCC NGIO", 48, 127.19, 0.72, 90.37, 0.29},
    {"Fulhame", 64, 121.63, 0.69, 132.65, 0.42},
    {"ARCHER", 24, 66.55, 0.40, 68.22, 0.21},
}};

// Table VII — Nekbone inter-node parallel efficiency.
struct NekbonePe {
    int nodes;
    double a64fx;
    double fulhame;
    double archer;
};
inline constexpr std::array<NekbonePe, 4> kTable7 = {{
    {2, 0.99, 0.99, 0.98},
    {4, 0.97, 0.99, 0.98},
    {8, 0.97, 0.97, 0.97},
    {16, 0.96, 0.98, 0.97},
}};

// Table VIII — COSA processes per node.
struct CosaPpn {
    const char* system;
    int ppn;
};
inline constexpr std::array<CosaPpn, 5> kTable8 = {{
    {"A64FX", 48},
    {"ARCHER", 24},
    {"Cirrus", 36},
    {"Fulhame", 64},
    {"EPCC NGIO", 48},
}};

// Table IX — CASTEP TiN best single-node performance.
struct CastepBest {
    const char* system;
    int cores;
    double scf_cycles_per_s;
    double ratio;  // to A64FX
};
inline constexpr std::array<CastepBest, 5> kTable9 = {{
    {"A64FX", 48, 0.145, 1.00},
    {"ARCHER", 24, 0.074, 0.51},
    {"EPCC NGIO", 48, 0.184, 1.27},
    {"Cirrus", 32, 0.125, 0.86},
    {"Fulhame", 64, 0.141, 0.97},
}};

// Table X — OpenSBLI total runtime (seconds) at 1/2/4/8 nodes.
struct OpensbliRuntime {
    const char* system;
    std::array<double, 4> seconds;
};
inline constexpr std::array<OpensbliRuntime, 4> kTable10 = {{
    {"A64FX", {3.44, 1.89, 1.04, 0.69}},
    {"Cirrus", {1.90, 0.93, 0.53, 0.35}},
    {"EPCC NGIO", {1.18, 0.75, 0.46, 0.31}},
    {"Fulhame", {1.17, 0.74, 0.65, 0.28}},
}};
inline constexpr std::array<int, 4> kTable10Nodes = {1, 2, 4, 8};

} // namespace armstice::core::paper
