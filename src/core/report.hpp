#pragma once
// Rendering of experiment results as paper-style ASCII tables/plots plus CSV
// dumps. Used by the bench binaries; kept in the library so tests can verify
// rendering and examples can reuse it.

#include "core/experiments.hpp"

#include <string>

namespace armstice::core {

/// Table I + interconnects + Table II toolchains for every system.
std::string render_system_catalog();

std::string render_table3(const std::vector<Table3Row>& rows);
std::string render_table4(const std::vector<Table4Row>& rows);
std::string render_table5(const std::vector<Table5Row>& rows);
std::string render_fig1(const std::vector<Fig1Series>& series);
std::string render_fig2(const std::vector<Fig2Series>& series);
std::string render_table6(const std::vector<Table6Row>& rows);
std::string render_fig3(const std::vector<Fig3Series>& series);
std::string render_table7(const std::vector<Table7Row>& rows);
std::string render_table8();
std::string render_fig4(const std::vector<Fig4Series>& series);
std::string render_fig5(const std::vector<Fig5Series>& series);
std::string render_table9(const std::vector<Table9Row>& rows);
std::string render_table10(const std::vector<Table10Row>& rows);

/// Write any artefact's CSV next to the binary (best effort; logs on error).
void write_csv(const std::string& path, const std::string& csv_text);

/// Exact text of each figure's CSV artefact — the same bytes save_figN
/// writes to <stem>.csv. Exposed so the golden-figure regression tests
/// (tests/cache/test_golden_figures.cpp) can diff a freshly computed figure
/// against the CSVs committed at the repo root without touching the disk.
std::string fig1_csv(const std::vector<Fig1Series>& series);
std::string fig2_csv(const std::vector<Fig2Series>& series);
std::string fig3_csv(const std::vector<Fig3Series>& series);
std::string fig4_csv(const std::vector<Fig4Series>& series);
std::string fig5_csv(const std::vector<Fig5Series>& series);

/// Write <stem>.svg (publication-style chart) and <stem>.csv (raw data) for
/// a figure. Best effort: I/O problems are logged, not thrown, so bench
/// binaries keep working in read-only directories.
void save_fig1(const std::vector<Fig1Series>& series, const std::string& stem);
void save_fig2(const std::vector<Fig2Series>& series, const std::string& stem);
void save_fig3(const std::vector<Fig3Series>& series, const std::string& stem);
void save_fig4(const std::vector<Fig4Series>& series, const std::string& stem);
void save_fig5(const std::vector<Fig5Series>& series, const std::string& stem);

} // namespace armstice::core
