#include "core/runner.hpp"

#include "core/cache.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/str.hpp"
#include "util/threadpool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace armstice::core {
namespace {

// Cache values are shared_ptr so concurrent readers can hold a hit while an
// unrelated insert rehashes the map. One mutex guards map + stats + default
// jobs; all critical sections are O(points), never O(simulation).
std::mutex g_mu;
std::unordered_map<std::string, std::shared_ptr<const std::any>>& cache() {
    static std::unordered_map<std::string, std::shared_ptr<const std::any>> c;
    return c;
}
SweepStats g_stats;
int g_default_jobs = 0;  // 0 = unset -> consult ARMSTICE_JOBS, else serial

int env_jobs() {
    const char* env = std::getenv("ARMSTICE_JOBS");
    if (env == nullptr || *env == '\0') return 0;
    const long v = std::strtol(env, nullptr, 10);
    return v >= 1 ? static_cast<int>(v) : 0;
}

} // namespace

std::string SweepPoint::key() const {
    return util::format("%s|%s|n%d|r%d|t%d|%s", app.c_str(), system.c_str(), nodes,
                        ranks, threads, config.c_str());
}

SweepPoint sweep_point(std::string app, std::string system, int nodes, int ranks,
                       int threads, std::string config) {
    SweepPoint p;
    p.app = std::move(app);
    p.system = std::move(system);
    p.nodes = nodes;
    p.ranks = ranks;
    p.threads = threads;
    p.config = std::move(config);
    return p;
}

int default_jobs() {
    {
        std::lock_guard<std::mutex> lock(g_mu);
        if (g_default_jobs >= 1) return g_default_jobs;
    }
    const int env = env_jobs();
    return env >= 1 ? env : 1;
}

void set_default_jobs(int jobs) {
    std::lock_guard<std::mutex> lock(g_mu);
    g_default_jobs = jobs >= 1 ? jobs : 0;
}

SweepStats sweep_stats() {
    std::lock_guard<std::mutex> lock(g_mu);
    return g_stats;
}

std::string sweep_footer() {
    const SweepStats s = sweep_stats();
    std::string out = util::format(
        "[sweep] pool=%d jobs | %ld points (%ld evaluated, %ld memo cache hits, "
        "%ld disk cache hits, %.1f%% hit rate) | eval %.2fs across workers, "
        "%.2fs wall\n",
        s.jobs, s.points, s.misses, s.hits, s.disk_hits, 100.0 * s.hit_rate(),
        s.eval_wall_s, s.batch_wall_s);
    if (CacheStore* store = cache_store(); store != nullptr) {
        const auto cs = store->stats();
        out += util::format(
            "[cache] dir=%s | %ld/%ld disk probes hit (%.1f%% disk-hit rate) | "
            "%ld entries written, %ld rejected as damaged/stale\n",
            store->dir().c_str(), s.disk_hits, s.disk_hits + s.disk_misses,
            100.0 * s.disk_hit_rate(), cs.stores, cs.rejected);
    }
    return out;
}

void reset_sweep_cache() {
    std::lock_guard<std::mutex> lock(g_mu);
    cache().clear();
    g_stats = SweepStats{};
}

namespace detail {

void run_points(const std::vector<std::string>& keys,
                const std::function<std::any(std::size_t)>& eval,
                std::vector<std::any>& results, int jobs, const AnyCodec* codec,
                const RunHooks* hooks) {
    const std::size_t n = keys.size();
    results.resize(n);

    // Partition under the lock: cached points resolve immediately; the first
    // occurrence of each uncached key becomes a task, later occurrences
    // alias its slot.
    std::vector<std::shared_ptr<const std::any>> hit(n);
    std::vector<std::size_t> owner(n);  // index whose evaluation serves point i
    std::vector<std::size_t> reps;      // representative indices to evaluate
    {
        std::lock_guard<std::mutex> lock(g_mu);
        std::unordered_map<std::string, std::size_t> first;
        long hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
            owner[i] = i;
            const auto it = cache().find(keys[i]);
            if (it != cache().end()) {
                hit[i] = it->second;
                ++hits;
                continue;
            }
            const auto [f, inserted] = first.emplace(keys[i], i);
            if (inserted) {
                reps.push_back(i);
            } else {
                owner[i] = f->second;
                ++hits;
            }
        }
        g_stats.points += static_cast<long>(n);
        g_stats.hits += hits;
        g_stats.jobs = jobs;
    }

    // Streaming: deliver(rep, value) fires on_result for the representative
    // AND every in-batch duplicate aliased to it, so a consumer waiting on
    // any index unblocks the moment its key's result exists. Memo hits fire
    // here, before anything evaluates.
    auto deliver = [&](std::size_t rep, const std::any& value) {
        if (hooks == nullptr || !hooks->on_result) return;
        hooks->on_result(rep, value);
        for (std::size_t i = 0; i < n; ++i) {
            if (i != rep && owner[i] == rep) hooks->on_result(i, value);
        }
    };
    if (hooks != nullptr && hooks->on_result) {
        for (std::size_t i = 0; i < n; ++i) {
            if (hit[i]) hooks->on_result(i, *hit[i]);
        }
    }

    std::vector<std::shared_ptr<const std::any>> fresh(n);

    // Persistent-cache probe: every memo miss with a disk-cacheable result
    // type first looks for a serialised entry from an earlier process. A
    // usable entry fills the point's slot exactly like an evaluation would
    // (and is promoted into the memo cache below); anything damaged, stale
    // or undecodable is just a miss. File I/O runs outside g_mu.
    CacheStore* const store = codec != nullptr ? cache_store() : nullptr;
    std::vector<std::size_t> to_eval;
    long disk_misses = 0;
    if (store != nullptr) {
        for (const std::size_t i : reps) {
            if (const auto payload = store->load(keys[i])) {
                std::any decoded = codec->decode(*payload);
                if (decoded.has_value()) {
                    fresh[i] = std::make_shared<const std::any>(std::move(decoded));
                    // Count the hit BEFORE delivering: on_result may complete
                    // a waiter that immediately reads sweep_stats(), and a
                    // delivered result whose hit isn't counted yet reads as a
                    // lost update.
                    {
                        std::lock_guard<std::mutex> lock(g_mu);
                        ++g_stats.disk_hits;
                    }
                    deliver(i, *fresh[i]);
                    continue;
                }
                util::log_warn("cache: undecodable payload for key " + keys[i] +
                               " (treated as miss)");
            }
            ++disk_misses;
            to_eval.push_back(i);
        }
    } else {
        to_eval = reps;
    }
    {
        std::lock_guard<std::mutex> lock(g_mu);
        g_stats.disk_misses += disk_misses;
        g_stats.misses += static_cast<long>(to_eval.size());
    }
    const std::vector<std::size_t>& pending = to_eval;

    std::vector<std::exception_ptr> errors(pending.size());
    double eval_s = 0;
    std::mutex eval_mu;
    std::atomic<bool> cancelled{false};
    const auto batch_start = std::chrono::steady_clock::now();

    auto eval_one = [&](std::size_t j) {
        // Cancellation is polled per evaluation: a cancelled batch skips
        // everything not yet started but lets in-progress points finish (a
        // half-evaluated simulation is useless; a finished one is cacheable).
        if (cancelled.load(std::memory_order_relaxed) ||
            (hooks != nullptr && hooks->cancelled && hooks->cancelled())) {
            cancelled.store(true, std::memory_order_relaxed);
            return;
        }
        const std::size_t i = pending[j];
        const auto t0 = std::chrono::steady_clock::now();
        try {
            fresh[i] = std::make_shared<const std::any>(eval(i));
            deliver(i, *fresh[i]);
        } catch (...) {
            errors[j] = std::current_exception();
        }
        const double dt =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        std::lock_guard<std::mutex> lock(eval_mu);
        eval_s += dt;
    };

    if (!pending.empty()) {
        if (jobs <= 1 || pending.size() == 1) {
            for (std::size_t j = 0; j < pending.size(); ++j) eval_one(j);
        } else {
            util::ThreadPool pool(static_cast<int>(
                std::min<std::size_t>(pending.size(), static_cast<std::size_t>(jobs))));
            for (std::size_t j = 0; j < pending.size(); ++j) {
                pool.submit([&eval_one, j] { eval_one(j); });
            }
            pool.wait_idle();
        }
    }

    // Flush freshly evaluated results to the persistent cache (best effort;
    // atomic rename per entry, so concurrent bench processes are safe).
    // Disk-loaded entries are not rewritten.
    if (store != nullptr) {
        long stores = 0;
        for (const std::size_t i : pending) {
            if (!fresh[i]) continue;  // evaluation threw
            if (store->store(keys[i], codec->encode(*fresh[i]))) ++stores;
        }
        std::lock_guard<std::mutex> lock(g_mu);
        g_stats.disk_stores += stores;
    }

    const double batch_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - batch_start)
            .count();
    {
        std::lock_guard<std::mutex> lock(g_mu);
        g_stats.eval_wall_s += eval_s;
        g_stats.batch_wall_s += batch_s;
        // Promote both evaluated and disk-loaded results into the memo cache.
        for (std::size_t i : reps) {
            if (fresh[i]) cache()[keys[i]] = fresh[i];
        }
    }
    for (const auto& e : errors) {
        if (e) std::rethrow_exception(e);
    }
    // Evaluated points were flushed and memo-promoted above; the batch
    // itself still has holes, so it cannot return results.
    if (cancelled.load(std::memory_order_relaxed)) {
        throw util::CancelledError("sweep batch cancelled");
    }

    for (std::size_t i = 0; i < n; ++i) {
        const auto& slot = hit[i] ? hit[i] : fresh[owner[i]];
        results[i] = *slot;
    }
}

} // namespace detail

} // namespace armstice::core
