#pragma once
// Reproduction scorecard — one aggregate view of how well the model
// reproduces the paper: per-artefact relative errors over every numeric
// point the paper published, plus the qualitative shape findings
// (orderings, crossovers, feasibility limits). Printed by
// bench/repro_scorecard and asserted in tests/test_score.cpp.

#include <string>
#include <vector>

namespace armstice::core {

struct ScoreEntry {
    std::string artefact;      ///< "Table III", "Fig 4", ...
    int points = 0;            ///< numeric paper values compared
    int within_5pct = 0;
    int within_20pct = 0;
    double geomean_ratio = 1;  ///< geometric mean of model/paper
    double max_rel_err = 0;    ///< worst |model-paper|/paper
    bool shape_ok = false;     ///< the artefact's qualitative finding holds
    std::string shape_note;    ///< what the shape criterion was
};

struct Scorecard {
    std::vector<ScoreEntry> entries;

    [[nodiscard]] int total_points() const;
    [[nodiscard]] int total_within_5pct() const;
    [[nodiscard]] int shapes_ok() const;
    [[nodiscard]] int shapes_total() const {
        return static_cast<int>(entries.size());
    }
};

/// Run every experiment and score it (a few seconds of simulation).
Scorecard compute_scorecard();

std::string render_scorecard(const Scorecard& card);

} // namespace armstice::core
