#include "core/score.hpp"

#include "core/app_codecs.hpp"
#include "core/experiments.hpp"
#include "core/paper_data.hpp"
#include "core/runner.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace armstice::core {
namespace {

class EntryBuilder {
public:
    explicit EntryBuilder(std::string artefact) { entry_.artefact = std::move(artefact); }

    void point(double paper, double model) {
        if (paper <= 0 || model <= 0) return;
        ++entry_.points;
        const double rel = std::abs(model - paper) / paper;
        if (rel < 0.05) ++entry_.within_5pct;
        if (rel < 0.20) ++entry_.within_20pct;
        entry_.max_rel_err = std::max(entry_.max_rel_err, rel);
        log_ratio_sum_ += std::log(model / paper);
    }

    void shape(bool ok, std::string note) {
        entry_.shape_ok = ok;
        entry_.shape_note = std::move(note);
    }

    [[nodiscard]] ScoreEntry finish() {
        if (entry_.points > 0) {
            entry_.geomean_ratio = std::exp(log_ratio_sum_ / entry_.points);
        }
        return entry_;
    }

private:
    ScoreEntry entry_;
    double log_ratio_sum_ = 0;
};

// ---- one scorer per artefact ----------------------------------------------
// Each scorer is an independent pure function of the model, so the list
// below is itself dispatched through SweepRunner: entries evaluate
// concurrently on the --jobs pool and land in the persistent cache like any
// other sweep result, which is what makes a warm-cache scorecard rerun
// near-instant.

ScoreEntry score_table3() {
    EntryBuilder b("Table III (HPCG 1 node)");
    double a64 = 0, best_other = 0;
    for (const auto& r : run_table3()) {
        b.point(r.paper_gflops, r.model_gflops);
        if (r.system == "A64FX") a64 = r.model_gflops;
        else best_other = std::max(best_other, r.model_gflops);
    }
    b.shape(a64 > best_other, "A64FX fastest incl. optimised variants");
    return b.finish();
}

ScoreEntry score_table4() {
    EntryBuilder b("Table IV (HPCG multi-node)");
    bool lead = true;
    const auto rows = run_table4();
    for (const auto& r : rows) {
        for (std::size_t i = 0; i < 4; ++i) {
            b.point(r.paper[i], r.model[i]);
            if (r.system != "A64FX" && r.model[i] >= rows[0].model[i]) lead = false;
        }
    }
    b.shape(lead, "A64FX leads at every node count");
    return b.finish();
}

ScoreEntry score_table5() {
    EntryBuilder b("Table V (minikab 1 core)");
    double a64 = 0, ngio = 0, ful = 0;
    for (const auto& r : run_table5()) {
        b.point(r.paper_seconds, r.model_seconds);
        if (r.system == "A64FX") a64 = r.model_seconds;
        if (r.system == "EPCC NGIO") ngio = r.model_seconds;
        if (r.system == "Fulhame") ful = r.model_seconds;
    }
    b.shape(a64 < ngio && ngio < ful, "A64FX < NGIO < ThunderX2 runtime");
    return b.finish();
}

ScoreEntry score_fig1() {
    EntryBuilder b("Fig 1 (minikab configs)");
    bool oom96 = false;
    double best_full = 1e30, best_partial = 1e30;
    for (const auto& s : run_fig1()) {
        for (const auto& p : s.points) {
            if (s.label == "plain MPI" && p.cores == 96 && !p.feasible) oom96 = true;
            if (!p.feasible) continue;
            auto& best = p.cores == 96 ? best_full : best_partial;
            best = std::min(best, p.runtime_s);
        }
    }
    b.shape(oom96 && best_full < best_partial,
            "plain MPI memory-capped at 48; all-96-core hybrids fastest");
    return b.finish();
}

ScoreEntry score_fig2() {
    EntryBuilder b("Fig 2 (minikab scaling)");
    const auto series = run_fig2();
    double a64_384 = 0, ful_384 = 0;
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            if (p.cores != 384) continue;
            (s.system == "A64FX" ? a64_384 : ful_384) = p.runtime_s;
        }
    }
    b.shape(a64_384 > 0 && a64_384 < ful_384, "A64FX faster at matched 384 cores");
    return b.finish();
}

ScoreEntry score_table6() {
    EntryBuilder b("Table VI (Nekbone node)");
    double a64 = 0, a64_fast = 0;
    for (const auto& r : run_table6()) {
        b.point(r.paper_gflops, r.model_gflops);
        b.point(r.paper_fast, r.model_fast);
        if (r.system == "A64FX") {
            a64 = r.model_gflops;
            a64_fast = r.model_fast;
        }
    }
    b.shape(a64_fast > 1.5 * a64, "-Kfast speeds the A64FX up ~1.8x");
    return b.finish();
}

ScoreEntry score_fig3() {
    EntryBuilder b("Fig 3 (Nekbone cores)");
    bool archer_flattens = false, a64_scales = false;
    for (const auto& s : run_fig3()) {
        auto at = [&](int c) {
            for (std::size_t i = 0; i < s.cores.size(); ++i) {
                if (s.cores[i] == c) return s.mflops[i];
            }
            return -1.0;
        };
        if (s.system == "ARCHER") archer_flattens = at(12) < 2.0 * at(4);
        if (s.system == "A64FX") a64_scales = at(48) > 3.0 * at(12);
    }
    b.shape(archer_flattens && a64_scales,
            "IvyBridge saturates beyond 4 cores; A64FX keeps scaling");
    return b.finish();
}

ScoreEntry score_table7() {
    EntryBuilder b("Table VII (Nekbone PE)");
    bool all_high = true;
    for (const auto& r : run_table7()) {
        b.point(r.a64fx_paper, r.a64fx_model);
        b.point(r.fulhame_paper, r.fulhame_model);
        b.point(r.archer_paper, r.archer_model);
        all_high = all_high && r.a64fx_model >= 0.95 && r.fulhame_model >= 0.95 &&
                   r.archer_model >= 0.95;
    }
    b.shape(all_high, "all parallel efficiencies >= 0.95");
    return b.finish();
}

ScoreEntry score_fig4() {
    EntryBuilder b("Fig 4 (COSA scaling)");
    bool oom1 = false, lead_2_8 = true, crossover = false;
    double a64_16 = 0, ful_16 = 0;
    const auto series = run_fig4();
    const Fig4Series* a64 = nullptr;
    for (const auto& s : series) {
        if (s.system == "A64FX") a64 = &s;
    }
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            if (s.system == "A64FX") {
                if (p.nodes == 1) oom1 = !p.feasible;
                if (p.nodes == 16) a64_16 = p.runtime_s;
            } else {
                if (p.nodes >= 2 && p.nodes <= 8 && p.feasible && a64 != nullptr) {
                    for (const auto& ap : a64->points) {
                        if (ap.nodes == p.nodes && ap.runtime_s >= p.runtime_s) {
                            lead_2_8 = false;
                        }
                    }
                }
                if (s.system == "Fulhame" && p.nodes == 16) ful_16 = p.runtime_s;
            }
        }
    }
    crossover = ful_16 > 0 && ful_16 < a64_16;
    b.shape(oom1 && lead_2_8 && crossover,
            "OOM at 1 node; fastest 2-8; Fulhame overtakes at 16");
    return b.finish();
}

ScoreEntry score_table9() {
    EntryBuilder b("Table IX (CASTEP best node)");
    double a64 = 0, ngio = 0;
    for (const auto& r : run_table9()) {
        b.point(r.paper, r.model);
        if (r.system == "A64FX") a64 = r.model;
        if (r.system == "EPCC NGIO") ngio = r.model;
    }
    b.shape(ngio > a64, "Cascade Lake ahead of A64FX (early FFTW)");
    return b.finish();
}

ScoreEntry score_table10() {
    EntryBuilder b("Table X (OpenSBLI)");
    double a64_1 = 0, ful_1 = 0;
    for (const auto& r : run_table10()) {
        for (std::size_t i = 0; i < 4; ++i) b.point(r.paper[i], r.model[i]);
        if (r.system == "A64FX") a64_1 = r.model[0];
        if (r.system == "Fulhame") ful_1 = r.model[0];
    }
    b.shape(a64_1 > 2.0 * ful_1, "A64FX ~3x slower than ThunderX2 at 1 node");
    return b.finish();
}

struct ArtefactScorer {
    const char* name;  ///< stable cache-key config; never reuse across scorers
    ScoreEntry (*fn)();
};

constexpr ArtefactScorer kArtefacts[] = {
    {"table3", score_table3},   {"table4", score_table4},
    {"table5", score_table5},   {"fig1", score_fig1},
    {"fig2", score_fig2},       {"table6", score_table6},
    {"fig3", score_fig3},       {"table7", score_table7},
    {"fig4", score_fig4},       {"table9", score_table9},
    {"table10", score_table10},
};

} // namespace

int Scorecard::total_points() const {
    int n = 0;
    for (const auto& e : entries) n += e.points;
    return n;
}

int Scorecard::total_within_5pct() const {
    int n = 0;
    for (const auto& e : entries) n += e.within_5pct;
    return n;
}

int Scorecard::shapes_ok() const {
    int n = 0;
    for (const auto& e : entries) n += e.shape_ok ? 1 : 0;
    return n;
}

Scorecard compute_scorecard() {
    // The artefact list is itself a sweep: entries are independent pure
    // functions of the model, so they run concurrently on the --jobs pool
    // (each scorer's inner sweeps still share the memo cache) and whole
    // ScoreEntries persist in the disk cache under the "scorecard" app.
    std::vector<SweepPoint> pts;
    pts.reserve(std::size(kArtefacts));
    for (const auto& a : kArtefacts) {
        pts.push_back(sweep_point("scorecard", "all-systems", 0, 0, 0, a.name));
    }
    Scorecard card;
    card.entries = SweepRunner().run<ScoreEntry>(
        pts, [](const SweepPoint&, std::size_t i) { return kArtefacts[i].fn(); });
    return card;
}

std::string render_scorecard(const Scorecard& card) {
    util::Table t("Reproduction scorecard — every published value vs the model");
    t.header({"Artefact", "Points", "<5%", "<20%", "geomean model/paper", "worst err",
              "Shape finding", "OK"});
    for (const auto& e : card.entries) {
        t.row({e.artefact, std::to_string(e.points), std::to_string(e.within_5pct),
               std::to_string(e.within_20pct),
               e.points > 0 ? util::Table::num(e.geomean_ratio, 3) : "-",
               e.points > 0 ? util::format("%.1f%%", e.max_rel_err * 100.0) : "-",
               e.shape_note, e.shape_ok ? "yes" : "NO"});
    }
    std::string out = t.render();
    out += util::format(
        "\nTotals: %d/%d numeric points within 5%% of the paper; %d/%d qualitative"
        "\nfindings reproduced. (Anchored points are fitted; multi-node and sweep"
        "\npoints are predictions — see DESIGN.md 4.6.)\n",
        card.total_within_5pct(), card.total_points(), card.shapes_ok(),
        card.shapes_total());
    return out;
}

} // namespace armstice::core
