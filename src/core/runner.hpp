#pragma once
// SweepRunner — parallel experiment execution with a memoizing point cache.
//
// Every experiment in this repo is a sweep: evaluate a pure function of a
// (system, nodes, ranks, threads, app-config) point for many points. The
// engine stack is side-effect-free (`Engine::run` is const; see the
// thread-safety note in sim/engine.hpp), so points can run concurrently.
// SweepRunner executes a vector of points on a fixed-size util::ThreadPool
// with *deterministic result ordering*: results land by point index, never
// by completion order, so `--jobs 8` output is byte-identical to `--jobs 1`.
//
// Repeated points are computed once. The process-global memo cache is keyed
// by the result type plus SweepPoint::key(); the bench binaries that rerun
// overlapping sweeps (the scorecard reruns every artefact, google-benchmark
// reruns sweeps per iteration) hit the cache instead of re-simulating.
// Cache and execution counters are surfaced in every bench footer
// (sweep_footer()).

#include <any>
#include <cstddef>
#include <functional>
#include <string>
#include <typeinfo>
#include <vector>

namespace armstice::core {

/// Stable descriptor of one sweep point. `config` must canonically encode
/// every app parameter that can affect the result — the cache key is built
/// from all fields plus the result type, and two points with equal keys are
/// assumed interchangeable.
struct SweepPoint {
    std::string app;     ///< model family tag, e.g. "minikab"
    std::string system;  ///< arch::SystemSpec name
    int nodes = 1;
    int ranks = 0;  ///< 0 when the app derives ranks itself (e.g. per-core)
    int threads = 1;
    std::string config;  ///< canonical app-specific parameters

    [[nodiscard]] std::string key() const;
};

/// Convenience builder used by experiment/bench sweep loops.
SweepPoint sweep_point(std::string app, std::string system, int nodes, int ranks,
                       int threads, std::string config);

/// Process-wide execution and cache counters (all SweepRunner instances).
struct SweepStats {
    long points = 0;        ///< points requested through SweepRunner::run
    long hits = 0;          ///< served from the memo cache (incl. in-batch dups)
    long misses = 0;        ///< points actually evaluated
    double eval_wall_s = 0; ///< per-point evaluation wall time, summed
    double batch_wall_s = 0;///< elapsed wall time of the run() batches
    int jobs = 1;           ///< pool size of the most recent run

    [[nodiscard]] double hit_rate() const {
        return points > 0 ? static_cast<double>(hits) / static_cast<double>(points)
                          : 0.0;
    }
};

/// Default pool size for new SweepRunners: the value installed by
/// set_default_jobs (bench `--jobs N`), else the ARMSTICE_JOBS environment
/// variable, else 1 (serial — callers never pay thread startup unasked).
int default_jobs();
void set_default_jobs(int jobs);

SweepStats sweep_stats();
/// One-line human-readable summary of sweep_stats() for bench footers.
std::string sweep_footer();
/// Drop the memo cache and zero the counters (tests).
void reset_sweep_cache();

namespace detail {
/// Type-erased core: fills results[i] for every i, evaluating each unique
/// uncached key exactly once on a pool of `jobs` threads.
void run_points(const std::vector<std::string>& keys,
                const std::function<std::any(std::size_t)>& eval,
                std::vector<std::any>& results, int jobs);
} // namespace detail

class SweepRunner {
public:
    explicit SweepRunner(int jobs = default_jobs()) : jobs_(jobs < 1 ? 1 : jobs) {}

    [[nodiscard]] int jobs() const { return jobs_; }

    /// Evaluate every point, concurrently on up to jobs() pool threads.
    /// `eval` is called as eval(points[i], i) and must be thread-safe and a
    /// pure function of that point (the index only selects pre-built
    /// configs). Results land by index; exceptions from evaluations are
    /// rethrown after the batch drains.
    template <class R>
    std::vector<R> run(const std::vector<SweepPoint>& points,
                       const std::function<R(const SweepPoint&, std::size_t)>& eval) const {
        std::vector<std::string> keys;
        keys.reserve(points.size());
        for (const auto& p : points) {
            keys.push_back(std::string(typeid(R).name()) + '|' + p.key());
        }
        std::vector<std::any> raw(points.size());
        detail::run_points(
            keys, [&](std::size_t i) { return std::any(eval(points[i], i)); }, raw,
            jobs_);
        std::vector<R> out;
        out.reserve(points.size());
        for (auto& v : raw) out.push_back(std::any_cast<R>(std::move(v)));
        return out;
    }

private:
    int jobs_;
};

} // namespace armstice::core
