#pragma once
// SweepRunner — parallel experiment execution with a memoizing point cache.
//
// Every experiment in this repo is a sweep: evaluate a pure function of a
// (system, nodes, ranks, threads, app-config) point for many points. The
// engine stack is side-effect-free (`Engine::run` is const; see the
// thread-safety note in sim/engine.hpp), so points can run concurrently.
// SweepRunner executes a vector of points on a fixed-size util::ThreadPool
// with *deterministic result ordering*: results land by point index, never
// by completion order, so `--jobs 8` output is byte-identical to `--jobs 1`.
//
// Repeated points are computed once. The process-global memo cache is keyed
// by a stable result-type tag (core/cache_codec.hpp) plus SweepPoint::key();
// the bench binaries that rerun overlapping sweeps (the scorecard reruns
// every artefact, google-benchmark reruns sweeps per iteration) hit the
// cache instead of re-simulating. When a persistent cache directory is
// installed (core/cache.hpp, bench --cache-dir / ARMSTICE_CACHE), memo
// misses additionally probe the on-disk store before evaluating, and fresh
// results are flushed back — so overlapping points are shared across
// *processes*, e.g. `for b in build/bench/*; do $b --cache-dir .cache; done`.
// Cache and execution counters are surfaced in every bench footer
// (sweep_footer()).

#include "core/cache_codec.hpp"

#include <any>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace armstice::core {

/// Stable descriptor of one sweep point. `config` must canonically encode
/// every app parameter that can affect the result — the cache key is built
/// from all fields plus the result type, and two points with equal keys are
/// assumed interchangeable.
struct SweepPoint {
    std::string app;     ///< model family tag, e.g. "minikab"
    std::string system;  ///< arch::SystemSpec name
    int nodes = 1;
    int ranks = 0;  ///< 0 when the app derives ranks itself (e.g. per-core)
    int threads = 1;
    std::string config;  ///< canonical app-specific parameters

    [[nodiscard]] std::string key() const;
};

/// Convenience builder used by experiment/bench sweep loops.
SweepPoint sweep_point(std::string app, std::string system, int nodes, int ranks,
                       int threads, std::string config);

inline bool operator==(const SweepPoint& a, const SweepPoint& b) {
    return a.app == b.app && a.system == b.system && a.nodes == b.nodes &&
           a.ranks == b.ranks && a.threads == b.threads && a.config == b.config;
}

/// SweepPoints round-trip through the same codec machinery as results
/// (exercised by the cache fuzz tests); sweeps themselves never need it.
template <>
struct ResultTraits<SweepPoint> {
    static constexpr const char* tag = "sweep-point";
    static void encode(util::ByteWriter& w, const SweepPoint& p) {
        w.str(p.app);
        w.str(p.system);
        w.i32(p.nodes);
        w.i32(p.ranks);
        w.i32(p.threads);
        w.str(p.config);
    }
    static SweepPoint decode(util::ByteReader& r) {
        SweepPoint p;
        p.app = r.str();
        p.system = r.str();
        p.nodes = r.i32();
        p.ranks = r.i32();
        p.threads = r.i32();
        p.config = r.str();
        return p;
    }
};

/// Process-wide execution and cache counters (all SweepRunner instances).
struct SweepStats {
    long points = 0;        ///< points requested through SweepRunner::run
    long hits = 0;          ///< served from the memo cache (incl. in-batch dups)
    long disk_hits = 0;     ///< memo misses served from the persistent cache
    long disk_misses = 0;   ///< disk probes that found nothing usable
    long disk_stores = 0;   ///< fresh results flushed to the persistent cache
    long misses = 0;        ///< points actually evaluated
    double eval_wall_s = 0; ///< per-point evaluation wall time, summed
    double batch_wall_s = 0;///< elapsed wall time of the run() batches
    int jobs = 1;           ///< pool size of the most recent run

    [[nodiscard]] double hit_rate() const {
        return points > 0
                   ? static_cast<double>(hits + disk_hits) / static_cast<double>(points)
                   : 0.0;
    }
    /// Fraction of persistent-cache probes that hit (the second identical
    /// bench run should report ~100% here).
    [[nodiscard]] double disk_hit_rate() const {
        const long probes = disk_hits + disk_misses;
        return probes > 0
                   ? static_cast<double>(disk_hits) / static_cast<double>(probes)
                   : 0.0;
    }
};

/// Per-batch observation/cancellation hooks (the serving layer's window
/// into a running batch; plain batch callers leave both empty).
struct RunHooks {
    /// Fired once per point, as soon as that point's result exists: memo and
    /// in-batch-duplicate hits fire during batch setup, disk hits after the
    /// probe, evaluated points the moment evaluation returns — before the
    /// persistent-cache flush, so a streaming consumer is never blocked on
    /// disk I/O. May be invoked concurrently from pool threads; the value
    /// reference is only valid for the duration of the call.
    std::function<void(std::size_t index, const std::any& value)> on_result;

    /// Polled before each evaluation (cheap; called from pool threads).
    /// Returning true abandons the batch: not-yet-started evaluations are
    /// skipped and run() throws util::CancelledError once in-progress
    /// evaluations drain. Results already produced stay cached (and were
    /// already delivered through on_result).
    std::function<bool()> cancelled;
};

/// Default pool size for new SweepRunners: the value installed by
/// set_default_jobs (bench `--jobs N`), else the ARMSTICE_JOBS environment
/// variable, else 1 (serial — callers never pay thread startup unasked).
int default_jobs();
void set_default_jobs(int jobs);

SweepStats sweep_stats();
/// One-line human-readable summary of sweep_stats() for bench footers.
std::string sweep_footer();
/// Drop the memo cache and zero the counters (tests).
void reset_sweep_cache();

namespace detail {

/// Type-erased codec bridging one result type R to the persistent cache:
/// encode packs a std::any holding R into bytes; decode unpacks (returning
/// an empty any when the payload is damaged). nullptr codec = memory-only.
struct AnyCodec {
    std::string (*encode)(const std::any&);
    std::any (*decode)(const std::string&);
};

/// The singleton codec for R, or nullptr when R has no disk codec.
template <class R>
const AnyCodec* codec_for() {
    if constexpr (DiskCacheable<R>) {
        static const AnyCodec codec{
            [](const std::any& v) {
                util::ByteWriter w;
                ResultTraits<R>::encode(w, std::any_cast<const R&>(v));
                return w.take();
            },
            [](const std::string& payload) {
                util::ByteReader r(payload);
                R v = ResultTraits<R>::decode(r);
                // Reject short payloads and trailing garbage alike: either
                // means the bytes do not describe exactly one R.
                if (!r.at_end()) return std::any();
                return std::any(std::move(v));
            }};
        return &codec;
    } else {
        return nullptr;
    }
}

/// Type-erased core: fills results[i] for every i, evaluating each unique
/// uncached key exactly once on a pool of `jobs` threads. `codec`, when
/// non-null, enables the persistent-cache load/store hooks for this batch.
/// `hooks` (nullable) adds per-point result streaming and cancellation.
void run_points(const std::vector<std::string>& keys,
                const std::function<std::any(std::size_t)>& eval,
                std::vector<std::any>& results, int jobs, const AnyCodec* codec,
                const RunHooks* hooks = nullptr);

} // namespace detail

class SweepRunner {
public:
    explicit SweepRunner(int jobs = default_jobs()) : jobs_(jobs < 1 ? 1 : jobs) {}

    [[nodiscard]] int jobs() const { return jobs_; }

    /// Evaluate every point, concurrently on up to jobs() pool threads.
    /// `eval` is called as eval(points[i], i) and must be thread-safe and a
    /// pure function of that point (the index only selects pre-built
    /// configs). Results land by index; exceptions from evaluations are
    /// rethrown after the batch drains.
    template <class R>
    std::vector<R> run(const std::vector<SweepPoint>& points,
                       const std::function<R(const SweepPoint&, std::size_t)>& eval) const {
        return run<R>(points, eval, RunHooks{});
    }

    /// As above, with per-point streaming / cancellation hooks. `hooks` is
    /// only referenced for the duration of the call; on_result receives the
    /// result as a `const std::any&` holding an R.
    template <class R>
    std::vector<R> run(const std::vector<SweepPoint>& points,
                       const std::function<R(const SweepPoint&, std::size_t)>& eval,
                       const RunHooks& hooks) const {
        static_assert(TaggedResult<R>,
                      "every SweepRunner result type needs a ResultTraits<R> "
                      "specialisation with a stable tag (core/cache_codec.hpp); "
                      "typeid names are compiler-specific and cannot key the "
                      "on-disk cache");
        std::vector<std::string> keys;
        keys.reserve(points.size());
        for (const auto& p : points) {
            keys.push_back(std::string(ResultTraits<R>::tag) + '|' + p.key());
        }
        std::vector<std::any> raw(points.size());
        const bool have_hooks = hooks.on_result || hooks.cancelled;
        detail::run_points(
            keys, [&](std::size_t i) { return std::any(eval(points[i], i)); }, raw,
            jobs_, detail::codec_for<R>(), have_hooks ? &hooks : nullptr);
        std::vector<R> out;
        out.reserve(points.size());
        for (auto& v : raw) out.push_back(std::any_cast<R>(std::move(v)));
        return out;
    }

private:
    int jobs_;
};

} // namespace armstice::core
