#include "core/cache.hpp"

#include "arch/cost_model.hpp"
#include "util/fileio.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"
#include "util/str.hpp"

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

namespace armstice::core {
namespace {

constexpr char kMagic[4] = {'A', 'R', 'M', 'C'};

// The global store is swapped atomically under its own mutex; SweepRunner
// grabs the pointer once per batch. Stores are kept alive (leaked into this
// vector) for the process lifetime so a concurrent batch never races a
// set_cache_dir teardown.
std::mutex g_store_mu;
CacheStore* g_store = nullptr;
std::vector<std::unique_ptr<CacheStore>>& retired_stores() {
    static std::vector<std::unique_ptr<CacheStore>> v;
    return v;
}

} // namespace

CacheStore::CacheStore(std::string dir, std::uint32_t model_version)
    : dir_(std::move(dir)), model_version_(model_version) {}

std::string CacheStore::path_for(const std::string& key) const {
    return dir_ + "/" + util::format("%016llx",
                                     static_cast<unsigned long long>(util::fnv1a(key))) +
           ".armc";
}

std::optional<std::string> CacheStore::load(const std::string& key) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.probes;
    }
    const std::string path = path_for(key);
    const auto bytes = util::read_file(path);
    if (!bytes) return std::nullopt;  // plain miss: no entry on disk

    // Every validation failure from here on is a *damaged or stale* entry:
    // log it, count it, miss.
    const auto reject = [&](const char* why) -> std::optional<std::string> {
        util::log_warn(util::format("cache: ignoring %s (%s)", path.c_str(), why));
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected;
        return std::nullopt;
    };

    util::ByteReader r(*bytes);
    char magic[4] = {};
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (!r.ok() || std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
        return reject("bad magic");
    }
    if (r.u32() != kFormatVersion) return reject("cache format version mismatch");
    if (r.u32() != model_version_) return reject("model version mismatch");
    const std::string stored_key = r.str();
    if (!r.ok()) return reject("truncated header");
    if (stored_key != key) return reject("key mismatch (hash collision or wrong type)");
    const std::uint64_t checksum = r.u64();
    std::string payload = r.str();
    if (!r.ok() || !r.at_end()) return reject("truncated or oversized payload");
    if (util::fnv1a(payload) != checksum) return reject("payload checksum mismatch");

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.hits;
    return payload;
}

bool CacheStore::store(const std::string& key, const std::string& payload) {
    util::ByteWriter w;
    for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u32(kFormatVersion);
    w.u32(model_version_);
    w.str(key);
    w.u64(util::fnv1a(payload));
    w.str(payload);

    const std::string path = path_for(key);
    const bool ok = util::write_file_atomic(path, w.data());
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
        ++stats_.stores;
    } else {
        ++stats_.store_failures;
        util::log_warn("cache: could not write " + path);
    }
    return ok;
}

CacheStoreStats CacheStore::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void set_cache_dir(const std::string& dir) {
    std::lock_guard<std::mutex> lock(g_store_mu);
    if (dir.empty()) {
        g_store = nullptr;
        return;
    }
    if (!util::ensure_dir(dir)) {
        util::log_warn("cache: cannot create cache dir " + dir +
                       "; disk caching disabled");
        g_store = nullptr;
        return;
    }
    // Old stores stay alive in retired_stores(): a concurrent sweep batch may
    // still hold the previous pointer.
    retired_stores().push_back(std::make_unique<CacheStore>(dir, arch::kModelVersion));
    g_store = retired_stores().back().get();
}

std::string cache_dir() {
    std::lock_guard<std::mutex> lock(g_store_mu);
    return g_store != nullptr ? g_store->dir() : std::string();
}

CacheStore* cache_store() {
    std::lock_guard<std::mutex> lock(g_store_mu);
    return g_store;
}

} // namespace armstice::core
