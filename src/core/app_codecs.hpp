#pragma once
// ResultTraits specialisations (core/cache_codec.hpp) for every application
// result type that flows through SweepRunner — these are what make the
// paper's sweeps persistently cacheable. Include this header in EVERY
// translation unit that instantiates SweepRunner::run with one of these
// types (experiments.cpp, score.cpp, the ext benches via bench_common.hpp,
// the cache tests): the tag and codec must be identical everywhere.
//
// Layout-change rule: any field added to / removed from AppResult,
// sim::RunResult, sim::RankStats, HpcgOutcome, CastepOutcome or ScoreEntry
// must bump the corresponding tag (e.g. "app-result" -> "app-result2");
// stale on-disk entries then miss by key instead of decoding garbage.

#include "apps/castep/castep.hpp"
#include "apps/common.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "core/cache_codec.hpp"
#include "core/score.hpp"
#include "sim/engine.hpp"

#include <cstdint>
#include <utility>

namespace armstice::core {
namespace codec_detail {

inline void encode_run_result(util::ByteWriter& w, const sim::RunResult& r) {
    w.f64(r.makespan);
    w.f64(r.total_flops);
    w.u32(static_cast<std::uint32_t>(r.ranks.size()));
    for (const auto& rs : r.ranks) {
        w.f64(rs.finish);
        w.f64(rs.compute);
        w.f64(rs.recv_wait);
        w.f64(rs.collective_wait);
        w.f64(rs.injected_bytes);
        w.i32(rs.msgs_sent);
        w.i32(rs.msgs_received);
    }
    w.u32(static_cast<std::uint32_t>(r.phase_compute.size()));
    for (const auto& [label, seconds] : r.phase_compute) {  // std::map: sorted
        w.str(label);
        w.f64(seconds);
    }
}

inline sim::RunResult decode_run_result(util::ByteReader& r) {
    sim::RunResult out;
    out.makespan = r.f64();
    out.total_flops = r.f64();
    const std::uint32_t nranks = r.u32();
    // Guard the reserve: a corrupt count must not balloon allocation. Each
    // rank costs exactly 48 payload bytes, so remaining() bounds the count.
    if (static_cast<std::uint64_t>(nranks) * 48 > r.remaining()) {
        r.invalidate();
        return out;
    }
    out.ranks.reserve(nranks);
    for (std::uint32_t i = 0; i < nranks && r.ok(); ++i) {
        sim::RankStats rs;
        rs.finish = r.f64();
        rs.compute = r.f64();
        rs.recv_wait = r.f64();
        rs.collective_wait = r.f64();
        rs.injected_bytes = r.f64();
        rs.msgs_sent = r.i32();
        rs.msgs_received = r.i32();
        out.ranks.push_back(rs);
    }
    const std::uint32_t nphases = r.u32();
    for (std::uint32_t i = 0; i < nphases && r.ok(); ++i) {
        std::string label = r.str();
        const double seconds = r.f64();
        out.phase_compute.emplace(std::move(label), seconds);
    }
    return out;
}

inline void encode_app_result(util::ByteWriter& w, const apps::AppResult& v) {
    w.boolean(v.feasible);
    w.str(v.note);
    w.f64(v.seconds);
    w.f64(v.gflops);
    encode_run_result(w, v.run);
}

inline apps::AppResult decode_app_result(util::ByteReader& r) {
    apps::AppResult v;
    v.feasible = r.boolean();
    v.note = r.str();
    v.seconds = r.f64();
    v.gflops = r.f64();
    v.run = decode_run_result(r);
    return v;
}

} // namespace codec_detail

template <>
struct ResultTraits<apps::AppResult> {
    static constexpr const char* tag = "app-result";
    static void encode(util::ByteWriter& w, const apps::AppResult& v) {
        codec_detail::encode_app_result(w, v);
    }
    static apps::AppResult decode(util::ByteReader& r) {
        return codec_detail::decode_app_result(r);
    }
};

template <>
struct ResultTraits<apps::HpcgOutcome> {
    static constexpr const char* tag = "hpcg-outcome";
    static void encode(util::ByteWriter& w, const apps::HpcgOutcome& v) {
        codec_detail::encode_app_result(w, v.res);
        w.f64(v.pct_peak);
    }
    static apps::HpcgOutcome decode(util::ByteReader& r) {
        apps::HpcgOutcome v;
        v.res = codec_detail::decode_app_result(r);
        v.pct_peak = r.f64();
        return v;
    }
};

template <>
struct ResultTraits<apps::CastepOutcome> {
    static constexpr const char* tag = "castep-outcome";
    static void encode(util::ByteWriter& w, const apps::CastepOutcome& v) {
        codec_detail::encode_app_result(w, v.res);
        w.f64(v.scf_cycles_per_s);
    }
    static apps::CastepOutcome decode(util::ByteReader& r) {
        apps::CastepOutcome v;
        v.res = codec_detail::decode_app_result(r);
        v.scf_cycles_per_s = r.f64();
        return v;
    }
};

template <>
struct ResultTraits<ScoreEntry> {
    static constexpr const char* tag = "score-entry";
    static void encode(util::ByteWriter& w, const ScoreEntry& v) {
        w.str(v.artefact);
        w.i32(v.points);
        w.i32(v.within_5pct);
        w.i32(v.within_20pct);
        w.f64(v.geomean_ratio);
        w.f64(v.max_rel_err);
        w.boolean(v.shape_ok);
        w.str(v.shape_note);
    }
    static ScoreEntry decode(util::ByteReader& r) {
        ScoreEntry v;
        v.artefact = r.str();
        v.points = r.i32();
        v.within_5pct = r.i32();
        v.within_20pct = r.i32();
        v.geomean_ratio = r.f64();
        v.max_rel_err = r.f64();
        v.shape_ok = r.boolean();
        v.shape_note = r.str();
        return v;
    }
};

} // namespace armstice::core
