#pragma once
// Stable result-type tags and binary codecs for the sweep memo cache.
//
// The memo cache (core/runner.hpp) and the persistent on-disk cache
// (core/cache.hpp) key every entry by *result type* plus SweepPoint::key().
// typeid(R).name() is useless for an on-disk format — it is mangled,
// compiler-specific and allowed to change between toolchains — so every
// result type R that flows through SweepRunner::run<R> declares a
// ResultTraits<R> specialisation with a short, hand-picked, never-reused
// `tag` string. Types that additionally provide encode/decode (the
// DiskCacheable concept) get persisted by CacheStore; tag-only types stay
// memory-cached.
//
// Codec contract: decode(encode(x)) == x field-for-field (doubles bit-exact
// via util::ByteWriter::f64), and decode of a damaged buffer leaves the
// reader's fail flag set rather than throwing — the cache loader turns that
// into a miss. Bump the tag (e.g. "res" -> "res2") when a struct's layout
// changes; old entries then simply stop matching.
//
// Specialisations for the apps::* result structs live in core/app_codecs.hpp
// (this header stays app-independent so lower layers can use it).

#include "util/serialize.hpp"

#include <concepts>
#include <cstdint>
#include <string>

namespace armstice::core {

/// Primary template — intentionally undefined. Specialise for every result
/// type handed to SweepRunner::run<R>:
///
///   template <> struct ResultTraits<MyResult> {
///       static constexpr const char* tag = "myresult";
///       static void encode(util::ByteWriter& w, const MyResult& v);  // optional
///       static MyResult decode(util::ByteReader& r);                 // optional
///   };
template <class R>
struct ResultTraits;

/// Result types whose traits also provide a binary codec; only these are
/// eligible for the persistent on-disk cache.
template <class R>
concept DiskCacheable = requires(util::ByteWriter& w, util::ByteReader& r, const R& v) {
    { ResultTraits<R>::encode(w, v) };
    { ResultTraits<R>::decode(r) } -> std::same_as<R>;
};

/// Result types with at least a stable tag (the minimum to run a sweep).
template <class R>
concept TaggedResult = requires {
    { ResultTraits<R>::tag } -> std::convertible_to<const char*>;
};

// ---- built-in scalar/string codecs (tests, ext benches) --------------------

template <>
struct ResultTraits<int> {
    static constexpr const char* tag = "i32";
    static void encode(util::ByteWriter& w, int v) { w.i32(v); }
    static int decode(util::ByteReader& r) { return r.i32(); }
};

template <>
struct ResultTraits<long> {
    static constexpr const char* tag = "i64";
    static void encode(util::ByteWriter& w, long v) {
        w.i64(static_cast<std::int64_t>(v));
    }
    static long decode(util::ByteReader& r) { return static_cast<long>(r.i64()); }
};

template <>
struct ResultTraits<double> {
    static constexpr const char* tag = "f64";
    static void encode(util::ByteWriter& w, double v) { w.f64(v); }
    static double decode(util::ByteReader& r) { return r.f64(); }
};

template <>
struct ResultTraits<std::string> {
    static constexpr const char* tag = "str";
    static void encode(util::ByteWriter& w, const std::string& v) { w.str(v); }
    static std::string decode(util::ByteReader& r) { return r.str(); }
};

} // namespace armstice::core
