#pragma once
// CacheStore — the persistent on-disk sweep-result cache.
//
// One file per cache entry, named by the FNV-1a hash of the full cache key
// (`<result tag>|<SweepPoint::key()>`), in a flat directory chosen via
// `--cache-dir` / ARMSTICE_CACHE. Each file carries, in order: a magic,
// a cache *format* version, the arch::kModelVersion *model* stamp, the full
// key (hash collisions and wrong-type lookups verify against it), and a
// checksummed payload produced by the result type's codec
// (core/cache_codec.hpp).
//
// Robustness contract (tested by tests/cache/test_cache_corruption.cpp):
// a load can fail for any reason — missing file, truncation, garbage bytes,
// stale format/model version, key/type mismatch, bad checksum — and every
// failure is a cache MISS with a logged warning, never an exception and
// never a wrong result. Writes go through util::write_file_atomic (unique
// temp file + rename), so any number of concurrent bench processes can share
// one cache directory: readers observe complete files only, and concurrent
// writers of the same key write identical bytes (results are deterministic),
// making last-writer-wins harmless.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace armstice::core {

/// Per-store disk-cache counters (all monotone).
struct CacheStoreStats {
    long probes = 0;    ///< load() calls
    long hits = 0;      ///< loads that returned a payload
    long rejected = 0;  ///< files present but unreadable/corrupt/stale
    long stores = 0;    ///< entries written
    long store_failures = 0;

    [[nodiscard]] double hit_rate() const {
        return probes > 0 ? static_cast<double>(hits) / static_cast<double>(probes)
                          : 0.0;
    }
};

class CacheStore {
public:
    /// `model_version` defaults to arch::kModelVersion at the call site
    /// (core/runner.cpp); tests inject other stamps to exercise invalidation.
    CacheStore(std::string dir, std::uint32_t model_version);

    [[nodiscard]] const std::string& dir() const { return dir_; }
    [[nodiscard]] std::uint32_t model_version() const { return model_version_; }

    /// Load the payload stored under `key`; nullopt on any miss. Damaged or
    /// stale files are logged at warn level and reported as misses.
    [[nodiscard]] std::optional<std::string> load(const std::string& key);

    /// Atomically persist `payload` under `key`. Returns false (logged) on
    /// I/O failure — callers treat the store as best-effort.
    bool store(const std::string& key, const std::string& payload);

    /// Full path of the entry file a key maps to (exposed for tests that
    /// corrupt entries in place).
    [[nodiscard]] std::string path_for(const std::string& key) const;

    [[nodiscard]] CacheStoreStats stats() const;

    /// On-disk format version; bump when the entry layout changes.
    static constexpr std::uint32_t kFormatVersion = 1;

private:
    std::string dir_;
    std::uint32_t model_version_;
    mutable std::mutex mu_;
    CacheStoreStats stats_;
};

/// Install / clear the process-global store used by SweepRunner. An empty
/// dir disables disk caching; a dir that cannot be created logs a warning
/// and disables it. Thread-safe; typically called once from benchx::init.
void set_cache_dir(const std::string& dir);

/// Directory of the installed store ("" when disk caching is off).
std::string cache_dir();

/// The installed store, or nullptr when disk caching is off. The pointer
/// stays valid until the next set_cache_dir call.
CacheStore* cache_store();

} // namespace armstice::core
