#include "sim/check.hpp"

#include "arch/phase.hpp"
#include "sim/deadlock.hpp"
#include "sim/ref_engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/threadpool.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <functional>
#include <optional>
#include <utility>

namespace armstice::sim::check {
namespace {

bool bits_eq(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

std::string double_diff(const std::string& what, double a, double b) {
    return util::format("%s differs: %.17g vs %.17g", what.c_str(), a, b);
}

} // namespace

GeneratedCase generate(std::uint64_t seed, const GenConfig& cfg) {
    util::Rng rng(seed);
    GeneratedCase gc;
    gc.deadlock = cfg.deadlock;
    const int ranks =
        cfg.ranks > 0 ? cfg.ranks : 4 + static_cast<int>(rng.next_below(29));
    gc.ranks = ranks;
    gc.programs.resize(static_cast<std::size_t>(ranks));
    auto& progs = gc.programs;
    const auto prog = [&](int r) -> Program& {
        return progs[static_cast<std::size_t>(r)];
    };
    const int rounds =
        cfg.rounds > 0 ? cfg.rounds : 3 + static_cast<int>(rng.next_below(8));

    const auto compute_round = [&](int round) {
        // Occasionally open a MarkOp region so the mark-overrides-label rule
        // is exercised (it persists for the rest of the program, like a real
        // instrumented region entered and never closed).
        const bool marked = rng.next_below(6) == 0;
        for (int r = 0; r < ranks; ++r) {
            arch::ComputePhase phase;
            phase.label = "fuzz";
            phase.flops = rng.uniform(1e6, 1e9);
            phase.main_bytes = rng.uniform(1e4, 1e8);
            phase.pattern = static_cast<arch::MemPattern>(rng.next_below(3));
            gc.total_flops += phase.flops;
            if (marked) prog(r).mark(round % 2 ? "check-odd" : "check-even");
            prog(r).compute(phase);
        }
    };

    for (int round = 0; round < rounds; ++round) {
        std::uint64_t kind = rng.next_below(8);
        if (kind == 4 && (!cfg.allow_sendrecv || ranks < 2)) kind = 3;
        if (kind == 5 && !cfg.allow_any_source) kind = 3;
        if (kind == 7 && (!cfg.allow_sendrecv || ranks < 2)) kind = 3;
        switch (kind) {
            case 0: {  // world allreduce
                const double bytes = rng.uniform(8, 1e5);
                for (int r = 0; r < ranks; ++r) prog(r).allreduce(bytes);
                break;
            }
            case 1: {  // barrier or alltoall
                if (rng.next_below(2) == 0) {
                    for (int r = 0; r < ranks; ++r) prog(r).barrier();
                } else {
                    const double bytes = rng.uniform(8, 1e4);
                    for (int r = 0; r < ranks; ++r) prog(r).alltoall(bytes);
                }
                break;
            }
            case 2: {  // ring shift: send to successor, receive from predecessor
                const double bytes = rng.uniform(1, 1e6);
                for (int r = 0; r < ranks; ++r) {
                    prog(r).send((r + 1) % ranks, bytes, round);
                }
                for (int r = 0; r < ranks; ++r) {
                    prog(r).recv((r + ranks - 1) % ranks, round);
                }
                break;
            }
            case 4: {  // crossing mixed-tag pairs: both directions consume
                       // their two messages in reverse send order, exercising
                       // the per-source first-tag-match scan and erase path.
                const double b1 = rng.uniform(1, 1e6);
                const double b2 = rng.uniform(1, 1e6);
                const int ta = 4 * round + 100;
                const int tb = ta + 1;
                const int tc = ta + 2;
                const int td = ta + 3;
                for (int r = 0; r + 1 < ranks; r += 2) {
                    const int p = r + 1;
                    prog(r).send(p, b1, ta).send(p, b2, tb);
                    prog(p).send(r, b2, tc).send(r, b1, td);
                    prog(r).recv(p, td).recv(p, tc);
                    prog(p).recv(r, tb).recv(r, ta);
                }
                break;
            }
            case 5: {  // ANY_SOURCE funnel: everyone reports to a root, the
                       // root replies to each reporter.
                const int root = static_cast<int>(rng.next_below(ranks));
                const double bytes = rng.uniform(64, 1e5);
                for (int r = 0; r < ranks; ++r) {
                    if (r != root) prog(r).send(root, bytes, round);
                }
                for (int i = 0; i + 1 < ranks; ++i) {
                    prog(root).recv(kAnySource, round);
                }
                for (int r = 0; r < ranks; ++r) {
                    if (r != root) {
                        prog(root).send(r, 128.0, round + 1000);
                        prog(r).recv(root, round + 1000);
                    }
                }
                break;
            }
            case 6: {  // SPMD compute: every rank runs the identical phase,
                       // so ProgramBundle::from dedups the programs and the
                       // engine's rank-equivalence collapse (DESIGN.md §11)
                       // gets multi-member classes to split — the bundle
                       // differentials in check_case exercise exactly that.
                arch::ComputePhase phase;
                phase.label = "fuzz-spmd";
                phase.flops = rng.uniform(1e6, 1e9);
                phase.main_bytes = rng.uniform(1e4, 1e8);
                phase.pattern = static_cast<arch::MemPattern>(rng.next_below(3));
                for (int r = 0; r < ranks; ++r) {
                    gc.total_flops += phase.flops;
                    prog(r).compute(phase);
                }
                break;
            }
            case 7: {  // relative-addressed halo (DESIGN.md §11.4): a 1D or
                       // 2D grid/torus exchange emitted as send_rel/recv_rel,
                       // the exact form simmpi::halo_exchange produces (sim
                       // cannot link simmpi, so the shape is rebuilt here).
                       // Interior ranks end up structurally identical, so the
                       // bundle differentials below drive the engine's merged
                       // relative-p2p machinery — grouped boundary splits,
                       // blocked partial matches, quiescence resolution —
                       // against RefEngine, collapse-off and the perturbed
                       // schedules.
                const bool periodic = rng.next_below(2) == 0;
                const double bytes = rng.uniform(1, 1e6);
                const int tag = 2000 + round;
                int cols = 1;  // largest divisor <= sqrt(ranks), else 1D
                if (rng.next_below(2) == 0) {
                    for (int d = 2; d * d <= ranks; ++d) {
                        if (ranks % d == 0) cols = d;
                    }
                }
                const int rows = ranks / cols;
                std::vector<std::vector<int>> nbrs(
                    static_cast<std::size_t>(ranks));
                const auto wrap = [&](int v, int extent) {
                    if (v >= 0 && v < extent) return v;
                    return periodic ? (v + extent) % extent : -1;
                };
                for (int r = 0; r < ranks; ++r) {
                    const int x = r % cols;
                    const int y = r / cols;
                    auto& out = nbrs[static_cast<std::size_t>(r)];
                    for (int dir : {-1, +1}) {
                        if (cols > 1) {
                            const int xx = wrap(x + dir, cols);
                            if (xx >= 0 && y * cols + xx != r) {
                                out.push_back(y * cols + xx);
                            }
                        }
                        if (rows > 1) {
                            const int yy = wrap(y + dir, rows);
                            if (yy >= 0 && yy * cols + x != r) {
                                out.push_back(yy * cols + x);
                            }
                        }
                    }
                    // Periodic extents of 2 reach the same neighbour twice.
                    std::sort(out.begin(), out.end());
                    out.erase(std::unique(out.begin(), out.end()), out.end());
                }
                for (int r = 0; r < ranks; ++r) {
                    for (int nb : nbrs[static_cast<std::size_t>(r)]) {
                        prog(r).send_rel(nb - r, bytes, tag);
                    }
                }
                for (int r = 0; r < ranks; ++r) {
                    for (int nb : nbrs[static_cast<std::size_t>(r)]) {
                        prog(r).recv_rel(nb - r, tag);
                    }
                }
                break;
            }
            default:
                compute_round(round);
                break;
        }
    }

    // Planted faults go after the normal rounds, so the fault is the only
    // reason the case can stall. Tags 777/888 are reserved for them.
    switch (cfg.deadlock) {
        case DeadlockKind::none:
            break;
        case DeadlockKind::unmatched_recv: {
            const int victim = static_cast<int>(rng.next_below(ranks));
            const int culprit = (victim + 1) % ranks;
            prog(victim).recv(culprit, 777);
            gc.planted_culprit = culprit;
            gc.note = util::format(
                "rank %d receives (src=%d, tag=777) that is never sent", victim,
                culprit);
            break;
        }
        case DeadlockKind::recv_cycle: {
            ARMSTICE_CHECK(ranks >= 3, "recv_cycle needs >= 3 ranks");
            prog(0).recv(1, 888).send(2, 1024, 888);
            prog(1).recv(2, 888).send(0, 1024, 888);
            prog(2).recv(0, 888).send(1, 1024, 888);
            gc.planted_cycle = {0, 1, 2};
            gc.note = "circular recv dependency 0 -> 1 -> 2 -> 0 (sends follow"
                      " the recvs)";
            break;
        }
        case DeadlockKind::skipped_collective: {
            const int skipper = static_cast<int>(rng.next_below(ranks));
            for (int r = 0; r < ranks; ++r) {
                if (r != skipper) prog(r).allreduce(16);
            }
            gc.planted_culprit = skipper;
            gc.note = util::format("rank %d skips the final allreduce", skipper);
            break;
        }
    }
    return gc;
}

std::string diff_results(const RunResult& a, const RunResult& b) {
    if (!bits_eq(a.makespan, b.makespan)) {
        return double_diff("makespan", a.makespan, b.makespan);
    }
    if (!bits_eq(a.total_flops, b.total_flops)) {
        return double_diff("total_flops", a.total_flops, b.total_flops);
    }
    if (a.ranks.size() != b.ranks.size()) {
        return util::format("rank count differs: %zu vs %zu", a.ranks.size(),
                            b.ranks.size());
    }
    for (std::size_t r = 0; r < a.ranks.size(); ++r) {
        const RankStats& x = a.ranks[r];
        const RankStats& y = b.ranks[r];
        const auto field = [&](const char* name, double u, double v,
                               std::string* out) {
            if (bits_eq(u, v)) return false;
            *out = double_diff(util::format("rank %zu %s", r, name), u, v);
            return true;
        };
        std::string d;
        if (field("finish", x.finish, y.finish, &d) ||
            field("compute", x.compute, y.compute, &d) ||
            field("recv_wait", x.recv_wait, y.recv_wait, &d) ||
            field("collective_wait", x.collective_wait, y.collective_wait, &d) ||
            field("injected_bytes", x.injected_bytes, y.injected_bytes, &d)) {
            return d;
        }
        if (x.msgs_sent != y.msgs_sent) {
            return util::format("rank %zu msgs_sent differs: %d vs %d", r,
                                x.msgs_sent, y.msgs_sent);
        }
        if (x.msgs_received != y.msgs_received) {
            return util::format("rank %zu msgs_received differs: %d vs %d", r,
                                x.msgs_received, y.msgs_received);
        }
    }
    if (a.phase_compute.size() != b.phase_compute.size()) {
        return util::format("phase count differs: %zu vs %zu",
                            a.phase_compute.size(), b.phase_compute.size());
    }
    auto ia = a.phase_compute.begin();
    auto ib = b.phase_compute.begin();
    for (; ia != a.phase_compute.end(); ++ia, ++ib) {
        if (ia->first != ib->first) {
            return util::format("phase key differs: \"%s\" vs \"%s\"",
                                ia->first.c_str(), ib->first.c_str());
        }
        if (!bits_eq(ia->second, ib->second)) {
            return double_diff(util::format("phase \"%s\"", ia->first.c_str()),
                               ia->second, ib->second);
        }
    }
    return "";
}

namespace {

/// Validate a deadlock diagnosis against the fault the generator planted.
void validate_diagnosis(const GeneratedCase& gc, const WaitForGraph& g,
                        std::vector<std::string>* fails) {
    if (gc.deadlock == DeadlockKind::recv_cycle) {
        if (g.cycle != gc.planted_cycle) {
            std::string got = "{";
            for (int r : g.cycle) got += util::format(" %d", r);
            fails->push_back(util::format(
                "diagnosis cycle %s } does not match the planted cycle"
                " { 0 1 2 }", got.c_str()));
        }
        return;
    }
    // unmatched_recv / skipped_collective stalls are acyclic and every
    // blocked rank must point (only) at the planted culprit, flagged
    // finished.
    if (!g.cycle.empty()) {
        fails->push_back(util::format(
            "diagnosis reports a cycle of %zu for an acyclic fault (%s)",
            g.cycle.size(), gc.note.c_str()));
    }
    const int expect_blocked =
        gc.deadlock == DeadlockKind::unmatched_recv ? 1 : gc.ranks - 1;
    if (static_cast<int>(g.blocked.size()) != expect_blocked) {
        fails->push_back(util::format("diagnosis blames %zu blocked ranks,"
                                      " expected %d (%s)",
                                      g.blocked.size(), expect_blocked,
                                      gc.note.c_str()));
        return;
    }
    for (const WaitNode& node : g.blocked) {
        if (node.waits_on != std::vector<int>{gc.planted_culprit} ||
            node.waits_on_finished != std::vector<int>{gc.planted_culprit}) {
            fails->push_back(util::format(
                "rank %d's wait edges do not single out finished rank %d (%s)",
                node.rank, gc.planted_culprit, gc.note.c_str()));
        }
    }
}

} // namespace

std::vector<std::string> check_case(const arch::SystemSpec& sys,
                                    const GeneratedCase& gc, int perturbations) {
    std::vector<std::string> fails;
    const Placement placement = Placement::block(sys.node, 2, gc.ranks, 1);
    const Engine eng(sys, placement, 0.8);
    const RefEngine ref(sys, placement, 0.8);
    const auto perturb_opts = [](int k) {
        RunOptions opts;
        opts.perturb_seed = 0x5eedc0deULL + static_cast<std::uint64_t>(k);
        return opts;
    };

    // The dedup + rank-equivalence-collapse pipeline must be bit-identical
    // to the per-rank vector path on every case; SPMD rounds (generator kind
    // 6) make some bundles genuinely shared so collapsed classes split
    // mid-run under the checker's eyes.
    const ProgramBundle bundle = ProgramBundle::from(gc.programs);

    if (gc.deadlock == DeadlockKind::none) {
        const auto run_one = [&](const char* who,
                                 auto&& fn) -> std::optional<RunResult> {
            try {
                return fn();
            } catch (const std::exception& e) {
                fails.push_back(util::format("%s threw: %s", who, e.what()));
                return std::nullopt;
            }
        };
        const auto base =
            run_one("engine", [&] { return eng.run(gc.programs); });
        if (!base) return fails;
        if (const auto r = run_one("ref", [&] { return ref.run(gc.programs); })) {
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back("engine vs ref: " + d);
            }
        }
        if (const auto r = run_one("bundle", [&] { return eng.run(bundle); })) {
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back("engine vs bundle (collapsed): " + d);
            }
        }
        if (const auto r = run_one("bundle-flat", [&] {
                RunOptions opts;
                opts.collapse = false;
                return eng.run(bundle, opts);
            })) {
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back("engine vs bundle (collapse off): " + d);
            }
        }
        if (const auto r = run_one("bundle-ref", [&] { return ref.run(bundle); })) {
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back("ref vs bundle: " + d);
            }
        }
        // Trace-JIT differential (DESIGN.md §13): the canonical runs above
        // execute JIT-on (the RunOptions default), so the adversary here is
        // the plain interpreter — on the raw per-rank vector (the engine
        // derives its run tables) and on the collapsed bundle (cached run
        // tables, shared rank-neutral blocks). Perturbed runs force the JIT
        // off already, so every perturbation above doubles as a third
        // JIT-off witness.
        if (const auto r = run_one("jit-off", [&] {
                RunOptions opts;
                opts.jit = false;
                return eng.run(gc.programs, opts);
            })) {
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back("engine vs jit off: " + d);
            }
        }
        if (const auto r = run_one("bundle-jit-off", [&] {
                RunOptions opts;
                opts.jit = false;
                return eng.run(bundle, opts);
            })) {
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back("engine vs bundle (collapsed, jit off): " + d);
            }
        }
        for (int k = 1; k <= perturbations; ++k) {
            const auto r = run_one(util::format("perturb %d", k).c_str(), [&] {
                return eng.run(gc.programs, perturb_opts(k));
            });
            if (!r) continue;
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back(util::format("engine vs perturb %d: ", k) + d);
            }
        }
        // Perturbed collapsed runs: splitting order must not leak into the
        // result either. Two seeds keep the suite's runtime in check.
        for (int k = 1; k <= std::min(perturbations, 2); ++k) {
            const auto r =
                run_one(util::format("bundle perturb %d", k).c_str(), [&] {
                    return eng.run(bundle, perturb_opts(k));
                });
            if (!r) continue;
            if (const std::string d = diff_results(*base, *r); !d.empty()) {
                fails.push_back(
                    util::format("engine vs bundle perturb %d: ", k) + d);
            }
        }
        return fails;
    }

    // Deadlock case: every executor must throw sim::DeadlockError, the
    // reports must be byte-identical, and the diagnosis must name the
    // planted fault.
    const auto expect_deadlock =
        [&](const std::string& who, auto&& fn) -> std::optional<WaitForGraph> {
        try {
            (void)fn();
            fails.push_back(who + ": deadlock not detected");
        } catch (const DeadlockError& e) {
            return e.graph();
        } catch (const std::exception& e) {
            fails.push_back(
                util::format("%s: wrong error: %s", who.c_str(), e.what()));
        }
        return std::nullopt;
    };
    const auto base =
        expect_deadlock("engine", [&] { return eng.run(gc.programs); });
    if (!base) return fails;
    validate_diagnosis(gc, *base, &fails);
    if (const auto g =
            expect_deadlock("bundle", [&] { return eng.run(bundle); })) {
        if (g->render() != base->render()) {
            fails.push_back("bundle diagnosis differs from engine:\n--- engine\n" +
                            base->render() + "\n--- bundle\n" + g->render());
        }
    }
    if (const auto g = expect_deadlock("jit-off", [&] {
            RunOptions opts;
            opts.jit = false;
            return eng.run(gc.programs, opts);
        })) {
        if (g->render() != base->render()) {
            fails.push_back(
                "jit-off diagnosis differs from engine:\n--- engine\n" +
                base->render() + "\n--- jit off\n" + g->render());
        }
    }
    if (const auto g =
            expect_deadlock("ref", [&] { return ref.run(gc.programs); })) {
        if (g->render() != base->render()) {
            fails.push_back("ref diagnosis differs from engine:\n--- engine\n" +
                            base->render() + "\n--- ref\n" + g->render());
        }
    }
    for (int k = 1; k <= perturbations; ++k) {
        const auto g = expect_deadlock(util::format("perturb %d", k), [&] {
            return eng.run(gc.programs, perturb_opts(k));
        });
        if (g && g->render() != base->render()) {
            fails.push_back(
                util::format("perturb %d diagnosis differs from engine", k));
        }
    }
    return fails;
}

std::string CheckReport::render() const {
    std::string out = util::format(
        "sim::check: %d cases (%d with planted deadlocks), %d perturbed"
        " schedules each\n",
        cases, deadlock_cases, perturbations);
    for (const auto& f : failures) out += "FAIL " + f + "\n";
    out += ok() ? "result: OK" : util::format("result: %zu FAILURES",
                                              failures.size());
    return out;
}

CheckReport run_suite(const arch::SystemSpec& sys, const CheckConfig& cfg) {
    CheckReport rep;
    rep.perturbations = cfg.perturbations;
    const int n = cfg.seeds;
    std::vector<std::vector<std::string>> fails(static_cast<std::size_t>(n));
    std::vector<char> dead(static_cast<std::size_t>(n), 0);

    const auto run_one = [&](int i) {
        const std::uint64_t seed = cfg.first_seed + static_cast<std::uint64_t>(i);
        GenConfig g;
        g.ranks = cfg.ranks;
        if (cfg.deadlock_every > 0 && (i + 1) % cfg.deadlock_every == 0) {
            g.deadlock = static_cast<DeadlockKind>(1 + seed % 3);
        }
        dead[static_cast<std::size_t>(i)] = g.deadlock != DeadlockKind::none;
        try {
            const GeneratedCase gc = generate(seed, g);
            fails[static_cast<std::size_t>(i)] =
                check_case(sys, gc, cfg.perturbations);
        } catch (const std::exception& e) {
            // Tasks must not throw (util::ThreadPool contract).
            fails[static_cast<std::size_t>(i)] = {
                util::format("checker threw: %s", e.what())};
        }
    };

    if (cfg.jobs <= 1) {
        for (int i = 0; i < n; ++i) run_one(i);
    } else {
        util::ThreadPool pool(cfg.jobs);
        std::vector<std::function<void()>> tasks;
        tasks.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            tasks.push_back([&run_one, i] { run_one(i); });
        }
        pool.run_batch(std::move(tasks));
    }

    // Seed-ordered aggregation: the report is identical for any job count.
    for (int i = 0; i < n; ++i) {
        ++rep.cases;
        if (dead[static_cast<std::size_t>(i)]) ++rep.deadlock_cases;
        const std::uint64_t seed = cfg.first_seed + static_cast<std::uint64_t>(i);
        for (const auto& f : fails[static_cast<std::size_t>(i)]) {
            rep.failures.push_back(util::format(
                "seed %llu: ", static_cast<unsigned long long>(seed)) + f);
        }
    }
    return rep;
}

} // namespace armstice::sim::check
