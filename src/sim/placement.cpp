#include "sim/placement.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <functional>
#include <utility>

namespace armstice::sim {

Placement Placement::build(const arch::NodeSpec& node, int nodes, int ranks,
                           int threads_per_rank,
                           const std::function<std::pair<int, int>(int)>& assign) {
    ARMSTICE_CHECK(nodes >= 1, "placement needs >=1 node");
    ARMSTICE_CHECK(ranks >= 1, "placement needs >=1 rank");
    ARMSTICE_CHECK(threads_per_rank >= 1, "placement needs >=1 thread per rank");
    node.validate();

    Placement p;
    p.node_ = &node;
    p.nodes_ = nodes;
    p.threads_ = threads_per_rank;
    p.locs_.resize(static_cast<std::size_t>(ranks));
    p.streams_.assign(static_cast<std::size_t>(nodes),
                      std::vector<int>(static_cast<std::size_t>(node.mem_domains()), 0));
    p.occupancy_.assign(static_cast<std::size_t>(nodes), 0);

    const int cores_per_node = node.cores();
    const int cpd = node.cores_per_domain();
    // Core occupancy per node: reject overlapping or out-of-range pinnings.
    std::vector<std::vector<char>> used(
        static_cast<std::size_t>(nodes),
        std::vector<char>(static_cast<std::size_t>(cores_per_node), 0));
    for (int r = 0; r < ranks; ++r) {
        const auto [n, first_core] = assign(r);
        ARMSTICE_CHECK(n >= 0 && n < nodes, "placement node out of range");
        ARMSTICE_CHECK(first_core >= 0 &&
                           first_core + threads_per_rank <= cores_per_node,
                       util::format("placement oversubscribes cores: rank %d at core"
                                    " %d x %d threads on %d-core nodes",
                                    r, first_core, threads_per_rank, cores_per_node));
        RankLoc loc;
        loc.node = n;
        loc.first_core = first_core;
        loc.first_domain = loc.first_core / cpd;
        const int last_domain = (loc.first_core + threads_per_rank - 1) / cpd;
        loc.domains_spanned = last_domain - loc.first_domain + 1;
        p.locs_[static_cast<std::size_t>(r)] = loc;
        p.occupancy_[static_cast<std::size_t>(n)] += 1;
        for (int t = 0; t < threads_per_rank; ++t) {
            const int core = loc.first_core + t;
            auto& cell = used[static_cast<std::size_t>(n)][static_cast<std::size_t>(core)];
            ARMSTICE_CHECK(!cell, util::format("placement pins two ranks to node %d"
                                               " core %d", n, core));
            cell = 1;
            p.streams_[static_cast<std::size_t>(loc.node)]
                      [static_cast<std::size_t>(core / cpd)] += 1;
        }
    }
    return p;
}

Placement Placement::block(const arch::NodeSpec& node, int nodes, int ranks,
                           int threads_per_rank) {
    ARMSTICE_CHECK(nodes >= 1, "placement needs >=1 node");
    const int ranks_per_node = (ranks + nodes - 1) / nodes;
    return build(node, nodes, ranks, threads_per_rank, [&](int r) {
        return std::pair<int, int>{r / ranks_per_node,
                                   (r % ranks_per_node) * threads_per_rank};
    });
}

Placement Placement::round_robin(const arch::NodeSpec& node, int nodes, int ranks,
                                 int threads_per_rank) {
    ARMSTICE_CHECK(nodes >= 1, "placement needs >=1 node");
    const int domains = node.mem_domains();
    const int cpd = node.cores_per_domain();
    return build(node, nodes, ranks, threads_per_rank, [&](int r) {
        const int i = r / nodes;  // i-th rank on its node
        const int first_core = (i % domains) * cpd + (i / domains) * threads_per_rank;
        return std::pair<int, int>{r % nodes, first_core};
    });
}

const RankLoc& Placement::loc(int rank) const {
    ARMSTICE_CHECK(rank >= 0 && rank < ranks(), "rank out of range");
    return locs_[static_cast<std::size_t>(rank)];
}

int Placement::ranks_on_node(int node) const {
    ARMSTICE_CHECK(node >= 0 && node < nodes_, "node out of range");
    // Precomputed in build(): comm_layout() and check_capacity() ask for
    // every node, and a per-call O(ranks) scan made them O(ranks x nodes) —
    // minutes of setup for the million-rank collapsed runs.
    return occupancy_[static_cast<std::size_t>(node)];
}

int Placement::streams_on_domain(int node, int domain) const {
    ARMSTICE_CHECK(node >= 0 && node < nodes_, "node out of range");
    ARMSTICE_CHECK(domain >= 0 && domain < node_->mem_domains(), "domain out of range");
    return streams_[static_cast<std::size_t>(node)][static_cast<std::size_t>(domain)];
}

arch::ExecContext Placement::exec_context(int rank, double vec_quality) const {
    const RankLoc& l = loc(rank);
    arch::ExecContext ctx;
    ctx.cpu = &node_->cpu;
    ctx.vec_quality = vec_quality;
    ctx.threads = threads_;
    ctx.domains_spanned = l.domains_spanned;
    // Use the rank's first domain as representative; with block placement all
    // domains a rank spans carry the same stream count.
    ctx.streams_on_domain = std::max(1, streams_on_domain(l.node, l.first_domain));
    return ctx;
}

net::CommLayout Placement::comm_layout() const {
    // Ceiling division (the old derivation) priced 48 ranks on 5 nodes as
    // 5x10=50 ranks — phantom allgather/alltoall rounds — and counted
    // allocated-but-empty nodes as collective participants. The minimum
    // occupancy feeds the distance-aware alltoall round split
    // (net/collectives.cpp): the least-populated node's ranks cross the
    // fabric most often and set the critical path.
    const int n = ranks();
    net::CommLayout layout;
    layout.total_ranks = n;
    int occupied = 0;
    int max_on_node = 0;
    int min_on_node = n;
    for (int node = 0; node < nodes_; ++node) {
        const int on = ranks_on_node(node);
        if (on > 0) {
            ++occupied;
            min_on_node = std::min(min_on_node, on);
        }
        max_on_node = std::max(max_on_node, on);
    }
    layout.nodes = std::max(1, occupied);
    layout.ranks_per_node = std::max(1, max_on_node);
    layout.min_ranks_per_node = occupied > 0 ? min_on_node : 1;
    return layout;
}

void Placement::check_capacity(double bytes_per_rank) const {
    ARMSTICE_CHECK(bytes_per_rank >= 0, "negative footprint");
    const double cap = node_->mem_capacity();
    for (int n = 0; n < nodes_; ++n) {
        const double used = bytes_per_rank * ranks_on_node(n);
        if (used > cap) {
            throw util::CapacityError(util::format(
                "node %d needs %.2f GB but has %.2f GB (%d ranks x %.2f GB)", n,
                used / 1e9, cap / 1e9, ranks_on_node(n), bytes_per_rank / 1e9));
        }
    }
}

} // namespace armstice::sim
