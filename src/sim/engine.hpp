#pragma once
// Engine — the discrete-event simulator. Executes one Program per rank with
// blocking-MPI semantics: eager sends, FIFO tag matching on receives, and
// synchronising collectives priced by net::CollectiveModel. Compute ops are
// priced by arch::CostModel under the placement's contention context.
//
// The engine is process-oriented: it advances each runnable rank's virtual
// clock until the rank blocks (receive with no matching message, collective
// with absent peers) or finishes, unblocking peers as messages/collectives
// complete. If no rank can make progress the engine throws
// util::DeadlockError naming the blocked ranks.
//
// Thread-safety: `run` is const and uses only local state — Placement,
// CostModel and Network are read-only after construction, the noise samples
// are pure functions of (rank, op), and the arch catalog/calibration tables
// are immutable function-local statics (the phase-label interner is shared
// but append-only and internally locked). Concurrent `run` calls on one
// Engine (core::SweepRunner executes sweep points on a thread pool) are
// sound and return bit-identical results; asserted by
// tests/test_sim_engine.cpp ConcurrentRunsAreBitIdentical.
//
// Performance (DESIGN.md §8): ranks are grouped into ExecContext equivalence
// classes at run start and CostModel pricing is memoized per (phase content,
// class) — the deterministic per-(rank, op) noise stretch is applied on top,
// so memoization can never share noise draws. Per-phase seconds accumulate
// into vectors indexed by interned PhaseId and the phase_compute map is
// materialised only on return. Receive matching uses per-source FIFO queues.
//
// Scale (DESIGN.md §11): ranks sharing one Program object (ProgramBundle)
// and one ExecContext class execute as ONE simulation class — the engine
// runs O(classes) state machines, not O(ranks), and splits a class into
// singletons lazily the moment an op could break the symmetry (p2p ops,
// noise-stretched compute). Splitting is exact, so collapsed results are
// bit-identical to RunOptions::collapse = false; million-rank SPMD
// workloads simulate in roughly the footprint of a 64-rank one.
//
// Schedule invariance (DESIGN.md §10): every RunResult field is a pure
// function of the programs and the model — never of the order in which the
// engine happens to pop runnable ranks. Global sums (total_flops,
// phase_compute) accumulate per rank in program order and reduce across
// ranks in rank order; MPI_ANY_SOURCE matches the pending message with the
// smallest (arrival time, source rank) key, which is schedule-invariant,
// instead of the schedule-dependent global send-issue order. RunOptions::
// perturb_seed exploits this: any nonzero seed permutes the runnable-queue
// pop order, and sim::check asserts the RunResult stays bit-identical.

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "net/collectives.hpp"
#include "sim/placement.hpp"
#include "sim/program.hpp"
#include "sim/trace.hpp"

#include <map>
#include <string>
#include <vector>

namespace armstice::sim {

/// Deterministic OS-noise stretch for (rank, op index): a capped Exp(1)
/// sample, pure function of its arguments. Exposed so tests can pin the
/// semantics the cost-memoization relies on (every rank draws its own
/// noise even when the memo shares the underlying phase time).
[[nodiscard]] double noise_sample(int rank, std::size_t op_index);

struct RankStats {
    double finish = 0;          ///< virtual time the rank's program completed
    double compute = 0;         ///< seconds in ComputeOps
    double recv_wait = 0;       ///< seconds blocked waiting for messages
    double collective_wait = 0; ///< seconds in collectives (sync + transfer)
    double injected_bytes = 0;
    int msgs_sent = 0;
    int msgs_received = 0;
};

/// Per-run execution options (the schedule-perturbation hook of the
/// sim::check differential tooling, plus the rank-equivalence switch).
struct RunOptions {
    /// 0 = canonical FIFO pop order. Any other value seeds a deterministic
    /// permutation of the engine's order-free choices: the runnable-queue
    /// pop order, the quiescence resolver's scan order, and the order a
    /// completed collective's waiters are resumed in. Results are
    /// bit-identical for every seed (schedule invariance, DESIGN.md §10.2).
    std::uint64_t perturb_seed = 0;
    /// Rank-equivalence collapse (DESIGN.md §11): ranks sharing one Program
    /// object (ProgramBundle) and one ExecContext class execute as one
    /// simulation class until an op breaks the symmetry. Absolute p2p ops
    /// and noise-stretched compute shatter the class into per-rank
    /// singletons; relative-addressed p2p (§11.4 — what the simmpi halo
    /// helpers emit) stays merged while hop tiers and match arrivals agree
    /// across members, and group-splits into per-signature subclasses where
    /// they genuinely differ, so a Cartesian halo interior runs as O(surface)
    /// classes. Results are bit-identical with the flag on or off — it is a
    /// simulation-cost knob, never a model knob. Ignored (forced off) when a
    /// Trace is attached.
    bool collapse = true;
    /// Trace-JIT superop execution (DESIGN.md §13): straight-line op runs
    /// are compiled once into blocks with precomputed per-step costs and
    /// lazily linked across loop iterations; the interpreter handles
    /// boundaries (collectives, wildcard receives) and everything the
    /// guards reject. Bit-identical on or off — another simulation-cost
    /// knob. Forced off under a nonzero perturb_seed (the determinism
    /// adversary must exercise raw per-op scheduling) and under a Trace
    /// (per-span recording needs the interpreter).
    bool jit = true;
};

struct RunResult {
    double makespan = 0;      ///< max rank finish time
    double total_flops = 0;   ///< counted FLOPs over all ranks
    std::vector<RankStats> ranks;
    /// Compute seconds per MarkOp label, summed over ranks (divide by ranks
    /// for the SPMD per-rank view).
    std::map<std::string, double> phase_compute;
    /// Collapse diagnostics (not part of the modelled result: excluded from
    /// check::diff_results and the persistent-cache codec).
    /// `collapse_classes` is the number of simulation classes the run *ended*
    /// with (initial classes plus every class a split created — equal to the
    /// initial count when nothing split); `collapse_splits` counts split
    /// events, broken down by cause: `split_p2p` (absolute-addressed p2p op,
    /// wildcard recv, or relative-recv arrival asymmetry), `split_noise`
    /// (rank-keyed OS-noise draw on a compute op), `split_placement`
    /// (relative send whose hop distance differs across members — node-edge
    /// effects of the Placement).
    int collapse_classes = 0;
    int collapse_splits = 0;
    int collapse_split_p2p = 0;
    int collapse_split_noise = 0;
    int collapse_split_placement = 0;
    /// Trace-JIT diagnostics (like the collapse counters: excluded from
    /// diff_results and the cache codec). Superop blocks compiled this run,
    /// block dispatches (including partial resumes after an in-block recv
    /// blocked), and ops executed through blocks rather than the
    /// interpreter.
    int jit_blocks = 0;
    long long jit_block_runs = 0;
    long long jit_ops = 0;

    [[nodiscard]] double gflops() const {
        return makespan > 0 ? total_flops / 1e9 / makespan : 0.0;
    }
    [[nodiscard]] double mean_compute() const;
    [[nodiscard]] double mean_recv_wait() const;
    [[nodiscard]] double mean_collective_wait() const;
};

class Engine {
public:
    /// `nodes` sizes the interconnect; `vec_quality` comes from the
    /// experiment's Toolchain.
    Engine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
           arch::ModelKnobs knobs = {});

    /// Execute one program per rank (programs.size() must equal
    /// placement.ranks()). Deterministic; reusable. When `trace` is non-null
    /// every per-rank span (compute, sends, waits, collectives) is recorded
    /// for timeline export (sim/trace.hpp).
    [[nodiscard]] RunResult run(const std::vector<Program>& programs,
                                Trace* trace = nullptr) const;

    /// Shared-program variant: ranks mapping to the same distinct program
    /// execute one instance (simmpi::ProgramSet::take_bundle()). Results are
    /// bit-identical to the per-rank-vector overload.
    [[nodiscard]] RunResult run(const ProgramBundle& bundle,
                                Trace* trace = nullptr) const;

    /// Overloads with execution options (schedule perturbation).
    [[nodiscard]] RunResult run(const std::vector<Program>& programs,
                                const RunOptions& opts,
                                Trace* trace = nullptr) const;
    [[nodiscard]] RunResult run(const ProgramBundle& bundle, const RunOptions& opts,
                                Trace* trace = nullptr) const;

    [[nodiscard]] const Placement& placement() const { return placement_; }
    [[nodiscard]] const net::Network& network() const { return network_; }

private:
    [[nodiscard]] RunResult run_impl(const std::vector<const Program*>& progs,
                                     Trace* trace, const RunOptions& opts) const;

    const arch::SystemSpec* sys_;
    Placement placement_;
    double vec_quality_;
    arch::CostModel cost_;
    net::Network network_;
};

} // namespace armstice::sim
