#include "sim/trace.hpp"

#include "util/error.hpp"
#include "util/str.hpp"

#include <fstream>

namespace armstice::sim {

const char* span_kind_name(SpanKind k) {
    switch (k) {
        case SpanKind::compute: return "compute";
        case SpanKind::send: return "send";
        case SpanKind::recv_wait: return "recv-wait";
        case SpanKind::collective: return "collective";
    }
    return "?";
}

void Trace::add(Span span) {
    ARMSTICE_CHECK(span.end >= span.begin, "span ends before it begins");
    spans_.push_back(std::move(span));
}

double Trace::total_seconds(SpanKind kind) const {
    double sum = 0;
    for (const auto& s : spans_) {
        if (s.kind == kind) sum += s.end - s.begin;
    }
    return sum;
}

std::string Trace::to_chrome_json() const {
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto& s : spans_) {
        if (!first) out += ",\n";
        first = false;
        std::string name = s.label.empty() ? span_kind_name(s.kind) : s.label;
        // Escape the minimal set for our labels (no control chars expected).
        std::string escaped;
        for (char c : name) {
            if (c == '"' || c == '\\') escaped += '\\';
            escaped += c;
        }
        out += util::format(
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
            "\"ts\":%.3f,\"dur\":%.3f}",
            escaped.c_str(), span_kind_name(s.kind), s.rank, s.begin * 1e6,
            (s.end - s.begin) * 1e6);
    }
    out += "\n]}\n";
    return out;
}

void Trace::write_chrome_json(const std::string& path) const {
    std::ofstream f(path);
    ARMSTICE_CHECK(f.good(), "cannot open " + path);
    f << to_chrome_json();
    ARMSTICE_CHECK(f.good(), "write failed for " + path);
}

} // namespace armstice::sim
