#include "sim/deadlock.hpp"

#include "sim/program.hpp"
#include "util/str.hpp"

#include <algorithm>

namespace armstice::sim {
namespace {

/// Render "rank 1" / "ranks 0, 2, 5"; finished ranks are flagged inline. An
/// ANY_SOURCE recv whose peers all finished waits on nobody — and can never
/// be satisfied.
std::string render_targets(const WaitNode& node) {
    if (node.waits_on.empty()) return "no live peer";
    std::string out = node.waits_on.size() == 1 ? "rank " : "ranks ";
    for (std::size_t i = 0; i < node.waits_on.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(node.waits_on[i]);
        if (std::binary_search(node.waits_on_finished.begin(),
                               node.waits_on_finished.end(), node.waits_on[i])) {
            out += " (finished)";
        }
    }
    return out;
}

/// Deterministic cycle extraction: DFS from each blocked rank in ascending
/// order, visiting waits_on edges (restricted to blocked ranks) in ascending
/// order; the first back edge found closes the cycle.
std::vector<int> find_cycle(const WaitForGraph& g) {
    enum : char { white, grey, black };
    std::vector<char> color(static_cast<std::size_t>(g.total_ranks), white);
    std::vector<int> stack;

    // Recursive DFS expressed iteratively so huge graphs cannot overflow the
    // native stack. Each frame remembers which outgoing edge to try next.
    struct Frame {
        const WaitNode* node;
        std::size_t next_edge = 0;
    };
    for (const auto& start : g.blocked) {
        if (color[static_cast<std::size_t>(start.rank)] != white) continue;
        std::vector<Frame> frames;
        frames.push_back({&start});
        color[static_cast<std::size_t>(start.rank)] = grey;
        stack.push_back(start.rank);
        while (!frames.empty()) {
            Frame& f = frames.back();
            bool descended = false;
            while (f.next_edge < f.node->waits_on.size()) {
                const int to = f.node->waits_on[f.next_edge++];
                const WaitNode* target = g.node_of(to);
                if (target == nullptr) continue;  // not blocked: no cycle via it
                if (color[static_cast<std::size_t>(to)] == grey) {
                    // Back edge: the cycle is the stack suffix starting at `to`.
                    const auto it = std::find(stack.begin(), stack.end(), to);
                    return std::vector<int>(it, stack.end());
                }
                if (color[static_cast<std::size_t>(to)] == white) {
                    color[static_cast<std::size_t>(to)] = grey;
                    stack.push_back(to);
                    frames.push_back({target});
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                color[static_cast<std::size_t>(f.node->rank)] = black;
                stack.pop_back();
                frames.pop_back();
            }
        }
    }
    return {};
}

} // namespace

const WaitNode* WaitForGraph::node_of(int rank) const {
    for (const auto& n : blocked) {
        if (n.rank == rank) return &n;
    }
    return nullptr;
}

std::string WaitForGraph::render() const {
    std::string out = util::format("deadlock: %zu of %d ranks blocked",
                                   blocked.size(), total_ranks);
    out += cycle.empty() ? " (no blocking cycle: some rank finished without"
                           " satisfying a peer)"
                         : util::format(" (blocking cycle of %zu)", cycle.size());
    out += "\nwait-for graph:\n";
    for (const auto& n : blocked) {
        out += util::format("  rank %d: %s at op %zu -> waits on ", n.rank,
                            n.op.c_str(), n.pc);
        out += render_targets(n);
        out += "\n";
    }
    if (!cycle.empty()) {
        out += "cycle: ";
        for (int r : cycle) out += util::format("rank %d -> ", r);
        out += util::format("rank %d", cycle.front());
    }
    return out;
}

WaitForGraph build_wait_graph(const std::vector<PendingWait>& ranks,
                              const std::vector<CollDesc>& collectives) {
    const int n = static_cast<int>(ranks.size());
    WaitForGraph g;
    g.total_ranks = n;
    for (int r = 0; r < n; ++r) {
        const auto& w = ranks[static_cast<std::size_t>(r)];
        if (w.finished) continue;
        WaitNode node;
        node.rank = r;
        node.pc = w.pc;
        if (w.blocked_on_recv) {
            if (w.want_src == kAnySource) {
                node.op = util::format("recv(src=any, tag=%d)", w.want_tag);
                // A wildcard recv can be satisfied by any other rank that is
                // still running; finished ranks can never send again.
                for (int s = 0; s < n; ++s) {
                    if (s != r && !ranks[static_cast<std::size_t>(s)].finished) {
                        node.waits_on.push_back(s);
                    }
                }
            } else {
                node.op = util::format("recv(src=%d, tag=%d)", w.want_src,
                                       w.want_tag);
                node.waits_on.push_back(w.want_src);
                if (w.want_src >= 0 && w.want_src < n &&
                    ranks[static_cast<std::size_t>(w.want_src)].finished) {
                    node.waits_on_finished.push_back(w.want_src);
                }
            }
        } else {
            const int ord = w.coll_ordinal;
            CollDesc desc;
            if (ord >= 0 && ord < static_cast<int>(collectives.size())) {
                desc = collectives[static_cast<std::size_t>(ord)];
            }
            node.op = util::format("%s(%g bytes) #%d", desc.kind, desc.bytes, ord);
            // Blocked behind every rank that has not yet entered this
            // collective ordinal — including finished ranks, which skipped it
            // for good.
            for (int s = 0; s < n; ++s) {
                if (s == r) continue;
                const auto& peer = ranks[static_cast<std::size_t>(s)];
                if (peer.colls_entered <= ord) {
                    node.waits_on.push_back(s);
                    if (peer.finished) node.waits_on_finished.push_back(s);
                }
            }
        }
        g.blocked.push_back(std::move(node));
    }
    g.cycle = find_cycle(g);
    return g;
}

DeadlockError::DeadlockError(WaitForGraph graph)
    : util::DeadlockError(graph.render()),
      graph_(std::make_shared<const WaitForGraph>(std::move(graph))) {}

} // namespace armstice::sim
