#include "sim/program.hpp"

#include "util/error.hpp"

#include <cstring>
#include <unordered_map>
#include <utility>

namespace armstice::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffU;
        h *= kFnvPrime;
    }
}

void mixd(std::uint64_t& h, double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    mix(h, u);
}

struct OpHasher {
    std::uint64_t& h;
    void operator()(const ComputeOp& c) const {
        mix(h, 1);
        // cost_signature covers every numeric field; the label id separates
        // equal-cost phases with different names. phase_idx is deliberately
        // NOT mixed: pool layout is an artifact of build order, not content.
        mix(h, c.cost_key);
        mix(h, c.label_id);
    }
    void operator()(const SendOp& s) const {
        mix(h, 2);
        mix(h, static_cast<std::uint64_t>(s.dst));
        mixd(h, s.bytes);
        mix(h, static_cast<std::uint64_t>(s.tag));
    }
    void operator()(const RecvOp& r) const {
        mix(h, 3);
        mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(r.src)));
        mix(h, static_cast<std::uint64_t>(r.tag));
    }
    void operator()(const AllreduceOp& a) const {
        mix(h, 4);
        mixd(h, a.bytes);
    }
    void operator()(const BarrierOp&) const { mix(h, 5); }
    void operator()(const AlltoallOp& a) const {
        mix(h, 6);
        mixd(h, a.bytes_each);
    }
    void operator()(const MarkOp& m) const {
        mix(h, 7);
        mix(h, m.label_id);
    }
};

} // namespace

util::StringInterner& phase_table() {
    // Immortal (never destroyed): ids handed out during static teardown of
    // other objects stay resolvable, and the deque-backed strings keep their
    // addresses for the process lifetime.
    static auto* table = [] {
        auto* t = new util::StringInterner();
        t->id("");  // reserve id 0 == kNoPhase
        return t;
    }();
    return *table;
}

PhaseId intern_phase_label(std::string_view label) {
    return phase_table().id(label);
}

std::uint32_t Program::pool_phase(arch::ComputePhase phase) {
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (arch::same_cost_inputs(phases[i], phase) && phases[i].label == phase.label) {
            return static_cast<std::uint32_t>(i);
        }
    }
    phases.push_back(std::move(phase));
    return static_cast<std::uint32_t>(phases.size() - 1);
}

double Program::total_flops() const {
    double sum = 0.0;
    for (const auto& op : ops) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) sum += phase_of(*c).flops;
    }
    return sum;
}

double Program::total_main_bytes() const {
    double sum = 0.0;
    for (const auto& op : ops) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) sum += phase_of(*c).main_bytes;
    }
    return sum;
}

std::uint64_t Program::structure_hash() const {
    std::uint64_t h = kFnvOffset;
    mix(h, ops.size());
    for (const auto& op : ops) std::visit(OpHasher{h}, op);
    return h;
}

bool Program::operator==(const Program& o) const {
    if (ops.size() != o.ops.size()) return false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op& a = ops[i];
        const Op& b = o.ops[i];
        if (a.index() != b.index()) return false;
        if (const auto* ca = std::get_if<ComputeOp>(&a)) {
            const auto& cb = std::get<ComputeOp>(b);
            if (ca->label_id != cb.label_id || ca->cost_key != cb.cost_key ||
                !arch::same_cost_inputs(phase_of(*ca), o.phase_of(cb))) {
                return false;
            }
        } else if (const auto* sa = std::get_if<SendOp>(&a)) {
            if (!(*sa == std::get<SendOp>(b))) return false;
        } else if (const auto* ra = std::get_if<RecvOp>(&a)) {
            if (!(*ra == std::get<RecvOp>(b))) return false;
        } else if (const auto* aa = std::get_if<AllreduceOp>(&a)) {
            if (!(*aa == std::get<AllreduceOp>(b))) return false;
        } else if (const auto* ta = std::get_if<AlltoallOp>(&a)) {
            if (!(*ta == std::get<AlltoallOp>(b))) return false;
        } else if (const auto* ma = std::get_if<MarkOp>(&a)) {
            if (!(*ma == std::get<MarkOp>(b))) return false;
        }  // BarrierOp: same index is enough
    }
    return true;
}

ProgramBundle ProgramBundle::from(std::vector<Program> programs) {
    ProgramBundle b;
    b.index_.reserve(programs.size());
    // hash -> indices into distinct_ with that hash (collision chains).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
    by_hash.reserve(programs.size());
    for (auto& prog : programs) {
        const std::uint64_t h = prog.structure_hash();
        auto& chain = by_hash[h];
        std::uint32_t idx = UINT32_MAX;
        for (const std::uint32_t cand : chain) {
            if (b.distinct_[cand] == prog) {
                idx = cand;
                break;
            }
        }
        if (idx == UINT32_MAX) {
            idx = static_cast<std::uint32_t>(b.distinct_.size());
            b.distinct_.push_back(std::move(prog));
            chain.push_back(idx);
        }
        b.index_.push_back(idx);
    }
    return b;
}

ProgramBundle ProgramBundle::shared(Program proto, int ranks) {
    ARMSTICE_CHECK(ranks >= 1, "ProgramBundle::shared needs >=1 rank");
    ProgramBundle b;
    b.distinct_.push_back(std::move(proto));
    b.index_.assign(static_cast<std::size_t>(ranks), 0);
    return b;
}

} // namespace armstice::sim
