#include "sim/program.hpp"

namespace armstice::sim {

double Program::total_flops() const {
    double sum = 0.0;
    for (const auto& op : ops) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) sum += c->phase.flops;
    }
    return sum;
}

double Program::total_main_bytes() const {
    double sum = 0.0;
    for (const auto& op : ops) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) sum += c->phase.main_bytes;
    }
    return sum;
}

} // namespace armstice::sim
