#include "sim/program.hpp"

#include "util/error.hpp"

#include <cstring>
#include <unordered_map>
#include <utility>

namespace armstice::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffU;
        h *= kFnvPrime;
    }
}

void mixd(std::uint64_t& h, double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    mix(h, u);
}

struct OpHasher {
    std::uint64_t& h;
    void operator()(const ComputeOp& c) const {
        mix(h, 1);
        // cost_signature covers every numeric field; the label id separates
        // equal-cost phases with different names. phase_idx is deliberately
        // NOT mixed: pool layout is an artifact of build order, not content.
        mix(h, c.cost_key);
        mix(h, c.label_id);
    }
    void operator()(const SendOp& s) const {
        mix(h, s.rel ? 8 : 2);
        mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(s.dst)));
        mixd(h, s.bytes);
        mix(h, static_cast<std::uint64_t>(s.tag));
    }
    void operator()(const RecvOp& r) const {
        mix(h, r.rel ? 9 : 3);
        mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(r.src)));
        mix(h, static_cast<std::uint64_t>(r.tag));
    }
    void operator()(const AllreduceOp& a) const {
        mix(h, 4);
        mixd(h, a.bytes);
    }
    void operator()(const BarrierOp&) const { mix(h, 5); }
    void operator()(const AlltoallOp& a) const {
        mix(h, 6);
        mixd(h, a.bytes_each);
    }
    void operator()(const MarkOp& m) const {
        mix(h, 7);
        mix(h, m.label_id);
    }
};

} // namespace

util::StringInterner& phase_table() {
    // Immortal (never destroyed): ids handed out during static teardown of
    // other objects stay resolvable, and the deque-backed strings keep their
    // addresses for the process lifetime.
    static auto* table = [] {
        auto* t = new util::StringInterner();
        t->id("");  // reserve id 0 == kNoPhase
        return t;
    }();
    return *table;
}

PhaseId intern_phase_label(std::string_view label) {
    return phase_table().id(label);
}

std::uint32_t Program::pool_phase(arch::ComputePhase phase) {
    for (std::size_t i = 0; i < phases.size(); ++i) {
        if (arch::same_cost_inputs(phases[i], phase) && phases[i].label == phase.label) {
            return static_cast<std::uint32_t>(i);
        }
    }
    phases.push_back(std::move(phase));
    return static_cast<std::uint32_t>(phases.size() - 1);
}

double Program::total_flops() const {
    double sum = 0.0;
    for (const auto& op : ops) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) sum += phase_of(*c).flops;
    }
    return sum;
}

double Program::total_main_bytes() const {
    double sum = 0.0;
    for (const auto& op : ops) {
        if (const auto* c = std::get_if<ComputeOp>(&op)) sum += phase_of(*c).main_bytes;
    }
    return sum;
}

void mix_op_hash(std::uint64_t& h, const Op& op) {
    std::visit(OpHasher{h}, op);
}

bool same_op_content(const Program& pa, const Op& a, const Program& pb,
                     const Op& b) {
    if (a.index() != b.index()) return false;
    if (const auto* ca = std::get_if<ComputeOp>(&a)) {
        const auto& cb = std::get<ComputeOp>(b);
        if (ca->label_id != cb.label_id || ca->cost_key != cb.cost_key) return false;
        const arch::ComputePhase& fa = pa.phase_of(*ca);
        const arch::ComputePhase& fb = pb.phase_of(cb);
        return &fa == &fb || arch::same_cost_inputs(fa, fb);
    }
    if (const auto* sa = std::get_if<SendOp>(&a)) return *sa == std::get<SendOp>(b);
    if (const auto* ra = std::get_if<RecvOp>(&a)) return *ra == std::get<RecvOp>(b);
    if (const auto* aa = std::get_if<AllreduceOp>(&a)) return *aa == std::get<AllreduceOp>(b);
    if (const auto* ta = std::get_if<AlltoallOp>(&a)) return *ta == std::get<AlltoallOp>(b);
    if (const auto* ma = std::get_if<MarkOp>(&a)) return *ma == std::get<MarkOp>(b);
    return true;  // BarrierOp: same index is enough
}

namespace {

/// One-multiply word mix for the op-key intern chains (speed over per-call
/// quality: collisions only lengthen a compare chain, never merge content).
inline void mixw(std::uint64_t& h, std::uint64_t v) {
    h = (h ^ v) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
}

inline std::uint64_t fast_op_hash(const Op& op) {
    std::uint64_t h = 0x2545F4914F6CDD1DULL;
    mixw(h, op.index());
    if (const auto* s = std::get_if<SendOp>(&op)) {
        mixw(h, static_cast<std::uint32_t>(s->dst) |
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(s->tag))
                        << 32);
        std::uint64_t b;
        std::memcpy(&b, &s->bytes, sizeof b);
        mixw(h, b + (s->rel ? 1 : 0));
    } else if (const auto* r = std::get_if<RecvOp>(&op)) {
        mixw(h, static_cast<std::uint32_t>(r->src) |
                    static_cast<std::uint64_t>(static_cast<std::uint32_t>(r->tag))
                        << 32);
        mixw(h, r->rel ? 1 : 0);
    } else if (const auto* a = std::get_if<AllreduceOp>(&op)) {
        std::uint64_t b;
        std::memcpy(&b, &a->bytes, sizeof b);
        mixw(h, b);
    } else if (const auto* t = std::get_if<AlltoallOp>(&op)) {
        std::uint64_t b;
        std::memcpy(&b, &t->bytes_each, sizeof b);
        mixw(h, b);
    }
    return h;
}

} // namespace

std::vector<OpKey> compute_op_keys(const Program& p) {
    std::vector<OpKey> keys;
    keys.reserve(p.ops.size());
    constexpr std::uint32_t kIdCap = 1u << kOpKeyKindShift;
    const auto pack = [](OpKeyKind k, std::uint32_t id) {
        return (static_cast<OpKey>(k) << kOpKeyKindShift) | id;
    };
    // First-occurrence interning of p2p/collective payloads: hash chains
    // with exact same_op_content compares, so equal keys always mean equal
    // content (a hash collision only lengthens a chain). Compute and mark
    // ops skip the interner — pool_phase and the label interner already
    // provide canonical per-program ids.
    struct Slot {
        std::uint32_t op_idx;
        std::uint32_t id;
    };
    std::unordered_map<std::uint64_t, std::vector<Slot>> chains;
    std::uint32_t next_id = 0;
    const auto intern = [&](const Op& op, std::size_t i) -> std::uint32_t {
        auto& chain = chains[fast_op_hash(op)];
        for (const Slot& s : chain) {
            if (same_op_content(p, p.ops[s.op_idx], p, op)) return s.id;
        }
        ARMSTICE_CHECK(next_id < kIdCap, "program exceeds op-key id space");
        chain.push_back(Slot{static_cast<std::uint32_t>(i), next_id});
        return next_id++;
    };
    for (std::size_t i = 0; i < p.ops.size(); ++i) {
        const Op& op = p.ops[i];
        switch (op.index()) {
            case 0: {
                const auto& c = *std::get_if<ComputeOp>(&op);
                ARMSTICE_CHECK(c.phase_idx < kIdCap,
                               "program exceeds op-key id space");
                keys.push_back(pack(OpKeyKind::compute, c.phase_idx));
                break;
            }
            case 1: {
                const auto& s = *std::get_if<SendOp>(&op);
                keys.push_back(
                    pack(s.rel ? OpKeyKind::send_rel : OpKeyKind::send,
                         intern(op, i)));
                break;
            }
            case 2: {
                const auto& r = *std::get_if<RecvOp>(&op);
                keys.push_back(pack(r.is_any() ? OpKeyKind::recv_any
                               : r.rel         ? OpKeyKind::recv_rel
                                               : OpKeyKind::recv,
                                    intern(op, i)));
                break;
            }
            case 3:
                keys.push_back(pack(OpKeyKind::allreduce, intern(op, i)));
                break;
            case 4:
                keys.push_back(pack(OpKeyKind::barrier, 0));
                break;
            case 5:
                keys.push_back(pack(OpKeyKind::alltoall, intern(op, i)));
                break;
            default: {
                const auto& m = *std::get_if<MarkOp>(&op);
                ARMSTICE_CHECK(m.label_id < kIdCap,
                               "program exceeds op-key id space");
                keys.push_back(pack(OpKeyKind::mark, m.label_id));
                break;
            }
        }
    }
    return keys;
}

void Program::finalize_op_keys() {
    if (op_keys.size() != ops.size()) op_keys = compute_op_keys(*this);
}

OpRunTable compute_op_runs(const OpKey* keys, std::size_t nops) {
    OpRunTable rt;
    rt.source_ops = nops;
    // Content-id interning: hash chains with exact key-subrange compares, so
    // equal ids always mean byte-equal OpKey ranges (a collision only
    // lengthens a chain). Chain entries index rt.runs (the first run carrying
    // each new id).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
    std::size_t pc = 0;
    while (pc < nops) {
        if (op_key_is_boundary(keys[pc])) {
            ++pc;
            continue;
        }
        OpRun e;
        e.start = static_cast<std::uint32_t>(pc);
        // Same seed (FNV offset basis) and word mix as sim::jit::scan_run, so
        // a table entry's hash and an on-demand scan of the same range are
        // interchangeable — e.g. as superop-block cache keys.
        std::uint64_t h = 0xcbf29ce484222325ULL;
        std::size_t i = pc;
        const std::size_t stop = pc + kOpRunCap < nops ? pc + kOpRunCap : nops;
        std::uint32_t kinds_seen = 0;  // bitset over OpKeyKind
        for (; i < stop; ++i) {
            const OpKey k = keys[i];
            if (op_key_is_boundary(k)) break;
            kinds_seen |= 1u << (k >> kOpKeyKindShift);
            mixw(h, k);
        }
        e.len = static_cast<std::uint32_t>(i - pc);
        mixw(h, e.len);
        e.hash = h;
        e.has_compute =
            (kinds_seen &
             (1u << static_cast<std::uint32_t>(OpKeyKind::compute))) != 0;
        e.has_abs_p2p =
            (kinds_seen & ((1u << static_cast<std::uint32_t>(OpKeyKind::send)) |
                           (1u << static_cast<std::uint32_t>(OpKeyKind::recv)))) !=
            0;
        e.has_p2p =
            e.has_abs_p2p ||
            (kinds_seen &
             ((1u << static_cast<std::uint32_t>(OpKeyKind::send_rel)) |
              (1u << static_cast<std::uint32_t>(OpKeyKind::recv_rel)))) != 0;
        e.id = rt.distinct;
        auto& chain = by_hash[e.hash];
        for (const std::uint32_t j : chain) {
            const OpRun& o = rt.runs[j];
            if (o.len == e.len &&
                std::memcmp(keys + o.start, keys + e.start,
                            e.len * sizeof(OpKey)) == 0) {
                e.id = o.id;
                break;
            }
        }
        if (e.id == rt.distinct) {
            chain.push_back(static_cast<std::uint32_t>(rt.runs.size()));
            ++rt.distinct;
        }
        rt.runs.push_back(e);
        pc += e.len;
    }
    return rt;
}

void Program::finalize_op_runs() {
    if (op_runs.source_ops != ops.size()) {
        finalize_op_keys();
        op_runs = compute_op_runs(op_keys.data(), ops.size());
    }
}

std::uint64_t Program::structure_hash() const {
    std::uint64_t h = kFnvOffset;
    mix(h, ops.size());
    for (const auto& op : ops) mix_op_hash(h, op);
    return h;
}

bool Program::operator==(const Program& o) const {
    if (ops.size() != o.ops.size()) return false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (!same_op_content(*this, ops[i], o, o.ops[i])) return false;
    }
    return true;
}

ProgramBundle ProgramBundle::from(std::vector<Program> programs) {
    ProgramBundle b;
    b.index_.reserve(programs.size());
    // hash -> indices into distinct_ with that hash (collision chains).
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash;
    by_hash.reserve(programs.size());
    for (auto& prog : programs) {
        const std::uint64_t h = prog.structure_hash();
        auto& chain = by_hash[h];
        std::uint32_t idx = UINT32_MAX;
        for (const std::uint32_t cand : chain) {
            if (b.distinct_[cand] == prog) {
                idx = cand;
                break;
            }
        }
        if (idx == UINT32_MAX) {
            idx = static_cast<std::uint32_t>(b.distinct_.size());
            b.distinct_.push_back(std::move(prog));
            chain.push_back(idx);
        }
        b.index_.push_back(idx);
    }
    // Once per distinct program, amortised across every run of the bundle
    // (the trace-JIT derives keys and run tables per run for raw programs
    // instead).
    for (auto& prog : b.distinct_) prog.finalize_op_runs();
    return b;
}

ProgramBundle ProgramBundle::shared(Program proto, int ranks) {
    ARMSTICE_CHECK(ranks >= 1, "ProgramBundle::shared needs >=1 rank");
    ProgramBundle b;
    proto.finalize_op_runs();
    b.distinct_.push_back(std::move(proto));
    b.index_.assign(static_cast<std::size_t>(ranks), 0);
    return b;
}

} // namespace armstice::sim
