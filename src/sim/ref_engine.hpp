#pragma once
// RefEngine — the reference interpreter of the sim::check differential
// harness (DESIGN.md §10.1). It executes the same Program semantics as
// sim::Engine but is written against the DESIGN.md contract only, with none
// of the production engine's machinery: no cost memoization, no ExecContext
// equivalence classes, no node-pair tables, no head-indexed queues, no
// program bundles — just a round-robin sweep over ranks with flat per-rank
// message lists, O(ranks^2 * events) and proud of it. Any divergence between
// the two engines' RunResults (required bit-for-bit identical) is a bug in
// one of them; the naive code is small enough to audit by eye, which is the
// point.
//
// Deliberately NOT shared with Engine: CostModel/Network/CollectiveModel
// pricing calls and Placement::comm_layout (those are the model under test
// elsewhere), noise_sample (a pinned pure function), and the wait-for-graph
// builder (so deadlock diagnoses can be compared byte-for-byte).

#include "arch/cost_model.hpp"
#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "sim/placement.hpp"
#include "sim/program.hpp"

#include <vector>

namespace armstice::sim {

class RefEngine {
public:
    /// Mirrors sim::Engine's constructor.
    RefEngine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
              arch::ModelKnobs knobs = {});

    /// Execute one program per rank. Must return a RunResult bit-identical
    /// to sim::Engine::run on the same inputs; throws sim::DeadlockError
    /// with an identical wait-for graph on a stall.
    [[nodiscard]] RunResult run(const std::vector<Program>& programs) const;

    /// Bundle variant: materialises the full per-rank vector and runs it
    /// naively — deliberately ignorant of sharing, so it is the reference the
    /// production engine's bundle dedup and rank-equivalence collapse are
    /// differentially checked against.
    [[nodiscard]] RunResult run(const ProgramBundle& bundle) const;

private:
    const arch::SystemSpec* sys_;
    Placement placement_;
    double vec_quality_;
    arch::CostModel cost_;
    net::Network network_;
};

} // namespace armstice::sim
