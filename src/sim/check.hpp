#pragma once
// sim::check — the correctness-tooling subsystem (DESIGN.md §10). Three
// pillars:
//
//   1. Differential checking: generate random-but-reproducible program sets
//      and require sim::Engine and sim::RefEngine to produce bit-identical
//      RunResults — across the bundle/collapse pipeline (DESIGN.md §11) and
//      the trace-JIT superop executor vs the plain interpreter (§13, every
//      seed runs JIT-on and JIT-off).
//   2. Schedule-perturbation determinism: re-run each case under K nonzero
//      RunOptions::perturb_seed values and require the RunResult to stay
//      bit-identical while the pop order is scrambled.
//   3. Deadlock forensics: generate intentionally-deadlocking cases and
//      require every executor to throw sim::DeadlockError with a
//      byte-identical wait-for-graph report that names the planted fault.
//
// One generator serves the differential checker, the perturbation tests and
// the engine fuzz tests (tests/sim_testlib.hpp wraps it for gtest); the
// `simcheck` bench driver (bench/simcheck.cpp) runs the whole suite from the
// command line.

#include "arch/system.hpp"
#include "sim/engine.hpp"
#include "sim/program.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace armstice::sim::check {

/// Planted-deadlock flavours for GenConfig::deadlock.
enum class DeadlockKind {
    none = 0,
    unmatched_recv,    ///< one rank receives a (src, tag) nobody ever sends
    recv_cycle,        ///< ranks 0 -> 1 -> 2 -> 0 each recv before their send
    skipped_collective,///< every rank but one enters a final extra allreduce
};

struct GenConfig {
    int ranks = 0;   ///< 0 = derive from the seed (4..32)
    int rounds = 0;  ///< 0 = derive from the seed (3..10)
    bool allow_any_source = true;  ///< emit ANY_SOURCE funnel rounds
    bool allow_sendrecv = true;    ///< emit crossing mixed-tag pair rounds
    DeadlockKind deadlock = DeadlockKind::none;
};

struct GeneratedCase {
    int ranks = 0;
    std::vector<Program> programs;
    double total_flops = 0;  ///< sum of all ComputeOp flops (conservation check)
    DeadlockKind deadlock = DeadlockKind::none;
    /// recv_cycle: the blocking cycle the diagnosis must report.
    std::vector<int> planted_cycle;
    /// unmatched_recv / skipped_collective: the rank the fault points at
    /// (the never-sending source, resp. the rank that skipped).
    int planted_culprit = -1;
    std::string note;  ///< one-line human description of the case
};

/// Deterministic random program set for `seed`. Deadlock-free by
/// construction unless cfg.deadlock asks for a planted fault (appended after
/// the normal rounds, so the fault is the only reason the case stalls).
[[nodiscard]] GeneratedCase generate(std::uint64_t seed, const GenConfig& cfg = {});

/// Bitwise comparison of two RunResults: every double is compared by bit
/// pattern, counters exactly, phase maps key-by-key. Returns "" when
/// identical, else a one-line description of the first difference.
[[nodiscard]] std::string diff_results(const RunResult& a, const RunResult& b);

/// Run one case through Engine (canonical), RefEngine, and `perturbations`
/// perturbed Engine schedules; returns one failure string per violated
/// requirement (empty = case passed). Deadlock cases must make every
/// executor throw sim::DeadlockError with byte-identical reports matching
/// the planted fault. `sys` needs >= case ranks cores across two nodes.
[[nodiscard]] std::vector<std::string> check_case(const arch::SystemSpec& sys,
                                                  const GeneratedCase& gc,
                                                  int perturbations);

struct CheckConfig {
    std::uint64_t first_seed = 1;
    int seeds = 100;         ///< number of generated cases
    int ranks = 0;           ///< 0 = per-seed random rank count
    int perturbations = 8;   ///< perturbed schedules per case
    int deadlock_every = 8;  ///< every M-th case carries a planted deadlock (0 = never)
    int jobs = 1;            ///< checker threads (output is jobs-invariant)
};

struct CheckReport {
    int cases = 0;
    int deadlock_cases = 0;
    int perturbations = 0;
    std::vector<std::string> failures;  ///< "seed N: <violation>", seed-ordered

    [[nodiscard]] bool ok() const { return failures.empty(); }
    /// Deterministic multi-line summary (no timing — comparable across runs
    /// and job counts).
    [[nodiscard]] std::string render() const;
};

/// Run the whole differential/perturbation/deadlock suite. Cases execute on
/// cfg.jobs threads; failures are aggregated in seed order, so the report is
/// identical for any job count.
[[nodiscard]] CheckReport run_suite(const arch::SystemSpec& sys,
                                    const CheckConfig& cfg);

} // namespace armstice::sim::check
