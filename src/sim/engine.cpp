#include "sim/engine.hpp"

#include "sim/deadlock.hpp"
#include "sim/jit.hpp"
#include "util/error.hpp"
#include "util/fpadd.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

namespace armstice::sim {
namespace {

struct Message {
    int src = 0;
    int tag = 0;
    double arrival = 0;
};

/// One (src, dst) message FIFO. Head-indexed with small-buffer storage: push
/// at the back, consume at `head`, reset when drained so storage is reused.
/// Messages live in the inline array until the queue outgrows it within one
/// drain cycle, then spill to the heap vector (sticky until the next drain).
/// Halo traffic keeps 1-2 messages in flight per (src, dst) pair, so the hot
/// path — the header fields plus the first inline slot are laid out to be
/// exactly one cache line — never touches a second heap allocation: at 10^3
/// ranks the old vector<Message> indirection made every send and every match
/// a chain of dependent out-of-cache loads.
///
/// All queues of a run live in ONE flat arena (run_impl's `qarena`), and a
/// mailbox is just a tiny src->slot index. A compiled send/recv step carries
/// its queue's arena slot, so delivery is a single computed address — no
/// dependent loads to chase before the line can even be fetched, which also
/// makes the next few steps' queues prefetchable while the current step
/// executes.
struct SrcQueue {
    static constexpr std::uint32_t kInline = 3;
    int src = 0;
    std::uint32_t head = 0;
    std::uint32_t count = 0;    ///< logical size ([0, head) consumed)
    std::uint32_t spilled = 0;  ///< messages live in `spill`, not `inl`
    Message inl[kInline];
    std::vector<Message> spill;

    [[nodiscard]] const Message* data() const {
        return spilled ? spill.data() : inl;
    }
    [[nodiscard]] Message* data() { return spilled ? spill.data() : inl; }
    [[nodiscard]] std::uint32_t size() const { return count; }
    void push_back(const Message& m) {
        if (!spilled && count < kInline) {
            inl[count++] = m;
            return;
        }
        if (!spilled) {
            spill.assign(inl, inl + count);
            spilled = 1;
        }
        spill.push_back(m);
        ++count;
    }
    void reset() {
        head = 0;
        count = 0;
        spilled = 0;
        spill.clear();  // capacity kept: repeated spills stay allocation-free
    }
    /// Remove the message at `i` (mid-queue tag mismatch — rare), keeping
    /// FIFO order of the rest.
    void erase_at(std::uint32_t i) {
        Message* d = data();
        for (std::uint32_t j = i + 1; j < count; ++j) d[j - 1] = d[j];
        --count;
        if (spilled) spill.pop_back();
    }
    /// Consume the matched message at `i` (head-advance fast path).
    void consume(std::uint32_t i) {
        if (i == head) {
            if (++head == count) reset();
        } else {
            erase_at(i);
        }
    }
};

/// One rank's inbox: (source rank, qarena slot) pairs. Ranks receive from a
/// handful of sources (halo neighbours), so the list is a small linearly-
/// scanned vector — 8 bytes per source, one cache line for 8 neighbours.
struct Mailbox {
    struct SrcSlot {
        int src;
        std::uint32_t slot;  ///< index into run_impl's qarena
    };
    std::vector<SrcSlot> srcs;
};

enum class BlockKind { none, recv, collective };

/// One *simulation class*: a set of ranks whose futures are provably
/// identical (same Program object, same ExecContext class) executing as one
/// state machine (DESIGN.md §11). A singleton class is exactly the old
/// per-rank state. Collapsed classes split — lazily, the moment the next op
/// could break the symmetry — into subclasses that inherit the shared state,
/// so every rank's trajectory is bit-identical to an uncollapsed run.
/// Absolute-addressed p2p and noise-stretched compute split to singletons;
/// relative-addressed p2p (the halo form) splits by *group*, peeling off
/// only the members whose hop tier or message arrival actually diverges.
struct SimClass {
    // Execution state (what RankState used to hold).
    std::size_t pc = 0;
    double time = 0;
    BlockKind blocked = BlockKind::none;
    int want_src = kAnySource;
    int want_tag = 0;
    /// want_src is a rank *offset* (class blocked on a relative recv; each
    /// member m waits on m + want_src). Never true alongside a wildcard:
    /// relative receives are explicit-source by construction.
    bool want_rel = false;
    int coll_count = 0;      ///< collectives entered (per member)
    PhaseId mark_id = kNoPhase;  ///< current MarkOp label (kNoPhase = none)
    bool finished = false;
    bool queued = false;
    bool any_grant = false;  ///< quiescence grant for an ANY_SOURCE recv
    // Class identity.
    const Program* prog = nullptr;
    std::uint32_t ctx = 0;   ///< ExecContext class (cost-memo row)
    int rep = 0;             ///< lowest member rank; the one "executing"
    int size = 1;            ///< member count
    std::vector<int> members;  ///< ascending; members[0] == rep
    /// Verified relative-send hop tiers: (rank offset -> hop tier, -1 =
    /// on-node), recorded only when the tier is uniform across members.
    /// Membership only ever shrinks, and uniform-over-a-set implies
    /// uniform-over-every-subset, so split-off subclasses inherit entries
    /// soundly — each halo direction is proven once per class, not once per
    /// class per iteration.
    std::vector<std::pair<int, int>> rel_tiers;
    // Per-member results, replicated to every member at the end. Summing the
    // replicas in ascending rank order reproduces the uncollapsed reductions
    // bit-exactly because each member would have produced the same values.
    RankStats stats;
    double flops = 0;
    std::vector<double> phase;  ///< compute seconds per interned PhaseId
    // Trace-JIT state (DESIGN.md §13). `jit_link` is the superop block this
    // class most recently completed — the anchor for lazy block linking.
    // `jit_blk`/`jit_step` record a suspension point: a block whose recv
    // step found no message parks here and resumes mid-block on wake.
    // Splits copy these (a split never fires inside a block, so jit_blk is
    // null then); the inherited link is just a hint the singleton re-guards.
    const jit::Block* jit_link = nullptr;
    const jit::Block* jit_blk = nullptr;
    std::uint32_t jit_step = 0;
    // Run-table fast path: `rt` is the program's partition into straight-line
    // runs (shared, read-only), `run_idx` the class's monotone cursor into it
    // (programs are fully unrolled, so pc only moves forward), and
    // `run_blocks[id]` the verified Block for run content id `id` — filled
    // the first time each id resolves through the guarded/verified slow path,
    // then a plain load. Splits copy all three: a size>1 class only ever
    // memoizes rank-neutral blocks (the class-split guard interprets p2p and
    // noise-stretched runs), so inherited entries are valid for any rep.
    const jit::RunTable* rt = nullptr;
    std::uint32_t run_idx = 0;
    std::vector<const jit::Block*> run_blocks;
};

enum class CollKind { none, allreduce, barrier, alltoall };

struct Collective {
    CollKind kind = CollKind::none;
    double bytes = 0;
    int arrived = 0;         ///< ranks (not classes) that have entered
    double max_time = 0;
    std::vector<std::uint32_t> waiters;  ///< blocked class indices
    double completion = 0;
};

/// Memoized CostModel pricing for one phase content (cost_signature key):
/// `dt[cls]` is the priced time under ExecContext class `cls`. `rep` copies
/// the first phase seen with this key (kept inline so the hot-path content
/// check never chases a pointer into another rank's program); an op whose
/// phase disagrees with `rep` (hash collision) is priced directly and never
/// shares the slot. `rep_addr` short-circuits the content check when ranks
/// share one program object (ProgramBundle) or one pooled phase.
struct CostEntry {
    arch::ComputePhase rep;
    const arch::ComputePhase* rep_addr = nullptr;
    std::vector<double> dt;
    std::vector<char> have;
};

} // namespace

double noise_sample(int rank, std::size_t op_index) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(rank) << 32) ^ op_index;
    const double u =
        static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    return std::min(8.0, -std::log1p(-u));
}

double RunResult::mean_compute() const {
    double s = 0;
    for (const auto& r : ranks) s += r.compute;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_recv_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.recv_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_collective_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.collective_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

Engine::Engine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
               arch::ModelKnobs knobs)
    : sys_(&sys),
      placement_(std::move(placement)),
      vec_quality_(vec_quality),
      cost_(knobs),
      network_(sys.net, placement_.nodes()) {
    ARMSTICE_CHECK(vec_quality_ > 0.0 && vec_quality_ <= 1.0,
                   "vec_quality must be in (0,1]");
}

RunResult Engine::run(const std::vector<Program>& programs, Trace* trace) const {
    return run(programs, RunOptions{}, trace);
}

RunResult Engine::run(const ProgramBundle& bundle, Trace* trace) const {
    return run(bundle, RunOptions{}, trace);
}

RunResult Engine::run(const std::vector<Program>& programs, const RunOptions& opts,
                      Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(static_cast<int>(programs.size()) == n,
                   util::format("programs (%zu) != ranks (%d)", programs.size(), n));
    std::vector<const Program*> progs;
    progs.reserve(programs.size());
    for (const auto& p : programs) progs.push_back(&p);
    return run_impl(progs, trace, opts);
}

RunResult Engine::run(const ProgramBundle& bundle, const RunOptions& opts,
                      Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(bundle.ranks() == n,
                   util::format("bundle ranks (%d) != ranks (%d)", bundle.ranks(), n));
    std::vector<const Program*> progs;
    progs.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) progs.push_back(&bundle.of(r));
    return run_impl(progs, trace, opts);
}

RunResult Engine::run_impl(const std::vector<const Program*>& progs,
                           Trace* trace, const RunOptions& opts) const {
    const int n = placement_.ranks();

    const net::CollectiveModel coll_model(network_);
    // Collective layout from the *actual* placement occupancy (Placement::
    // comm_layout, shared with sim::RefEngine so both price collectives
    // identically).
    const net::CommLayout layout = placement_.comm_layout();

    // ExecContext equivalence classes: pricing depends only on the context
    // fields, and SPMD placements produce a handful of distinct contexts
    // (often one), so phases are priced once per (content, class) instead of
    // once per rank. Exact field equality keeps results bit-identical.
    std::vector<arch::ExecContext> class_ctx;
    std::vector<std::uint32_t> ctx_of(static_cast<std::size_t>(n), 0);
    // One-slot memo over the classification: exec_context is a pure function
    // of (node, first_domain, domains_spanned) for fixed vec_quality and
    // threads, and block placements lay consecutive ranks on one domain, so
    // runs of ranks resolve without rebuilding + re-comparing the context.
    // At 10^6 SPMD ranks this loop used to be a measurable slice of the run.
    int memo_node = -1, memo_dom = -1, memo_span = -1;
    std::uint32_t memo_cc = 0;
    for (int r = 0; r < n; ++r) {
        const RankLoc& l = placement_.loc(r);
        if (l.node == memo_node && l.first_domain == memo_dom &&
            l.domains_spanned == memo_span) {
            ctx_of[static_cast<std::size_t>(r)] = memo_cc;
            continue;
        }
        const arch::ExecContext ctx = placement_.exec_context(r, vec_quality_);
        std::uint32_t cc = UINT32_MAX;
        for (std::size_t i = 0; i < class_ctx.size(); ++i) {
            const auto& c = class_ctx[i];
            if (c.cpu == ctx.cpu && c.vec_quality == ctx.vec_quality &&
                c.threads == ctx.threads &&
                c.streams_on_domain == ctx.streams_on_domain &&
                c.domains_spanned == ctx.domains_spanned) {
                cc = static_cast<std::uint32_t>(i);
                break;
            }
        }
        if (cc == UINT32_MAX) {
            cc = static_cast<std::uint32_t>(class_ctx.size());
            class_ctx.push_back(ctx);
        }
        ctx_of[static_cast<std::size_t>(r)] = cc;
        memo_node = l.node;
        memo_dom = l.first_domain;
        memo_span = l.domains_spanned;
        memo_cc = cc;
    }
    const std::size_t n_classes = class_ctx.size();
    std::unordered_map<std::uint64_t, CostEntry> cost_memo;
    // One-slot cache over cost_memo: consecutive compute ops (and SPMD peers
    // scheduled back to back) repeat the same cost_key, and unordered_map
    // nodes are pointer-stable, so the hit path skips the hash probe.
    // cost_signature is never 0, so 0 is a safe empty sentinel.
    std::uint64_t memo_last_key = 0;
    CostEntry* memo_last = nullptr;
    // Memoized pricing of one compute op under ExecContext class `cc`
    // (before per-rank noise). Shared by the interpreter's ComputeOp branch
    // and the JIT compiler, so a block's precomputed cost is the *same
    // double* the interpreter would produce — same memo slot, same fallback
    // on a cost_signature collision.
    const auto price_compute = [&](const ComputeOp& c,
                                   const arch::ComputePhase& phase,
                                   std::uint32_t cc) -> double {
        CostEntry* entry_p;
        if (c.cost_key == memo_last_key) {
            entry_p = memo_last;  // consecutive ops repeat phases
        } else {
            entry_p = &cost_memo[c.cost_key];  // nodes are stable
            memo_last_key = c.cost_key;
            memo_last = entry_p;
        }
        auto& entry = *entry_p;
        if (entry.rep_addr == nullptr) {
            entry.rep = phase;
            entry.rep_addr = &phase;
            entry.dt.assign(n_classes, 0.0);
            entry.have.assign(n_classes, 0);
        }
        if (entry.rep_addr == &phase || arch::same_cost_inputs(entry.rep, phase)) {
            if (!entry.have[cc]) {
                // Bit-identical across sharers: explain() reads only the
                // (bitwise equal) same_cost_inputs fields.
                entry.dt[cc] = cost_.phase_time(phase, class_ctx[cc]);
                entry.have[cc] = 1;
            }
            return entry.dt[cc];
        }
        // Hash collision between different phase contents: price this op
        // directly rather than share a wrong time.
        return cost_.phase_time(phase, class_ctx[cc]);
    };

    // --- Simulation classes (rank-equivalence collapse, DESIGN.md §11) ---
    // Ranks sharing one Program object (ProgramBundle dedup) and one
    // ExecContext class start in one SimClass and execute once. Program
    // *identity* (not content) is the key: the per-rank-vector run() overload
    // passes n distinct pointers and degenerates to n singletons, preserving
    // its exact legacy behaviour. Tracing needs per-rank spans, so a Trace
    // forces singletons too.
    const bool collapse = opts.collapse && trace == nullptr;
    std::vector<SimClass> cls;
    std::vector<std::uint32_t> cls_of(static_cast<std::size_t>(n), 0);
    if (collapse) {
        std::map<std::pair<const Program*, std::uint32_t>, std::uint32_t> groups;
        for (int r = 0; r < n; ++r) {
            const std::uint32_t cc = ctx_of[static_cast<std::size_t>(r)];
            const auto key = std::make_pair(progs[static_cast<std::size_t>(r)], cc);
            auto [it, fresh] = groups.emplace(key, static_cast<std::uint32_t>(cls.size()));
            if (fresh) {
                SimClass s;
                s.prog = progs[static_cast<std::size_t>(r)];
                s.ctx = cc;
                s.rep = r;
                s.size = 0;
                cls.push_back(std::move(s));
            }
            auto& c = cls[it->second];
            c.members.push_back(r);
            ++c.size;
            cls_of[static_cast<std::size_t>(r)] = it->second;
        }
    } else {
        cls.resize(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            auto& c = cls[static_cast<std::size_t>(r)];
            c.prog = progs[static_cast<std::size_t>(r)];
            c.ctx = ctx_of[static_cast<std::size_t>(r)];
            c.rep = r;
            cls_of[static_cast<std::size_t>(r)] = static_cast<std::uint32_t>(r);
        }
    }

    RunResult result;

    // Per-phase compute seconds accumulate *per class* (indexed by interned
    // PhaseId) in program order, which no schedule can permute, and reduce
    // across ranks in ascending rank order at the end — so the FP sums are
    // schedule-invariant (DESIGN.md §10.2) and collapse-invariant (every
    // member replicates its class's values). `phase_seen` (not acc != 0)
    // mirrors the old map semantics: executing a zero-cost phase still
    // creates its entry. total_flops gets the same treatment via
    // SimClass::flops.
    std::vector<char> phase_seen;
    const auto accum_phase = [&](SimClass& s, PhaseId id, double dt) {
        if (id >= s.phase.size()) s.phase.resize(id + 1, 0.0);
        if (id >= phase_seen.size()) phase_seen.resize(id + 1, 0);
        s.phase[id] += dt;
        phase_seen[id] = 1;
    };

    // P2p state — per-rank home nodes and mailboxes — is materialised lazily
    // on the first SendOp, so purely collective/compute workloads (the ones
    // that stay collapsed) never allocate O(total ranks) arrays for it.
    const auto& np = network_.params();
    const auto& topo = network_.topology();
    std::vector<int> rank_node;
    std::vector<Mailbox> mailbox;
    /// Every SrcQueue of the run, in creation order (mailbox entries hold
    /// slots into this). Indices stay valid across growth; the backing array
    /// only moves between block runs (queues are created by the interpreter
    /// or at block compile time, never inside a block execution).
    std::vector<SrcQueue> qarena;
    bool p2p_live = false;
    const auto ensure_p2p = [&] {
        if (p2p_live) return;
        rank_node.resize(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            rank_node[static_cast<std::size_t>(r)] = placement_.loc(r).node;
        }
        mailbox.assign(static_cast<std::size_t>(n), Mailbox{});
        p2p_live = true;
    };
    /// Arena slot of src's queue in `box`, creating it if absent.
    const auto slot_for = [&](Mailbox& box, int src) -> std::uint32_t {
        for (const auto& e : box.srcs) {
            if (e.src == src) return e.slot;
        }
        const auto slot = static_cast<std::uint32_t>(qarena.size());
        qarena.emplace_back();
        qarena.back().src = src;
        box.srcs.push_back(Mailbox::SrcSlot{src, slot});
        return slot;
    };

    // Tiered message-cost table: Network::p2p_time(a, b, bytes) evaluates
    // ((base + bytes/bw) + msg_overhead) where base depends on (a, b) only
    // through the hop count — latency_s + hops*per_hop_s off-node (hops is
    // in [1, diameter], a topology-contract the counting-form diameter()
    // overrides pin) and shm_latency_s on-node. Precomputing base per hop
    // tier with the identical expression keeps the split bit-exact while
    // replacing the old O(nodes^2) node-pair table, whose n_nodes <= 256
    // cutoff silently changed nothing but cost minutes of setup and gigabytes
    // at many-thousand-node scale.
    std::vector<double> hop_base(static_cast<std::size_t>(topo.diameter()) + 1);
    for (std::size_t h = 0; h < hop_base.size(); ++h) {
        hop_base[h] = np.latency_s + static_cast<int>(h) * np.per_hop_s;
    }

    std::vector<Collective> collectives;
    collectives.reserve(64);
    // Collective pricing is a pure function of (kind, bytes) for a fixed
    // layout; memoize it so million-rank iteration loops price each distinct
    // collective once instead of re-walking the topology model per ordinal.
    struct CollPrice {
        CollKind kind;
        double bytes;
        double cost;
    };
    std::vector<CollPrice> coll_prices;
    const auto collective_cost = [&](CollKind kind, double bytes) {
        for (const auto& cp : coll_prices) {
            if (cp.kind == kind && cp.bytes == bytes) return cp.cost;
        }
        double cost = 0.0;
        switch (kind) {
            case CollKind::allreduce: cost = coll_model.allreduce(layout, bytes); break;
            case CollKind::barrier: cost = coll_model.barrier(layout); break;
            case CollKind::alltoall: cost = coll_model.alltoall(layout, bytes); break;
            case CollKind::none: break;
        }
        coll_prices.push_back(CollPrice{kind, bytes, cost});
        return cost;
    };

    // FIFO run queue of class indices as a head-indexed vector (contiguous;
    // compacts when drained, so it stays O(live entries) despite monotonic
    // pushes — and O(classes), not O(ranks), while classes stay collapsed).
    // Pop order is an order-free choice (every schedule produces
    // bit-identical results — the perturbation adversary in sim::check pins
    // exactly that), and FIFO is deliberate: a woken receiver runs only
    // after every already-runnable sender has drained its sends, so each
    // resume consumes a *batch* of messages. A LIFO stack (tried) resumes
    // the receiver after the first message and re-suspends it on the next
    // recv — 5x the suspend/dispatch cycles on halo-exchange programs.
    std::vector<std::uint32_t> runnable;
    runnable.reserve(cls.size() * 2);
    std::size_t run_head = 0;
    for (std::uint32_t i = 0; i < cls.size(); ++i) {
        cls[i].queued = true;
        runnable.push_back(i);
    }
    int finished_ranks = 0;

    const auto wake = [&](std::uint32_t ci) {
        auto& c = cls[ci];
        if (!c.queued && !c.finished) {
            c.queued = true;
            runnable.push_back(ci);
        }
    };

    // Split accounting: every split event is attributed to the op kind that
    // broke the symmetry (bench_engine reports the breakdown).
    enum class SplitWhy { p2p, noise, placement };
    const auto count_split = [&](SplitWhy why) {
        ++result.collapse_splits;
        switch (why) {
            case SplitWhy::p2p: ++result.collapse_split_p2p; break;
            case SplitWhy::noise: ++result.collapse_split_noise; break;
            case SplitWhy::placement: ++result.collapse_split_placement; break;
        }
    };

    // Full split: the moment class ci's next op could distinguish members
    // per rank — an absolute-addressed p2p op, or a ComputeOp under nonzero
    // os_noise (the noise draw is rank-keyed) — every member except the
    // representative peels off into a singleton inheriting the shared state
    // verbatim. Members have been bit-identical up to here by induction, so
    // the inherited state *is* each member's uncollapsed state. New
    // singletons enqueue in ascending member order; collectives never split
    // (their effect on every waiter is symmetric) and MarkOps are per-class.
    // Relative-addressed p2p takes the *grouped* split below instead.
    const auto split_class = [&](std::uint32_t ci, SplitWhy why) {
        std::vector<int> members = std::move(cls[ci].members);
        cls[ci].members.clear();
        cls[ci].size = 1;
        count_split(why);
        const SimClass base = cls[ci];  // state snapshot (members already cut)
        for (std::size_t i = 1; i < members.size(); ++i) {
            SimClass s = base;
            s.rep = members[i];
            s.queued = true;
            cls_of[static_cast<std::size_t>(members[i])] =
                static_cast<std::uint32_t>(cls.size());
            runnable.push_back(static_cast<std::uint32_t>(cls.size()));
            cls.push_back(std::move(s));
        }
        // cls[ci] keeps members[0] == its rep; it is already dequeued and
        // continues executing the op that triggered the split.
    };

    // First message matching (want_src, want_tag). Per-source FIFOs preserve
    // send order within a source (MPI non-overtaking); for MPI_ANY_SOURCE the
    // cross-source winner is the candidate with the smallest (arrival time,
    // source rank) key. Arrival = sender issue time + p2p latency, both pure
    // functions of the programs, so — unlike a global send-issue counter —
    // the match cannot depend on the order the engine happened to run ranks
    // (DESIGN.md §10.2). Only singletons reach this path (wildcard recvs
    // split first; merged relative recvs match per member via rel_probe), so
    // the class rep is the receiving rank.
    const auto find_recv =
        [&](const SimClass& s) -> std::pair<SrcQueue*, std::uint32_t> {
        if (!p2p_live) return {nullptr, 0};
        auto& box = mailbox[static_cast<std::size_t>(s.rep)];
        SrcQueue* best_sq = nullptr;
        std::uint32_t best_i = 0;
        for (const auto& e : box.srcs) {
            if (s.want_src != kAnySource && e.src != s.want_src) continue;
            auto& sq = qarena[e.slot];
            const Message* msgs = sq.data();
            for (std::uint32_t i = sq.head; i < sq.size(); ++i) {
                if (msgs[i].tag != s.want_tag) continue;
                if (best_sq == nullptr ||
                    msgs[i].arrival < best_sq->data()[best_i].arrival ||
                    (msgs[i].arrival == best_sq->data()[best_i].arrival &&
                     sq.src < best_sq->src)) {
                    best_sq = &sq;
                    best_i = i;
                }
                break;  // first tag match per source is the only candidate
            }
            if (s.want_src != kAnySource) break;
        }
        return {best_sq, best_i};
    };
    const auto try_recv = [&](const SimClass& s) -> std::optional<Message> {
        auto [best_sq, best_i] = find_recv(s);
        if (best_sq == nullptr) return std::nullopt;
        Message m = best_sq->data()[best_i];
        best_sq->consume(best_i);
        return m;
    };

    // One bit per rank: "blocked on an explicit-source recv" — exactly the
    // condition under which a send must wake its destination (ANY_SOURCE
    // waiters resolve only at quiescence). Testing the bit keeps the send
    // fast path out of cls_of/cls entirely: the bitmap is 128 bytes per 10^3
    // ranks and stays L1-resident, while cls[cls_of[dst]] is two dependent
    // loads into hundreds of KB of class state. Maintained at every
    // transition of (blocked == recv && want_src != kAnySource): set on
    // explicit-recv block (interpreter and in-block suspend), cleared on
    // every match. The bit is keyed by the *receiving rank*: a singleton's
    // class rep, or — for a merged class blocked on a relative receive —
    // every member (so any member's delivery wakes the class).
    std::vector<std::uint64_t> recv_waiting(
        (static_cast<std::size_t>(n) + 63) / 64, 0);
    const auto set_recv_wait = [&](int rank) {
        recv_waiting[static_cast<std::size_t>(rank) >> 6] |=
            std::uint64_t{1} << (rank & 63);
    };
    const auto clr_recv_wait = [&](int rank) {
        recv_waiting[static_cast<std::size_t>(rank) >> 6] &=
            ~(std::uint64_t{1} << (rank & 63));
    };
    const auto recv_waiting_at = [&](int rank) -> bool {
        return (recv_waiting[static_cast<std::size_t>(rank) >> 6] >>
                (rank & 63)) &
               1;
    };

    // --- Relative-addressed p2p on merged classes (DESIGN.md §11) ----------
    // A relative send/recv (SendOp/RecvOp with rel == true; dst/src is a
    // rank offset) names the same *neighbour relationship* in every member
    // of a class, which is what lets a halo's interior ranks execute p2p
    // merged: the op is timing-equivalent across members whenever the hop
    // tier (sends) or the matched-message completion time (recvs) is
    // uniform, and where that uniformity breaks the class splits by *group*
    // — only the members on the broken side peel off, still merged.

    /// Per-member signatures for a grouped split, parallel to `members`.
    std::vector<std::uint64_t> glabels;

    // Grouped split: partition class ci's members by the signature in
    // `glabels`. The group containing the representative stays in place —
    // already dequeued, it re-executes the op that triggered the split — and
    // every other label peels off as ONE class that stays merged, enqueued
    // in first-appearance order. This is how the halo interior stays
    // collapsed: symmetry breaks along placement and arrival boundaries, not
    // per rank, so a full singleton split would shatter O(surface) structure
    // into O(ranks).
    const auto split_groups = [&](std::uint32_t ci, SplitWhy why) {
        count_split(why);
        const std::vector<int> members = std::move(cls[ci].members);
        std::vector<std::uint64_t> order;  // distinct labels, first-appearance
        for (const std::uint64_t l : glabels) {
            bool seen = false;
            for (const std::uint64_t o : order) seen = seen || o == l;
            if (!seen) order.push_back(l);
        }
        cls[ci].members.clear();
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (glabels[i] == order[0]) cls[ci].members.push_back(members[i]);
        }
        cls[ci].size = static_cast<int>(cls[ci].members.size());
        const SimClass base = cls[ci];  // snapshot after trimming members
        for (std::size_t g = 1; g < order.size(); ++g) {
            SimClass s = base;
            s.members.clear();
            for (std::size_t i = 0; i < members.size(); ++i) {
                if (glabels[i] == order[g]) s.members.push_back(members[i]);
            }
            s.size = static_cast<int>(s.members.size());
            s.rep = s.members[0];
            s.queued = true;
            const auto nc = static_cast<std::uint32_t>(cls.size());
            for (const int m : s.members) {
                cls_of[static_cast<std::size_t>(m)] = nc;
            }
            runnable.push_back(nc);
            cls.push_back(std::move(s));
        }
    };

    // Hop-tier signature of a relative send from member `m`: -1 when source
    // and destination share a node, else the hop count. Together with the
    // byte count this determines the transfer price, so "same tier for every
    // member" is exactly "same send timing for every member".
    const auto rel_tier = [&](int m, int delta) -> int {
        const int a = rank_node[static_cast<std::size_t>(m)];
        const int b = rank_node[static_cast<std::size_t>(m + delta)];
        return a == b ? -1 : topo.hops(a, b);
    };
    // Transfer seconds under one tier — the same expressions as the absolute
    // SendOp branch, so merged and singleton executions produce equal bits.
    const auto tier_price = [&](int tier, double bytes) -> double {
        if (tier < 0) {
            return np.shm_latency_s + bytes / np.shm_bandwidth +
                   np.msg_overhead_s;
        }
        return hop_base[static_cast<std::size_t>(tier)] + bytes / np.bandwidth +
               np.msg_overhead_s;
    };

    // Collapse-path classes always carry `members`; singletons from the
    // uncollapsed path or a full split leave it empty.
    const auto each_member = [&](const SimClass& s, auto&& f) {
        if (s.members.empty()) {
            f(s.rep);
        } else {
            for (const int m : s.members) f(m);
        }
    };

    /// "No pending match" signature: the all-ones NaN bit pattern, which a
    /// finite completion time can never produce.
    constexpr std::uint64_t kNoMatch = ~std::uint64_t{0};
    struct RelHit {
        std::uint32_t slot = UINT32_MAX;  ///< qarena slot, UINT32_MAX = none
        std::uint32_t idx = 0;
        double arrival = 0;
    };
    std::vector<RelHit> rel_hits;  // scratch, parallel to glabels
    // First tag match in the (m + delta -> m) FIFO — the unique candidate an
    // explicit-source receive can consume, and (FIFO order) a choice that
    // later deliveries can never change.
    const auto rel_match = [&](int m, int delta, int tag) -> RelHit {
        RelHit h;
        if (!p2p_live) return h;
        const auto& box = mailbox[static_cast<std::size_t>(m)];
        const int src = m + delta;
        for (const auto& e : box.srcs) {
            if (e.src != src) continue;
            const auto& sq = qarena[e.slot];
            const Message* msgs = sq.data();
            for (std::uint32_t i = sq.head; i < sq.size(); ++i) {
                if (msgs[i].tag != tag) continue;
                h.slot = e.slot;
                h.idx = i;
                h.arrival = msgs[i].arrival;
                break;
            }
            break;
        }
        return h;
    };
    // Per-member match signatures for a relative receive over class `s`:
    // fills rel_hits and glabels (the bit pattern of the member's completion
    // time max(class time, arrival), or kNoMatch). Returns {any, all}.
    const auto rel_probe = [&](const SimClass& s, int delta,
                               int tag) -> std::pair<bool, bool> {
        rel_hits.clear();
        glabels.clear();
        bool any = false;
        bool all = true;
        each_member(s, [&](int m) {
            const RelHit h = rel_match(m, delta, tag);
            rel_hits.push_back(h);
            if (h.slot == UINT32_MAX) {
                all = false;
                glabels.push_back(kNoMatch);
            } else {
                any = true;
                const double done = h.arrival > s.time ? h.arrival : s.time;
                std::uint64_t bits;
                std::memcpy(&bits, &done, sizeof bits);
                glabels.push_back(bits);
            }
        });
        return {any, all};
    };

    // Execute one relative SendOp for class ci (any size). Every member m
    // sends to m + delta at the same class time with the same bytes, so with
    // a uniform hop tier the price — and the sender-side time advance — is
    // one shared value, while delivery stays *physical*: one message into
    // each (m, m + delta) FIFO, exactly what the uncollapsed schedule would
    // enqueue (so absolute receives, wildcard receives and deadlock
    // forensics against merged senders need no special handling). Returns
    // false when the tier differs across members (node-edge members of a
    // block placement): the class group-split by tier with pc unmoved and
    // the caller re-dispatches the now-uniform subgroups.
    const auto rel_send_exec = [&](std::uint32_t ci, const SendOp& snd) -> bool {
        ensure_p2p();
        {
            const SimClass& s = cls[ci];
            ARMSTICE_CHECK(snd.bytes >= 0, "negative message size");
            each_member(s, [&](int m) {
                const int dst = m + snd.dst;
                ARMSTICE_CHECK(dst >= 0 && dst < n, "send dst out of range");
            });
        }
        int tier = 0;
        if (cls[ci].size <= 1) {
            tier = rel_tier(cls[ci].rep, snd.dst);
        } else {
            auto& s = cls[ci];
            bool cached = false;
            for (const auto& [d, t] : s.rel_tiers) {
                if (d == snd.dst) {
                    tier = t;
                    cached = true;
                    break;
                }
            }
            if (!cached) {
                const int t0 = rel_tier(s.members[0], snd.dst);
                bool uniform = true;
                glabels.clear();
                for (const int m : s.members) {
                    const int t = rel_tier(m, snd.dst);
                    glabels.push_back(static_cast<std::uint32_t>(t));
                    uniform = uniform && t == t0;
                }
                if (!uniform) {
                    split_groups(ci, SplitWhy::placement);
                    return false;
                }
                s.rel_tiers.emplace_back(snd.dst, t0);
                tier = t0;
            }
        }
        auto& s = cls[ci];
        const double p2p = tier_price(tier, snd.bytes);
        const double arrival = s.time + p2p;
        const double inject = np.msg_overhead_s + snd.bytes / np.injection_bw;
        s.time += inject;
        s.stats.injected_bytes += snd.bytes;
        ++s.stats.msgs_sent;
        each_member(s, [&](int m) {
            const int dst = m + snd.dst;
            qarena[slot_for(mailbox[static_cast<std::size_t>(dst)], m)]
                .push_back(Message{m, snd.tag, arrival});
            if (recv_waiting_at(dst)) {
                wake(cls_of[static_cast<std::size_t>(dst)]);
            }
        });
        ++s.pc;
        return true;
    };

    // Execute one relative RecvOp for class ci (any size). Each member m
    // matches its own (m + delta -> m) FIFO exactly as a singleton would;
    // the class advances merged only when every member has a match and all
    // completion times agree bit-for-bit. A *partial* match blocks rather
    // than splits: an explicit-source FIFO match is fixed once present, so
    // waiting for the stragglers' senders is schedule-equivalent, and the
    // transient rounds where some members' senders simply have not run yet
    // must not shatter the class — genuinely asymmetric cases are
    // group-split at quiescence. All-matched with disagreeing completions
    // splits immediately (more deliveries cannot change a fixed match).
    // Returns 1 matched (pc advanced), 0 group-split (pc unmoved, caller
    // re-dispatches), 2 blocked.
    const auto rel_recv_exec = [&](std::uint32_t ci, const RecvOp& rcv) -> int {
        {
            const SimClass& s = cls[ci];
            each_member(s, [&](int m) {
                const int src = m + rcv.src;
                ARMSTICE_CHECK(src >= 0 && src < n, "recv src out of range");
            });
        }
        auto& s = cls[ci];
        s.want_src = rcv.src;
        s.want_tag = rcv.tag;
        s.want_rel = true;
        const auto [any, all] = rel_probe(s, rcv.src, rcv.tag);
        (void)any;
        if (!all) {
            s.blocked = BlockKind::recv;
            each_member(s, [&](int m) { set_recv_wait(m); });
            return 2;
        }
        bool uniform = true;
        for (const std::uint64_t l : glabels) uniform = uniform && l == glabels[0];
        if (!uniform) {
            split_groups(ci, SplitWhy::p2p);
            return 0;
        }
        for (const RelHit& h : rel_hits) qarena[h.slot].consume(h.idx);
        double done;
        std::memcpy(&done, &glabels[0], sizeof done);
        // Uniform completion means either every arrival <= class time (no
        // wait anywhere) or every arrival equals `done` (> time), so the
        // per-member wait is one shared value, bit-equal to the singleton's
        // `arrival - time`.
        if (done > s.time) {
            s.stats.recv_wait += done - s.time;
            s.time = done;
        }
        ++s.stats.msgs_received;
        s.blocked = BlockKind::none;
        each_member(s, [&](int m) { clr_recv_wait(m); });
        ++s.pc;
        return 1;
    };
    // -----------------------------------------------------------------------

    const double os_noise = cost_.knobs().os_noise;
    // Schedule perturbation (sim::check): any nonzero seed permutes every
    // order-free choice the engine makes — the runnable pop order, the
    // quiescence resolver's scan order, and the order a completed
    // collective's waiters are processed in — and results must stay
    // bit-identical (DESIGN.md §10.2).
    util::Rng perturb_rng(opts.perturb_seed);
    const bool perturb = opts.perturb_seed != 0;

    // --- Trace-JIT superop execution (DESIGN.md §13) -----------------------
    // Straight-line runs (compute/send/explicit-recv/mark, ending at a
    // wildcard recv, collective, or program end) compile once into
    // jit::Blocks with per-step costs precomputed through the SAME memo the
    // interpreter uses, then execute as tight loops that replicate the
    // interpreter's FP op sequence exactly — dispatch, memo probes, phase
    // compares, hop lookups and validation are hoisted to compile time, the
    // arithmetic is not, so results stay bit-identical. Blocks are
    // content-keyed (programs are fully unrolled: iteration 19's body sits
    // at a different pc but hashes to iteration 0's block) and lazily
    // linked: each class remembers its last block, each block its usual
    // successor, so steady-state iterations skip even the hash probe.
    // Perturbed runs interpret (the determinism adversary must exercise raw
    // per-op scheduling) and traced runs interpret (per-span recording).
    // The cache lives in this run_impl frame: concurrent const run() calls
    // share nothing mutable, and nothing survives to need cross-run
    // invalidation.
    const bool jit_enabled = opts.jit && opts.perturb_seed == 0 && trace == nullptr;
    jit::BlockCache jcache;
    const std::uint64_t knobs_fp =
        jit_enabled ? jit::knobs_fingerprint(cost_.knobs()) : 0;

    // OpKey sidecar for programs that never went through a ProgramBundle
    // (raw vector<Program> runs): derived lazily once per distinct program
    // per run. Bundle runs take the prog.op_keys fast path.
    std::unordered_map<const Program*, std::vector<OpKey>> derived_keys;
    const auto keys_of = [&](const Program& prog) -> const OpKey* {
        if (!prog.op_keys.empty()) return prog.op_keys.data();
        auto& v = derived_keys[&prog];
        if (v.empty()) v = compute_op_keys(prog);
        return v.data();
    };

    // Per-program run tables. Bundle-finalised programs carry one already
    // (Program::op_runs — built once, amortised across every run); raw
    // programs derive one per run here, like derived_keys. unordered_map
    // node stability keeps the SimClass::rt pointers valid as the map grows.
    std::unordered_map<const Program*, jit::RunTable> derived_runs;
    if (jit_enabled) {
        for (auto& c : cls) {
            if (c.prog->op_runs.source_ops == c.prog->ops.size()) {
                c.rt = &c.prog->op_runs;
                continue;
            }
            auto [it, fresh] = derived_runs.try_emplace(c.prog);
            if (fresh) {
                it->second =
                    compute_op_runs(keys_of(*c.prog), c.prog->ops.size());
            }
            c.rt = &it->second;
        }
    }

    // Step::qidx is a qarena slot (slot_for): slots are never removed or
    // reassigned within a run, so a compiled index stays valid, and creating
    // an empty queue at compile time is observationally inert (it contributes
    // no candidates to matching, only scan order).

    const auto compile_block = [&](const Program& prog, std::size_t pc,
                                   const jit::RunScan& scan, std::uint32_t cc,
                                   int rep, bool resolve_rel) -> const jit::Block* {
        jit::Guards g;
        g.model_version = arch::kModelVersion;
        g.knobs_fp = knobs_fp;
        g.ctx = cc;
        // Only steps with *resolved* addresses pin a block to its compiling
        // rank (qidx and transfer price are rank-resolved at compile time):
        // absolute p2p always, and relative p2p when compiling for a
        // singleton (resolve_rel — the fast path that folds rel ops down to
        // the precomputed absolute form). A merged class keeps rel steps
        // symbolic, so its block stays rank-neutral and is shared across
        // every member — and across classes. Pinned rel blocks can never be
        // claimed by a merged class: a rank lives in exactly one class and
        // classes only ever split, so once the singleton exists no merged
        // class can have the same representative.
        g.rank = (scan.has_abs_p2p || (resolve_rel && scan.has_p2p)) ? rep : -1;
        if (scan.has_p2p) ensure_p2p();  // queue indices resolve into mailboxes
        jit::CompileEnv env;
        env.price = [&, cc](const ComputeOp& c, const arch::ComputePhase& ph) {
            return price_compute(c, ph, cc);
        };
        env.p2p_seconds = [&, rep](int dst, double bytes) {
            ARMSTICE_CHECK(dst >= 0 && dst < n, "send dst out of range");
            ARMSTICE_CHECK(bytes >= 0, "negative message size");
            const int src_node = rank_node[static_cast<std::size_t>(rep)];
            const int dst_node = rank_node[static_cast<std::size_t>(dst)];
            if (src_node == dst_node) {
                return np.shm_latency_s + bytes / np.shm_bandwidth +
                       np.msg_overhead_s;
            }
            return hop_base[static_cast<std::size_t>(
                       topo.hops(src_node, dst_node))] +
                   bytes / np.bandwidth + np.msg_overhead_s;
        };
        env.send_qidx = [&, rep](int dst) {
            return static_cast<int>(
                slot_for(mailbox[static_cast<std::size_t>(dst)], rep));
        };
        env.recv_qidx = [&, rep](int src) {
            ARMSTICE_CHECK(src >= 0 && src < n, "recv src out of range");
            return static_cast<int>(
                slot_for(mailbox[static_cast<std::size_t>(rep)], src));
        };
        env.msg_overhead_s = np.msg_overhead_s;
        env.injection_bw = np.injection_bw;
        env.resolve_rel_rank = resolve_rel ? rep : -1;
        const jit::Block* blk = jcache.insert(jit::compile(prog, pc, scan, g, env));
        ++result.jit_blocks;
        return blk;
    };

    // Run block `blk` for class ci from step `step0` (0 = fresh dispatch,
    // else a resume after an in-block recv blocked). Returns 1 when the
    // block ran to completion, -1 when the class suspended (in-block recv
    // without a message; parked via jit_blk/jit_step), 0 when a relative
    // p2p step group-split the class mid-block — pc then sits at the split
    // op and the interpreter takes over the dispatch. The step bodies are
    // the interpreter branches minus everything precomputed; `pc` tracks per
    // step so noise draws and deadlock/forensic snapshots see the exact
    // interpreter state.
    //
    // The class's hot scalars live in locals for the whole run: the step
    // bodies store into mailboxes, the runnable queue and other classes, and
    // the compiler cannot prove those stores don't alias `s` — keeping the
    // state in `s` directly forces a reload + re-store of time/pc/stats
    // through memory on every step, which at ~10 machine instructions per
    // step is most of the loop.
    const auto execute_block = [&](std::uint32_t ci, const jit::Block* blk,
                                   std::uint32_t step0) -> int {
        auto& s = cls[ci];
        auto& stats = s.stats;
        const int r = s.rep;
        ++result.jit_block_runs;
        if (blk->has_p2p) ensure_p2p();
        const jit::Step* const steps = blk->steps.data();
        const auto nsteps = static_cast<std::uint32_t>(blk->steps.size());
        // Hoisted across absolute steps (compile_block resolved every slot,
        // so they never grow the arena); refreshed after relative sends,
        // whose per-member slot_for calls can.
        SrcQueue* qa = qarena.data();
        double t = s.time;
        std::size_t pc = s.pc;
        double flops = s.flops;
        double compute_acc = stats.compute;
        double recv_wait_acc = stats.recv_wait;
        double inj_bytes = stats.injected_bytes;
        int msgs_sent = stats.msgs_sent;
        int msgs_recv = stats.msgs_received;
        PhaseId mark = s.mark_id;
        const auto writeback = [&] {
            s.time = t;
            s.pc = pc;
            s.flops = flops;
            s.mark_id = mark;
            stats.compute = compute_acc;
            stats.recv_wait = recv_wait_acc;
            stats.injected_bytes = inj_bytes;
            stats.msgs_sent = msgs_sent;
            stats.msgs_received = msgs_recv;
        };
        // Relative p2p steps run through the shared class-state helpers
        // (rel_send_exec / rel_recv_exec advance s directly), so the hot
        // locals round-trip through a writeback + reload around them. The
        // O(size) member fan-out dwarfs that cost.
        const auto reload = [&] {
            t = s.time;
            pc = s.pc;
            flops = s.flops;
            mark = s.mark_id;
            compute_acc = stats.compute;
            recv_wait_acc = stats.recv_wait;
            inj_bytes = stats.injected_bytes;
            msgs_sent = stats.msgs_sent;
            msgs_recv = stats.msgs_received;
        };
        for (std::uint32_t i = step0; i < nsteps; ++i) {
            const jit::Step& st = steps[i];
            switch (st.kind) {
                case jit::StepKind::compute: {
                    double dt = st.cost;
                    if (os_noise > 0) {
                        dt *= 1.0 + os_noise * noise_sample(r, pc);
                    }
                    const PhaseId label_id = mark != kNoPhase ? mark : st.label;
                    t += dt;
                    compute_acc += dt;
                    flops += st.aux;
                    accum_phase(s, label_id, dt);
                    ++pc;
                    break;
                }
                case jit::StepKind::send: {
                    const double arrival = t + st.cost;
                    t += st.aux;
                    inj_bytes += st.bytes;
                    ++msgs_sent;
                    // st.qidx is the (r -> dst) queue's arena slot (compiled
                    // under the rank guard) — the mailbox scan, precomputed
                    // down to one computed address.
                    qa[static_cast<std::size_t>(st.qidx)].push_back(
                        Message{r, st.tag, arrival});
                    if (recv_waiting_at(st.a_int)) {
                        wake(cls_of[static_cast<std::size_t>(st.a_int)]);
                    }
                    ++pc;
                    break;
                }
                case jit::StepKind::recv: {
                    // want_src/want_tag stay current even on the matched
                    // path: the quiescence scan and deadlock forensics read
                    // them, exactly as after the interpreter's RecvOp.
                    s.want_src = st.a_int;
                    s.want_tag = st.tag;
                    s.want_rel = false;
                    // try_recv specialised to an explicit source: st.qidx is
                    // the (src -> r) queue's arena slot; the first tag match
                    // in FIFO order is the unique candidate, consumed with
                    // the same head-advance / mid-erase rule.
                    auto& sq = qa[static_cast<std::size_t>(st.qidx)];
                    const Message* msgs = sq.data();
                    std::uint32_t qi = sq.head;
                    const std::uint32_t qn = sq.size();
                    while (qi < qn && msgs[qi].tag != st.tag) ++qi;
                    if (qi < qn) {
                        const double arrival = msgs[qi].arrival;
                        sq.consume(qi);
                        if (arrival > t) {
                            recv_wait_acc += arrival - t;
                            t = arrival;
                        }
                        ++msgs_recv;
                        s.blocked = BlockKind::none;
                        clr_recv_wait(r);
                        ++pc;
                    } else {
                        s.blocked = BlockKind::recv;
                        set_recv_wait(r);
                        s.jit_blk = blk;
                        s.jit_step = i;
                        result.jit_ops += i - step0;
                        writeback();
                        return -1;
                    }
                    break;
                }
                case jit::StepKind::send_rel: {
                    writeback();
                    const SendOp op{st.a_int, st.bytes, st.tag, /*rel=*/true};
                    if (!rel_send_exec(ci, op)) {
                        // Hop tier diverged: the class group-split with pc
                        // at this op; the interpreter takes over (and the
                        // uniform subgroups re-enter the JIT next dispatch).
                        result.jit_ops += i - step0;
                        return 0;
                    }
                    reload();
                    qa = qarena.data();  // slot_for may have grown the arena
                    break;
                }
                case jit::StepKind::recv_rel: {
                    writeback();
                    const RecvOp op{st.a_int, st.tag, /*rel=*/true};
                    const int got = rel_recv_exec(ci, op);
                    if (got == 0) {
                        result.jit_ops += i - step0;
                        return 0;
                    }
                    if (got == 2) {
                        // Parked mid-block, mirroring the absolute recv
                        // suspension; rel_recv_exec already recorded the
                        // blocked/waiting state for every member.
                        s.jit_blk = blk;
                        s.jit_step = i;
                        result.jit_ops += i - step0;
                        return -1;
                    }
                    reload();
                    break;
                }
                case jit::StepKind::mark:
                    mark = st.label;
                    ++pc;
                    break;
            }
        }
        result.jit_ops += nsteps - step0;
        s.jit_link = blk;
        writeback();
        return 1;
    };

    // Block lookup for class ci at its current pc. Returns 1 when a block
    // ran to completion, -1 when it suspended on an in-block recv, 0 when
    // the interpreter should take this dispatch (boundary at pc, run too
    // short, cache full, a collapsed class that must split first, or a
    // block that bailed after a mid-block grouped split).
    const auto attempt_jit = [&](std::uint32_t ci) -> int {
        auto& s = cls[ci];
        const std::size_t pc = s.pc;
        // Run-table cursor: advance past runs the class has finished (pc only
        // moves forward), then classify this pc with plain comparisons — no
        // key loads, no hash probe, no verify in the steady state.
        const auto& runs = s.rt->runs;
        const auto nr = static_cast<std::uint32_t>(runs.size());
        std::uint32_t k = s.run_idx;
        while (k < nr && pc >= runs[k].start + runs[k].len) ++k;
        s.run_idx = k;
        if (k == nr || pc < runs[k].start) return 0;  // boundary op at pc
        const jit::RunEntry& ru = runs[k];
        // Collapsed classes interpret runs that would *fully* split them
        // (absolute-addressed p2p, or noise-stretched compute): the
        // interpreter's split-before-execute peels members at the exact op,
        // and the singletons re-enter here — this is the §11 class-split
        // guard. Relative p2p runs compile and execute merged: their steps
        // resolve price and queues per member, splitting by group mid-block
        // only where the symmetry genuinely breaks. (For a mid-run suffix
        // the whole run's flags over-approximate the suffix — conservative,
        // and only reachable transiently while a class is being peeled.)
        if (s.size > 1 && (ru.has_abs_p2p || (ru.has_compute && os_noise > 0))) {
            return 0;
        }
        const bool at_start = pc == ru.start;
        const jit::Block* blk = nullptr;
        if (at_start) {
            if (ru.len < jit::kMinRun) return 0;
            // Memoized hit: this class already resolved a verified Block for
            // this content id. Equal id ⇒ byte-equal OpKey range ⇒ the Block
            // is a faithful compilation here too; guards hold because ctx and
            // rep are class identity and knobs/model are fixed per run.
            if (!s.run_blocks.empty()) blk = s.run_blocks[ru.id];
        }
        if (blk == nullptr) {
            // Slow path: first sighting of this content id by this class (or
            // a mid-run suffix entry after interpreted ops). Same guarded,
            // verified resolution as ever — link hint, then hash probe, then
            // compile.
            const Program& prog = *s.prog;
            const OpKey* const keys = keys_of(prog);
            jit::Guards want;
            want.model_version = arch::kModelVersion;
            want.knobs_fp = knobs_fp;
            want.ctx = s.ctx;
            want.rank = s.rep;
            if (s.jit_link != nullptr && s.jit_link->next != nullptr) {
                const jit::Block* cand = s.jit_link->next;
                if (jit::guards_match(cand->guards, want) &&
                    jit::verify(*cand, prog, keys, pc)) {
                    blk = cand;
                }
            }
            if (blk == nullptr) {
                const jit::RunScan scan =
                    jit::scan_run(keys, pc, prog.ops.size());
                if (scan.len < jit::kMinRun) return 0;
                blk = jcache.find(scan.hash, want, prog, keys, pc, scan.len);
                if (blk == nullptr) {
                    if (jcache.full()) return 0;
                    blk = compile_block(prog, pc, scan, s.ctx, s.rep,
                                        /*resolve_rel=*/s.size == 1);
                }
                if (s.jit_link != nullptr) s.jit_link->next = blk;
            }
            if (at_start) {
                if (s.run_blocks.empty()) {
                    s.run_blocks.assign(s.rt->distinct, nullptr);
                }
                s.run_blocks[ru.id] = blk;
            }
        }
        return execute_block(ci, blk, 0);
    };
    // -----------------------------------------------------------------------

    while (finished_ranks < n) {
        if (run_head == runnable.size()) {
            // Merged classes parked on a relative receive with a *partial*
            // match resolve first: in the uncollapsed schedule those members
            // would have consumed their (already fixed) FIFO matches long
            // before quiescence, so they must advance before any wildcard
            // grant reads the pending-message pool. Splitting by match
            // status here — not on every transient mid-round wake — is what
            // keeps a halo's interior classes merged while boundary
            // neighbours trickle in; reaching quiescence with the mismatch
            // still present means it is genuine asymmetry.
            {
                bool progressed = false;
                const std::size_t nc0 = cls.size();  // splits append
                for (std::size_t i = 0; i < nc0; ++i) {
                    SimClass& s = cls[i];
                    if (s.finished || s.size <= 1 || !s.want_rel ||
                        s.blocked != BlockKind::recv) {
                        continue;
                    }
                    const auto [got_any, got_all] =
                        rel_probe(s, s.want_src, s.want_tag);
                    if (!got_any) continue;
                    const auto ci = static_cast<std::uint32_t>(i);
                    if (!got_all) {
                        split_groups(ci, SplitWhy::p2p);
                        // Matched groups re-execute the receive on wake (and
                        // may split further by completion time there); the
                        // unmatched group stays blocked. split_groups already
                        // enqueued the peeled groups — only the in-place one
                        // needs an explicit wake when it matched.
                        if (glabels[0] != kNoMatch) wake(ci);
                    } else {
                        wake(ci);  // all matched since blocking: just resume
                    }
                    progressed = true;
                }
                if (progressed) continue;
            }

            // Global quiescence: no rank can advance without an ANY_SOURCE
            // match. Wildcard recvs are resolved only here — an eager match
            // would consume whichever message this particular schedule
            // happened to deliver first, but the quiescent state (and so the
            // pending-message pool the (arrival, src) rule picks from) is a
            // pure function of the programs. The *lowest-ranked* blocked rank
            // with a match resolves first — computed as an explicit min over
            // all eligible classes, never "first eligible found", so the
            // grant is independent of class creation order; under a perturb
            // seed the scan starts at a pseudorandom offset to pin exactly
            // that. (Permuting the grant order itself would be unsound: the
            // granted rank can resume and send a message that outranks an
            // already-pending match on another wildcard receiver.)
            std::uint32_t grant = UINT32_MAX;
            int grant_rank = n;
            const std::size_t nc = cls.size();
            const std::size_t start = perturb && nc > 1 ? perturb_rng.next_below(nc) : 0;
            for (std::size_t k = 0; k < nc; ++k) {
                const std::size_t i = start + k < nc ? start + k : start + k - nc;
                const auto& s = cls[i];
                // !want_rel: a relative offset of -1 aliases the kAnySource
                // sentinel but is an explicit-source wait, never a wildcard.
                if (!s.finished && s.blocked == BlockKind::recv &&
                    !s.want_rel && s.want_src == kAnySource &&
                    s.rep < grant_rank && find_recv(s).first != nullptr) {
                    grant = static_cast<std::uint32_t>(i);
                    grant_rank = s.rep;
                }
            }
            if (grant != UINT32_MAX) {
                cls[grant].any_grant = true;
                wake(grant);
                continue;
            }

            // Stall: snapshot every rank's pending op and throw the wait-for
            // graph (sim/deadlock.hpp). The stalled state is a pure function
            // of the programs — every schedule reaches the same one — so the
            // diagnosis is required to be byte-identical across Engine,
            // RefEngine, all perturbation seeds, and collapse on/off (a
            // collapsed class's state is every member's state).
            std::vector<PendingWait> pending(static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) {
                const auto& s = cls[cls_of[static_cast<std::size_t>(r)]];
                auto& w = pending[static_cast<std::size_t>(r)];
                w.finished = s.finished;
                w.pc = s.pc;
                w.colls_entered = s.coll_count;
                if (s.finished) continue;
                if (s.blocked == BlockKind::recv) {
                    w.blocked_on_recv = true;
                    // A merged relative wait resolves per member — the same
                    // absolute source each singleton would report.
                    w.want_src = s.want_rel ? r + s.want_src : s.want_src;
                    w.want_tag = s.want_tag;
                } else {
                    // The engine counts a collective as entered *before*
                    // blocking, so the blocking ordinal is coll_count - 1.
                    w.coll_ordinal = s.coll_count - 1;
                }
            }
            std::vector<CollDesc> descs(collectives.size());
            for (std::size_t i = 0; i < collectives.size(); ++i) {
                switch (collectives[i].kind) {
                    case CollKind::allreduce: descs[i].kind = "allreduce"; break;
                    case CollKind::barrier: descs[i].kind = "barrier"; break;
                    case CollKind::alltoall: descs[i].kind = "alltoall"; break;
                    case CollKind::none: break;
                }
                descs[i].bytes = collectives[i].bytes;
            }
            throw DeadlockError(build_wait_graph(pending, descs));
        }

        if (perturb) {
            const std::size_t live = runnable.size() - run_head;
            if (live > 1) {
                std::swap(runnable[run_head],
                          runnable[run_head + perturb_rng.next_below(live)]);
            }
        }
        const std::uint32_t ci = runnable[run_head++];
        if (run_head == runnable.size()) {
            runnable.clear();
            run_head = 0;
        } else if (run_head >= 4096 && run_head * 2 >= runnable.size()) {
            // Drop the consumed prefix so programs that never fully drain the
            // queue (collective-free pipelines) stay O(live entries).
            runnable.erase(runnable.begin(),
                           runnable.begin() + static_cast<std::ptrdiff_t>(run_head));
            run_head = 0;
        }
        cls[ci].queued = false;

        // Local copies: stores through cls/mailbox cannot alias the op
        // stream, but the compiler cannot prove that and would otherwise
        // reload ops.data()/size() after every store. The Program pointer is
        // stable across splits (splits copy state, not the program).
        const Program& prog = *cls[ci].prog;
        const Op* const ops_data = prog.ops.data();
        const std::size_t nops = prog.ops.size();

        bool advancing = true;
        // One JIT probe per dispatch: consumed on the first op, re-armed
        // after ops that end a run (a completed collective, a matched recv),
        // so the interpreter never re-scans mid-run.
        bool try_jit = jit_enabled;
        while (advancing && cls[ci].pc < nops) {
            if (jit_enabled) {
                if (cls[ci].jit_blk != nullptr) {
                    // Parked mid-block on a recv that now (presumably) has a
                    // message: resume at the suspended step. A 0 return
                    // (mid-block grouped split) falls through — the op at pc
                    // is handled below and the JIT re-engages next dispatch.
                    const jit::Block* blk = cls[ci].jit_blk;
                    const std::uint32_t step = cls[ci].jit_step;
                    cls[ci].jit_blk = nullptr;
                    const int got = execute_block(ci, blk, step);
                    if (got != 0) {
                        if (got < 0) advancing = false;
                        continue;
                    }
                }
                if (try_jit) {
                    try_jit = false;
                    const int got = attempt_jit(ci);
                    if (got != 0) {
                        if (got < 0) advancing = false;
                        continue;
                    }
                }
            }
            // Split-before-execute: peel members off *before* binding any
            // reference (splitting grows `cls`, invalidating references).
            // Relative-addressed p2p is the exception: a merged class
            // executes it in place while the op is provably
            // timing-equivalent across members, group-splitting (not to
            // singletons) exactly where the symmetry breaks.
            if (cls[ci].size > 1) {
                const Op& op0 = ops_data[cls[ci].pc];
                const std::size_t t = op0.index();
                if (t == 1) {
                    const auto* snd = std::get_if<SendOp>(&op0);
                    if (snd->rel) {
                        rel_send_exec(ci, *snd);  // executed, or group-split
                        continue;                 // with pc unmoved
                    }
                    split_class(ci, SplitWhy::p2p);
                } else if (t == 2) {
                    const auto* rcv = std::get_if<RecvOp>(&op0);
                    if (rcv->rel) {
                        const int got = rel_recv_exec(ci, *rcv);
                        if (got == 1) try_jit = jit_enabled;  // run boundary
                        if (got == 2) advancing = false;
                        continue;
                    }
                    split_class(ci, SplitWhy::p2p);
                } else if (t == 0 && os_noise > 0) {
                    split_class(ci, SplitWhy::noise);
                }
            }
            auto& s = cls[ci];
            auto& stats = s.stats;
            const int r = s.rep;
            const Op& op = ops_data[s.pc];
            // Dispatch on the raw alternative index with a compare chain,
            // most-frequent ops first: conditional branches on a patterned op
            // stream predict far better than one indirect jump.
            const std::size_t tag = op.index();
            if (tag == 1) {  // SendOp
                const auto* snd = std::get_if<SendOp>(&op);
                const int dst = snd->resolve_dst(r);
                ARMSTICE_CHECK(dst >= 0 && dst < n, "send dst out of range");
                ARMSTICE_CHECK(snd->bytes >= 0, "negative message size");
                ensure_p2p();
                const int src_node = rank_node[static_cast<std::size_t>(r)];
                const int dst_node = rank_node[static_cast<std::size_t>(dst)];
                double p2p;
                if (src_node == dst_node) {
                    p2p = np.shm_latency_s + snd->bytes / np.shm_bandwidth +
                          np.msg_overhead_s;
                } else {
                    p2p = hop_base[static_cast<std::size_t>(
                              topo.hops(src_node, dst_node))] +
                          snd->bytes / np.bandwidth + np.msg_overhead_s;
                }
                const double arrival = s.time + p2p;
                const double inject =
                    np.msg_overhead_s + snd->bytes / np.injection_bw;
                if (trace) {
                    trace->add({r, SpanKind::send, "", s.time, s.time + inject});
                }
                s.time += inject;
                stats.injected_bytes += snd->bytes;
                ++stats.msgs_sent;
                qarena[slot_for(mailbox[static_cast<std::size_t>(dst)], r)]
                    .push_back(Message{r, snd->tag, arrival});
                // ANY_SOURCE waiters are not woken by sends: they resolve at
                // quiescence only (schedule invariance).
                if (recv_waiting_at(dst)) {
                    wake(cls_of[static_cast<std::size_t>(dst)]);
                }
                ++s.pc;
            } else if (tag == 2) {  // RecvOp
                const auto* rcv = std::get_if<RecvOp>(&op);
                // A singleton resolves a relative source to its absolute
                // rank up front, so matching, quiescence and forensics all
                // see the exact state an absolute receive would produce.
                s.want_src = rcv->resolve_src(r);
                s.want_tag = rcv->tag;
                s.want_rel = false;
                if (rcv->rel) {
                    ARMSTICE_CHECK(s.want_src >= 0 && s.want_src < n,
                                   "recv src out of range");
                }
                // ANY_SOURCE matches only with a quiescence grant (above);
                // explicit-source matching is confluent and stays eager.
                std::optional<Message> m;
                if (!rcv->is_any() || s.any_grant) {
                    s.any_grant = false;
                    m = try_recv(s);
                }
                if (m) {
                    if (m->arrival > s.time) {
                        if (trace) {
                            trace->add({r, SpanKind::recv_wait, "", s.time, m->arrival});
                        }
                        stats.recv_wait += m->arrival - s.time;
                        s.time = m->arrival;
                    }
                    ++stats.msgs_received;
                    s.blocked = BlockKind::none;
                    clr_recv_wait(r);
                    ++s.pc;
                    try_jit = jit_enabled;  // a matched recv ends a run
                } else {
                    s.blocked = BlockKind::recv;
                    if (!rcv->is_any()) set_recv_wait(r);
                    advancing = false;
                }
            } else if (tag == 0) {  // ComputeOp
                const auto* c = std::get_if<ComputeOp>(&op);
                const arch::ComputePhase& phase = prog.phase_of(*c);
                double dt = price_compute(*c, phase, s.ctx);
                if (os_noise > 0) {
                    // Rank-keyed draw — the split above guarantees size == 1.
                    dt *= 1.0 + os_noise * noise_sample(r, s.pc);
                }
                const PhaseId label_id =
                    s.mark_id != kNoPhase ? s.mark_id : c->label_id;
                if (trace) {
                    trace->add({r, SpanKind::compute, phase_table().str(label_id),
                                s.time, s.time + dt});
                }
                s.time += dt;
                stats.compute += dt;
                s.flops += phase.flops;
                accum_phase(s, label_id, dt);
                ++s.pc;
            } else if (tag <= 5) {  // Allreduce(3) / Barrier(4) / Alltoall(5)
                CollKind kind = CollKind::barrier;
                double bytes = 8.0;
                if (const auto* ar = std::get_if<AllreduceOp>(&op)) {
                    kind = CollKind::allreduce;
                    bytes = ar->bytes;
                } else if (const auto* aa = std::get_if<AlltoallOp>(&op)) {
                    kind = CollKind::alltoall;
                    bytes = aa->bytes_each;
                }

                const int ord = s.coll_count;
                if (ord >= static_cast<int>(collectives.size())) {
                    collectives.resize(static_cast<std::size_t>(ord) + 1);
                    auto& fresh = collectives[static_cast<std::size_t>(ord)];
                    fresh.kind = kind;
                    fresh.bytes = bytes;
                }
                auto& coll = collectives[static_cast<std::size_t>(ord)];
                ARMSTICE_CHECK(coll.kind == kind && coll.bytes == bytes,
                               "collective mismatch: ranks disagree on op " +
                                   std::to_string(ord));
                ++s.coll_count;
                // A collapsed class enters on behalf of all its members at
                // one shared time: `arrived` advances by the member count and
                // max_time sees the one value every member would contribute.
                coll.max_time = std::max(coll.max_time, s.time);
                coll.arrived += s.size;
                if (coll.arrived == n) {
                    coll.completion =
                        coll.max_time + collective_cost(kind, bytes);
                    // Resume everyone (this class inline, peers via queue).
                    // Waiters are blocked, hence neither queued nor finished,
                    // so they can be enqueued without wake()'s checks. Each
                    // waiter's update reads only its own state and the shared
                    // completion time, so the processing order is free —
                    // under a perturb seed it is shuffled to pin that.
                    if (perturb && coll.waiters.size() > 1) {
                        for (std::size_t i = coll.waiters.size() - 1; i > 0; --i) {
                            std::swap(coll.waiters[i],
                                      coll.waiters[perturb_rng.next_below(i + 1)]);
                        }
                    }
                    for (std::uint32_t wi : coll.waiters) {
                        auto& ws = cls[wi];
                        if (trace) {
                            trace->add({ws.rep, SpanKind::collective, "", ws.time,
                                        coll.completion});
                        }
                        ws.stats.collective_wait += coll.completion - ws.time;
                        ws.time = coll.completion;
                        ws.blocked = BlockKind::none;
                        ++ws.pc;
                        ws.queued = true;
                        runnable.push_back(wi);
                    }
                    if (trace) {
                        trace->add({r, SpanKind::collective, "", s.time,
                                    coll.completion});
                    }
                    stats.collective_wait += coll.completion - s.time;
                    s.time = coll.completion;
                    ++s.pc;
                    try_jit = jit_enabled;  // a collective ends a run
                } else {
                    coll.waiters.push_back(ci);
                    s.blocked = BlockKind::collective;
                    advancing = false;
                }
            } else {  // MarkOp (6)
                s.mark_id = std::get_if<MarkOp>(&op)->label_id;
                ++s.pc;
            }
        }

        auto& done = cls[ci];
        if (done.pc >= nops && !done.finished) {
            done.finished = true;
            done.stats.finish = done.time;
            finished_ranks += done.size;
        }
    }

    // Replicate each class's per-member results to all members, then reduce
    // across ranks in ascending rank order — the one FP addition order every
    // schedule (and RefEngine, and collapse on/off) can reproduce. Iterated
    // over maximal runs of consecutive ranks in one class (SPMD collapse
    // keeps million-rank worlds in a handful of runs): the per-rank adds
    // stay — `acc += v` n times is NOT `acc += n * v`, FP addition does not
    // distribute — but the cls_of chase and bounds checks are hoisted per
    // run, which is most of what the 10^6-rank rows used to pay here.
    std::vector<std::pair<int, std::uint32_t>> rank_runs;  // (first rank, class)
    for (int r = 0; r < n;) {
        const std::uint32_t ci = cls_of[static_cast<std::size_t>(r)];
        rank_runs.emplace_back(r, ci);
        for (++r; r < n && cls_of[static_cast<std::size_t>(r)] == ci; ++r) {
        }
    }
    const auto run_end = [&](std::size_t k) {
        return k + 1 < rank_runs.size() ? rank_runs[k + 1].first : n;
    };
    result.ranks.resize(static_cast<std::size_t>(n));
    for (std::size_t k = 0; k < rank_runs.size(); ++k) {
        const auto [r0, ci] = rank_runs[k];
        const int end = run_end(k);
        const SimClass& c = cls[ci];
        std::fill(result.ranks.begin() + r0, result.ranks.begin() + end, c.stats);
        result.makespan = std::max(result.makespan, c.stats.finish);
        // add_repeat IS `acc += v`, end - r0 times, in fl arithmetic — the
        // n-step sequence fast-forwarded binade by binade (util/fpadd.hpp).
        result.total_flops =
            util::fp::add_repeat(result.total_flops, c.flops, end - r0);
    }
    for (PhaseId id = 0; id < phase_seen.size(); ++id) {
        if (!phase_seen[id]) continue;
        double acc = 0.0;
        for (std::size_t k = 0; k < rank_runs.size(); ++k) {
            const auto& per = cls[rank_runs[k].second].phase;
            if (id >= per.size()) continue;  // no entry: the old loop skipped
            acc = util::fp::add_repeat(acc, per[id],
                                       run_end(k) - rank_runs[k].first);
        }
        result.phase_compute.emplace(phase_table().str(id), acc);
    }
    // End-of-run class count: what the collapse actually sustained once
    // every split had happened (equals the initial count when nothing split).
    result.collapse_classes = static_cast<int>(cls.size());
    return result;
}

} // namespace armstice::sim
