#include "sim/engine.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

namespace armstice::sim {
namespace {

struct Message {
    int src = 0;
    int tag = 0;
    double arrival = 0;
    std::uint64_t seq = 0;  ///< global send order; ties AnySource matching
                            ///< to the old single-queue arrival order
};

/// One rank's pending messages, FIFO per source. Ranks receive from a
/// handful of sources (halo neighbours), so the source list is a small
/// linearly-scanned vector instead of a map.
struct Mailbox {
    /// FIFO as a head-indexed vector: push at the back, consume at `head`,
    /// reset both when drained so capacity is reused allocation-free.
    struct SrcQueue {
        int src = 0;
        std::vector<Message> q;
        std::size_t head = 0;
    };
    std::vector<SrcQueue> srcs;

    SrcQueue& queue_for(int src) {
        for (auto& sq : srcs) {
            if (sq.src == src) return sq;
        }
        srcs.push_back(SrcQueue{src, {}, 0});
        return srcs.back();
    }
};

enum class BlockKind { none, recv, collective };

struct RankState {
    std::size_t pc = 0;
    double time = 0;
    BlockKind blocked = BlockKind::none;
    int want_src = kAnySource;
    int want_tag = 0;
    int coll_count = 0;      ///< collectives this rank has entered
    PhaseId mark_id = kNoPhase;  ///< current MarkOp label (kNoPhase = none)
    bool finished = false;
};

enum class CollKind { none, allreduce, barrier, alltoall };

struct Collective {
    CollKind kind = CollKind::none;
    double bytes = 0;
    int arrived = 0;
    double max_time = 0;
    std::vector<int> waiters;
    double completion = 0;
};

/// Memoized CostModel pricing for one phase content (cost_signature key):
/// `dt[cls]` is the priced time under ExecContext class `cls`. `rep` copies
/// the first phase seen with this key (kept inline so the hot-path content
/// check never chases a pointer into another rank's program); an op whose
/// phase disagrees with `rep` (hash collision) is priced directly and never
/// shares the slot. `rep_addr` short-circuits the content check when ranks
/// share one program object (ProgramBundle) or one pooled phase.
struct CostEntry {
    arch::ComputePhase rep;
    const arch::ComputePhase* rep_addr = nullptr;
    std::vector<double> dt;
    std::vector<char> have;
};

} // namespace

double noise_sample(int rank, std::size_t op_index) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(rank) << 32) ^ op_index;
    const double u =
        static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    return std::min(8.0, -std::log1p(-u));
}

double RunResult::mean_compute() const {
    double s = 0;
    for (const auto& r : ranks) s += r.compute;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_recv_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.recv_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_collective_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.collective_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

Engine::Engine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
               arch::ModelKnobs knobs)
    : sys_(&sys),
      placement_(std::move(placement)),
      vec_quality_(vec_quality),
      cost_(knobs),
      network_(sys.net, placement_.nodes()) {
    ARMSTICE_CHECK(vec_quality_ > 0.0 && vec_quality_ <= 1.0,
                   "vec_quality must be in (0,1]");
}

RunResult Engine::run(const std::vector<Program>& programs, Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(static_cast<int>(programs.size()) == n,
                   util::format("programs (%zu) != ranks (%d)", programs.size(), n));
    std::vector<const Program*> progs;
    progs.reserve(programs.size());
    for (const auto& p : programs) progs.push_back(&p);
    return run_impl(progs, trace);
}

RunResult Engine::run(const ProgramBundle& bundle, Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(bundle.ranks() == n,
                   util::format("bundle ranks (%d) != ranks (%d)", bundle.ranks(), n));
    std::vector<const Program*> progs;
    progs.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) progs.push_back(&bundle.of(r));
    return run_impl(progs, trace);
}

RunResult Engine::run_impl(const std::vector<const Program*>& progs,
                           Trace* trace) const {
    const int n = placement_.ranks();

    const net::CollectiveModel coll_model(network_);
    // Collective layout from the *actual* placement occupancy. Ceiling
    // division (the old derivation) priced 48 ranks on 5 nodes as 5x10=50
    // ranks — phantom allgather/alltoall rounds — and counted allocated-but-
    // empty nodes as collective participants. min_ranks_per_node feeds the
    // distance-aware alltoall round split (net/collectives.cpp): the least-
    // populated node's ranks cross the fabric most often and set the
    // critical path.
    net::CommLayout layout;
    layout.total_ranks = n;
    int occupied = 0;
    int max_on_node = 0;
    int min_on_node = n;
    for (int node = 0; node < placement_.nodes(); ++node) {
        const int on = placement_.ranks_on_node(node);
        if (on > 0) {
            ++occupied;
            min_on_node = std::min(min_on_node, on);
        }
        max_on_node = std::max(max_on_node, on);
    }
    layout.nodes = std::max(1, occupied);
    layout.ranks_per_node = std::max(1, max_on_node);
    layout.min_ranks_per_node = occupied > 0 ? min_on_node : 1;

    // ExecContext equivalence classes: pricing depends only on the context
    // fields, and SPMD placements produce a handful of distinct contexts
    // (often one), so phases are priced once per (content, class) instead of
    // once per rank. Exact field equality keeps results bit-identical.
    std::vector<arch::ExecContext> class_ctx;
    std::vector<std::uint32_t> class_of(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
        const arch::ExecContext ctx = placement_.exec_context(r, vec_quality_);
        std::uint32_t cls = UINT32_MAX;
        for (std::size_t i = 0; i < class_ctx.size(); ++i) {
            const auto& c = class_ctx[i];
            if (c.cpu == ctx.cpu && c.vec_quality == ctx.vec_quality &&
                c.threads == ctx.threads &&
                c.streams_on_domain == ctx.streams_on_domain &&
                c.domains_spanned == ctx.domains_spanned) {
                cls = static_cast<std::uint32_t>(i);
                break;
            }
        }
        if (cls == UINT32_MAX) {
            cls = static_cast<std::uint32_t>(class_ctx.size());
            class_ctx.push_back(ctx);
        }
        class_of[static_cast<std::size_t>(r)] = cls;
    }
    const std::size_t n_classes = class_ctx.size();
    std::unordered_map<std::uint64_t, CostEntry> cost_memo;
    // One-slot cache over cost_memo: consecutive compute ops (and SPMD peers
    // scheduled back to back) repeat the same cost_key, and unordered_map
    // nodes are pointer-stable, so the hit path skips the hash probe.
    // cost_signature is never 0, so 0 is a safe empty sentinel.
    std::uint64_t memo_last_key = 0;
    CostEntry* memo_last = nullptr;

    // Per-rank home node, resolved once (Placement::loc is out-of-line and
    // sends are the most numerous ops in halo-heavy programs).
    std::vector<int> rank_node(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        rank_node[static_cast<std::size_t>(r)] = placement_.loc(r).node;
    }

    // Node-pair message cost table: Network::p2p_time(a, b, bytes) evaluates
    // ((base + bytes/bw) + msg_overhead) where base and bw depend only on
    // (a, b) — base is shm_latency_s on-node and latency_s + hops*per_hop_s
    // off-node, both computed here with the identical expression so the
    // split stays bit-exact. Skipped for very large jobs where the O(nodes^2)
    // table would dominate; the engine then calls p2p_time per send.
    const auto& np = network_.params();
    const int n_nodes = placement_.nodes();
    const bool use_pair_table = n_nodes <= 256;
    std::vector<double> pair_base;
    std::vector<double> pair_bw;
    if (use_pair_table) {
        const std::size_t nn = static_cast<std::size_t>(n_nodes);
        pair_base.resize(nn * nn);
        pair_bw.resize(nn * nn);
        const auto& topo = network_.topology();
        for (int a = 0; a < n_nodes; ++a) {
            for (int b = 0; b < n_nodes; ++b) {
                const std::size_t i = static_cast<std::size_t>(a) * nn +
                                      static_cast<std::size_t>(b);
                if (a == b) {
                    pair_base[i] = np.shm_latency_s;
                    pair_bw[i] = np.shm_bandwidth;
                } else {
                    pair_base[i] = np.latency_s + topo.hops(a, b) * np.per_hop_s;
                    pair_bw[i] = np.bandwidth;
                }
            }
        }
    }

    std::vector<RankState> st(static_cast<std::size_t>(n));

    RunResult result;
    result.ranks.assign(static_cast<std::size_t>(n), RankStats{});

    // Per-phase compute seconds, indexed by interned PhaseId; the label map
    // is materialised once at the end. `seen` (not acc != 0) mirrors the old
    // map semantics: executing a zero-cost phase still creates its entry.
    std::vector<double> phase_acc;
    std::vector<char> phase_seen;
    const auto accum_phase = [&](PhaseId id, double dt) {
        if (id >= phase_acc.size()) {
            phase_acc.resize(id + 1, 0.0);
            phase_seen.resize(id + 1, 0);
        }
        phase_acc[id] += dt;
        phase_seen[id] = 1;
    };

    std::vector<Mailbox> mailbox(static_cast<std::size_t>(n));
    std::uint64_t next_seq = 0;
    std::vector<Collective> collectives;
    collectives.reserve(64);
    // FIFO run queue as a head-indexed vector (contiguous; compacts when
    // drained, so it stays O(live entries) despite monotonic pushes).
    std::vector<int> runnable;
    runnable.reserve(static_cast<std::size_t>(n) * 2);
    std::size_t run_head = 0;
    std::vector<char> queued(static_cast<std::size_t>(n), 1);
    for (int r = 0; r < n; ++r) runnable.push_back(r);
    int finished = 0;

    auto wake = [&](int r) {
        if (!queued[static_cast<std::size_t>(r)] && !st[static_cast<std::size_t>(r)].finished) {
            queued[static_cast<std::size_t>(r)] = 1;
            runnable.push_back(r);
        }
    };

    // First message matching (want_src, want_tag) in send order. Per-source
    // FIFOs preserve arrival order within a source; the global sequence
    // number recovers the cross-source order for MPI_ANY_SOURCE, so the
    // match is identical to scanning one arrival-ordered queue.
    auto try_recv = [&](int r) -> std::optional<Message> {
        auto& box = mailbox[static_cast<std::size_t>(r)];
        const auto& s = st[static_cast<std::size_t>(r)];
        Mailbox::SrcQueue* best_sq = nullptr;
        std::size_t best_i = 0;
        for (auto& sq : box.srcs) {
            if (s.want_src != kAnySource && sq.src != s.want_src) continue;
            for (std::size_t i = sq.head; i < sq.q.size(); ++i) {
                if (sq.q[i].tag != s.want_tag) continue;
                if (best_sq == nullptr || sq.q[i].seq < best_sq->q[best_i].seq) {
                    best_sq = &sq;
                    best_i = i;
                }
                break;  // first tag match per source is the only candidate
            }
            if (s.want_src != kAnySource) break;
        }
        if (best_sq == nullptr) return std::nullopt;
        Message m = best_sq->q[best_i];
        if (best_i == best_sq->head) {
            if (++best_sq->head == best_sq->q.size()) {
                best_sq->q.clear();
                best_sq->head = 0;
            }
        } else {
            // Rare (mixed tags from one source): keep FIFO order for the rest.
            best_sq->q.erase(best_sq->q.begin() +
                             static_cast<std::ptrdiff_t>(best_i));
        }
        return m;
    };

    const double os_noise = cost_.knobs().os_noise;
    while (finished < n) {
        if (run_head == runnable.size()) {
            std::string blocked;
            for (int r = 0; r < n; ++r) {
                const auto& s = st[static_cast<std::size_t>(r)];
                if (!s.finished) {
                    blocked += util::format(" rank %d (%s at op %zu)", r,
                                            s.blocked == BlockKind::recv ? "recv"
                                                                         : "collective",
                                            s.pc);
                }
            }
            throw util::DeadlockError("no rank can make progress:" + blocked);
        }

        const int r = runnable[run_head++];
        if (run_head == runnable.size()) {
            runnable.clear();
            run_head = 0;
        } else if (run_head >= 4096 && run_head * 2 >= runnable.size()) {
            // Drop the consumed prefix so programs that never fully drain the
            // queue (collective-free pipelines) stay O(live entries).
            runnable.erase(runnable.begin(),
                           runnable.begin() + static_cast<std::ptrdiff_t>(run_head));
            run_head = 0;
        }
        queued[static_cast<std::size_t>(r)] = 0;
        auto& s = st[static_cast<std::size_t>(r)];
        auto& stats = result.ranks[static_cast<std::size_t>(r)];
        const Program& prog = *progs[static_cast<std::size_t>(r)];
        const std::uint32_t cls = class_of[static_cast<std::size_t>(r)];

        // Local copies: stores through st/stats/mailbox cannot alias the op
        // stream, but the compiler cannot prove that and would otherwise
        // reload ops.data()/size() after every store.
        const Op* const ops_data = prog.ops.data();
        const std::size_t nops = prog.ops.size();

        bool advancing = true;
        while (advancing && s.pc < nops) {
            const Op& op = ops_data[s.pc];
            // Dispatch on the raw alternative index with a compare chain,
            // most-frequent ops first: conditional branches on a patterned op
            // stream predict far better than one indirect jump.
            const std::size_t tag = op.index();
            if (tag == 1) {  // SendOp
                const auto* snd = std::get_if<SendOp>(&op);
                ARMSTICE_CHECK(snd->dst >= 0 && snd->dst < n, "send dst out of range");
                const int src_node = rank_node[static_cast<std::size_t>(r)];
                const int dst_node = rank_node[static_cast<std::size_t>(snd->dst)];
                double p2p;
                if (use_pair_table) {
                    ARMSTICE_CHECK(snd->bytes >= 0, "negative message size");
                    const std::size_t pi =
                        static_cast<std::size_t>(src_node) *
                            static_cast<std::size_t>(n_nodes) +
                        static_cast<std::size_t>(dst_node);
                    p2p = pair_base[pi] + snd->bytes / pair_bw[pi] +
                          np.msg_overhead_s;
                } else {
                    p2p = network_.p2p_time(src_node, dst_node, snd->bytes);
                }
                const double arrival = s.time + p2p;
                const double inject =
                    np.msg_overhead_s + snd->bytes / np.injection_bw;
                if (trace) {
                    trace->add({r, SpanKind::send, "", s.time, s.time + inject});
                }
                s.time += inject;
                stats.injected_bytes += snd->bytes;
                ++stats.msgs_sent;
                mailbox[static_cast<std::size_t>(snd->dst)]
                    .queue_for(r)
                    .q.push_back(Message{r, snd->tag, arrival, next_seq++});
                if (st[static_cast<std::size_t>(snd->dst)].blocked == BlockKind::recv) {
                    wake(snd->dst);
                }
                ++s.pc;
            } else if (tag == 2) {  // RecvOp
                const auto* rcv = std::get_if<RecvOp>(&op);
                s.want_src = rcv->src;
                s.want_tag = rcv->tag;
                if (auto m = try_recv(r)) {
                    if (m->arrival > s.time) {
                        if (trace) {
                            trace->add({r, SpanKind::recv_wait, "", s.time, m->arrival});
                        }
                        stats.recv_wait += m->arrival - s.time;
                        s.time = m->arrival;
                    }
                    ++stats.msgs_received;
                    s.blocked = BlockKind::none;
                    ++s.pc;
                } else {
                    s.blocked = BlockKind::recv;
                    advancing = false;
                }
            } else if (tag == 0) {  // ComputeOp
                const auto* c = std::get_if<ComputeOp>(&op);
                const arch::ComputePhase& phase = prog.phase_of(*c);
                CostEntry* entry_p;
                if (c->cost_key == memo_last_key) {
                    entry_p = memo_last;  // consecutive ops repeat phases
                } else {
                    entry_p = &cost_memo[c->cost_key];  // nodes are stable
                    memo_last_key = c->cost_key;
                    memo_last = entry_p;
                }
                auto& entry = *entry_p;
                if (entry.rep_addr == nullptr) {
                    entry.rep = phase;
                    entry.rep_addr = &phase;
                    entry.dt.assign(n_classes, 0.0);
                    entry.have.assign(n_classes, 0);
                }
                double dt;
                if (entry.rep_addr == &phase ||
                    arch::same_cost_inputs(entry.rep, phase)) {
                    if (!entry.have[cls]) {
                        // Bit-identical across sharers: explain() reads only
                        // the (bitwise equal) same_cost_inputs fields.
                        entry.dt[cls] = cost_.phase_time(phase, class_ctx[cls]);
                        entry.have[cls] = 1;
                    }
                    dt = entry.dt[cls];
                } else {
                    // Hash collision between different phase contents: price
                    // this op directly rather than share a wrong time.
                    dt = cost_.phase_time(phase, class_ctx[cls]);
                }
                if (os_noise > 0) {
                    dt *= 1.0 + os_noise * noise_sample(r, s.pc);
                }
                const PhaseId label_id =
                    s.mark_id != kNoPhase ? s.mark_id : c->label_id;
                if (trace) {
                    trace->add({r, SpanKind::compute, phase_table().str(label_id),
                                s.time, s.time + dt});
                }
                s.time += dt;
                stats.compute += dt;
                result.total_flops += phase.flops;
                accum_phase(label_id, dt);
                ++s.pc;
            } else if (tag <= 5) {  // Allreduce(3) / Barrier(4) / Alltoall(5)
                CollKind kind = CollKind::barrier;
                double bytes = 8.0;
                if (const auto* ar = std::get_if<AllreduceOp>(&op)) {
                    kind = CollKind::allreduce;
                    bytes = ar->bytes;
                } else if (const auto* aa = std::get_if<AlltoallOp>(&op)) {
                    kind = CollKind::alltoall;
                    bytes = aa->bytes_each;
                }

                const int ord = s.coll_count;
                if (ord >= static_cast<int>(collectives.size())) {
                    collectives.resize(static_cast<std::size_t>(ord) + 1);
                    auto& fresh = collectives[static_cast<std::size_t>(ord)];
                    fresh.kind = kind;
                    fresh.bytes = bytes;
                    fresh.waiters.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
                }
                auto& coll = collectives[static_cast<std::size_t>(ord)];
                ARMSTICE_CHECK(coll.kind == kind && coll.bytes == bytes,
                               "collective mismatch: ranks disagree on op " +
                                   std::to_string(ord));
                ++s.coll_count;
                coll.max_time = std::max(coll.max_time, s.time);
                ++coll.arrived;
                if (coll.arrived == n) {
                    double cost = 0.0;
                    switch (kind) {
                        case CollKind::allreduce:
                            cost = coll_model.allreduce(layout, bytes);
                            break;
                        case CollKind::barrier:
                            cost = coll_model.barrier(layout);
                            break;
                        case CollKind::alltoall:
                            cost = coll_model.alltoall(layout, bytes);
                            break;
                        case CollKind::none: break;
                    }
                    coll.completion = coll.max_time + cost;
                    // Resume everyone (this rank inline, peers via queue).
                    // Waiters are blocked, hence neither queued nor finished,
                    // so they can be enqueued without wake()'s checks.
                    for (int w : coll.waiters) {
                        auto& ws = st[static_cast<std::size_t>(w)];
                        if (trace) {
                            trace->add({w, SpanKind::collective, "", ws.time,
                                        coll.completion});
                        }
                        result.ranks[static_cast<std::size_t>(w)].collective_wait +=
                            coll.completion - ws.time;
                        ws.time = coll.completion;
                        ws.blocked = BlockKind::none;
                        ++ws.pc;
                        queued[static_cast<std::size_t>(w)] = 1;
                        runnable.push_back(w);
                    }
                    if (trace) {
                        trace->add({r, SpanKind::collective, "", s.time,
                                    coll.completion});
                    }
                    stats.collective_wait += coll.completion - s.time;
                    s.time = coll.completion;
                    ++s.pc;
                } else {
                    coll.waiters.push_back(r);
                    s.blocked = BlockKind::collective;
                    advancing = false;
                }
            } else {  // MarkOp (6)
                s.mark_id = std::get_if<MarkOp>(&op)->label_id;
                ++s.pc;
            }
        }

        if (s.pc >= nops && !s.finished) {
            s.finished = true;
            stats.finish = s.time;
            ++finished;
        }
    }

    for (const auto& stats : result.ranks) {
        result.makespan = std::max(result.makespan, stats.finish);
    }
    for (PhaseId id = 0; id < phase_seen.size(); ++id) {
        if (phase_seen[id]) {
            result.phase_compute.emplace(phase_table().str(id), phase_acc[id]);
        }
    }
    return result;
}

} // namespace armstice::sim
