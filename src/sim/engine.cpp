#include "sim/engine.hpp"

#include "sim/deadlock.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

namespace armstice::sim {
namespace {

struct Message {
    int src = 0;
    int tag = 0;
    double arrival = 0;
};

/// One rank's pending messages, FIFO per source. Ranks receive from a
/// handful of sources (halo neighbours), so the source list is a small
/// linearly-scanned vector instead of a map.
struct Mailbox {
    /// FIFO as a head-indexed vector: push at the back, consume at `head`,
    /// reset both when drained so capacity is reused allocation-free.
    struct SrcQueue {
        int src = 0;
        std::vector<Message> q;
        std::size_t head = 0;
    };
    std::vector<SrcQueue> srcs;

    SrcQueue& queue_for(int src) {
        for (auto& sq : srcs) {
            if (sq.src == src) return sq;
        }
        srcs.push_back(SrcQueue{src, {}, 0});
        return srcs.back();
    }
};

enum class BlockKind { none, recv, collective };

struct RankState {
    std::size_t pc = 0;
    double time = 0;
    BlockKind blocked = BlockKind::none;
    int want_src = kAnySource;
    int want_tag = 0;
    int coll_count = 0;      ///< collectives this rank has entered
    PhaseId mark_id = kNoPhase;  ///< current MarkOp label (kNoPhase = none)
    bool finished = false;
};

enum class CollKind { none, allreduce, barrier, alltoall };

struct Collective {
    CollKind kind = CollKind::none;
    double bytes = 0;
    int arrived = 0;
    double max_time = 0;
    std::vector<int> waiters;
    double completion = 0;
};

/// Memoized CostModel pricing for one phase content (cost_signature key):
/// `dt[cls]` is the priced time under ExecContext class `cls`. `rep` copies
/// the first phase seen with this key (kept inline so the hot-path content
/// check never chases a pointer into another rank's program); an op whose
/// phase disagrees with `rep` (hash collision) is priced directly and never
/// shares the slot. `rep_addr` short-circuits the content check when ranks
/// share one program object (ProgramBundle) or one pooled phase.
struct CostEntry {
    arch::ComputePhase rep;
    const arch::ComputePhase* rep_addr = nullptr;
    std::vector<double> dt;
    std::vector<char> have;
};

} // namespace

double noise_sample(int rank, std::size_t op_index) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(rank) << 32) ^ op_index;
    const double u =
        static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    return std::min(8.0, -std::log1p(-u));
}

double RunResult::mean_compute() const {
    double s = 0;
    for (const auto& r : ranks) s += r.compute;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_recv_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.recv_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_collective_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.collective_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

Engine::Engine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
               arch::ModelKnobs knobs)
    : sys_(&sys),
      placement_(std::move(placement)),
      vec_quality_(vec_quality),
      cost_(knobs),
      network_(sys.net, placement_.nodes()) {
    ARMSTICE_CHECK(vec_quality_ > 0.0 && vec_quality_ <= 1.0,
                   "vec_quality must be in (0,1]");
}

RunResult Engine::run(const std::vector<Program>& programs, Trace* trace) const {
    return run(programs, RunOptions{}, trace);
}

RunResult Engine::run(const ProgramBundle& bundle, Trace* trace) const {
    return run(bundle, RunOptions{}, trace);
}

RunResult Engine::run(const std::vector<Program>& programs, const RunOptions& opts,
                      Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(static_cast<int>(programs.size()) == n,
                   util::format("programs (%zu) != ranks (%d)", programs.size(), n));
    std::vector<const Program*> progs;
    progs.reserve(programs.size());
    for (const auto& p : programs) progs.push_back(&p);
    return run_impl(progs, trace, opts);
}

RunResult Engine::run(const ProgramBundle& bundle, const RunOptions& opts,
                      Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(bundle.ranks() == n,
                   util::format("bundle ranks (%d) != ranks (%d)", bundle.ranks(), n));
    std::vector<const Program*> progs;
    progs.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) progs.push_back(&bundle.of(r));
    return run_impl(progs, trace, opts);
}

RunResult Engine::run_impl(const std::vector<const Program*>& progs,
                           Trace* trace, const RunOptions& opts) const {
    const int n = placement_.ranks();

    const net::CollectiveModel coll_model(network_);
    // Collective layout from the *actual* placement occupancy (Placement::
    // comm_layout, shared with sim::RefEngine so both price collectives
    // identically).
    const net::CommLayout layout = placement_.comm_layout();

    // ExecContext equivalence classes: pricing depends only on the context
    // fields, and SPMD placements produce a handful of distinct contexts
    // (often one), so phases are priced once per (content, class) instead of
    // once per rank. Exact field equality keeps results bit-identical.
    std::vector<arch::ExecContext> class_ctx;
    std::vector<std::uint32_t> class_of(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
        const arch::ExecContext ctx = placement_.exec_context(r, vec_quality_);
        std::uint32_t cls = UINT32_MAX;
        for (std::size_t i = 0; i < class_ctx.size(); ++i) {
            const auto& c = class_ctx[i];
            if (c.cpu == ctx.cpu && c.vec_quality == ctx.vec_quality &&
                c.threads == ctx.threads &&
                c.streams_on_domain == ctx.streams_on_domain &&
                c.domains_spanned == ctx.domains_spanned) {
                cls = static_cast<std::uint32_t>(i);
                break;
            }
        }
        if (cls == UINT32_MAX) {
            cls = static_cast<std::uint32_t>(class_ctx.size());
            class_ctx.push_back(ctx);
        }
        class_of[static_cast<std::size_t>(r)] = cls;
    }
    const std::size_t n_classes = class_ctx.size();
    std::unordered_map<std::uint64_t, CostEntry> cost_memo;
    // One-slot cache over cost_memo: consecutive compute ops (and SPMD peers
    // scheduled back to back) repeat the same cost_key, and unordered_map
    // nodes are pointer-stable, so the hit path skips the hash probe.
    // cost_signature is never 0, so 0 is a safe empty sentinel.
    std::uint64_t memo_last_key = 0;
    CostEntry* memo_last = nullptr;

    // Per-rank home node, resolved once (Placement::loc is out-of-line and
    // sends are the most numerous ops in halo-heavy programs).
    std::vector<int> rank_node(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        rank_node[static_cast<std::size_t>(r)] = placement_.loc(r).node;
    }

    // Node-pair message cost table: Network::p2p_time(a, b, bytes) evaluates
    // ((base + bytes/bw) + msg_overhead) where base and bw depend only on
    // (a, b) — base is shm_latency_s on-node and latency_s + hops*per_hop_s
    // off-node, both computed here with the identical expression so the
    // split stays bit-exact. Skipped for very large jobs where the O(nodes^2)
    // table would dominate; the engine then calls p2p_time per send.
    const auto& np = network_.params();
    const int n_nodes = placement_.nodes();
    const bool use_pair_table = n_nodes <= 256;
    std::vector<double> pair_base;
    std::vector<double> pair_bw;
    if (use_pair_table) {
        const std::size_t nn = static_cast<std::size_t>(n_nodes);
        pair_base.resize(nn * nn);
        pair_bw.resize(nn * nn);
        const auto& topo = network_.topology();
        for (int a = 0; a < n_nodes; ++a) {
            for (int b = 0; b < n_nodes; ++b) {
                const std::size_t i = static_cast<std::size_t>(a) * nn +
                                      static_cast<std::size_t>(b);
                if (a == b) {
                    pair_base[i] = np.shm_latency_s;
                    pair_bw[i] = np.shm_bandwidth;
                } else {
                    pair_base[i] = np.latency_s + topo.hops(a, b) * np.per_hop_s;
                    pair_bw[i] = np.bandwidth;
                }
            }
        }
    }

    std::vector<RankState> st(static_cast<std::size_t>(n));

    RunResult result;
    result.ranks.assign(static_cast<std::size_t>(n), RankStats{});

    // Per-phase compute seconds, accumulated *per rank* (indexed by interned
    // PhaseId) and reduced across ranks in ascending rank order at the end.
    // A rank's additions follow its program order, which no schedule can
    // permute, so the FP sums are schedule-invariant (DESIGN.md §10.2); a
    // single global accumulator would add in pop order and drift in the low
    // bits. `seen` (not acc != 0) mirrors the old map semantics: executing a
    // zero-cost phase still creates its entry. total_flops gets the same
    // treatment via rank_flops.
    std::vector<std::vector<double>> rank_phase(static_cast<std::size_t>(n));
    std::vector<char> phase_seen;
    std::vector<double> rank_flops(static_cast<std::size_t>(n), 0.0);
    const auto accum_phase = [&](int rank, PhaseId id, double dt) {
        auto& acc = rank_phase[static_cast<std::size_t>(rank)];
        if (id >= acc.size()) acc.resize(id + 1, 0.0);
        if (id >= phase_seen.size()) phase_seen.resize(id + 1, 0);
        acc[id] += dt;
        phase_seen[id] = 1;
    };

    std::vector<Mailbox> mailbox(static_cast<std::size_t>(n));
    std::vector<Collective> collectives;
    collectives.reserve(64);
    // FIFO run queue as a head-indexed vector (contiguous; compacts when
    // drained, so it stays O(live entries) despite monotonic pushes).
    std::vector<int> runnable;
    runnable.reserve(static_cast<std::size_t>(n) * 2);
    std::size_t run_head = 0;
    std::vector<char> queued(static_cast<std::size_t>(n), 1);
    // Quiescence grants for MPI_ANY_SOURCE recvs (see the resolver below).
    std::vector<char> any_grant(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) runnable.push_back(r);
    int finished = 0;

    auto wake = [&](int r) {
        if (!queued[static_cast<std::size_t>(r)] && !st[static_cast<std::size_t>(r)].finished) {
            queued[static_cast<std::size_t>(r)] = 1;
            runnable.push_back(r);
        }
    };

    // First message matching (want_src, want_tag). Per-source FIFOs preserve
    // send order within a source (MPI non-overtaking); for MPI_ANY_SOURCE the
    // cross-source winner is the candidate with the smallest (arrival time,
    // source rank) key. Arrival = sender issue time + p2p latency, both pure
    // functions of the programs, so — unlike a global send-issue counter —
    // the match cannot depend on the order the engine happened to run ranks
    // (DESIGN.md §10.2).
    auto find_recv = [&](int r) -> std::pair<Mailbox::SrcQueue*, std::size_t> {
        auto& box = mailbox[static_cast<std::size_t>(r)];
        const auto& s = st[static_cast<std::size_t>(r)];
        Mailbox::SrcQueue* best_sq = nullptr;
        std::size_t best_i = 0;
        for (auto& sq : box.srcs) {
            if (s.want_src != kAnySource && sq.src != s.want_src) continue;
            for (std::size_t i = sq.head; i < sq.q.size(); ++i) {
                if (sq.q[i].tag != s.want_tag) continue;
                if (best_sq == nullptr ||
                    sq.q[i].arrival < best_sq->q[best_i].arrival ||
                    (sq.q[i].arrival == best_sq->q[best_i].arrival &&
                     sq.src < best_sq->src)) {
                    best_sq = &sq;
                    best_i = i;
                }
                break;  // first tag match per source is the only candidate
            }
            if (s.want_src != kAnySource) break;
        }
        return {best_sq, best_i};
    };
    auto try_recv = [&](int r) -> std::optional<Message> {
        auto [best_sq, best_i] = find_recv(r);
        if (best_sq == nullptr) return std::nullopt;
        Message m = best_sq->q[best_i];
        if (best_i == best_sq->head) {
            if (++best_sq->head == best_sq->q.size()) {
                best_sq->q.clear();
                best_sq->head = 0;
            }
        } else {
            // Rare (mixed tags from one source): keep FIFO order for the rest.
            best_sq->q.erase(best_sq->q.begin() +
                             static_cast<std::ptrdiff_t>(best_i));
        }
        return m;
    };

    const double os_noise = cost_.knobs().os_noise;
    // Schedule perturbation (sim::check): any nonzero seed swaps a pseudo-
    // randomly chosen runnable rank to the queue head before every pop.
    util::Rng perturb_rng(opts.perturb_seed);
    const bool perturb = opts.perturb_seed != 0;

    while (finished < n) {
        if (run_head == runnable.size()) {
            // Global quiescence: no rank can advance without an ANY_SOURCE
            // match. Wildcard recvs are resolved only here — an eager match
            // would consume whichever message this particular schedule
            // happened to deliver first, but the quiescent state (and so the
            // pending-message pool the (arrival, src) rule picks from) is a
            // pure function of the programs. Lowest blocked rank with a match
            // resolves first; the simulation then runs back to quiescence.
            int grant = -1;
            for (int r = 0; r < n; ++r) {
                const auto& s = st[static_cast<std::size_t>(r)];
                if (!s.finished && s.blocked == BlockKind::recv &&
                    s.want_src == kAnySource && find_recv(r).first != nullptr) {
                    grant = r;
                    break;
                }
            }
            if (grant >= 0) {
                any_grant[static_cast<std::size_t>(grant)] = 1;
                wake(grant);
                continue;
            }

            // Stall: snapshot every rank's pending op and throw the wait-for
            // graph (sim/deadlock.hpp). The stalled state is a pure function
            // of the programs — every schedule reaches the same one — so the
            // diagnosis is required to be byte-identical across Engine,
            // RefEngine and all perturbation seeds.
            std::vector<PendingWait> pending(static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) {
                const auto& s = st[static_cast<std::size_t>(r)];
                auto& w = pending[static_cast<std::size_t>(r)];
                w.finished = s.finished;
                w.pc = s.pc;
                w.colls_entered = s.coll_count;
                if (s.finished) continue;
                if (s.blocked == BlockKind::recv) {
                    w.blocked_on_recv = true;
                    w.want_src = s.want_src;
                    w.want_tag = s.want_tag;
                } else {
                    // The engine counts a collective as entered *before*
                    // blocking, so the blocking ordinal is coll_count - 1.
                    w.coll_ordinal = s.coll_count - 1;
                }
            }
            std::vector<CollDesc> descs(collectives.size());
            for (std::size_t i = 0; i < collectives.size(); ++i) {
                switch (collectives[i].kind) {
                    case CollKind::allreduce: descs[i].kind = "allreduce"; break;
                    case CollKind::barrier: descs[i].kind = "barrier"; break;
                    case CollKind::alltoall: descs[i].kind = "alltoall"; break;
                    case CollKind::none: break;
                }
                descs[i].bytes = collectives[i].bytes;
            }
            throw DeadlockError(build_wait_graph(pending, descs));
        }

        if (perturb) {
            const std::size_t live = runnable.size() - run_head;
            if (live > 1) {
                std::swap(runnable[run_head],
                          runnable[run_head + perturb_rng.next_below(live)]);
            }
        }
        const int r = runnable[run_head++];
        if (run_head == runnable.size()) {
            runnable.clear();
            run_head = 0;
        } else if (run_head >= 4096 && run_head * 2 >= runnable.size()) {
            // Drop the consumed prefix so programs that never fully drain the
            // queue (collective-free pipelines) stay O(live entries).
            runnable.erase(runnable.begin(),
                           runnable.begin() + static_cast<std::ptrdiff_t>(run_head));
            run_head = 0;
        }
        queued[static_cast<std::size_t>(r)] = 0;
        auto& s = st[static_cast<std::size_t>(r)];
        auto& stats = result.ranks[static_cast<std::size_t>(r)];
        const Program& prog = *progs[static_cast<std::size_t>(r)];
        const std::uint32_t cls = class_of[static_cast<std::size_t>(r)];

        // Local copies: stores through st/stats/mailbox cannot alias the op
        // stream, but the compiler cannot prove that and would otherwise
        // reload ops.data()/size() after every store.
        const Op* const ops_data = prog.ops.data();
        const std::size_t nops = prog.ops.size();

        bool advancing = true;
        while (advancing && s.pc < nops) {
            const Op& op = ops_data[s.pc];
            // Dispatch on the raw alternative index with a compare chain,
            // most-frequent ops first: conditional branches on a patterned op
            // stream predict far better than one indirect jump.
            const std::size_t tag = op.index();
            if (tag == 1) {  // SendOp
                const auto* snd = std::get_if<SendOp>(&op);
                ARMSTICE_CHECK(snd->dst >= 0 && snd->dst < n, "send dst out of range");
                const int src_node = rank_node[static_cast<std::size_t>(r)];
                const int dst_node = rank_node[static_cast<std::size_t>(snd->dst)];
                double p2p;
                if (use_pair_table) {
                    ARMSTICE_CHECK(snd->bytes >= 0, "negative message size");
                    const std::size_t pi =
                        static_cast<std::size_t>(src_node) *
                            static_cast<std::size_t>(n_nodes) +
                        static_cast<std::size_t>(dst_node);
                    p2p = pair_base[pi] + snd->bytes / pair_bw[pi] +
                          np.msg_overhead_s;
                } else {
                    p2p = network_.p2p_time(src_node, dst_node, snd->bytes);
                }
                const double arrival = s.time + p2p;
                const double inject =
                    np.msg_overhead_s + snd->bytes / np.injection_bw;
                if (trace) {
                    trace->add({r, SpanKind::send, "", s.time, s.time + inject});
                }
                s.time += inject;
                stats.injected_bytes += snd->bytes;
                ++stats.msgs_sent;
                mailbox[static_cast<std::size_t>(snd->dst)]
                    .queue_for(r)
                    .q.push_back(Message{r, snd->tag, arrival});
                // ANY_SOURCE waiters are not woken by sends: they resolve at
                // quiescence only (schedule invariance).
                const auto& ds = st[static_cast<std::size_t>(snd->dst)];
                if (ds.blocked == BlockKind::recv && ds.want_src != kAnySource) {
                    wake(snd->dst);
                }
                ++s.pc;
            } else if (tag == 2) {  // RecvOp
                const auto* rcv = std::get_if<RecvOp>(&op);
                s.want_src = rcv->src;
                s.want_tag = rcv->tag;
                // ANY_SOURCE matches only with a quiescence grant (above);
                // explicit-source matching is confluent and stays eager.
                std::optional<Message> m;
                if (rcv->src != kAnySource || any_grant[static_cast<std::size_t>(r)]) {
                    any_grant[static_cast<std::size_t>(r)] = 0;
                    m = try_recv(r);
                }
                if (m) {
                    if (m->arrival > s.time) {
                        if (trace) {
                            trace->add({r, SpanKind::recv_wait, "", s.time, m->arrival});
                        }
                        stats.recv_wait += m->arrival - s.time;
                        s.time = m->arrival;
                    }
                    ++stats.msgs_received;
                    s.blocked = BlockKind::none;
                    ++s.pc;
                } else {
                    s.blocked = BlockKind::recv;
                    advancing = false;
                }
            } else if (tag == 0) {  // ComputeOp
                const auto* c = std::get_if<ComputeOp>(&op);
                const arch::ComputePhase& phase = prog.phase_of(*c);
                CostEntry* entry_p;
                if (c->cost_key == memo_last_key) {
                    entry_p = memo_last;  // consecutive ops repeat phases
                } else {
                    entry_p = &cost_memo[c->cost_key];  // nodes are stable
                    memo_last_key = c->cost_key;
                    memo_last = entry_p;
                }
                auto& entry = *entry_p;
                if (entry.rep_addr == nullptr) {
                    entry.rep = phase;
                    entry.rep_addr = &phase;
                    entry.dt.assign(n_classes, 0.0);
                    entry.have.assign(n_classes, 0);
                }
                double dt;
                if (entry.rep_addr == &phase ||
                    arch::same_cost_inputs(entry.rep, phase)) {
                    if (!entry.have[cls]) {
                        // Bit-identical across sharers: explain() reads only
                        // the (bitwise equal) same_cost_inputs fields.
                        entry.dt[cls] = cost_.phase_time(phase, class_ctx[cls]);
                        entry.have[cls] = 1;
                    }
                    dt = entry.dt[cls];
                } else {
                    // Hash collision between different phase contents: price
                    // this op directly rather than share a wrong time.
                    dt = cost_.phase_time(phase, class_ctx[cls]);
                }
                if (os_noise > 0) {
                    dt *= 1.0 + os_noise * noise_sample(r, s.pc);
                }
                const PhaseId label_id =
                    s.mark_id != kNoPhase ? s.mark_id : c->label_id;
                if (trace) {
                    trace->add({r, SpanKind::compute, phase_table().str(label_id),
                                s.time, s.time + dt});
                }
                s.time += dt;
                stats.compute += dt;
                rank_flops[static_cast<std::size_t>(r)] += phase.flops;
                accum_phase(r, label_id, dt);
                ++s.pc;
            } else if (tag <= 5) {  // Allreduce(3) / Barrier(4) / Alltoall(5)
                CollKind kind = CollKind::barrier;
                double bytes = 8.0;
                if (const auto* ar = std::get_if<AllreduceOp>(&op)) {
                    kind = CollKind::allreduce;
                    bytes = ar->bytes;
                } else if (const auto* aa = std::get_if<AlltoallOp>(&op)) {
                    kind = CollKind::alltoall;
                    bytes = aa->bytes_each;
                }

                const int ord = s.coll_count;
                if (ord >= static_cast<int>(collectives.size())) {
                    collectives.resize(static_cast<std::size_t>(ord) + 1);
                    auto& fresh = collectives[static_cast<std::size_t>(ord)];
                    fresh.kind = kind;
                    fresh.bytes = bytes;
                    fresh.waiters.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
                }
                auto& coll = collectives[static_cast<std::size_t>(ord)];
                ARMSTICE_CHECK(coll.kind == kind && coll.bytes == bytes,
                               "collective mismatch: ranks disagree on op " +
                                   std::to_string(ord));
                ++s.coll_count;
                coll.max_time = std::max(coll.max_time, s.time);
                ++coll.arrived;
                if (coll.arrived == n) {
                    double cost = 0.0;
                    switch (kind) {
                        case CollKind::allreduce:
                            cost = coll_model.allreduce(layout, bytes);
                            break;
                        case CollKind::barrier:
                            cost = coll_model.barrier(layout);
                            break;
                        case CollKind::alltoall:
                            cost = coll_model.alltoall(layout, bytes);
                            break;
                        case CollKind::none: break;
                    }
                    coll.completion = coll.max_time + cost;
                    // Resume everyone (this rank inline, peers via queue).
                    // Waiters are blocked, hence neither queued nor finished,
                    // so they can be enqueued without wake()'s checks.
                    for (int w : coll.waiters) {
                        auto& ws = st[static_cast<std::size_t>(w)];
                        if (trace) {
                            trace->add({w, SpanKind::collective, "", ws.time,
                                        coll.completion});
                        }
                        result.ranks[static_cast<std::size_t>(w)].collective_wait +=
                            coll.completion - ws.time;
                        ws.time = coll.completion;
                        ws.blocked = BlockKind::none;
                        ++ws.pc;
                        queued[static_cast<std::size_t>(w)] = 1;
                        runnable.push_back(w);
                    }
                    if (trace) {
                        trace->add({r, SpanKind::collective, "", s.time,
                                    coll.completion});
                    }
                    stats.collective_wait += coll.completion - s.time;
                    s.time = coll.completion;
                    ++s.pc;
                } else {
                    coll.waiters.push_back(r);
                    s.blocked = BlockKind::collective;
                    advancing = false;
                }
            } else {  // MarkOp (6)
                s.mark_id = std::get_if<MarkOp>(&op)->label_id;
                ++s.pc;
            }
        }

        if (s.pc >= nops && !s.finished) {
            s.finished = true;
            stats.finish = s.time;
            ++finished;
        }
    }

    for (const auto& stats : result.ranks) {
        result.makespan = std::max(result.makespan, stats.finish);
    }
    // Cross-rank reductions in ascending rank order — the one FP addition
    // order every schedule (and RefEngine) can reproduce.
    for (int r = 0; r < n; ++r) {
        result.total_flops += rank_flops[static_cast<std::size_t>(r)];
    }
    for (PhaseId id = 0; id < phase_seen.size(); ++id) {
        if (!phase_seen[id]) continue;
        double acc = 0.0;
        for (int r = 0; r < n; ++r) {
            const auto& per = rank_phase[static_cast<std::size_t>(r)];
            if (id < per.size()) acc += per[id];
        }
        result.phase_compute.emplace(phase_table().str(id), acc);
    }
    return result;
}

} // namespace armstice::sim
