#include "sim/engine.hpp"

#include "sim/deadlock.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

namespace armstice::sim {
namespace {

struct Message {
    int src = 0;
    int tag = 0;
    double arrival = 0;
};

/// One rank's pending messages, FIFO per source. Ranks receive from a
/// handful of sources (halo neighbours), so the source list is a small
/// linearly-scanned vector instead of a map.
struct Mailbox {
    /// FIFO as a head-indexed vector: push at the back, consume at `head`,
    /// reset both when drained so capacity is reused allocation-free.
    struct SrcQueue {
        int src = 0;
        std::vector<Message> q;
        std::size_t head = 0;
    };
    std::vector<SrcQueue> srcs;

    SrcQueue& queue_for(int src) {
        for (auto& sq : srcs) {
            if (sq.src == src) return sq;
        }
        srcs.push_back(SrcQueue{src, {}, 0});
        return srcs.back();
    }
};

enum class BlockKind { none, recv, collective };

/// One *simulation class*: a set of ranks whose futures are provably
/// identical (same Program object, same ExecContext class) executing as one
/// state machine (DESIGN.md §11). A singleton class is exactly the old
/// per-rank state. Collapsed classes split — lazily, the moment the next op
/// could break the symmetry — into singletons that inherit the shared state,
/// so every rank's trajectory is bit-identical to an uncollapsed run.
struct SimClass {
    // Execution state (what RankState used to hold).
    std::size_t pc = 0;
    double time = 0;
    BlockKind blocked = BlockKind::none;
    int want_src = kAnySource;
    int want_tag = 0;
    int coll_count = 0;      ///< collectives entered (per member)
    PhaseId mark_id = kNoPhase;  ///< current MarkOp label (kNoPhase = none)
    bool finished = false;
    bool queued = false;
    bool any_grant = false;  ///< quiescence grant for an ANY_SOURCE recv
    // Class identity.
    const Program* prog = nullptr;
    std::uint32_t ctx = 0;   ///< ExecContext class (cost-memo row)
    int rep = 0;             ///< lowest member rank; the one "executing"
    int size = 1;            ///< member count
    std::vector<int> members;  ///< ascending; members[0] == rep
    // Per-member results, replicated to every member at the end. Summing the
    // replicas in ascending rank order reproduces the uncollapsed reductions
    // bit-exactly because each member would have produced the same values.
    RankStats stats;
    double flops = 0;
    std::vector<double> phase;  ///< compute seconds per interned PhaseId
};

enum class CollKind { none, allreduce, barrier, alltoall };

struct Collective {
    CollKind kind = CollKind::none;
    double bytes = 0;
    int arrived = 0;         ///< ranks (not classes) that have entered
    double max_time = 0;
    std::vector<std::uint32_t> waiters;  ///< blocked class indices
    double completion = 0;
};

/// Memoized CostModel pricing for one phase content (cost_signature key):
/// `dt[cls]` is the priced time under ExecContext class `cls`. `rep` copies
/// the first phase seen with this key (kept inline so the hot-path content
/// check never chases a pointer into another rank's program); an op whose
/// phase disagrees with `rep` (hash collision) is priced directly and never
/// shares the slot. `rep_addr` short-circuits the content check when ranks
/// share one program object (ProgramBundle) or one pooled phase.
struct CostEntry {
    arch::ComputePhase rep;
    const arch::ComputePhase* rep_addr = nullptr;
    std::vector<double> dt;
    std::vector<char> have;
};

} // namespace

double noise_sample(int rank, std::size_t op_index) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(rank) << 32) ^ op_index;
    const double u =
        static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    return std::min(8.0, -std::log1p(-u));
}

double RunResult::mean_compute() const {
    double s = 0;
    for (const auto& r : ranks) s += r.compute;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_recv_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.recv_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_collective_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.collective_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

Engine::Engine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
               arch::ModelKnobs knobs)
    : sys_(&sys),
      placement_(std::move(placement)),
      vec_quality_(vec_quality),
      cost_(knobs),
      network_(sys.net, placement_.nodes()) {
    ARMSTICE_CHECK(vec_quality_ > 0.0 && vec_quality_ <= 1.0,
                   "vec_quality must be in (0,1]");
}

RunResult Engine::run(const std::vector<Program>& programs, Trace* trace) const {
    return run(programs, RunOptions{}, trace);
}

RunResult Engine::run(const ProgramBundle& bundle, Trace* trace) const {
    return run(bundle, RunOptions{}, trace);
}

RunResult Engine::run(const std::vector<Program>& programs, const RunOptions& opts,
                      Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(static_cast<int>(programs.size()) == n,
                   util::format("programs (%zu) != ranks (%d)", programs.size(), n));
    std::vector<const Program*> progs;
    progs.reserve(programs.size());
    for (const auto& p : programs) progs.push_back(&p);
    return run_impl(progs, trace, opts);
}

RunResult Engine::run(const ProgramBundle& bundle, const RunOptions& opts,
                      Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(bundle.ranks() == n,
                   util::format("bundle ranks (%d) != ranks (%d)", bundle.ranks(), n));
    std::vector<const Program*> progs;
    progs.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) progs.push_back(&bundle.of(r));
    return run_impl(progs, trace, opts);
}

RunResult Engine::run_impl(const std::vector<const Program*>& progs,
                           Trace* trace, const RunOptions& opts) const {
    const int n = placement_.ranks();

    const net::CollectiveModel coll_model(network_);
    // Collective layout from the *actual* placement occupancy (Placement::
    // comm_layout, shared with sim::RefEngine so both price collectives
    // identically).
    const net::CommLayout layout = placement_.comm_layout();

    // ExecContext equivalence classes: pricing depends only on the context
    // fields, and SPMD placements produce a handful of distinct contexts
    // (often one), so phases are priced once per (content, class) instead of
    // once per rank. Exact field equality keeps results bit-identical.
    std::vector<arch::ExecContext> class_ctx;
    std::vector<std::uint32_t> ctx_of(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n; ++r) {
        const arch::ExecContext ctx = placement_.exec_context(r, vec_quality_);
        std::uint32_t cc = UINT32_MAX;
        for (std::size_t i = 0; i < class_ctx.size(); ++i) {
            const auto& c = class_ctx[i];
            if (c.cpu == ctx.cpu && c.vec_quality == ctx.vec_quality &&
                c.threads == ctx.threads &&
                c.streams_on_domain == ctx.streams_on_domain &&
                c.domains_spanned == ctx.domains_spanned) {
                cc = static_cast<std::uint32_t>(i);
                break;
            }
        }
        if (cc == UINT32_MAX) {
            cc = static_cast<std::uint32_t>(class_ctx.size());
            class_ctx.push_back(ctx);
        }
        ctx_of[static_cast<std::size_t>(r)] = cc;
    }
    const std::size_t n_classes = class_ctx.size();
    std::unordered_map<std::uint64_t, CostEntry> cost_memo;
    // One-slot cache over cost_memo: consecutive compute ops (and SPMD peers
    // scheduled back to back) repeat the same cost_key, and unordered_map
    // nodes are pointer-stable, so the hit path skips the hash probe.
    // cost_signature is never 0, so 0 is a safe empty sentinel.
    std::uint64_t memo_last_key = 0;
    CostEntry* memo_last = nullptr;

    // --- Simulation classes (rank-equivalence collapse, DESIGN.md §11) ---
    // Ranks sharing one Program object (ProgramBundle dedup) and one
    // ExecContext class start in one SimClass and execute once. Program
    // *identity* (not content) is the key: the per-rank-vector run() overload
    // passes n distinct pointers and degenerates to n singletons, preserving
    // its exact legacy behaviour. Tracing needs per-rank spans, so a Trace
    // forces singletons too.
    const bool collapse = opts.collapse && trace == nullptr;
    std::vector<SimClass> cls;
    std::vector<std::uint32_t> cls_of(static_cast<std::size_t>(n), 0);
    if (collapse) {
        std::map<std::pair<const Program*, std::uint32_t>, std::uint32_t> groups;
        for (int r = 0; r < n; ++r) {
            const std::uint32_t cc = ctx_of[static_cast<std::size_t>(r)];
            const auto key = std::make_pair(progs[static_cast<std::size_t>(r)], cc);
            auto [it, fresh] = groups.emplace(key, static_cast<std::uint32_t>(cls.size()));
            if (fresh) {
                SimClass s;
                s.prog = progs[static_cast<std::size_t>(r)];
                s.ctx = cc;
                s.rep = r;
                s.size = 0;
                cls.push_back(std::move(s));
            }
            auto& c = cls[it->second];
            c.members.push_back(r);
            ++c.size;
            cls_of[static_cast<std::size_t>(r)] = it->second;
        }
    } else {
        cls.resize(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            auto& c = cls[static_cast<std::size_t>(r)];
            c.prog = progs[static_cast<std::size_t>(r)];
            c.ctx = ctx_of[static_cast<std::size_t>(r)];
            c.rep = r;
            cls_of[static_cast<std::size_t>(r)] = static_cast<std::uint32_t>(r);
        }
    }

    RunResult result;
    result.collapse_classes = static_cast<int>(cls.size());

    // Per-phase compute seconds accumulate *per class* (indexed by interned
    // PhaseId) in program order, which no schedule can permute, and reduce
    // across ranks in ascending rank order at the end — so the FP sums are
    // schedule-invariant (DESIGN.md §10.2) and collapse-invariant (every
    // member replicates its class's values). `phase_seen` (not acc != 0)
    // mirrors the old map semantics: executing a zero-cost phase still
    // creates its entry. total_flops gets the same treatment via
    // SimClass::flops.
    std::vector<char> phase_seen;
    const auto accum_phase = [&](SimClass& s, PhaseId id, double dt) {
        if (id >= s.phase.size()) s.phase.resize(id + 1, 0.0);
        if (id >= phase_seen.size()) phase_seen.resize(id + 1, 0);
        s.phase[id] += dt;
        phase_seen[id] = 1;
    };

    // P2p state — per-rank home nodes and mailboxes — is materialised lazily
    // on the first SendOp, so purely collective/compute workloads (the ones
    // that stay collapsed) never allocate O(total ranks) arrays for it.
    const auto& np = network_.params();
    const auto& topo = network_.topology();
    std::vector<int> rank_node;
    std::vector<Mailbox> mailbox;
    bool p2p_live = false;
    const auto ensure_p2p = [&] {
        if (p2p_live) return;
        rank_node.resize(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            rank_node[static_cast<std::size_t>(r)] = placement_.loc(r).node;
        }
        mailbox.assign(static_cast<std::size_t>(n), Mailbox{});
        p2p_live = true;
    };

    // Tiered message-cost table: Network::p2p_time(a, b, bytes) evaluates
    // ((base + bytes/bw) + msg_overhead) where base depends on (a, b) only
    // through the hop count — latency_s + hops*per_hop_s off-node (hops is
    // in [1, diameter], a topology-contract the counting-form diameter()
    // overrides pin) and shm_latency_s on-node. Precomputing base per hop
    // tier with the identical expression keeps the split bit-exact while
    // replacing the old O(nodes^2) node-pair table, whose n_nodes <= 256
    // cutoff silently changed nothing but cost minutes of setup and gigabytes
    // at many-thousand-node scale.
    std::vector<double> hop_base(static_cast<std::size_t>(topo.diameter()) + 1);
    for (std::size_t h = 0; h < hop_base.size(); ++h) {
        hop_base[h] = np.latency_s + static_cast<int>(h) * np.per_hop_s;
    }

    std::vector<Collective> collectives;
    collectives.reserve(64);
    // Collective pricing is a pure function of (kind, bytes) for a fixed
    // layout; memoize it so million-rank iteration loops price each distinct
    // collective once instead of re-walking the topology model per ordinal.
    struct CollPrice {
        CollKind kind;
        double bytes;
        double cost;
    };
    std::vector<CollPrice> coll_prices;
    const auto collective_cost = [&](CollKind kind, double bytes) {
        for (const auto& cp : coll_prices) {
            if (cp.kind == kind && cp.bytes == bytes) return cp.cost;
        }
        double cost = 0.0;
        switch (kind) {
            case CollKind::allreduce: cost = coll_model.allreduce(layout, bytes); break;
            case CollKind::barrier: cost = coll_model.barrier(layout); break;
            case CollKind::alltoall: cost = coll_model.alltoall(layout, bytes); break;
            case CollKind::none: break;
        }
        coll_prices.push_back(CollPrice{kind, bytes, cost});
        return cost;
    };

    // FIFO run queue of class indices as a head-indexed vector (contiguous;
    // compacts when drained, so it stays O(live entries) despite monotonic
    // pushes — and O(classes), not O(ranks), while classes stay collapsed).
    std::vector<std::uint32_t> runnable;
    runnable.reserve(cls.size() * 2);
    std::size_t run_head = 0;
    for (std::uint32_t i = 0; i < cls.size(); ++i) {
        cls[i].queued = true;
        runnable.push_back(i);
    }
    int finished_ranks = 0;

    const auto wake = [&](std::uint32_t ci) {
        auto& c = cls[ci];
        if (!c.queued && !c.finished) {
            c.queued = true;
            runnable.push_back(ci);
        }
    };

    // Splitting: the moment class ci's next op could distinguish members —
    // any p2p op (absolute rank addressing), or a ComputeOp under nonzero
    // os_noise (the noise draw is rank-keyed) — every member except the
    // representative peels off into a singleton inheriting the shared state
    // verbatim. Members have been bit-identical up to here by induction, so
    // the inherited state *is* each member's uncollapsed state. New
    // singletons enqueue in ascending member order; collectives never split
    // (their effect on every waiter is symmetric) and MarkOps are per-class.
    const auto split_class = [&](std::uint32_t ci) {
        std::vector<int> members = std::move(cls[ci].members);
        cls[ci].members.clear();
        cls[ci].size = 1;
        ++result.collapse_splits;
        const SimClass base = cls[ci];  // state snapshot (members already cut)
        for (std::size_t i = 1; i < members.size(); ++i) {
            SimClass s = base;
            s.rep = members[i];
            s.queued = true;
            cls_of[static_cast<std::size_t>(members[i])] =
                static_cast<std::uint32_t>(cls.size());
            runnable.push_back(static_cast<std::uint32_t>(cls.size()));
            cls.push_back(std::move(s));
        }
        // cls[ci] keeps members[0] == its rep; it is already dequeued and
        // continues executing the op that triggered the split.
    };

    // First message matching (want_src, want_tag). Per-source FIFOs preserve
    // send order within a source (MPI non-overtaking); for MPI_ANY_SOURCE the
    // cross-source winner is the candidate with the smallest (arrival time,
    // source rank) key. Arrival = sender issue time + p2p latency, both pure
    // functions of the programs, so — unlike a global send-issue counter —
    // the match cannot depend on the order the engine happened to run ranks
    // (DESIGN.md §10.2). Classes blocked on a recv are always singletons
    // (p2p ops split first), so the class rep is the receiving rank.
    const auto find_recv =
        [&](const SimClass& s) -> std::pair<Mailbox::SrcQueue*, std::size_t> {
        if (!p2p_live) return {nullptr, 0};
        auto& box = mailbox[static_cast<std::size_t>(s.rep)];
        Mailbox::SrcQueue* best_sq = nullptr;
        std::size_t best_i = 0;
        for (auto& sq : box.srcs) {
            if (s.want_src != kAnySource && sq.src != s.want_src) continue;
            for (std::size_t i = sq.head; i < sq.q.size(); ++i) {
                if (sq.q[i].tag != s.want_tag) continue;
                if (best_sq == nullptr ||
                    sq.q[i].arrival < best_sq->q[best_i].arrival ||
                    (sq.q[i].arrival == best_sq->q[best_i].arrival &&
                     sq.src < best_sq->src)) {
                    best_sq = &sq;
                    best_i = i;
                }
                break;  // first tag match per source is the only candidate
            }
            if (s.want_src != kAnySource) break;
        }
        return {best_sq, best_i};
    };
    const auto try_recv = [&](const SimClass& s) -> std::optional<Message> {
        auto [best_sq, best_i] = find_recv(s);
        if (best_sq == nullptr) return std::nullopt;
        Message m = best_sq->q[best_i];
        if (best_i == best_sq->head) {
            if (++best_sq->head == best_sq->q.size()) {
                best_sq->q.clear();
                best_sq->head = 0;
            }
        } else {
            // Rare (mixed tags from one source): keep FIFO order for the rest.
            best_sq->q.erase(best_sq->q.begin() +
                             static_cast<std::ptrdiff_t>(best_i));
        }
        return m;
    };

    const double os_noise = cost_.knobs().os_noise;
    // Schedule perturbation (sim::check): any nonzero seed permutes every
    // order-free choice the engine makes — the runnable pop order, the
    // quiescence resolver's scan order, and the order a completed
    // collective's waiters are processed in — and results must stay
    // bit-identical (DESIGN.md §10.2).
    util::Rng perturb_rng(opts.perturb_seed);
    const bool perturb = opts.perturb_seed != 0;

    while (finished_ranks < n) {
        if (run_head == runnable.size()) {
            // Global quiescence: no rank can advance without an ANY_SOURCE
            // match. Wildcard recvs are resolved only here — an eager match
            // would consume whichever message this particular schedule
            // happened to deliver first, but the quiescent state (and so the
            // pending-message pool the (arrival, src) rule picks from) is a
            // pure function of the programs. The *lowest-ranked* blocked rank
            // with a match resolves first — computed as an explicit min over
            // all eligible classes, never "first eligible found", so the
            // grant is independent of class creation order; under a perturb
            // seed the scan starts at a pseudorandom offset to pin exactly
            // that. (Permuting the grant order itself would be unsound: the
            // granted rank can resume and send a message that outranks an
            // already-pending match on another wildcard receiver.)
            std::uint32_t grant = UINT32_MAX;
            int grant_rank = n;
            const std::size_t nc = cls.size();
            const std::size_t start = perturb && nc > 1 ? perturb_rng.next_below(nc) : 0;
            for (std::size_t k = 0; k < nc; ++k) {
                const std::size_t i = start + k < nc ? start + k : start + k - nc;
                const auto& s = cls[i];
                if (!s.finished && s.blocked == BlockKind::recv &&
                    s.want_src == kAnySource && s.rep < grant_rank &&
                    find_recv(s).first != nullptr) {
                    grant = static_cast<std::uint32_t>(i);
                    grant_rank = s.rep;
                }
            }
            if (grant != UINT32_MAX) {
                cls[grant].any_grant = true;
                wake(grant);
                continue;
            }

            // Stall: snapshot every rank's pending op and throw the wait-for
            // graph (sim/deadlock.hpp). The stalled state is a pure function
            // of the programs — every schedule reaches the same one — so the
            // diagnosis is required to be byte-identical across Engine,
            // RefEngine, all perturbation seeds, and collapse on/off (a
            // collapsed class's state is every member's state).
            std::vector<PendingWait> pending(static_cast<std::size_t>(n));
            for (int r = 0; r < n; ++r) {
                const auto& s = cls[cls_of[static_cast<std::size_t>(r)]];
                auto& w = pending[static_cast<std::size_t>(r)];
                w.finished = s.finished;
                w.pc = s.pc;
                w.colls_entered = s.coll_count;
                if (s.finished) continue;
                if (s.blocked == BlockKind::recv) {
                    w.blocked_on_recv = true;
                    w.want_src = s.want_src;
                    w.want_tag = s.want_tag;
                } else {
                    // The engine counts a collective as entered *before*
                    // blocking, so the blocking ordinal is coll_count - 1.
                    w.coll_ordinal = s.coll_count - 1;
                }
            }
            std::vector<CollDesc> descs(collectives.size());
            for (std::size_t i = 0; i < collectives.size(); ++i) {
                switch (collectives[i].kind) {
                    case CollKind::allreduce: descs[i].kind = "allreduce"; break;
                    case CollKind::barrier: descs[i].kind = "barrier"; break;
                    case CollKind::alltoall: descs[i].kind = "alltoall"; break;
                    case CollKind::none: break;
                }
                descs[i].bytes = collectives[i].bytes;
            }
            throw DeadlockError(build_wait_graph(pending, descs));
        }

        if (perturb) {
            const std::size_t live = runnable.size() - run_head;
            if (live > 1) {
                std::swap(runnable[run_head],
                          runnable[run_head + perturb_rng.next_below(live)]);
            }
        }
        const std::uint32_t ci = runnable[run_head++];
        if (run_head == runnable.size()) {
            runnable.clear();
            run_head = 0;
        } else if (run_head >= 4096 && run_head * 2 >= runnable.size()) {
            // Drop the consumed prefix so programs that never fully drain the
            // queue (collective-free pipelines) stay O(live entries).
            runnable.erase(runnable.begin(),
                           runnable.begin() + static_cast<std::ptrdiff_t>(run_head));
            run_head = 0;
        }
        cls[ci].queued = false;

        // Local copies: stores through cls/mailbox cannot alias the op
        // stream, but the compiler cannot prove that and would otherwise
        // reload ops.data()/size() after every store. The Program pointer is
        // stable across splits (splits copy state, not the program).
        const Program& prog = *cls[ci].prog;
        const Op* const ops_data = prog.ops.data();
        const std::size_t nops = prog.ops.size();

        bool advancing = true;
        while (advancing && cls[ci].pc < nops) {
            // Split-before-execute: peel members off *before* binding any
            // reference (split_class grows `cls`, invalidating references).
            if (cls[ci].size > 1) {
                const std::size_t t = ops_data[cls[ci].pc].index();
                if (t == 1 || t == 2 || (t == 0 && os_noise > 0)) {
                    split_class(ci);
                }
            }
            auto& s = cls[ci];
            auto& stats = s.stats;
            const int r = s.rep;
            const Op& op = ops_data[s.pc];
            // Dispatch on the raw alternative index with a compare chain,
            // most-frequent ops first: conditional branches on a patterned op
            // stream predict far better than one indirect jump.
            const std::size_t tag = op.index();
            if (tag == 1) {  // SendOp
                const auto* snd = std::get_if<SendOp>(&op);
                ARMSTICE_CHECK(snd->dst >= 0 && snd->dst < n, "send dst out of range");
                ARMSTICE_CHECK(snd->bytes >= 0, "negative message size");
                ensure_p2p();
                const int src_node = rank_node[static_cast<std::size_t>(r)];
                const int dst_node = rank_node[static_cast<std::size_t>(snd->dst)];
                double p2p;
                if (src_node == dst_node) {
                    p2p = np.shm_latency_s + snd->bytes / np.shm_bandwidth +
                          np.msg_overhead_s;
                } else {
                    p2p = hop_base[static_cast<std::size_t>(
                              topo.hops(src_node, dst_node))] +
                          snd->bytes / np.bandwidth + np.msg_overhead_s;
                }
                const double arrival = s.time + p2p;
                const double inject =
                    np.msg_overhead_s + snd->bytes / np.injection_bw;
                if (trace) {
                    trace->add({r, SpanKind::send, "", s.time, s.time + inject});
                }
                s.time += inject;
                stats.injected_bytes += snd->bytes;
                ++stats.msgs_sent;
                mailbox[static_cast<std::size_t>(snd->dst)]
                    .queue_for(r)
                    .q.push_back(Message{r, snd->tag, arrival});
                // ANY_SOURCE waiters are not woken by sends: they resolve at
                // quiescence only (schedule invariance). A recv-blocked class
                // is a singleton, so its rep is the destination rank itself.
                const std::uint32_t di = cls_of[static_cast<std::size_t>(snd->dst)];
                const auto& ds = cls[di];
                if (ds.blocked == BlockKind::recv && ds.want_src != kAnySource) {
                    wake(di);
                }
                ++s.pc;
            } else if (tag == 2) {  // RecvOp
                const auto* rcv = std::get_if<RecvOp>(&op);
                s.want_src = rcv->src;
                s.want_tag = rcv->tag;
                // ANY_SOURCE matches only with a quiescence grant (above);
                // explicit-source matching is confluent and stays eager.
                std::optional<Message> m;
                if (rcv->src != kAnySource || s.any_grant) {
                    s.any_grant = false;
                    m = try_recv(s);
                }
                if (m) {
                    if (m->arrival > s.time) {
                        if (trace) {
                            trace->add({r, SpanKind::recv_wait, "", s.time, m->arrival});
                        }
                        stats.recv_wait += m->arrival - s.time;
                        s.time = m->arrival;
                    }
                    ++stats.msgs_received;
                    s.blocked = BlockKind::none;
                    ++s.pc;
                } else {
                    s.blocked = BlockKind::recv;
                    advancing = false;
                }
            } else if (tag == 0) {  // ComputeOp
                const auto* c = std::get_if<ComputeOp>(&op);
                const arch::ComputePhase& phase = prog.phase_of(*c);
                const std::uint32_t cc = s.ctx;
                CostEntry* entry_p;
                if (c->cost_key == memo_last_key) {
                    entry_p = memo_last;  // consecutive ops repeat phases
                } else {
                    entry_p = &cost_memo[c->cost_key];  // nodes are stable
                    memo_last_key = c->cost_key;
                    memo_last = entry_p;
                }
                auto& entry = *entry_p;
                if (entry.rep_addr == nullptr) {
                    entry.rep = phase;
                    entry.rep_addr = &phase;
                    entry.dt.assign(n_classes, 0.0);
                    entry.have.assign(n_classes, 0);
                }
                double dt;
                if (entry.rep_addr == &phase ||
                    arch::same_cost_inputs(entry.rep, phase)) {
                    if (!entry.have[cc]) {
                        // Bit-identical across sharers: explain() reads only
                        // the (bitwise equal) same_cost_inputs fields.
                        entry.dt[cc] = cost_.phase_time(phase, class_ctx[cc]);
                        entry.have[cc] = 1;
                    }
                    dt = entry.dt[cc];
                } else {
                    // Hash collision between different phase contents: price
                    // this op directly rather than share a wrong time.
                    dt = cost_.phase_time(phase, class_ctx[cc]);
                }
                if (os_noise > 0) {
                    // Rank-keyed draw — the split above guarantees size == 1.
                    dt *= 1.0 + os_noise * noise_sample(r, s.pc);
                }
                const PhaseId label_id =
                    s.mark_id != kNoPhase ? s.mark_id : c->label_id;
                if (trace) {
                    trace->add({r, SpanKind::compute, phase_table().str(label_id),
                                s.time, s.time + dt});
                }
                s.time += dt;
                stats.compute += dt;
                s.flops += phase.flops;
                accum_phase(s, label_id, dt);
                ++s.pc;
            } else if (tag <= 5) {  // Allreduce(3) / Barrier(4) / Alltoall(5)
                CollKind kind = CollKind::barrier;
                double bytes = 8.0;
                if (const auto* ar = std::get_if<AllreduceOp>(&op)) {
                    kind = CollKind::allreduce;
                    bytes = ar->bytes;
                } else if (const auto* aa = std::get_if<AlltoallOp>(&op)) {
                    kind = CollKind::alltoall;
                    bytes = aa->bytes_each;
                }

                const int ord = s.coll_count;
                if (ord >= static_cast<int>(collectives.size())) {
                    collectives.resize(static_cast<std::size_t>(ord) + 1);
                    auto& fresh = collectives[static_cast<std::size_t>(ord)];
                    fresh.kind = kind;
                    fresh.bytes = bytes;
                }
                auto& coll = collectives[static_cast<std::size_t>(ord)];
                ARMSTICE_CHECK(coll.kind == kind && coll.bytes == bytes,
                               "collective mismatch: ranks disagree on op " +
                                   std::to_string(ord));
                ++s.coll_count;
                // A collapsed class enters on behalf of all its members at
                // one shared time: `arrived` advances by the member count and
                // max_time sees the one value every member would contribute.
                coll.max_time = std::max(coll.max_time, s.time);
                coll.arrived += s.size;
                if (coll.arrived == n) {
                    coll.completion =
                        coll.max_time + collective_cost(kind, bytes);
                    // Resume everyone (this class inline, peers via queue).
                    // Waiters are blocked, hence neither queued nor finished,
                    // so they can be enqueued without wake()'s checks. Each
                    // waiter's update reads only its own state and the shared
                    // completion time, so the processing order is free —
                    // under a perturb seed it is shuffled to pin that.
                    if (perturb && coll.waiters.size() > 1) {
                        for (std::size_t i = coll.waiters.size() - 1; i > 0; --i) {
                            std::swap(coll.waiters[i],
                                      coll.waiters[perturb_rng.next_below(i + 1)]);
                        }
                    }
                    for (std::uint32_t wi : coll.waiters) {
                        auto& ws = cls[wi];
                        if (trace) {
                            trace->add({ws.rep, SpanKind::collective, "", ws.time,
                                        coll.completion});
                        }
                        ws.stats.collective_wait += coll.completion - ws.time;
                        ws.time = coll.completion;
                        ws.blocked = BlockKind::none;
                        ++ws.pc;
                        ws.queued = true;
                        runnable.push_back(wi);
                    }
                    if (trace) {
                        trace->add({r, SpanKind::collective, "", s.time,
                                    coll.completion});
                    }
                    stats.collective_wait += coll.completion - s.time;
                    s.time = coll.completion;
                    ++s.pc;
                } else {
                    coll.waiters.push_back(ci);
                    s.blocked = BlockKind::collective;
                    advancing = false;
                }
            } else {  // MarkOp (6)
                s.mark_id = std::get_if<MarkOp>(&op)->label_id;
                ++s.pc;
            }
        }

        auto& done = cls[ci];
        if (done.pc >= nops && !done.finished) {
            done.finished = true;
            done.stats.finish = done.time;
            finished_ranks += done.size;
        }
    }

    // Replicate each class's per-member results to all members, then reduce
    // across ranks in ascending rank order — the one FP addition order every
    // schedule (and RefEngine, and collapse on/off) can reproduce.
    result.ranks.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
        result.ranks[static_cast<std::size_t>(r)] =
            cls[cls_of[static_cast<std::size_t>(r)]].stats;
    }
    for (const auto& stats : result.ranks) {
        result.makespan = std::max(result.makespan, stats.finish);
    }
    for (int r = 0; r < n; ++r) {
        result.total_flops += cls[cls_of[static_cast<std::size_t>(r)]].flops;
    }
    for (PhaseId id = 0; id < phase_seen.size(); ++id) {
        if (!phase_seen[id]) continue;
        double acc = 0.0;
        for (int r = 0; r < n; ++r) {
            const auto& per = cls[cls_of[static_cast<std::size_t>(r)]].phase;
            if (id < per.size()) acc += per[id];
        }
        result.phase_compute.emplace(phase_table().str(id), acc);
    }
    return result;
}

} // namespace armstice::sim
