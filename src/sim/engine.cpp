#include "sim/engine.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <optional>

namespace armstice::sim {
namespace {

struct Message {
    int src = 0;
    int tag = 0;
    double arrival = 0;
};

enum class BlockKind { none, recv, collective };

/// Deterministic OS-noise stretch for (rank, op): capped Exp(1) sample.
double noise_sample(int rank, std::size_t op_index) {
    std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                          (static_cast<std::uint64_t>(rank) << 32) ^ op_index;
    const double u =
        static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    return std::min(8.0, -std::log1p(-u));
}

struct RankState {
    std::size_t pc = 0;
    double time = 0;
    BlockKind blocked = BlockKind::none;
    int want_src = kAnySource;
    int want_tag = 0;
    int coll_count = 0;    ///< collectives this rank has entered
    std::string mark;      ///< current phase label
    bool finished = false;
};

enum class CollKind { none, allreduce, barrier, alltoall };

struct Collective {
    CollKind kind = CollKind::none;
    double bytes = 0;
    int arrived = 0;
    double max_time = 0;
    std::vector<int> waiters;
    double completion = 0;
};

} // namespace

double RunResult::mean_compute() const {
    double s = 0;
    for (const auto& r : ranks) s += r.compute;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_recv_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.recv_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

double RunResult::mean_collective_wait() const {
    double s = 0;
    for (const auto& r : ranks) s += r.collective_wait;
    return ranks.empty() ? 0.0 : s / static_cast<double>(ranks.size());
}

Engine::Engine(const arch::SystemSpec& sys, Placement placement, double vec_quality,
               arch::ModelKnobs knobs)
    : sys_(&sys),
      placement_(std::move(placement)),
      vec_quality_(vec_quality),
      cost_(knobs),
      network_(sys.net, placement_.nodes()) {
    ARMSTICE_CHECK(vec_quality_ > 0.0 && vec_quality_ <= 1.0,
                   "vec_quality must be in (0,1]");
}

RunResult Engine::run(const std::vector<Program>& programs, Trace* trace) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(static_cast<int>(programs.size()) == n,
                   util::format("programs (%zu) != ranks (%d)", programs.size(), n));

    const net::CollectiveModel coll_model(network_);
    // Collective layout from the *actual* placement occupancy. Ceiling
    // division (the old derivation) priced 48 ranks on 5 nodes as 5x10=50
    // ranks — phantom allgather/alltoall rounds — and counted allocated-but-
    // empty nodes as collective participants.
    net::CommLayout layout;
    layout.total_ranks = n;
    int occupied = 0;
    int max_on_node = 0;
    for (int node = 0; node < placement_.nodes(); ++node) {
        const int on = placement_.ranks_on_node(node);
        if (on > 0) ++occupied;
        max_on_node = std::max(max_on_node, on);
    }
    layout.nodes = std::max(1, occupied);
    layout.ranks_per_node = std::max(1, max_on_node);

    std::vector<RankState> st(static_cast<std::size_t>(n));
    std::vector<arch::ExecContext> ctx;
    ctx.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) ctx.push_back(placement_.exec_context(r, vec_quality_));

    RunResult result;
    result.ranks.assign(static_cast<std::size_t>(n), RankStats{});

    std::vector<std::deque<Message>> mailbox(static_cast<std::size_t>(n));
    std::vector<Collective> collectives;
    std::deque<int> runnable;
    std::vector<char> queued(static_cast<std::size_t>(n), 1);
    for (int r = 0; r < n; ++r) runnable.push_back(r);
    int finished = 0;

    auto wake = [&](int r) {
        if (!queued[static_cast<std::size_t>(r)] && !st[static_cast<std::size_t>(r)].finished) {
            queued[static_cast<std::size_t>(r)] = 1;
            runnable.push_back(r);
        }
    };

    auto match = [&](int r, const Message& m) {
        const auto& s = st[static_cast<std::size_t>(r)];
        return (s.want_src == kAnySource || s.want_src == m.src) && s.want_tag == m.tag;
    };

    auto try_recv = [&](int r) -> std::optional<Message> {
        auto& box = mailbox[static_cast<std::size_t>(r)];
        for (auto it = box.begin(); it != box.end(); ++it) {
            if (match(r, *it)) {
                Message m = *it;
                box.erase(it);
                return m;
            }
        }
        return std::nullopt;
    };

    while (finished < n) {
        if (runnable.empty()) {
            std::string blocked;
            for (int r = 0; r < n; ++r) {
                const auto& s = st[static_cast<std::size_t>(r)];
                if (!s.finished) {
                    blocked += util::format(" rank %d (%s at op %zu)", r,
                                            s.blocked == BlockKind::recv ? "recv"
                                                                         : "collective",
                                            s.pc);
                }
            }
            throw util::DeadlockError("no rank can make progress:" + blocked);
        }

        const int r = runnable.front();
        runnable.pop_front();
        queued[static_cast<std::size_t>(r)] = 0;
        auto& s = st[static_cast<std::size_t>(r)];
        auto& stats = result.ranks[static_cast<std::size_t>(r)];
        const Program& prog = programs[static_cast<std::size_t>(r)];

        bool advancing = true;
        while (advancing && s.pc < prog.ops.size()) {
            const Op& op = prog.ops[s.pc];
            if (const auto* c = std::get_if<ComputeOp>(&op)) {
                double dt = cost_.phase_time(c->phase, ctx[static_cast<std::size_t>(r)]);
                if (cost_.knobs().os_noise > 0) {
                    dt *= 1.0 + cost_.knobs().os_noise * noise_sample(r, s.pc);
                }
                const std::string& label = s.mark.empty() ? c->phase.label : s.mark;
                if (trace) {
                    trace->add({r, SpanKind::compute, label, s.time, s.time + dt});
                }
                s.time += dt;
                stats.compute += dt;
                result.total_flops += c->phase.flops;
                result.phase_compute[label] += dt;
                ++s.pc;
            } else if (const auto* snd = std::get_if<SendOp>(&op)) {
                ARMSTICE_CHECK(snd->dst >= 0 && snd->dst < n, "send dst out of range");
                const int src_node = placement_.loc(r).node;
                const int dst_node = placement_.loc(snd->dst).node;
                const double arrival =
                    s.time + network_.p2p_time(src_node, dst_node, snd->bytes);
                const double inject = network_.params().msg_overhead_s +
                                      network_.injection_time(snd->bytes);
                if (trace) {
                    trace->add({r, SpanKind::send, "", s.time, s.time + inject});
                }
                s.time += inject;
                stats.injected_bytes += snd->bytes;
                ++stats.msgs_sent;
                mailbox[static_cast<std::size_t>(snd->dst)].push_back(
                    Message{r, snd->tag, arrival});
                if (st[static_cast<std::size_t>(snd->dst)].blocked == BlockKind::recv) {
                    wake(snd->dst);
                }
                ++s.pc;
            } else if (const auto* rcv = std::get_if<RecvOp>(&op)) {
                s.want_src = rcv->src;
                s.want_tag = rcv->tag;
                if (auto m = try_recv(r)) {
                    if (m->arrival > s.time) {
                        if (trace) {
                            trace->add({r, SpanKind::recv_wait, "", s.time, m->arrival});
                        }
                        stats.recv_wait += m->arrival - s.time;
                        s.time = m->arrival;
                    }
                    ++stats.msgs_received;
                    s.blocked = BlockKind::none;
                    ++s.pc;
                } else {
                    s.blocked = BlockKind::recv;
                    advancing = false;
                }
            } else if (std::get_if<AllreduceOp>(&op) || std::get_if<BarrierOp>(&op) ||
                       std::get_if<AlltoallOp>(&op)) {
                CollKind kind = CollKind::barrier;
                double bytes = 8.0;
                if (const auto* ar = std::get_if<AllreduceOp>(&op)) {
                    kind = CollKind::allreduce;
                    bytes = ar->bytes;
                } else if (const auto* aa = std::get_if<AlltoallOp>(&op)) {
                    kind = CollKind::alltoall;
                    bytes = aa->bytes_each;
                }

                const int ord = s.coll_count;
                if (ord >= static_cast<int>(collectives.size())) {
                    collectives.resize(static_cast<std::size_t>(ord) + 1);
                    collectives[static_cast<std::size_t>(ord)].kind = kind;
                    collectives[static_cast<std::size_t>(ord)].bytes = bytes;
                }
                auto& coll = collectives[static_cast<std::size_t>(ord)];
                ARMSTICE_CHECK(coll.kind == kind && coll.bytes == bytes,
                               "collective mismatch: ranks disagree on op " +
                                   std::to_string(ord));
                ++s.coll_count;
                coll.max_time = std::max(coll.max_time, s.time);
                ++coll.arrived;
                if (coll.arrived == n) {
                    double cost = 0.0;
                    switch (kind) {
                        case CollKind::allreduce:
                            cost = coll_model.allreduce(layout, bytes);
                            break;
                        case CollKind::barrier:
                            cost = coll_model.barrier(layout);
                            break;
                        case CollKind::alltoall:
                            cost = coll_model.alltoall(layout, bytes);
                            break;
                        case CollKind::none: break;
                    }
                    coll.completion = coll.max_time + cost;
                    // Resume everyone (this rank inline, peers via queue).
                    for (int w : coll.waiters) {
                        auto& ws = st[static_cast<std::size_t>(w)];
                        if (trace) {
                            trace->add({w, SpanKind::collective, "", ws.time,
                                        coll.completion});
                        }
                        result.ranks[static_cast<std::size_t>(w)].collective_wait +=
                            coll.completion - ws.time;
                        ws.time = coll.completion;
                        ws.blocked = BlockKind::none;
                        ++ws.pc;
                        wake(w);
                    }
                    if (trace) {
                        trace->add({r, SpanKind::collective, "", s.time,
                                    coll.completion});
                    }
                    stats.collective_wait += coll.completion - s.time;
                    s.time = coll.completion;
                    ++s.pc;
                } else {
                    coll.waiters.push_back(r);
                    s.blocked = BlockKind::collective;
                    advancing = false;
                }
            } else if (const auto* m = std::get_if<MarkOp>(&op)) {
                s.mark = m->label;
                ++s.pc;
            }
        }

        if (s.pc >= prog.ops.size() && !s.finished) {
            s.finished = true;
            stats.finish = s.time;
            ++finished;
        }
    }

    for (const auto& stats : result.ranks) {
        result.makespan = std::max(result.makespan, stats.finish);
    }
    return result;
}

} // namespace armstice::sim
