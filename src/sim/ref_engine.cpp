#include "sim/ref_engine.hpp"

#include "sim/deadlock.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace armstice::sim {
namespace {

/// One in-flight message. All messages of a run live in one flat vector and
/// are linearly scanned at every receive — naive on purpose.
struct RefMsg {
    int src = 0;
    int dst = 0;
    int tag = 0;
    double arrival = 0;
    std::uint64_t send_idx = 0;  ///< running count of src's sends (program order)
    bool taken = false;
};

struct RefColl {
    int kind = 0;  ///< 1 allreduce, 2 barrier, 3 alltoall
    double bytes = 0;
    int arrived = 0;
    double max_time = 0;
    bool complete = false;
    double completion = 0;
};

struct RefRank {
    std::size_t pc = 0;
    double time = 0;
    int colls_entered = 0;
    bool in_coll = false;        ///< waiting at collective ordinal colls_entered-1
    bool blocked_on_recv = false;
    int want_src = kAnySource;
    int want_tag = 0;
    bool any_grant = false;      ///< may resolve an ANY_SOURCE recv this sweep
    PhaseId mark_id = kNoPhase;
    bool finished = false;
    std::vector<double> phase;   ///< per-PhaseId compute seconds (program order)
    double flops = 0;
};

const char* coll_name(int kind) {
    switch (kind) {
        case 1: return "allreduce";
        case 2: return "barrier";
        case 3: return "alltoall";
        default: return "collective";
    }
}

} // namespace

RefEngine::RefEngine(const arch::SystemSpec& sys, Placement placement,
                     double vec_quality, arch::ModelKnobs knobs)
    : sys_(&sys),
      placement_(std::move(placement)),
      vec_quality_(vec_quality),
      cost_(knobs),
      network_(sys.net, placement_.nodes()) {
    ARMSTICE_CHECK(vec_quality_ > 0.0 && vec_quality_ <= 1.0,
                   "vec_quality must be in (0,1]");
}

RunResult RefEngine::run(const ProgramBundle& bundle) const {
    std::vector<Program> programs;
    programs.reserve(static_cast<std::size_t>(bundle.ranks()));
    for (int r = 0; r < bundle.ranks(); ++r) programs.push_back(bundle.of(r));
    return run(programs);
}

RunResult RefEngine::run(const std::vector<Program>& programs) const {
    const int n = placement_.ranks();
    ARMSTICE_CHECK(static_cast<int>(programs.size()) == n,
                   util::format("programs (%zu) != ranks (%d)", programs.size(), n));

    const net::CollectiveModel coll_model(network_);
    const net::CommLayout layout = placement_.comm_layout();
    const auto& np = network_.params();
    const double os_noise = cost_.knobs().os_noise;

    std::vector<RefRank> st(static_cast<std::size_t>(n));
    std::vector<RefMsg> msgs;
    std::vector<std::uint64_t> sends_issued(static_cast<std::size_t>(n), 0);
    std::vector<RefColl> colls;
    RunResult result;
    result.ranks.assign(static_cast<std::size_t>(n), RankStats{});
    std::vector<char> phase_seen;

    // DESIGN.md §5 matching contract, stated directly: the candidate from one
    // source is its earliest unconsumed send with the right tag (per-source
    // FIFO, non-overtaking); an ANY_SOURCE recv takes the candidate with the
    // smallest (arrival, source) key. Returns the message index or npos.
    const auto find_match = [&](int r) -> std::size_t {
        const auto& s = st[static_cast<std::size_t>(r)];
        constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
        std::size_t best = npos;
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            const RefMsg& m = msgs[i];
            if (m.taken || m.dst != r || m.tag != s.want_tag) continue;
            if (s.want_src != kAnySource && m.src != s.want_src) continue;
            // Not the source's first matching send? Then it cannot match yet.
            bool first_of_src = true;
            for (std::size_t j = 0; j < msgs.size(); ++j) {
                const RefMsg& o = msgs[j];
                if (!o.taken && o.dst == r && o.tag == s.want_tag &&
                    o.src == m.src && o.send_idx < m.send_idx) {
                    first_of_src = false;
                    break;
                }
            }
            if (!first_of_src) continue;
            if (best == npos || m.arrival < msgs[best].arrival ||
                (m.arrival == msgs[best].arrival && m.src < msgs[best].src)) {
                best = i;
            }
        }
        return best;
    };

    int finished = 0;
    while (finished < n) {
        bool progress = false;
        for (int r = 0; r < n; ++r) {
            auto& s = st[static_cast<std::size_t>(r)];
            if (s.finished) continue;
            auto& stats = result.ranks[static_cast<std::size_t>(r)];
            const Program& prog = programs[static_cast<std::size_t>(r)];

            bool advancing = true;
            while (advancing && s.pc < prog.ops.size()) {
                const Op& op = prog.ops[s.pc];
                if (const auto* snd = std::get_if<SendOp>(&op)) {
                    const int dst = snd->resolve_dst(r);
                    ARMSTICE_CHECK(dst >= 0 && dst < n,
                                   "send dst out of range");
                    const int a = placement_.loc(r).node;
                    const int b = placement_.loc(dst).node;
                    const double arrival =
                        s.time + network_.p2p_time(a, b, snd->bytes);
                    s.time += np.msg_overhead_s + snd->bytes / np.injection_bw;
                    stats.injected_bytes += snd->bytes;
                    ++stats.msgs_sent;
                    RefMsg m;
                    m.src = r;
                    m.dst = dst;
                    m.tag = snd->tag;
                    m.arrival = arrival;
                    m.send_idx = sends_issued[static_cast<std::size_t>(r)]++;
                    msgs.push_back(m);
                    ++s.pc;
                    progress = true;
                } else if (const auto* rcv = std::get_if<RecvOp>(&op)) {
                    // Relative sources resolve to absolute ranks up front
                    // (same rule as the engine's singleton path).
                    s.want_src = rcv->resolve_src(r);
                    s.want_tag = rcv->tag;
                    if (rcv->rel) {
                        ARMSTICE_CHECK(s.want_src >= 0 && s.want_src < n,
                                       "recv src out of range");
                    }
                    std::size_t mi = std::numeric_limits<std::size_t>::max();
                    // ANY_SOURCE resolves only at quiescence, via any_grant
                    // (same rule as the engine; DESIGN.md §10.2).
                    if (!rcv->is_any() || s.any_grant) {
                        s.any_grant = false;
                        mi = find_match(r);
                    }
                    if (mi != std::numeric_limits<std::size_t>::max()) {
                        RefMsg& m = msgs[mi];
                        m.taken = true;
                        if (m.arrival > s.time) {
                            stats.recv_wait += m.arrival - s.time;
                            s.time = m.arrival;
                        }
                        ++stats.msgs_received;
                        s.blocked_on_recv = false;
                        ++s.pc;
                        progress = true;
                    } else {
                        s.blocked_on_recv = true;
                        advancing = false;
                    }
                } else if (const auto* c = std::get_if<ComputeOp>(&op)) {
                    const arch::ComputePhase& phase = prog.phase_of(*c);
                    double dt = cost_.phase_time(
                        phase, placement_.exec_context(r, vec_quality_));
                    if (os_noise > 0) {
                        dt *= 1.0 + os_noise * noise_sample(r, s.pc);
                    }
                    const PhaseId label_id =
                        s.mark_id != kNoPhase ? s.mark_id : c->label_id;
                    s.time += dt;
                    stats.compute += dt;
                    s.flops += phase.flops;
                    if (label_id >= s.phase.size()) s.phase.resize(label_id + 1, 0.0);
                    if (label_id >= phase_seen.size()) phase_seen.resize(label_id + 1, 0);
                    s.phase[label_id] += dt;
                    phase_seen[label_id] = 1;
                    ++s.pc;
                    progress = true;
                } else if (const auto* mk = std::get_if<MarkOp>(&op)) {
                    s.mark_id = mk->label_id;
                    ++s.pc;
                    progress = true;
                } else {  // a collective: allreduce / barrier / alltoall
                    int kind = 2;
                    double bytes = 8.0;
                    if (const auto* ar = std::get_if<AllreduceOp>(&op)) {
                        kind = 1;
                        bytes = ar->bytes;
                    } else if (const auto* aa = std::get_if<AlltoallOp>(&op)) {
                        kind = 3;
                        bytes = aa->bytes_each;
                    }
                    if (!s.in_coll) {
                        const int ord = s.colls_entered;
                        if (ord >= static_cast<int>(colls.size())) {
                            colls.resize(static_cast<std::size_t>(ord) + 1);
                            colls[static_cast<std::size_t>(ord)].kind = kind;
                            colls[static_cast<std::size_t>(ord)].bytes = bytes;
                        }
                        auto& coll = colls[static_cast<std::size_t>(ord)];
                        ARMSTICE_CHECK(coll.kind == kind && coll.bytes == bytes,
                                       "collective mismatch: ranks disagree on op " +
                                           std::to_string(ord));
                        ++s.colls_entered;
                        s.in_coll = true;
                        ++coll.arrived;
                        coll.max_time = std::max(coll.max_time, s.time);
                        if (coll.arrived == n) {
                            double cost = 0.0;
                            switch (kind) {
                                case 1: cost = coll_model.allreduce(layout, bytes); break;
                                case 2: cost = coll_model.barrier(layout); break;
                                case 3: cost = coll_model.alltoall(layout, bytes); break;
                                default: break;
                            }
                            coll.completion = coll.max_time + cost;
                            coll.complete = true;
                        }
                    }
                    const auto& coll =
                        colls[static_cast<std::size_t>(s.colls_entered - 1)];
                    if (coll.complete) {
                        stats.collective_wait += coll.completion - s.time;
                        s.time = coll.completion;
                        s.in_coll = false;
                        ++s.pc;
                        progress = true;
                    } else {
                        advancing = false;
                    }
                }
            }

            if (s.pc >= prog.ops.size() && !s.finished) {
                s.finished = true;
                stats.finish = s.time;
                ++finished;
                progress = true;
            }
        }
        if (progress || finished >= n) continue;

        // Quiescence: resolve the lowest-ranked pending ANY_SOURCE recv that
        // has a match, mirroring the engine's resolver exactly.
        int grant = -1;
        for (int r = 0; r < n; ++r) {
            const auto& s = st[static_cast<std::size_t>(r)];
            if (!s.finished && s.blocked_on_recv && s.want_src == kAnySource &&
                find_match(r) != std::numeric_limits<std::size_t>::max()) {
                grant = r;
                break;
            }
        }
        if (grant >= 0) {
            st[static_cast<std::size_t>(grant)].any_grant = true;
            continue;
        }

        // True stall: snapshot the identical wait-for graph the engine builds.
        std::vector<PendingWait> pending(static_cast<std::size_t>(n));
        for (int r = 0; r < n; ++r) {
            const auto& s = st[static_cast<std::size_t>(r)];
            auto& w = pending[static_cast<std::size_t>(r)];
            w.finished = s.finished;
            w.pc = s.pc;
            w.colls_entered = s.colls_entered;
            if (s.finished) continue;
            if (s.blocked_on_recv) {
                w.blocked_on_recv = true;
                w.want_src = s.want_src;
                w.want_tag = s.want_tag;
            } else {
                w.coll_ordinal = s.colls_entered - 1;
            }
        }
        std::vector<CollDesc> descs(colls.size());
        for (std::size_t i = 0; i < colls.size(); ++i) {
            descs[i].kind = coll_name(colls[i].kind);
            descs[i].bytes = colls[i].bytes;
        }
        throw DeadlockError(build_wait_graph(pending, descs));
    }

    for (const auto& stats : result.ranks) {
        result.makespan = std::max(result.makespan, stats.finish);
    }
    for (int r = 0; r < n; ++r) {
        result.total_flops += st[static_cast<std::size_t>(r)].flops;
    }
    for (PhaseId id = 0; id < phase_seen.size(); ++id) {
        if (!phase_seen[id]) continue;
        double acc = 0.0;
        for (int r = 0; r < n; ++r) {
            const auto& per = st[static_cast<std::size_t>(r)].phase;
            if (id < per.size()) acc += per[id];
        }
        result.phase_compute.emplace(phase_table().str(id), acc);
    }
    return result;
}

} // namespace armstice::sim
