#pragma once
// sim::jit — trace-JIT "superop" compilation for the discrete-event engine
// (DESIGN.md §13).
//
// The engine's programs are fully unrolled straight-line op streams, so the
// hot structure is not a loop over one pc but *repeated content*: every CG
// iteration re-emits the same halo-exchange + compute run at a fresh pc.
// sim::jit detects maximal straight-line runs of ComputeOp / SendOp /
// explicit RecvOp / MarkOp (a run ends at a wildcard receive, a collective,
// or program end — the ops whose outcome depends on global state), compiles
// each run once into a Block of flat Steps with the expensive per-op work
// precomputed (cost-model pricing per ExecContext class, p2p transfer and
// injection seconds per destination), and keys blocks by content hash so the
// same iteration body at iteration 0's pc and iteration 19's pc resolves to
// one Block. Blocks are strictly per-Program: scanning and verification walk
// the program's 4-byte OpKey sidecar (program.hpp) instead of the 48-byte op
// variants — at 10^3 ranks the op arrays total tens of MB and re-streaming
// them per iteration made the JIT memory-bound. Structurally identical rank
// programs already share one Program object via ProgramBundle dedup, so
// per-program blocks lose no real sharing.
//
// Dynarec-style lazy linking: each equivalence class remembers the last
// Block it completed, and every Block caches the Block that followed it
// (`next`). In steady state an iteration is "follow the link, verify, run" —
// no hashing, no map probe. Links and hash hits are *hints*: a candidate
// Block is only executed after guards_match (model version, knobs
// fingerprint, ExecContext class, compiling rank for p2p blocks) and verify
// (pool-resolved op-by-op content equality against the source program), so
// collisions and stale links can cost time but never correctness.
//
// Execution replicates the interpreter's floating-point op sequence exactly
// — per-step sequential adds into the same accumulators, per-(rank, pc)
// OS-noise samples — so JIT-on results are bit-identical to JIT-off,
// RefEngine, and perturbed schedules (sim::check enforces this per seed).
// What a Block eliminates is the dispatch overhead: variant branching, cost
// memo probes, phase-content compares, topology hop lookups and argument
// validation all happen once at compile time instead of once per execution.

#include "arch/cost_model.hpp"
#include "sim/program.hpp"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

namespace armstice::sim::jit {

/// Runs shorter than this are left to the interpreter: block bookkeeping
/// (probe + verify) would cost more than it saves. 2 and not more: even a
/// two-op run is worth a block once lazy linking amortises the probe, and —
/// more importantly — leaving a short tail segment interpreted breaks the
/// link chain at that point in *every* iteration (hpcg's per-iteration
/// [axpy, dot] tail is exactly such a segment).
inline constexpr std::size_t kMinRun = 2;

/// Compilation stops extending a run here; the tail of a longer run is
/// interpreted (run chunking shares the program layer's cap so scan_run and
/// OpRunTable entries always agree on lengths). Bounds single-Block memory
/// and verify cost.
inline constexpr std::size_t kMaxRun = kOpRunCap;

/// Per-run compiled-code budget. When the cache is full, new runs fall back
/// to the interpreter (existing blocks keep executing); pathological inputs
/// with no repeated content cannot grow memory without bound.
inline constexpr std::size_t kCacheBudgetBytes = std::size_t{32} << 20;

/// Everything that can change a Block's precomputed costs or effects. A
/// Block compiled under one Guards value is only executed under a matching
/// one; otherwise the dispatcher recompiles (or interprets).
struct Guards {
    std::uint32_t model_version = 0;  ///< arch::kModelVersion at compile time
    std::uint64_t knobs_fp = 0;       ///< knobs_fingerprint of the CostModel
    std::uint32_t ctx = 0;            ///< ExecContext equivalence class id
    /// Compiling rank, or -1 when the Block has no p2p steps (pure
    /// compute/mark runs price identically everywhere and are shared across
    /// ranks — that sharing is what keeps collapsed SPMD classes JIT-able).
    /// p2p blocks are per-rank: send costs depend on src/dst node distance
    /// and the compiled mailbox queue indices (Step::qidx) are only valid
    /// for the compiling rank's queues.
    int rank = -1;
};

/// Bitwise fingerprint of every knob that reaches pricing. Any knob change
/// (including toggles that "should" be no-ops) gets a fresh fingerprint and
/// therefore fresh blocks — cheap insurance against stale cost constants.
std::uint64_t knobs_fingerprint(const arch::ModelKnobs& knobs);

/// May a Block compiled under `have` execute in situation `want`?
/// Rank-independent blocks (have.rank == -1) run anywhere; everything else
/// must match exactly.
bool guards_match(const Guards& have, const Guards& want);

enum class StepKind : std::uint8_t { compute, send, recv, mark, send_rel, recv_rel };

/// One compiled op. Field meaning by kind:
///   compute: cost = priced seconds for the guard ExecContext class (before
///            per-(rank, pc) OS noise), aux = phase flops, label = phase id.
///   send:    a_int = dst rank, tag, bytes = payload, cost = p2p transfer
///            seconds (src node -> dst node), aux = injection seconds,
///            qidx = arena slot of the (compiling rank -> dst) queue.
///   recv:    a_int = src rank (never kAnySource), tag, qidx = arena slot
///            of the (src -> compiling rank) queue.
///   send_rel:a_int = rank offset (dst = executing rank + a_int), tag,
///            bytes = payload, aux = injection seconds. The transfer price
///            and destination queue depend on the executing member, so the
///            engine resolves them per execution through the class's
///            verified hop tier — which is what lets ONE block be shared by
///            every member of a merged class (Guards::rank stays -1 when a
///            run's only p2p is relative).
///   recv_rel:a_int = rank offset (src = executing rank + a_int), tag. The
///            queue is resolved per member at execution.
///   mark:    label = phase id to set (kNoPhase clears). qidx stays -1 for
///            compute/mark/rel steps.
///
/// qidx turns the interpreter's per-op mailbox scan into one computed
/// address into the run's flat queue arena — no dependent loads, so the
/// execution loop can prefetch upcoming steps' queues. It is sound because
/// arena slots are created eagerly at compile time and never removed or
/// reassigned within a run, and because blocks with p2p steps carry
/// Guards::rank — a block's qidx values are only ever used by the rank whose
/// queues they were resolved against.
struct Step {
    StepKind kind = StepKind::compute;
    PhaseId label = kNoPhase;
    int a_int = 0;
    int tag = 0;
    int qidx = -1;
    double cost = 0;
    double aux = 0;
    double bytes = 0;
};

/// Result of scanning a program position for a compilable run.
struct RunScan {
    std::size_t len = 0;        ///< ops in the run (0 = boundary at pc)
    std::uint64_t hash = 0;     ///< content hash (mix_op_hash over the run)
    bool has_p2p = false;       ///< any send/recv step (absolute or relative)
    bool has_abs_p2p = false;   ///< any absolute-addressed send/recv step
    bool has_compute = false;   ///< any compute step
};

/// Measure the straight-line run starting at keys[pc]: walk until a boundary
/// key (wildcard receive or collective), program end, or kMaxRun, mixing the
/// keys into the hash along the way. Because a program's OpKeys are exact
/// content ids, equal same-program content implies equal hash; collisions
/// (and all cross-program candidates) are rejected by verify. One 4-byte
/// load + a word mix per op — this is the JIT's only full-run walk.
RunScan scan_run(const OpKey* keys, std::size_t pc, std::size_t nops);

/// The JIT consumes the program layer's straight-line-run partition
/// (sim::OpRunTable — built once per bundled program, derived per run for
/// raw programs). A per-class monotone cursor over `runs` replaces the
/// per-dispatch hash probe / link-verify with one comparison, and a
/// per-class `Block*` slot per content id replaces verify with a plain load
/// (equal id ⇒ byte-equal OpKey range ⇒ the verified Block is faithful at
/// every occurrence). Aliased here so the JIT's vocabulary stays coherent.
using RunEntry = OpRun;
using RunTable = OpRunTable;

/// A compiled superop block.
struct Block {
    std::vector<Step> steps;
    Guards guards;
    std::uint64_t content_hash = 0;
    bool has_p2p = false;
    bool has_abs_p2p = false;
    bool has_compute = false;
    /// Source program the block was compiled from. Blocks only ever execute
    /// against this program (OpKeys are program-local, so verify rejects any
    /// other program outright). The Program outlives the per-run cache.
    const Program* src_prog = nullptr;
    std::size_t src_pc = 0;
    /// Lazy link: the Block that most recently followed this one (across a
    /// boundary op). A hint, not a promise — always guarded and verified
    /// before use. Mutable because linking happens through const pointers;
    /// the per-run cache is only touched by its own run (single-threaded).
    mutable const Block* next = nullptr;

    [[nodiscard]] std::size_t len() const { return steps.size(); }
};

/// Is `b` a faithful compilation of prog.ops[pc, pc+len)? False whenever
/// prog is not the block's source program (OpKeys don't compare across
/// programs); same-position fast path, else one memcmp of the two OpKey
/// subranges (`keys` = prog's key array; a null `keys` falls back to an
/// op-by-op walk). A run at `pc` that is shorter than the block (earlier
/// boundary) fails at the boundary op's key; a longer run merely gets its
/// prefix executed.
bool verify(const Block& b, const Program& prog, const OpKey* keys,
            std::size_t pc);

/// Pricing environment for compile(): thin closures over the engine's cost
/// memo and p2p tables so compiled constants are the *same values* the
/// interpreter would produce (shared memoization, shared validation).
struct CompileEnv {
    /// Priced seconds for one compute op under the guard ExecContext class.
    std::function<double(const ComputeOp&, const arch::ComputePhase&)> price;
    /// p2p transfer seconds from the compiling rank to `dst` (also performs
    /// the interpreter's dst/bytes validation).
    std::function<double(int dst, double bytes)> p2p_seconds;
    /// Index of the compiling rank's queue in dst's mailbox (creating the
    /// slot if absent — adding an empty queue is observationally inert).
    std::function<int(int dst)> send_qidx;
    /// Index of src's queue in the compiling rank's mailbox.
    std::function<int(int src)> recv_qidx;
    double msg_overhead_s = 0;
    double injection_bw = 1;
    /// When >= 0, relative p2p ops are resolved at compile time for this
    /// rank (dst/src = rank + offset) and emitted as absolute steps with
    /// precomputed cost and qidx — the singleton fast path. The resulting
    /// block contains absolute steps, so the caller must pin Guards::rank.
    /// -1 keeps rel ops symbolic (rank-neutral blocks shareable across the
    /// members of a merged class).
    int resolve_rel_rank = -1;
};

/// Compile the run described by `scan` at prog.ops[pc] into a Block.
Block compile(const Program& prog, std::size_t pc, const RunScan& scan,
              const Guards& guards, const CompileEnv& env);

/// Per-run block store: content-hash map plus a stable arena (deque — Block
/// addresses never move, so links and SimClass resume pointers stay valid).
/// Lives inside one Engine::run_impl call; cross-run invalidation is
/// structural (nothing survives to go stale) and concurrent const runs never
/// share mutable state.
class BlockCache {
public:
    /// Probe by content hash; candidates must match length + guards and pass
    /// verify (collisions never execute foreign code). `keys` is prog's
    /// OpKey array, forwarded to verify.
    [[nodiscard]] const Block* find(std::uint64_t hash, const Guards& want,
                                    const Program& prog, const OpKey* keys,
                                    std::size_t pc, std::size_t len) const;

    /// Take ownership of a freshly compiled block.
    const Block* insert(Block&& b);

    [[nodiscard]] bool full() const { return bytes_ >= kCacheBudgetBytes; }
    [[nodiscard]] int blocks() const { return static_cast<int>(arena_.size()); }

private:
    std::unordered_map<std::uint64_t, std::vector<const Block*>> by_hash_;
    std::deque<Block> arena_;
    std::size_t bytes_ = 0;
};

} // namespace armstice::sim::jit
