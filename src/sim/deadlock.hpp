#pragma once
// Deadlock forensics — when no rank can make progress, the engines no longer
// throw a flat string: they snapshot every rank's pending operation, build a
// wait-for graph (who blocks on which recv source/tag or collective
// membership), extract a blocking cycle if one exists, and throw a
// sim::DeadlockError carrying both the rendered report and the structured
// graph. Engine and RefEngine share this builder, so a differential checker
// can require their diagnoses to agree byte-for-byte (DESIGN.md §10.3).

#include "util/error.hpp"

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace armstice::sim {

/// What one rank was doing when the simulation stalled. Engines fill one of
/// these per rank from their internal state.
struct PendingWait {
    bool finished = false;       ///< rank completed its program
    bool blocked_on_recv = false;///< blocked on a RecvOp (else: a collective)
    std::size_t pc = 0;          ///< op index of the blocking operation
    int want_src = 0;            ///< recv: source (kAnySource for wildcard)
    int want_tag = 0;            ///< recv: tag
    int coll_ordinal = -1;       ///< collective: 0-based ordinal in the run
    int colls_entered = 0;       ///< collectives this rank has entered so far
};

/// Kind and payload of one collective ordinal (for naming it in the report).
struct CollDesc {
    const char* kind = "collective";  ///< "allreduce" / "barrier" / "alltoall"
    double bytes = 0;
};

/// One blocked rank in the wait-for graph.
struct WaitNode {
    int rank = 0;
    std::size_t pc = 0;          ///< op index of the blocking operation
    std::string op;              ///< rendered pending op, e.g. "recv(src=1, tag=7)"
    /// Ranks this rank is blocked behind: the recv source (every other
    /// unfinished rank for MPI_ANY_SOURCE), or every rank that has not yet
    /// entered the collective. Sorted ascending.
    std::vector<int> waits_on;
    /// Subset of waits_on that already finished — they can never unblock
    /// this rank (e.g. a recv whose source terminated without sending).
    std::vector<int> waits_on_finished;
};

/// The wait-for graph of a stalled simulation plus one extracted cycle.
struct WaitForGraph {
    int total_ranks = 0;
    std::vector<WaitNode> blocked;  ///< ascending by rank
    /// One blocking cycle (ranks, in wait order, first element NOT repeated
    /// at the end); empty when the stall is acyclic (e.g. a recv from a rank
    /// that finished without sending).
    std::vector<int> cycle;

    [[nodiscard]] const WaitNode* node_of(int rank) const;
    /// Multi-line human-readable report; deterministic (golden-tested).
    [[nodiscard]] std::string render() const;
};

/// Build the graph from per-rank snapshots. `collectives[k]` describes the
/// k-th collective ordinal (only ordinals some rank blocks on are read).
/// Deterministic: nodes ascend by rank, edges ascend by target, and the
/// cycle search walks ranks and edges in ascending order.
[[nodiscard]] WaitForGraph build_wait_graph(const std::vector<PendingWait>& ranks,
                                            const std::vector<CollDesc>& collectives);

/// Thrown by Engine/RefEngine on a stall; what() is graph().render() and the
/// structured graph is available for tooling. Derives util::DeadlockError so
/// existing catch sites keep working.
class DeadlockError final : public util::DeadlockError {
public:
    explicit DeadlockError(WaitForGraph graph);
    [[nodiscard]] const WaitForGraph& graph() const { return *graph_; }

private:
    std::shared_ptr<const WaitForGraph> graph_;  ///< shared: nothrow copies
};

} // namespace armstice::sim
