#pragma once
// Execution traces — optional per-rank span recording for simulated runs,
// exportable as Chrome-tracing JSON (load in chrome://tracing or Perfetto).
// This is the "what was every rank doing when" view HPC profilers give on
// real machines, produced here for simulated ones.

#include <string>
#include <vector>

namespace armstice::sim {

enum class SpanKind {
    compute,     ///< a ComputeOp
    send,        ///< injection of an outgoing message
    recv_wait,   ///< blocked waiting for a message
    collective,  ///< inside a collective (sync + transfer)
};

const char* span_kind_name(SpanKind k);

struct Span {
    int rank = 0;
    SpanKind kind = SpanKind::compute;
    std::string label;
    double begin = 0;  ///< simulated seconds
    double end = 0;
};

class Trace {
public:
    void add(Span span);
    [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
    [[nodiscard]] std::size_t size() const { return spans_.size(); }

    /// Total span seconds per kind (summed over ranks).
    [[nodiscard]] double total_seconds(SpanKind kind) const;

    /// Chrome-tracing "trace event" JSON: one complete ('X') event per span,
    /// pid 0, tid = rank, microsecond timestamps.
    [[nodiscard]] std::string to_chrome_json() const;

    /// Write to file; throws util::Error on I/O failure.
    void write_chrome_json(const std::string& path) const;

private:
    std::vector<Span> spans_;
};

} // namespace armstice::sim
