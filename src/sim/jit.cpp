#include "sim/jit.hpp"

#include "util/error.hpp"

#include <cstring>

namespace armstice::sim::jit {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffU;
        h *= kFnvPrime;
    }
}

void mixd(std::uint64_t& h, double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    mix(h, u);
}

} // namespace

std::uint64_t knobs_fingerprint(const arch::ModelKnobs& knobs) {
    std::uint64_t h = kFnvOffset;
    mix(h, static_cast<std::uint64_t>(knobs.contention) << 0 |
               static_cast<std::uint64_t>(knobs.core_bw_cap) << 1 |
               static_cast<std::uint64_t>(knobs.gather_penalty) << 2 |
               static_cast<std::uint64_t>(knobs.cache_model) << 3 |
               static_cast<std::uint64_t>(knobs.amdahl) << 4 |
               static_cast<std::uint64_t>(knobs.ecm) << 5);
    mixd(h, knobs.os_noise);
    return h;
}

bool guards_match(const Guards& have, const Guards& want) {
    return have.model_version == want.model_version &&
           have.knobs_fp == want.knobs_fp && have.ctx == want.ctx &&
           (have.rank < 0 || have.rank == want.rank);
}

namespace {

/// One-multiply word mix for the scan hash — this runs once per op per novel
/// program position, so it must be a handful of instructions, unlike the
/// byte-folded FNV above (kept for the knobs fingerprint, where quality per
/// call matters more than speed). Collisions are safe: BlockCache chains by
/// hash and verify rejects non-matching content.
inline void mixw(std::uint64_t& h, std::uint64_t v) {
    h = (h ^ v) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
}

} // namespace

RunScan scan_run(const OpKey* keys, std::size_t pc, std::size_t nops) {
    RunScan scan;
    scan.hash = kFnvOffset;
    std::size_t i = pc;
    const std::size_t stop = pc + kMaxRun < nops ? pc + kMaxRun : nops;
    std::uint32_t kinds_seen = 0;  // bitset over OpKeyKind
    for (; i < stop; ++i) {
        const OpKey k = keys[i];
        if (op_key_is_boundary(k)) break;
        kinds_seen |= 1u << (k >> kOpKeyKindShift);
        mixw(scan.hash, k);
    }
    scan.len = i - pc;
    mixw(scan.hash, scan.len);
    scan.has_compute =
        (kinds_seen & (1u << static_cast<std::uint32_t>(OpKeyKind::compute))) != 0;
    scan.has_abs_p2p =
        (kinds_seen & ((1u << static_cast<std::uint32_t>(OpKeyKind::send)) |
                       (1u << static_cast<std::uint32_t>(OpKeyKind::recv)))) != 0;
    scan.has_p2p =
        scan.has_abs_p2p ||
        (kinds_seen & ((1u << static_cast<std::uint32_t>(OpKeyKind::send_rel)) |
                       (1u << static_cast<std::uint32_t>(OpKeyKind::recv_rel)))) !=
            0;
    return scan;
}

namespace {

/// Same-program op equality: Program::pool_phase dedups phase payloads by
/// (content, label), so within ONE program equal ComputeOps share their
/// phase_idx — the whole compare is a handful of inlined field tests with
/// no pool dereference. This is verify's hot case: lazy links almost always
/// point at an earlier iteration of the same unrolled program.
inline bool same_prog_op_eq(const Op& a, const Op& b) {
    const std::size_t t = a.index();
    if (t != b.index()) return false;
    switch (t) {
        case 0: {  // ComputeOp: phase_idx is canonical within one program
            const auto& ca = *std::get_if<ComputeOp>(&a);
            const auto& cb = *std::get_if<ComputeOp>(&b);
            return ca.phase_idx == cb.phase_idx;
        }
        case 1: {
            const auto& sa = *std::get_if<SendOp>(&a);
            const auto& sb = *std::get_if<SendOp>(&b);
            return sa.dst == sb.dst && sa.bytes == sb.bytes &&
                   sa.tag == sb.tag && sa.rel == sb.rel;
        }
        case 2: {
            const auto& ra = *std::get_if<RecvOp>(&a);
            const auto& rb = *std::get_if<RecvOp>(&b);
            return ra.src == rb.src && ra.tag == rb.tag && ra.rel == rb.rel;
        }
        case 3:
            return std::get_if<AllreduceOp>(&a)->bytes ==
                   std::get_if<AllreduceOp>(&b)->bytes;
        case 4:
            return true;  // BarrierOp
        case 5:
            return std::get_if<AlltoallOp>(&a)->bytes_each ==
                   std::get_if<AlltoallOp>(&b)->bytes_each;
        default:
            return std::get_if<MarkOp>(&a)->label_id ==
                   std::get_if<MarkOp>(&b)->label_id;
    }
}

} // namespace

bool verify(const Block& b, const Program& prog, const OpKey* keys,
            std::size_t pc) {
    if (b.src_prog != &prog) return false;  // OpKeys are program-local
    if (b.src_pc == pc) return true;
    const std::size_t len = b.len();
    if (pc + len > prog.ops.size()) return false;
    if (keys != nullptr) {
        return std::memcmp(keys + b.src_pc, keys + pc, len * sizeof(OpKey)) == 0;
    }
    const Op* a = prog.ops.data() + b.src_pc;
    const Op* c = prog.ops.data() + pc;
    for (std::size_t i = 0; i < len; ++i) {
        if (!same_prog_op_eq(a[i], c[i])) return false;
    }
    return true;
}

Block compile(const Program& prog, std::size_t pc, const RunScan& scan,
              const Guards& guards, const CompileEnv& env) {
    Block b;
    b.guards = guards;
    b.content_hash = scan.hash;
    b.has_p2p = scan.has_p2p;
    b.has_abs_p2p = scan.has_abs_p2p;
    b.has_compute = scan.has_compute;
    b.src_prog = &prog;
    b.src_pc = pc;
    b.steps.reserve(scan.len);
    for (std::size_t i = pc; i < pc + scan.len; ++i) {
        const Op& op = prog.ops[i];
        Step st;
        if (const auto* c = std::get_if<ComputeOp>(&op)) {
            st.kind = StepKind::compute;
            st.label = c->label_id;
            const arch::ComputePhase& phase = prog.phase_of(*c);
            st.cost = env.price(*c, phase);
            st.aux = phase.flops;
        } else if (const auto* snd = std::get_if<SendOp>(&op)) {
            st.a_int = snd->dst;
            st.tag = snd->tag;
            st.bytes = snd->bytes;
            st.aux = env.msg_overhead_s + snd->bytes / env.injection_bw;
            if (snd->rel && env.resolve_rel_rank < 0) {
                // Destination (and so the transfer price and queue) depends
                // on the executing member: resolved per execution, keeping
                // the block member- and class-neutral.
                st.kind = StepKind::send_rel;
            } else {
                // Absolute op, or a relative op resolved for the singleton
                // rank — either way the price and queue are fixed now.
                if (snd->rel) st.a_int += env.resolve_rel_rank;
                st.kind = StepKind::send;
                st.cost = env.p2p_seconds(st.a_int, snd->bytes);
                st.qidx = env.send_qidx(st.a_int);
                b.has_abs_p2p = true;
            }
        } else if (const auto* rcv = std::get_if<RecvOp>(&op)) {
            ARMSTICE_CHECK(!rcv->is_any(), "wildcard recv inside a superop run");
            st.a_int = rcv->src;
            st.tag = rcv->tag;
            if (rcv->rel && env.resolve_rel_rank < 0) {
                st.kind = StepKind::recv_rel;
            } else {
                if (rcv->rel) st.a_int += env.resolve_rel_rank;
                st.kind = StepKind::recv;
                st.qidx = env.recv_qidx(st.a_int);
                b.has_abs_p2p = true;
            }
        } else {
            const auto* m = std::get_if<MarkOp>(&op);
            ARMSTICE_CHECK(m != nullptr, "collective inside a superop run");
            st.kind = StepKind::mark;
            st.label = m->label_id;
        }
        b.steps.push_back(st);
    }
    return b;
}

const Block* BlockCache::find(std::uint64_t hash, const Guards& want,
                              const Program& prog, const OpKey* keys,
                              std::size_t pc, std::size_t len) const {
    const auto it = by_hash_.find(hash);
    if (it == by_hash_.end()) return nullptr;
    for (const Block* b : it->second) {
        if (b->len() == len && guards_match(b->guards, want) &&
            verify(*b, prog, keys, pc)) {
            return b;
        }
    }
    return nullptr;
}

const Block* BlockCache::insert(Block&& b) {
    bytes_ += sizeof(Block) + b.steps.capacity() * sizeof(Step);
    arena_.push_back(std::move(b));
    const Block* p = &arena_.back();
    by_hash_[p->content_hash].push_back(p);
    return p;
}

} // namespace armstice::sim::jit
