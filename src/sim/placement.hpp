#pragma once
// Placement — maps MPI ranks (each with a fixed OpenMP thread count) onto
// nodes, memory domains and cores. Reproduces the paper's §III.a pinning
// methodology: processes and threads are pinned; a rank's threads occupy
// consecutive cores starting at its base core.

#include "arch/cost_model.hpp"
#include "arch/processor.hpp"
#include "net/collectives.hpp"

#include <functional>
#include <utility>
#include <vector>

namespace armstice::sim {

struct RankLoc {
    int node = 0;
    int first_core = 0;    ///< node-local core index of the rank's first thread
    int first_domain = 0;  ///< memory domain of the first core
    int domains_spanned = 1;
};

class Placement {
public:
    /// Block placement: ranks fill node 0 first (ranks_per_node ranks, each
    /// `threads` consecutive cores), then node 1, etc. Throws util::Error if
    /// a node's cores are oversubscribed.
    static Placement block(const arch::NodeSpec& node, int nodes, int ranks,
                           int threads_per_rank);

    /// Round-robin (scatter) placement: rank r lands on node r % nodes.
    /// Spreads under-populated jobs across nodes — the opposite memory-
    /// contention regime to block placement (bench/ext_placement).
    static Placement round_robin(const arch::NodeSpec& node, int nodes, int ranks,
                                 int threads_per_rank);

    [[nodiscard]] int ranks() const { return static_cast<int>(locs_.size()); }
    [[nodiscard]] int threads() const { return threads_; }
    [[nodiscard]] int nodes() const { return nodes_; }
    [[nodiscard]] const arch::NodeSpec& node_spec() const { return *node_; }
    [[nodiscard]] const RankLoc& loc(int rank) const;

    /// Ranks resident on a node.
    [[nodiscard]] int ranks_on_node(int node) const;
    /// Hardware streams (rank threads) active on a (node, domain) pair —
    /// the contention input of DESIGN.md §4.4.
    [[nodiscard]] int streams_on_domain(int node, int domain) const;

    /// Cost-model context for one rank (vec_quality supplied by caller).
    [[nodiscard]] arch::ExecContext exec_context(int rank, double vec_quality) const;

    /// Collective layout derived from the *actual* occupancy: `nodes` counts
    /// only nodes with resident ranks, `ranks_per_node` is the maximum
    /// occupancy, `min_ranks_per_node` the minimum occupied occupancy, and
    /// `total_ranks` the true rank count (DESIGN.md §4.3). Shared by
    /// sim::Engine and sim::RefEngine so both price collectives identically.
    [[nodiscard]] net::CommLayout comm_layout() const;

    /// Throws util::CapacityError when `bytes_per_rank` summed per node
    /// exceeds node memory (DESIGN.md §4.5).
    void check_capacity(double bytes_per_rank) const;

private:
    Placement() = default;
    /// Shared construction given a rank -> (node, slot-on-node) assignment.
    static Placement build(const arch::NodeSpec& node, int nodes, int ranks,
                           int threads_per_rank,
                           const std::function<std::pair<int, int>(int)>& assign);
    const arch::NodeSpec* node_ = nullptr;
    int nodes_ = 0;
    int threads_ = 1;
    std::vector<RankLoc> locs_;
    std::vector<std::vector<int>> streams_;  ///< [node][domain] -> stream count
    std::vector<int> occupancy_;  ///< [node] -> resident ranks (built once)
};

} // namespace armstice::sim
