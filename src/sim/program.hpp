#pragma once
// Per-rank operation programs — the instruction set the discrete-event
// engine executes. Application skeletons build one Program per rank
// (usually via the simmpi::MiniMpi facade) out of counted compute phases
// and MPI-shaped communication operations.
//
// Phase labels are interned into a process-wide table (phase_table()):
// ComputeOp/MarkOp carry a small PhaseId instead of a label string, so the
// engine's hot path accumulates per-phase time into a vector indexed by id
// and only materialises the label->seconds map when a run returns.
//
// ComputePhase payloads are pooled per Program (Program::phases): a
// ComputeOp is a 16-byte {pool index, label id, cost signature} record, so
// the op stream the engine walks stays small and cache-dense even for
// 10^6-op programs, and repeated phases (every CG iteration re-emitting
// "spmv") are stored once. The cached cost_signature lets the engine memoize
// CostModel pricing per (phase content, ExecContext class).

#include "arch/phase.hpp"
#include "util/interner.hpp"

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

namespace armstice::sim {

/// Wildcard source for RecvOp (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Interned phase-label id (index into phase_table()).
using PhaseId = std::uint32_t;

/// Id of the empty label "" — interned first, so it is always 0. Doubles as
/// the "no active MarkOp" sentinel in the engine.
inline constexpr PhaseId kNoPhase = 0;

/// Process-wide phase-label interner. Append-only and thread-safe;
/// concurrent Engine::run calls (SweepRunner pools) share it.
util::StringInterner& phase_table();

/// Intern a label (phase_table().id with the kNoPhase guarantee for "").
PhaseId intern_phase_label(std::string_view label);

/// Execute one counted compute phase. Only constructible through
/// Program::compute, which fills every field; content equality across
/// programs goes through Program::operator== (pool-resolved).
struct ComputeOp {
    std::uint32_t phase_idx = 0;  ///< index into Program::phases
    PhaseId label_id = kNoPhase;  ///< interned phase.label
    std::uint64_t cost_key = 0;   ///< arch::cost_signature(phase), never 0
};

/// Eager non-blocking send (MPI_Isend followed by an eventual wait that the
/// engine folds into injection time).
///
/// Relative form (`rel == true`): `dst` holds a signed *rank offset* and the
/// executing rank r sends to r + dst. Halo/Cartesian helpers emit this form
/// so every interior rank of a stencil shares one structural program — the
/// engine's rank-equivalence collapse (DESIGN.md §11) can then keep a whole
/// class of ranks merged through the send instead of splitting on the first
/// absolute destination.
struct SendOp {
    int dst = 0;
    double bytes = 0;
    int tag = 0;
    bool rel = false;  ///< dst is a rank offset, resolved as rank + dst

    [[nodiscard]] int resolve_dst(int rank) const { return rel ? rank + dst : dst; }

    bool operator==(const SendOp&) const = default;
};

/// Blocking receive with FIFO (src, tag) matching.
///
/// Relative form (`rel == true`): `src` holds a signed rank offset and the
/// executing rank r matches messages from r + src (never a wildcard — a rel
/// receive always names one source per rank).
struct RecvOp {
    int src = kAnySource;
    int tag = 0;
    bool rel = false;  ///< src is a rank offset, resolved as rank + src

    [[nodiscard]] int resolve_src(int rank) const { return rel ? rank + src : src; }
    [[nodiscard]] bool is_any() const { return !rel && src == kAnySource; }

    bool operator==(const RecvOp&) const = default;
};

/// World allreduce of `bytes` per rank (the engine prices it with
/// net::CollectiveModel and synchronises all ranks).
struct AllreduceOp {
    double bytes = 8;

    bool operator==(const AllreduceOp&) const = default;
};

struct BarrierOp {
    bool operator==(const BarrierOp&) const = default;
};

/// World all-to-all with `bytes_each` per rank pair (pairwise exchange;
/// used by the distributed-FFT transposes in the CASTEP model).
struct AlltoallOp {
    double bytes_each = 0;

    bool operator==(const AlltoallOp&) const = default;
};

/// Labels subsequent work for per-phase metrics (no time cost). kNoPhase
/// (the interned empty label) clears the active mark.
struct MarkOp {
    PhaseId label_id = kNoPhase;

    bool operator==(const MarkOp&) const = default;
};

using Op =
    std::variant<ComputeOp, SendOp, RecvOp, AllreduceOp, BarrierOp, AlltoallOp, MarkOp>;

/// Compact per-op content key (the trace-JIT's working representation,
/// sim/jit.hpp): top 4 bits = OpKeyKind, low 28 bits = an exact per-program
/// content id (pool index, or first-occurrence intern ordinal of the op's
/// payload). Within ONE program, key equality <=> op content equality, so
/// superop-block verification and run scanning walk a dense 4-byte-per-op
/// array instead of re-streaming the 48-byte op variants — at 10^3 ranks the
/// op arrays are tens of MB and those walks were memory-bound. Keys are NOT
/// comparable across programs (intern ordinals are program-local).
using OpKey = std::uint32_t;

inline constexpr int kOpKeyKindShift = 28;

/// Kind codes. Values >= kOpKeyBoundaryKind end a straight-line run: the
/// outcome of collectives and wildcard receives depends on global state a
/// compiled block cannot precompute.
enum class OpKeyKind : std::uint32_t {
    compute = 1,
    send = 2,  ///< absolute-destination send
    recv = 3,  ///< absolute explicit-source receive
    mark = 4,
    send_rel = 5,  ///< relative-offset send (SendOp::rel)
    recv_rel = 6,  ///< relative-offset receive (RecvOp::rel)
    allreduce = 8,
    barrier = 9,
    alltoall = 10,
    recv_any = 11,  ///< MPI_ANY_SOURCE receive
};
inline constexpr std::uint32_t kOpKeyBoundaryKind = 8;

[[nodiscard]] inline OpKeyKind op_key_kind(OpKey k) {
    return static_cast<OpKeyKind>(k >> kOpKeyKindShift);
}
[[nodiscard]] inline bool op_key_is_boundary(OpKey k) {
    return (k >> kOpKeyKindShift) >= kOpKeyBoundaryKind;
}

/// Length cap for straight-line run partitioning (and therefore the maximum
/// trace-JIT superop block length): a longer run is chunked, bounding
/// per-block memory and verification cost.
inline constexpr std::size_t kOpRunCap = 4096;

/// One straight-line run in a program: ops [start, start+len) with no
/// boundary key inside. `id` is the run's *content id*: two runs whose OpKey
/// subranges are byte-identical share one id (exact compare at build time,
/// not just hash), so anything validated against one occurrence — a verified
/// superop block, a priced cost — holds for every occurrence with that id.
struct OpRun {
    std::uint32_t start = 0;
    std::uint32_t len = 0;
    std::uint32_t id = 0;
    std::uint64_t hash = 0;
    bool has_p2p = false;      ///< any send / explicit recv in the run
    bool has_abs_p2p = false;  ///< any *absolute-addressed* send / recv
    bool has_compute = false;  ///< any compute op in the run
};

/// A program's complete partition into straight-line runs, in ascending pc
/// order with boundary ops (collectives, wildcard receives) in the gaps.
/// Pure function of the OpKey sidecar; programs are fully unrolled, so a
/// consumer's pc moves strictly forward and a monotone cursor over `runs`
/// classifies any pc with one comparison. `distinct` counts content ids
/// (iteration bodies repeat, so distinct is usually far below runs.size()).
struct OpRunTable {
    std::vector<OpRun> runs;
    std::uint32_t distinct = 0;
    /// ops.size() the table was built from; != current size means "not
    /// built" (mirrors the op_keys idiom — derived data, rebuilt on demand).
    std::size_t source_ops = SIZE_MAX;
};

struct Program {
    std::vector<Op> ops;
    /// Distinct phase payloads referenced by ComputeOp::phase_idx. Deduped
    /// bitwise (same_cost_inputs + label) as ops are built.
    std::vector<arch::ComputePhase> phases;
    /// Per-op content keys, parallel to `ops`. Empty until finalize_op_keys()
    /// runs (ProgramBundle does this once per distinct program); the engine
    /// derives keys itself for programs handed over raw. Derived data:
    /// excluded from operator== and structure_hash.
    std::vector<OpKey> op_keys;
    /// Straight-line-run partition of `ops` (see OpRunTable). Built by
    /// finalize_op_runs() / ProgramBundle; the engine derives a table itself
    /// for raw programs. Derived data, like op_keys.
    OpRunTable op_runs;

    Program& compute(arch::ComputePhase phase) {
        const PhaseId id = intern_phase_label(phase.label);
        const std::uint64_t key = arch::cost_signature(phase);
        ops.emplace_back(ComputeOp{pool_phase(std::move(phase)), id, key});
        return *this;
    }
    Program& send(int dst, double bytes, int tag = 0) {
        ops.emplace_back(SendOp{dst, bytes, tag});
        return *this;
    }
    /// Relative-offset send: the executing rank r sends to r + delta.
    Program& send_rel(int delta, double bytes, int tag = 0) {
        ops.emplace_back(SendOp{delta, bytes, tag, /*rel=*/true});
        return *this;
    }
    Program& recv(int src = kAnySource, int tag = 0) {
        ops.emplace_back(RecvOp{src, tag});
        return *this;
    }
    /// Relative-offset receive: the executing rank r matches src r + delta.
    Program& recv_rel(int delta, int tag = 0) {
        ops.emplace_back(RecvOp{delta, tag, /*rel=*/true});
        return *this;
    }
    Program& allreduce(double bytes = 8) {
        ops.emplace_back(AllreduceOp{bytes});
        return *this;
    }
    Program& barrier() {
        ops.emplace_back(BarrierOp{});
        return *this;
    }
    Program& alltoall(double bytes_each) {
        ops.emplace_back(AlltoallOp{bytes_each});
        return *this;
    }
    Program& mark(std::string_view label) {
        ops.emplace_back(MarkOp{intern_phase_label(label)});
        return *this;
    }

    /// The phase payload of a compute op.
    [[nodiscard]] const arch::ComputePhase& phase_of(const ComputeOp& c) const {
        return phases[c.phase_idx];
    }

    /// Total counted FLOPs in this program.
    [[nodiscard]] double total_flops() const;
    /// Total counted main-memory bytes.
    [[nodiscard]] double total_main_bytes() const;

    /// Build op_keys from ops (idempotent). Call after the program is fully
    /// built; appending ops afterwards invalidates the keys.
    void finalize_op_keys();

    /// Build op_runs from op_keys (finalizing keys first if needed;
    /// idempotent). Amortises the run partition across every engine run of a
    /// bundled program.
    void finalize_op_runs();

    /// Structural hash: equal programs hash equal (used with operator== to
    /// deduplicate structurally identical rank programs).
    [[nodiscard]] std::uint64_t structure_hash() const;

    /// Structural equality with pool-resolved phase content (bitwise cost
    /// inputs + label), so equal programs built independently compare equal
    /// regardless of pool layout.
    bool operator==(const Program& o) const;

private:
    /// Index of `phase` in `phases`, appending if new.
    std::uint32_t pool_phase(arch::ComputePhase phase);
};

/// Mix one op's *content* into an FNV-1a hash — pool-layout-independent:
/// ComputeOps hash their cost signature + label id, never phase_idx. The
/// same mixing backs Program::structure_hash (whole programs) and the
/// trace-JIT's superop-block keys (op subranges, sim/jit.hpp).
void mix_op_hash(std::uint64_t& h, const Op& op);

/// Pool-resolved content equality of two ops from (possibly different)
/// programs: ComputeOps compare label + cost signature + phase content
/// (bitwise cost inputs), with a pointer fast path when both resolve to the
/// same pooled payload. Backs Program::operator== and superop-block
/// verification (hash hits never merge unequal op runs).
bool same_op_content(const Program& pa, const Op& a, const Program& pb,
                     const Op& b);

/// The op-key array for `p` (finalize_op_keys without mutating the program —
/// what the engine uses for programs that never went through a
/// ProgramBundle). Deterministic: two calls on equal programs produce equal
/// arrays.
[[nodiscard]] std::vector<OpKey> compute_op_keys(const Program& p);

/// Partition keys[0, nops) into an OpRunTable. Runs shorter than any
/// consumer's minimum are kept — the cursor needs every gap accounted for.
[[nodiscard]] OpRunTable compute_op_runs(const OpKey* keys, std::size_t nops);

/// A set of rank programs with structural sharing: structurally identical
/// programs are stored once and every rank holds an index into the distinct
/// list. SPMD apps collapse O(ranks x ops) storage to O(distinct x ops);
/// rank-dependent apps (halo graphs, per-rank work) keep one copy per
/// distinct structure. Engine::run accepts a bundle directly.
class ProgramBundle {
public:
    ProgramBundle() = default;

    /// Deduplicate a fully materialised per-rank vector (structural hash,
    /// then deep equality — hash collisions never merge unequal programs).
    static ProgramBundle from(std::vector<Program> programs);

    /// Pure-SPMD fast path: every one of `ranks` ranks runs `proto`. O(1)
    /// program storage, no hashing.
    static ProgramBundle shared(Program proto, int ranks);

    [[nodiscard]] int ranks() const { return static_cast<int>(index_.size()); }
    [[nodiscard]] int distinct() const { return static_cast<int>(distinct_.size()); }
    [[nodiscard]] const Program& of(int rank) const {
        return distinct_[index_[static_cast<std::size_t>(rank)]];
    }

private:
    std::vector<Program> distinct_;
    std::vector<std::uint32_t> index_;  ///< rank -> index into distinct_
};

} // namespace armstice::sim
