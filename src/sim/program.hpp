#pragma once
// Per-rank operation programs — the instruction set the discrete-event
// engine executes. Application skeletons build one Program per rank
// (usually via the simmpi::MiniMpi facade) out of counted compute phases
// and MPI-shaped communication operations.

#include "arch/phase.hpp"

#include <string>
#include <variant>
#include <vector>

namespace armstice::sim {

/// Wildcard source for RecvOp (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

struct ComputeOp {
    arch::ComputePhase phase;
};

/// Eager non-blocking send (MPI_Isend followed by an eventual wait that the
/// engine folds into injection time).
struct SendOp {
    int dst = 0;
    double bytes = 0;
    int tag = 0;
};

/// Blocking receive with FIFO (src, tag) matching.
struct RecvOp {
    int src = kAnySource;
    int tag = 0;
};

/// World allreduce of `bytes` per rank (the engine prices it with
/// net::CollectiveModel and synchronises all ranks).
struct AllreduceOp {
    double bytes = 8;
};

struct BarrierOp {};

/// World all-to-all with `bytes_each` per rank pair (pairwise exchange;
/// used by the distributed-FFT transposes in the CASTEP model).
struct AlltoallOp {
    double bytes_each = 0;
};

/// Labels subsequent work for per-phase metrics (no time cost).
struct MarkOp {
    std::string label;
};

using Op =
    std::variant<ComputeOp, SendOp, RecvOp, AllreduceOp, BarrierOp, AlltoallOp, MarkOp>;

struct Program {
    std::vector<Op> ops;

    Program& compute(arch::ComputePhase phase) {
        ops.emplace_back(ComputeOp{std::move(phase)});
        return *this;
    }
    Program& send(int dst, double bytes, int tag = 0) {
        ops.emplace_back(SendOp{dst, bytes, tag});
        return *this;
    }
    Program& recv(int src = kAnySource, int tag = 0) {
        ops.emplace_back(RecvOp{src, tag});
        return *this;
    }
    Program& allreduce(double bytes = 8) {
        ops.emplace_back(AllreduceOp{bytes});
        return *this;
    }
    Program& barrier() {
        ops.emplace_back(BarrierOp{});
        return *this;
    }
    Program& alltoall(double bytes_each) {
        ops.emplace_back(AlltoallOp{bytes_each});
        return *this;
    }
    Program& mark(std::string label) {
        ops.emplace_back(MarkOp{std::move(label)});
        return *this;
    }

    /// Total counted FLOPs in this program.
    [[nodiscard]] double total_flops() const;
    /// Total counted main-memory bytes.
    [[nodiscard]] double total_main_bytes() const;
};

} // namespace armstice::sim
