#pragma once
// Per-rank operation programs — the instruction set the discrete-event
// engine executes. Application skeletons build one Program per rank
// (usually via the simmpi::MiniMpi facade) out of counted compute phases
// and MPI-shaped communication operations.
//
// Phase labels are interned into a process-wide table (phase_table()):
// ComputeOp/MarkOp carry a small PhaseId instead of a label string, so the
// engine's hot path accumulates per-phase time into a vector indexed by id
// and only materialises the label->seconds map when a run returns.
//
// ComputePhase payloads are pooled per Program (Program::phases): a
// ComputeOp is a 16-byte {pool index, label id, cost signature} record, so
// the op stream the engine walks stays small and cache-dense even for
// 10^6-op programs, and repeated phases (every CG iteration re-emitting
// "spmv") are stored once. The cached cost_signature lets the engine memoize
// CostModel pricing per (phase content, ExecContext class).

#include "arch/phase.hpp"
#include "util/interner.hpp"

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

namespace armstice::sim {

/// Wildcard source for RecvOp (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Interned phase-label id (index into phase_table()).
using PhaseId = std::uint32_t;

/// Id of the empty label "" — interned first, so it is always 0. Doubles as
/// the "no active MarkOp" sentinel in the engine.
inline constexpr PhaseId kNoPhase = 0;

/// Process-wide phase-label interner. Append-only and thread-safe;
/// concurrent Engine::run calls (SweepRunner pools) share it.
util::StringInterner& phase_table();

/// Intern a label (phase_table().id with the kNoPhase guarantee for "").
PhaseId intern_phase_label(std::string_view label);

/// Execute one counted compute phase. Only constructible through
/// Program::compute, which fills every field; content equality across
/// programs goes through Program::operator== (pool-resolved).
struct ComputeOp {
    std::uint32_t phase_idx = 0;  ///< index into Program::phases
    PhaseId label_id = kNoPhase;  ///< interned phase.label
    std::uint64_t cost_key = 0;   ///< arch::cost_signature(phase), never 0
};

/// Eager non-blocking send (MPI_Isend followed by an eventual wait that the
/// engine folds into injection time).
struct SendOp {
    int dst = 0;
    double bytes = 0;
    int tag = 0;

    bool operator==(const SendOp&) const = default;
};

/// Blocking receive with FIFO (src, tag) matching.
struct RecvOp {
    int src = kAnySource;
    int tag = 0;

    bool operator==(const RecvOp&) const = default;
};

/// World allreduce of `bytes` per rank (the engine prices it with
/// net::CollectiveModel and synchronises all ranks).
struct AllreduceOp {
    double bytes = 8;

    bool operator==(const AllreduceOp&) const = default;
};

struct BarrierOp {
    bool operator==(const BarrierOp&) const = default;
};

/// World all-to-all with `bytes_each` per rank pair (pairwise exchange;
/// used by the distributed-FFT transposes in the CASTEP model).
struct AlltoallOp {
    double bytes_each = 0;

    bool operator==(const AlltoallOp&) const = default;
};

/// Labels subsequent work for per-phase metrics (no time cost). kNoPhase
/// (the interned empty label) clears the active mark.
struct MarkOp {
    PhaseId label_id = kNoPhase;

    bool operator==(const MarkOp&) const = default;
};

using Op =
    std::variant<ComputeOp, SendOp, RecvOp, AllreduceOp, BarrierOp, AlltoallOp, MarkOp>;

struct Program {
    std::vector<Op> ops;
    /// Distinct phase payloads referenced by ComputeOp::phase_idx. Deduped
    /// bitwise (same_cost_inputs + label) as ops are built.
    std::vector<arch::ComputePhase> phases;

    Program& compute(arch::ComputePhase phase) {
        const PhaseId id = intern_phase_label(phase.label);
        const std::uint64_t key = arch::cost_signature(phase);
        ops.emplace_back(ComputeOp{pool_phase(std::move(phase)), id, key});
        return *this;
    }
    Program& send(int dst, double bytes, int tag = 0) {
        ops.emplace_back(SendOp{dst, bytes, tag});
        return *this;
    }
    Program& recv(int src = kAnySource, int tag = 0) {
        ops.emplace_back(RecvOp{src, tag});
        return *this;
    }
    Program& allreduce(double bytes = 8) {
        ops.emplace_back(AllreduceOp{bytes});
        return *this;
    }
    Program& barrier() {
        ops.emplace_back(BarrierOp{});
        return *this;
    }
    Program& alltoall(double bytes_each) {
        ops.emplace_back(AlltoallOp{bytes_each});
        return *this;
    }
    Program& mark(std::string_view label) {
        ops.emplace_back(MarkOp{intern_phase_label(label)});
        return *this;
    }

    /// The phase payload of a compute op.
    [[nodiscard]] const arch::ComputePhase& phase_of(const ComputeOp& c) const {
        return phases[c.phase_idx];
    }

    /// Total counted FLOPs in this program.
    [[nodiscard]] double total_flops() const;
    /// Total counted main-memory bytes.
    [[nodiscard]] double total_main_bytes() const;

    /// Structural hash: equal programs hash equal (used with operator== to
    /// deduplicate structurally identical rank programs).
    [[nodiscard]] std::uint64_t structure_hash() const;

    /// Structural equality with pool-resolved phase content (bitwise cost
    /// inputs + label), so equal programs built independently compare equal
    /// regardless of pool layout.
    bool operator==(const Program& o) const;

private:
    /// Index of `phase` in `phases`, appending if new.
    std::uint32_t pool_phase(arch::ComputePhase phase);
};

/// A set of rank programs with structural sharing: structurally identical
/// programs are stored once and every rank holds an index into the distinct
/// list. SPMD apps collapse O(ranks x ops) storage to O(distinct x ops);
/// rank-dependent apps (halo graphs, per-rank work) keep one copy per
/// distinct structure. Engine::run accepts a bundle directly.
class ProgramBundle {
public:
    ProgramBundle() = default;

    /// Deduplicate a fully materialised per-rank vector (structural hash,
    /// then deep equality — hash collisions never merge unequal programs).
    static ProgramBundle from(std::vector<Program> programs);

    /// Pure-SPMD fast path: every one of `ranks` ranks runs `proto`. O(1)
    /// program storage, no hashing.
    static ProgramBundle shared(Program proto, int ranks);

    [[nodiscard]] int ranks() const { return static_cast<int>(index_.size()); }
    [[nodiscard]] int distinct() const { return static_cast<int>(distinct_.size()); }
    [[nodiscard]] const Program& of(int rank) const {
        return distinct_[index_[static_cast<std::size_t>(rank)]];
    }

private:
    std::vector<Program> distinct_;
    std::vector<std::uint32_t> index_;  ///< rank -> index into distinct_
};

} // namespace armstice::sim
