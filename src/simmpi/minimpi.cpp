#include "simmpi/minimpi.hpp"

#include "util/error.hpp"

#include <algorithm>

namespace armstice::simmpi {

ProgramSet::ProgramSet(int ranks) : nranks_(ranks) {
    ARMSTICE_CHECK(ranks >= 1, "ProgramSet needs >=1 rank");
}

void ProgramSet::fork() {
    if (forked_) return;
    programs_.assign(static_cast<std::size_t>(nranks_), proto_);
    proto_ = sim::Program{};
    forked_ = true;
}

sim::Program& ProgramSet::at(int rank) {
    ARMSTICE_CHECK(rank >= 0 && rank < ranks(), "rank out of range");
    fork();
    return programs_[static_cast<std::size_t>(rank)];
}

ProgramSet& ProgramSet::compute(const arch::ComputePhase& phase) {
    if (!forked_) {
        proto_.compute(phase);
    } else {
        for (auto& p : programs_) p.compute(phase);
    }
    return *this;
}

ProgramSet& ProgramSet::allreduce(double bytes) {
    if (!forked_) {
        proto_.allreduce(bytes);
    } else {
        for (auto& p : programs_) p.allreduce(bytes);
    }
    return *this;
}

ProgramSet& ProgramSet::barrier() {
    if (!forked_) {
        proto_.barrier();
    } else {
        for (auto& p : programs_) p.barrier();
    }
    return *this;
}

ProgramSet& ProgramSet::alltoall(double bytes_each) {
    if (!forked_) {
        proto_.alltoall(bytes_each);
    } else {
        for (auto& p : programs_) p.alltoall(bytes_each);
    }
    return *this;
}

ProgramSet& ProgramSet::mark(const std::string& label) {
    if (!forked_) {
        proto_.mark(label);
    } else {
        for (auto& p : programs_) p.mark(label);
    }
    return *this;
}

ProgramSet& ProgramSet::halo_exchange(const std::vector<std::vector<int>>& neighbors,
                                      const std::vector<std::vector<double>>& bytes,
                                      int tag) {
    ARMSTICE_CHECK(static_cast<int>(neighbors.size()) == ranks(),
                   "neighbor lists must cover all ranks");
    ARMSTICE_CHECK(bytes.size() == neighbors.size(), "bytes lists must match");
    // Emit *relative* p2p ops (dst/src as rank offsets): the offsets are the
    // neighbour relationship itself, so every interior rank of a Cartesian
    // halo builds a structurally identical program. ProgramBundle dedup then
    // keeps one copy, and the engine's rank-equivalence collapse (DESIGN.md
    // §11) executes the whole interior as O(surface) merged classes instead
    // of O(ranks) singletons — the simulated timings are identical to the
    // absolute form either way.
    // All sends first.
    for (int r = 0; r < ranks(); ++r) {
        const auto& nb = neighbors[static_cast<std::size_t>(r)];
        const auto& by = bytes[static_cast<std::size_t>(r)];
        ARMSTICE_CHECK(nb.size() == by.size(), "neighbor/bytes length mismatch");
        for (std::size_t i = 0; i < nb.size(); ++i) {
            ARMSTICE_CHECK(nb[i] >= 0 && nb[i] < ranks(), "neighbor out of range");
            at(r).send_rel(nb[i] - r, by[i], tag);
        }
    }
    // Then matching receives (one per inbound edge).
    for (int r = 0; r < ranks(); ++r) {
        for (int nb : neighbors[static_cast<std::size_t>(r)]) {
            // Exchange symmetry: we receive from everyone we send to. The
            // apps in this repo all use symmetric halo graphs; assert it.
            const auto& back = neighbors[static_cast<std::size_t>(nb)];
            ARMSTICE_CHECK(std::find(back.begin(), back.end(), r) != back.end(),
                           "halo graph must be symmetric");
            at(r).recv_rel(nb - r, tag);
        }
    }
    return *this;
}

ProgramSet& ProgramSet::halo_exchange(const std::vector<std::vector<int>>& neighbors,
                                      double bytes_per_neighbor, int tag) {
    std::vector<std::vector<double>> bytes(neighbors.size());
    for (std::size_t r = 0; r < neighbors.size(); ++r) {
        bytes[r].assign(neighbors[r].size(), bytes_per_neighbor);
    }
    return halo_exchange(neighbors, bytes, tag);
}

std::vector<sim::Program> ProgramSet::take() {
    fork();  // materialise per-rank copies of a pure-SPMD prototype
    nranks_ = 0;
    return std::move(programs_);
}

sim::ProgramBundle ProgramSet::take_bundle() {
    const int n = nranks_;
    nranks_ = 0;
    if (!forked_) {
        return sim::ProgramBundle::shared(std::move(proto_), n);
    }
    return sim::ProgramBundle::from(std::move(programs_));
}

long chunk_size(long n, int p, int i) {
    ARMSTICE_CHECK(p >= 1 && i >= 0 && i < p, "bad chunk index");
    const long base = n / p;
    return base + (i < n % p ? 1 : 0);
}

long chunk_begin(long n, int p, int i) {
    ARMSTICE_CHECK(p >= 1 && i >= 0 && i < p, "bad chunk index");
    const long base = n / p;
    const long extra = n % p;
    return i * base + std::min<long>(i, extra);
}

std::vector<int> dims_create(int p, int ndims) {
    ARMSTICE_CHECK(p >= 1 && ndims >= 1, "bad dims_create input");
    std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
    // Collect prime factors, then greedily assign the largest remaining
    // factor to the smallest dimension (MPI_Dims_create's balanced shape:
    // 48 -> 4x4x3, not 6x4x2).
    std::vector<int> factors;
    int rest = p;
    for (int f = 2; rest > 1;) {
        if (rest % f == 0) {
            factors.push_back(f);
            rest /= f;
        } else {
            ++f;
        }
    }
    std::sort(factors.begin(), factors.end(), std::greater<int>());
    for (int f : factors) {
        *std::min_element(dims.begin(), dims.end()) *= f;
    }
    std::sort(dims.begin(), dims.end(), std::greater<int>());
    return dims;
}

std::vector<std::vector<int>> cart_neighbors(const std::vector<int>& dims,
                                             bool periodic) {
    int p = 1;
    for (int d : dims) {
        ARMSTICE_CHECK(d >= 1, "bad cart dims");
        p *= d;
    }
    const int nd = static_cast<int>(dims.size());
    auto coords = [&](int rank) {
        std::vector<int> c(static_cast<std::size_t>(nd));
        for (int i = 0; i < nd; ++i) {
            c[static_cast<std::size_t>(i)] = rank % dims[static_cast<std::size_t>(i)];
            rank /= dims[static_cast<std::size_t>(i)];
        }
        return c;
    };
    auto rank_of = [&](const std::vector<int>& c) {
        int rank = 0;
        for (int i = nd - 1; i >= 0; --i) {
            rank = rank * dims[static_cast<std::size_t>(i)] + c[static_cast<std::size_t>(i)];
        }
        return rank;
    };

    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
        const auto c = coords(r);
        for (int i = 0; i < nd; ++i) {
            const int d = dims[static_cast<std::size_t>(i)];
            if (d == 1) continue;
            for (int dir : {-1, +1}) {
                auto cc = c;
                int v = cc[static_cast<std::size_t>(i)] + dir;
                if (v < 0 || v >= d) {
                    if (!periodic) continue;
                    v = (v + d) % d;
                }
                cc[static_cast<std::size_t>(i)] = v;
                const int nb = rank_of(cc);
                if (nb != r) out[static_cast<std::size_t>(r)].push_back(nb);
            }
        }
        // Periodic dims of size 2 produce the same neighbour twice; dedupe.
        auto& v = out[static_cast<std::size_t>(r)];
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    return out;
}

std::vector<std::vector<int>> chain_neighbors(int ranks, int active) {
    ARMSTICE_CHECK(ranks >= 1, "chain_neighbors needs >=1 rank");
    if (active < 0) active = ranks;
    ARMSTICE_CHECK(active <= ranks, "active ranks exceed rank count");
    std::vector<std::vector<int>> out(static_cast<std::size_t>(ranks));
    for (int r = 0; r < active; ++r) {
        if (r > 0) out[static_cast<std::size_t>(r)].push_back(r - 1);
        if (r + 1 < active) out[static_cast<std::size_t>(r)].push_back(r + 1);
    }
    return out;
}

} // namespace armstice::simmpi
