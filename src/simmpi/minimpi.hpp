#pragma once
// MiniMpi — the program-builder facade application skeletons use to express
// their communication structure. It looks like a tiny MPI: SPMD helpers emit
// the same op into every rank's Program; halo_exchange emits the
// sends-before-receives ordering that is deadlock-free under the engine's
// eager-send semantics (mirroring nonblocking-irecv/isend/waitall codes).
//
// Building is copy-on-write: while only SPMD helpers have been used, ops
// accumulate in ONE prototype program shared by every rank; the first
// rank-dependent call (at(), compute_by_rank, halo_exchange) forks the
// prototype into per-rank copies. take_bundle() hands the engine a
// sim::ProgramBundle that keeps structurally identical rank programs shared
// (O(distinct x ops) memory); take() still materialises the full per-rank
// vector for callers that inspect or mutate individual programs.

#include "arch/phase.hpp"
#include "sim/program.hpp"

#include <vector>

namespace armstice::simmpi {

class ProgramSet {
public:
    explicit ProgramSet(int ranks);

    [[nodiscard]] int ranks() const { return nranks_; }
    /// True while every rank still shares the single prototype program. The
    /// engine's rank-equivalence collapse (DESIGN.md §11) keys classes on
    /// shared program identity, so a still-SPMD set collapses to one class
    /// per ExecContext class; bench_engine asserts the scale skeletons stay
    /// SPMD all the way into take_bundle().
    [[nodiscard]] bool spmd() const { return !forked_; }
    /// Mutable access to one rank's program; forks the shared prototype.
    [[nodiscard]] sim::Program& at(int rank);

    /// SPMD: every rank executes `phase`.
    ProgramSet& compute(const arch::ComputePhase& phase);
    /// SPMD: rank-dependent phases (callable rank -> ComputePhase, which must
    /// be pure — it may be invoked more than once per rank). When every
    /// rank's phase comes out identical (cost inputs and label) the op is
    /// emitted through the shared prototype instead of forking, so uniform
    /// "per-rank" work keeps the structural sharing that feeds ProgramBundle
    /// dedup and the engine's rank-equivalence collapse. The built programs
    /// are identical either way.
    template <typename F>
    ProgramSet& compute_by_rank(F&& make_phase) {
        if (!forked_) {
            arch::ComputePhase first = make_phase(0);
            bool uniform = true;
            for (int r = 1; r < ranks() && uniform; ++r) {
                const arch::ComputePhase p = make_phase(r);
                uniform = arch::same_cost_inputs(first, p) && p.label == first.label;
            }
            if (uniform) {
                proto_.compute(first);
                return *this;
            }
        }
        for (int r = 0; r < ranks(); ++r) at(r).compute(make_phase(r));
        return *this;
    }
    ProgramSet& allreduce(double bytes = 8);
    ProgramSet& barrier();
    ProgramSet& alltoall(double bytes_each);
    ProgramSet& mark(const std::string& label);

    /// Neighbour (halo) exchange: rank r sends `bytes[r][i]` to
    /// `neighbors[r][i]` and receives from each of its neighbours. Posts all
    /// sends first, then the receives (deadlock-free with eager sends).
    /// Emitted in *relative* form (send_rel/recv_rel with offset = neighbour
    /// - rank), so structurally symmetric ranks — a Cartesian halo's whole
    /// interior — share one program and stay merged through the engine's
    /// rank-equivalence collapse (DESIGN.md §11). Timings are identical to
    /// hand-rolled absolute send/recv pairs.
    ProgramSet& halo_exchange(const std::vector<std::vector<int>>& neighbors,
                              const std::vector<std::vector<double>>& bytes,
                              int tag = 0);
    /// Uniform-size convenience overload.
    ProgramSet& halo_exchange(const std::vector<std::vector<int>>& neighbors,
                              double bytes_per_neighbor, int tag = 0);

    /// Move the built programs out as a full per-rank vector (ProgramSet is
    /// then empty). Materialises rank copies of the shared prototype.
    [[nodiscard]] std::vector<sim::Program> take();

    /// Move the built programs out with structural sharing intact: a
    /// never-forked (pure SPMD) set yields one shared program; a forked set
    /// is deduplicated by structural hash + equality (ProgramSet is then
    /// empty). Engine results are bit-identical to the take() path.
    [[nodiscard]] sim::ProgramBundle take_bundle();

private:
    void fork();  ///< materialise per-rank copies of the prototype

    int nranks_ = 0;
    sim::Program proto_;  ///< shared SPMD prefix while !forked_
    std::vector<sim::Program> programs_;  ///< per-rank programs once forked_
    bool forked_ = false;
};

/// Split n items over p parts as evenly as possible; part i gets
/// chunk_size(n,p,i) items (the first n%p parts get one extra).
long chunk_size(long n, int p, int i);
/// First item of part i under the same split.
long chunk_begin(long n, int p, int i);

/// Near-cubic process grid for p ranks in `ndims` dimensions
/// (MPI_Dims_create semantics: factors sorted descending).
std::vector<int> dims_create(int p, int ndims);

/// Neighbour lists for a Cartesian decomposition: 2*ndims face neighbours
/// per rank (non-periodic boundaries drop the missing side).
std::vector<std::vector<int>> cart_neighbors(const std::vector<int>& dims,
                                             bool periodic);

/// Neighbour lists for a 1D chain (slab) decomposition: rank r talks to
/// r-1 and r+1, chain ends have one neighbour. Only the first `active`
/// ranks participate (ranks past it get empty lists); active < 0 means all.
/// The apps' slab/block-chain halos all route through this so their
/// exchanges hit halo_exchange's relative emission with a uniform shape.
std::vector<std::vector<int>> chain_neighbors(int ranks, int active = -1);

} // namespace armstice::simmpi
