#pragma once
// EcmModel — the multi-level memory-hierarchy half of the cost model
// (DESIGN.md §12). Decomposes one phase's main-memory traffic into per-level
// transfer legs over the Processor's MemLevel table and composes them by the
// machine's overlap rule, following the ECM methodology Alappat et al.
// applied to SpMV/Lattice-QCD on A64FX (arXiv:2103.03013): on A64FX the
// legs serialize (ecm_overlap = 0), on the Intel/TX2 parts they overlap
// (ecm_overlap = 1), and the composed time replaces the flat model's single
// t_mem term inside CostModel::explain.
//
// Two invariants tie the ECM and flat families together (both pinned by
// tests/arch/test_ecm_model.cpp):
//  * A processor whose level table has fewer than two entries is priced by
//    the flat model, bit-exactly.
//  * The per-core end-to-end caps (core_stream_bw / core_gather_bw, and the
//    dependent-chain latency clamp) are *measurements through the whole
//    hierarchy*. deconvolve_cap() converts them into the raw memory-leg
//    limit whose serial re-composition reproduces the measurement, so
//    cap-bound anchors (Table V single-core minikab, single-core STREAM)
//    price identically under both families.

#include "arch/phase.hpp"
#include "arch/processor.hpp"

#include <array>

namespace armstice::arch {

/// Per-level decomposition of one phase's memory traffic (seconds).
struct EcmBreakdown {
    /// Transfer legs, index-aligned with Processor::levels: t_leg[k] is the
    /// time to move the phase's bytes through level k's interface (the leg
    /// between level k and level k-1; t_leg[0] is always 0 — the L1-to-
    /// register leg is part of in-core execution, i.e. t_flops).
    std::array<double, kMaxMemLevels> t_leg{};
    int n_levels = 0;    ///< entries of Processor::levels in play
    int residence = 0;   ///< level index the working set streams out of
    double t_data = 0;   ///< composed hierarchy time per the overlap rule
};

class EcmModel {
public:
    /// Raw memory-leg bandwidth limit equivalent to the end-to-end measured
    /// cap `cap_bw` on `cpu`: the value r with
    ///   1/cap_bw = 1/r + (1 - ecm_overlap) * sum_cache_legs 1/bw_leg.
    /// Returns +inf when the cache legs alone already explain the measured
    /// rate (the cap then never binds the memory leg), and `cap_bw`
    /// unchanged on fully overlapping machines or trivial level tables.
    [[nodiscard]] static double deconvolve_cap(const Processor& cpu, double cap_bw);

    /// Level index the phase's working set is resident in: the nearest level
    /// whose effective capacity (shared levels are divided among
    /// `ranks_sharing` co-resident ranks) holds `working_set` bytes. A zero
    /// working set — the "no reuse information" default that preserves v3
    /// streaming semantics — and oversized sets resolve to the memory level.
    [[nodiscard]] static int residence_level(const Processor& cpu, double working_set,
                                             double ranks_sharing);

    /// Decompose `bytes` of traffic streamed from `residence` through the
    /// hierarchy. `mem_leg_bw` is the per-stream memory-interface bandwidth
    /// the flat contention/cap machinery computed (already deconvolved by
    /// the caller via deconvolve_cap); cache legs run at their MemLevel's
    /// bw_per_core. Requires cpu.levels.size() >= 2.
    [[nodiscard]] static EcmBreakdown decompose(const Processor& cpu, double bytes,
                                                int residence, double mem_leg_bw);
};

} // namespace armstice::arch
