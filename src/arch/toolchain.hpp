#pragma once
// Toolchain model — encodes Table II of the paper (compiler, flags,
// libraries, per system and per application) plus the two quantities the
// cost model consumes: a vectorisation-quality factor and whether the flag
// set enables fast-math style reassociation.

#include <string>
#include <string_view>
#include <vector>

namespace armstice::arch {

enum class CompilerVendor { fujitsu, intel, gnu, armclang, cray };

struct Toolchain {
    CompilerVendor vendor = CompilerVendor::gnu;
    std::string compiler;                ///< e.g. "Fujitsu 1.2.24"
    std::string flags;                   ///< verbatim Table II flags
    std::vector<std::string> libraries;  ///< verbatim Table II libraries
    /// Fraction of the vector unit a typical O3-compiled inner loop attains
    /// on this (compiler, architecture) pair; calibrated, see calibration.cpp.
    double vec_quality = 0.7;
    /// True when the Table II flag set includes -Kfast / -ffast-math /
    /// -ffp-contract=fast style options.
    bool fastmath = false;

    [[nodiscard]] std::string vendor_name() const;
};

/// Applications with a Table II entry.
inline constexpr const char* kToolchainApps[] = {"hpcg", "minikab", "nekbone",
                                                 "castep", "cosa", "opensbli"};

/// Return the Table II toolchain for (system, app). Systems that did not run
/// an app in the paper (e.g. OpenSBLI on A64FX has no Table II row; the paper
/// still reports results) fall back to the system's dominant toolchain.
/// Throws util::Error for unknown system names.
Toolchain toolchain_for(std::string_view system, std::string_view app);

} // namespace armstice::arch
