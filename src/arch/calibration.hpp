#pragma once
// Calibration — every tuned constant in armstice lives behind one of these
// functions (DESIGN.md §4.6). Each returns a *residual efficiency*: the ratio
// between what the structural model (exact counts + roofline + contention)
// predicts and what the paper measured, fitted against exactly ONE anchor
// per (application, system) — the paper's single-node/single-core number.
// Everything else (scaling curves, config sweeps, crossovers) is then a
// genuine prediction of the structural model.
//
// A value > 1 means the measured machine beat the counted-traffic model
// (cache reuse beyond the analytic byte count); < 1 means overheads the
// counts do not see (TLB, instruction issue, runtime overheads).

#include "arch/system.hpp"

namespace armstice::arch::calib {

/// HPCG residual efficiency. Anchor: Table III single-node GFLOP/s.
/// `optimized` selects the vendor-optimised HPCG variants (Intel on NGIO,
/// Arm on Fulhame); the A64FX/ARCHER/Cirrus runs were unoptimised only.
double hpcg_efficiency(const SystemSpec& sys, bool optimized);

/// minikab residual efficiency. Anchor: Table V single-core runtimes; the
/// per-core gather caps in the catalog carry the effect, so these are ~1.
double minikab_efficiency(const SystemSpec& sys);

/// Nekbone residual efficiency at -O3. Anchor: Table VI "GFLOP/s" column.
double nekbone_efficiency(const SystemSpec& sys);

/// Multiplier applied when fast-math flags are enabled (-Kfast/-ffast-math).
/// Anchor: Table VI "GFLOP/s fast math" vs "GFLOP/s": 1.78x on A64FX,
/// 0.71x on NGIO (AVX-512 fast-math hurt), 1.09x Fulhame, 1.03x ARCHER.
double nekbone_fastmath_factor(const SystemSpec& sys);

/// COSA residual efficiency. Anchor: Figure 4 relative node performance
/// (the figure has no absolute scale; shape criteria are in DESIGN.md §3).
double cosa_efficiency(const SystemSpec& sys);

/// CASTEP library-quality factors: the fraction of the structural-model FFT
/// and BLAS rates delivered by the system's math libraries.
/// Anchor: Table IX SCF cycles/s; A64FX used an *early* FFTW port (paper
/// §VII.B), MKL is the mature reference, ArmPL sits between.
double castep_fft_quality(const SystemSpec& sys);
double castep_blas_quality(const SystemSpec& sys);

/// OpenSBLI per-kernel-launch overhead (seconds) for OPS-generated C code.
/// Anchor: Table X; the paper's profiling attributes the A64FX 3x deficit to
/// instruction-fetch waits and L2 integer loads in the generated code.
double opensbli_kernel_overhead(const SystemSpec& sys);

/// OpenSBLI residual efficiency on the stencil sweeps themselves.
double opensbli_efficiency(const SystemSpec& sys);

} // namespace armstice::arch::calib
