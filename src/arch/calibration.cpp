#include "arch/calibration.hpp"

#include "util/error.hpp"

#include <map>
#include <string>

namespace armstice::arch::calib {
namespace {

double lookup(const std::map<std::string, double>& table, const std::string& name,
              const char* what) {
    const auto it = table.find(name);
    ARMSTICE_CHECK(it != table.end(),
                   std::string("no ") + what + " calibration for system " + name);
    return it->second;
}

} // namespace

// ---------------------------------------------------------------------------
// HPCG. Anchor: Table III (single node, GFLOP/s):
//   A64FX 38.26 | ARCHER 15.65 | Cirrus 17.27 | NGIO 26.16/37.61 |
//   Fulhame 23.58/33.80.
// The structural model prices the counted SpMV/SymGS/WAXPBY/dot traffic at
// contended domain bandwidth with gather caps; the residuals absorb SymGS
// dependency stalls (<1) and coarse-MG-level cache reuse (>1 on the Xeons,
// whose large L3s hold levels 2-3 of the 80^3 hierarchy).
// ---------------------------------------------------------------------------
double hpcg_efficiency(const SystemSpec& sys, bool optimized) {
    static const std::map<std::string, double> base = {
        {"A64FX", 0.6576}, {"ARCHER", 1.265}, {"Cirrus", 1.013},
        {"EPCC NGIO", 0.854}, {"Fulhame", 0.664},
    };
    // Vendor-optimised HPCG (Table III "optimised" rows): +44% on NGIO,
    // +43% on Fulhame, from restructured SymGS/SpMV kernels.
    static const std::map<std::string, double> opt = {
        {"EPCC NGIO", 1.228}, {"Fulhame", 0.953},
    };
    if (optimized) {
        const auto it = opt.find(sys.name);
        ARMSTICE_CHECK(it != opt.end(),
                       "no optimised HPCG variant existed for " + sys.name);
        return it->second;
    }
    return lookup(base, sys.name, "HPCG");
}

// ---------------------------------------------------------------------------
// minikab. Anchor: Table V (single core, seconds): A64FX 1182 | NGIO 1269 |
// Fulhame 2415. The catalog's core_gather_bw values (8.07 / 7.84 / 4.07
// GB/s) are fitted to these runtimes directly, so the residuals here are
// unity; systems the paper did not run minikab on reuse 1.0.
// ---------------------------------------------------------------------------
double minikab_efficiency(const SystemSpec& sys) {
    (void)sys;
    return 1.0;
}

// ---------------------------------------------------------------------------
// Nekbone. Anchor: Table VI GFLOP/s at -O3:
//   A64FX 175.74 | NGIO 127.19 | Fulhame 121.63 | ARCHER 66.55.
// The ax kernel is chains of 16x16 tensor contractions — far from peak on
// every machine; residuals absorb the small-GEMM pipeline bubbles.
// ---------------------------------------------------------------------------
double nekbone_efficiency(const SystemSpec& sys) {
    static const std::map<std::string, double> eff = {
        {"A64FX", 0.2513}, {"ARCHER", 0.653}, {"Cirrus", 0.55},
        {"EPCC NGIO", 0.505}, {"Fulhame", 0.420},
    };
    return lookup(eff, sys.name, "Nekbone");
}

// Anchor: Table VI "fast math" column vs plain column, computed directly from
// the paper's numbers: 312.34/175.74, 90.37/127.19, 132.65/121.63, 68.22/66.55.
double nekbone_fastmath_factor(const SystemSpec& sys) {
    static const std::map<std::string, double> f = {
        {"A64FX", 312.34 / 175.74},   // 1.777 — -Kfast unlocks SVE on the ax kernel
        {"EPCC NGIO", 90.37 / 127.19},// 0.710 — fast-math regressed the Intel build
        {"Fulhame", 132.65 / 121.63}, // 1.091
        {"ARCHER", 68.22 / 66.55},    // 1.025
        {"Cirrus", 1.0},              // not measured in the paper
    };
    return lookup(f, sys.name, "Nekbone fast-math");
}

// ---------------------------------------------------------------------------
// COSA. Figure 4 has no absolute axis; the anchors are the paper's relative
// statements (A64FX fastest 2-8 nodes; Fulhame overtakes at 16 via the
// 800-block load-balance effect, which the structural model supplies).
// Residuals keep the per-node ordering consistent with the HPCG-like
// bandwidth-bound character of the multigrid smoother.
// ---------------------------------------------------------------------------
double cosa_efficiency(const SystemSpec& sys) {
    static const std::map<std::string, double> eff = {
        {"A64FX", 0.80}, {"ARCHER", 0.75}, {"Cirrus", 0.85},
        {"EPCC NGIO", 0.90}, {"Fulhame", 1.10},
    };
    return lookup(eff, sys.name, "COSA");
}

// ---------------------------------------------------------------------------
// CASTEP. Anchor: Table IX (SCF cycles/s, best full node):
//   NGIO 0.184 | A64FX 0.145 | Fulhame 0.141 | Cirrus 0.125 | ARCHER 0.074.
// FFT quality: Fujitsu supplied an *early development* FFTW (paper §VII.B);
// MKL's DFT is the mature reference; ArmPL/FFTW on TX2 in between.
// BLAS quality: SSL2/MKL/ArmPL are all solid for ZGEMM-sized operands.
// ---------------------------------------------------------------------------
double castep_fft_quality(const SystemSpec& sys) {
    static const std::map<std::string, double> q = {
        {"A64FX", 0.231}, // early FFTW 3.3.3 port, no SVE kernels
        {"ARCHER", 0.462}, {"Cirrus", 0.472}, {"EPCC NGIO", 0.314},
        {"Fulhame", 0.336},
    };
    return lookup(q, sys.name, "CASTEP FFT");
}

double castep_blas_quality(const SystemSpec& sys) {
    static const std::map<std::string, double> q = {
        {"A64FX", 0.617}, // SSL2 ZGEMM is well tuned (paper §VIII)
        {"ARCHER", 0.714}, {"Cirrus", 0.692}, {"EPCC NGIO", 0.435},
        {"Fulhame", 0.519},
    };
    return lookup(q, sys.name, "CASTEP BLAS");
}

// ---------------------------------------------------------------------------
// OpenSBLI. Anchor: Table X (total runtime, 64^3 Taylor-Green):
//   1 node — A64FX 3.44 s | Cirrus 1.90 | NGIO 1.18 | Fulhame 1.17.
// The tiny grid makes per-kernel overhead dominant; the paper's profiling
// found instruction-fetch waits and L2 integer loads on the A64FX, i.e. the
// OPS-generated indirection code runs poorly on its narrow front end.
// ---------------------------------------------------------------------------
double opensbli_kernel_overhead(const SystemSpec& sys) {
    static const std::map<std::string, double> ovh = {
        {"A64FX", 8e-6},     // s per OPS kernel launch per rank
        {"ARCHER", 7e-6},  {"Cirrus", 7e-6},
        {"EPCC NGIO", 5e-6}, {"Fulhame", 6e-6},
    };
    return lookup(ovh, sys.name, "OpenSBLI overhead");
}

double opensbli_efficiency(const SystemSpec& sys) {
    static const std::map<std::string, double> eff = {
        {"A64FX", 0.1084}, // generated C with scalar indirection defeats SVE
                           // (the paper's instruction-fetch-wait profile)
        {"ARCHER", 0.70}, {"Cirrus", 0.69}, {"EPCC NGIO", 0.59},
        {"Fulhame", 0.53},
    };
    return lookup(eff, sys.name, "OpenSBLI");
}

} // namespace armstice::arch::calib
