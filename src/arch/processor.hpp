#pragma once
// Processor and node models. A processor is a set of identical core groups;
// each core group owns one memory domain (an A64FX CMG with its HBM2 stack,
// or a whole Xeon socket with its DDR channels — for the x86/TX2 parts a
// "group" is simply the socket).

#include "arch/vector_isa.hpp"
#include "util/error.hpp"

#include <string>

namespace armstice::arch {

/// One memory domain: the RAM reachable at full bandwidth by one core group.
struct MemDomain {
    double capacity_bytes = 0;
    double bandwidth = 0;       ///< sustained (STREAM-triad-like) bytes/s
    double latency_s = 90e-9;   ///< load-to-use main memory latency
};

/// Last-level cache shared by one core group.
struct SharedCache {
    double capacity_bytes = 0;
    double bw_per_core = 0;     ///< sustained per-core bytes/s out of this level
};

struct Processor {
    std::string name;
    double freq_hz = 0;
    int core_groups = 1;        ///< CMGs (A64FX: 4) or 1 for monolithic sockets
    int cores_per_group = 0;
    MemDomain domain;           ///< per core group
    SharedCache llc;            ///< per core group
    VectorIsa isa;
    /// Scalar double-precision FLOPs/cycle/core (2 per FMA pipe).
    double scalar_fpc = 2.0;
    /// Sustained single-core bandwidth caps (concurrency-limited; these are
    /// the measured STREAM-1-core and SpMV-gather effective rates).
    double core_stream_bw = 0;
    double core_gather_bw = 0;

    [[nodiscard]] int cores() const { return core_groups * cores_per_group; }
    /// Peak vector FLOPs/cycle/core.
    [[nodiscard]] double peak_fpc() const {
        return scalar_fpc * isa.dp_lanes();
    }
    [[nodiscard]] double peak_gflops() const {
        return cores() * freq_hz * peak_fpc() / 1e9;
    }
    [[nodiscard]] double mem_bandwidth() const { return core_groups * domain.bandwidth; }
    [[nodiscard]] double mem_capacity() const { return core_groups * domain.capacity_bytes; }
};

/// A compute node: `sockets` identical processors sharing an NIC.
struct NodeSpec {
    std::string name;
    int sockets = 1;
    Processor cpu;

    [[nodiscard]] int cores() const { return sockets * cpu.cores(); }
    [[nodiscard]] int mem_domains() const { return sockets * cpu.core_groups; }
    [[nodiscard]] int cores_per_domain() const { return cpu.cores_per_group; }
    [[nodiscard]] double mem_capacity() const { return sockets * cpu.mem_capacity(); }
    [[nodiscard]] double mem_bandwidth() const { return sockets * cpu.mem_bandwidth(); }
    [[nodiscard]] double peak_gflops() const { return sockets * cpu.peak_gflops(); }

    void validate() const {
        ARMSTICE_CHECK(sockets >= 1, "node needs >=1 socket");
        ARMSTICE_CHECK(cpu.cores_per_group > 0, "processor needs cores");
        ARMSTICE_CHECK(cpu.freq_hz > 0, "processor needs frequency");
        ARMSTICE_CHECK(cpu.domain.bandwidth > 0, "domain needs bandwidth");
        ARMSTICE_CHECK(cpu.domain.capacity_bytes > 0, "domain needs capacity");
        ARMSTICE_CHECK(cpu.core_stream_bw > 0 && cpu.core_gather_bw > 0,
                       "per-core bandwidth caps required");
    }
};

} // namespace armstice::arch
