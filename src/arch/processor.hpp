#pragma once
// Processor and node models. A processor is a set of identical core groups;
// each core group owns one memory domain (an A64FX CMG with its HBM2 stack,
// or a whole Xeon socket with its DDR channels — for the x86/TX2 parts a
// "group" is simply the socket).

#include "arch/vector_isa.hpp"
#include "util/error.hpp"

#include <string>
#include <vector>

namespace armstice::arch {

/// One memory domain: the RAM reachable at full bandwidth by one core group.
struct MemDomain {
    double capacity_bytes = 0;
    double bandwidth = 0;       ///< sustained (STREAM-triad-like) bytes/s
    double latency_s = 90e-9;   ///< load-to-use main memory latency
};

/// One level of the cache/memory hierarchy as the ECM model (arch/ecm.hpp)
/// sees it, ordered nearest-to-core first (L1, L2[, L3], main memory last).
/// The transfer leg *into* level k-1 runs at level k's `bw_per_core`; the
/// last (memory) level's bandwidth is not read from here — the memory leg is
/// priced by the flat contention/cap machinery of CostModel so the two model
/// families share one memory-bandwidth story (DESIGN.md §12).
struct MemLevel {
    std::string name;           ///< "L1", "L2", "HBM2", "DDR4", ...
    double capacity_bytes = 0;  ///< per core if private, per core group if shared
    double bw_per_core = 0;     ///< sustained per-core bytes/s through this level
    bool shared = false;        ///< shared by the core group (capacity divided
                                ///< among co-resident ranks, like the flat
                                ///< model's LLC residency rule)
};

/// Maximum hierarchy depth the ECM decomposition supports (L1/L2/L3/memory);
/// TimeBreakdown carries a fixed-size per-leg array of this length.
inline constexpr int kMaxMemLevels = 4;

/// Last-level cache shared by one core group.
struct SharedCache {
    double capacity_bytes = 0;
    double bw_per_core = 0;     ///< sustained per-core bytes/s out of this level
};

struct Processor {
    std::string name;
    double freq_hz = 0;
    int core_groups = 1;        ///< CMGs (A64FX: 4) or 1 for monolithic sockets
    int cores_per_group = 0;
    MemDomain domain;           ///< per core group
    SharedCache llc;            ///< per core group
    VectorIsa isa;
    /// Scalar double-precision FLOPs/cycle/core (2 per FMA pipe).
    double scalar_fpc = 2.0;
    /// Sustained single-core bandwidth caps (concurrency-limited; these are
    /// the measured STREAM-1-core and SpMV-gather effective rates). The caps
    /// are *end-to-end* measurements — under the ECM decomposition they are
    /// deconvolved into a raw memory-leg limit so the serial leg composition
    /// reproduces the measured rate exactly (arch/ecm.cpp).
    double core_stream_bw = 0;
    double core_gather_bw = 0;

    /// ECM memory-hierarchy descriptor (L1 first, memory last). Fewer than
    /// two levels means "no hierarchy information": CostModel then prices
    /// memory traffic with the flat single-bandwidth model (bit-exactly the
    /// v3 behaviour).
    std::vector<MemLevel> levels;
    /// Fraction of inter-level transfer overlap the memory pipeline achieves:
    /// 1 = transfers fully overlap (the composed hierarchy time is the max
    /// leg — classic Intel-style cores), 0 = transfers serialize (the time is
    /// the sum of legs — the A64FX machine model of Alappat et al.,
    /// arXiv:2103.03013).
    double ecm_overlap = 1.0;

    [[nodiscard]] int cores() const { return core_groups * cores_per_group; }
    /// Peak vector FLOPs/cycle/core.
    [[nodiscard]] double peak_fpc() const {
        return scalar_fpc * isa.dp_lanes();
    }
    [[nodiscard]] double peak_gflops() const {
        return cores() * freq_hz * peak_fpc() / 1e9;
    }
    [[nodiscard]] double mem_bandwidth() const { return core_groups * domain.bandwidth; }
    [[nodiscard]] double mem_capacity() const { return core_groups * domain.capacity_bytes; }
};

/// A compute node: `sockets` identical processors sharing an NIC.
struct NodeSpec {
    std::string name;
    int sockets = 1;
    Processor cpu;

    [[nodiscard]] int cores() const { return sockets * cpu.cores(); }
    [[nodiscard]] int mem_domains() const { return sockets * cpu.core_groups; }
    [[nodiscard]] int cores_per_domain() const { return cpu.cores_per_group; }
    [[nodiscard]] double mem_capacity() const { return sockets * cpu.mem_capacity(); }
    [[nodiscard]] double mem_bandwidth() const { return sockets * cpu.mem_bandwidth(); }
    [[nodiscard]] double peak_gflops() const { return sockets * cpu.peak_gflops(); }

    void validate() const {
        ARMSTICE_CHECK(sockets >= 1, "node needs >=1 socket");
        ARMSTICE_CHECK(cpu.cores_per_group > 0, "processor needs cores");
        ARMSTICE_CHECK(cpu.freq_hz > 0, "processor needs frequency");
        ARMSTICE_CHECK(cpu.domain.bandwidth > 0, "domain needs bandwidth");
        ARMSTICE_CHECK(cpu.domain.capacity_bytes > 0, "domain needs capacity");
        ARMSTICE_CHECK(cpu.core_stream_bw > 0 && cpu.core_gather_bw > 0,
                       "per-core bandwidth caps required");
        ARMSTICE_CHECK(cpu.levels.size() <= static_cast<std::size_t>(kMaxMemLevels),
                       "memory hierarchy deeper than kMaxMemLevels");
        ARMSTICE_CHECK(cpu.ecm_overlap >= 0.0 && cpu.ecm_overlap <= 1.0,
                       "ecm_overlap must be in [0, 1]");
        for (std::size_t i = 0; i < cpu.levels.size(); ++i) {
            const MemLevel& lvl = cpu.levels[i];
            ARMSTICE_CHECK(lvl.capacity_bytes > 0, "memory level needs capacity");
            // Cache levels need a per-core bandwidth; the memory level's
            // bandwidth comes from MemDomain, so the last entry may omit it.
            ARMSTICE_CHECK(lvl.bw_per_core > 0 || i + 1 == cpu.levels.size(),
                           "cache level needs bw_per_core");
            ARMSTICE_CHECK(i == 0 ||
                               lvl.capacity_bytes >= cpu.levels[i - 1].capacity_bytes,
                           "memory levels must have non-decreasing capacity");
        }
    }
};

} // namespace armstice::arch
