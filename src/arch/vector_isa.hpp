#pragma once
// Vector instruction-set description for the five modelled processors
// (Table I of the paper: SVE 512b, AVX 256b, AVX-512, NEON 128b).

#include <string>

namespace armstice::arch {

enum class IsaFamily {
    sve,     ///< Arm SVE (A64FX, 512-bit)
    avx,     ///< Intel AVX/AVX2 (IvyBridge/Broadwell, 256-bit)
    avx512,  ///< Intel AVX-512 (Cascade Lake)
    neon,    ///< Arm NEON (ThunderX2, 128-bit)
};

struct VectorIsa {
    IsaFamily family = IsaFamily::neon;
    int width_bits = 128;
    /// Number of FMA-capable vector pipelines per core.
    int fma_pipes = 1;
    /// True when the ISA has hardware gather/scatter (SVE, AVX2+, AVX-512).
    bool has_gather = false;

    /// Double-precision lanes per vector register.
    [[nodiscard]] int dp_lanes() const { return width_bits / 64; }

    [[nodiscard]] std::string name() const {
        switch (family) {
            case IsaFamily::sve: return "SVE" + std::to_string(width_bits);
            case IsaFamily::avx: return "AVX" + std::to_string(width_bits);
            case IsaFamily::avx512: return "AVX-512";
            case IsaFamily::neon: return "NEON" + std::to_string(width_bits);
        }
        return "?";
    }
};

} // namespace armstice::arch
