#include "arch/ecm.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <limits>

namespace armstice::arch {

double EcmModel::deconvolve_cap(const Processor& cpu, double cap_bw) {
    ARMSTICE_CHECK(cap_bw > 0.0, "deconvolve_cap needs a positive cap");
    if (cpu.levels.size() < 2 || cpu.ecm_overlap >= 1.0) return cap_bw;
    // Serialized fraction of the cache legs' inverse bandwidth already
    // accounted for inside the end-to-end measurement.
    double cache_inv = 0.0;
    for (std::size_t k = 1; k + 1 < cpu.levels.size(); ++k) {
        cache_inv += 1.0 / cpu.levels[k].bw_per_core;
    }
    const double inv_raw = 1.0 / cap_bw - (1.0 - cpu.ecm_overlap) * cache_inv;
    if (inv_raw <= 0.0) return std::numeric_limits<double>::infinity();
    return 1.0 / inv_raw;
}

int EcmModel::residence_level(const Processor& cpu, double working_set,
                              double ranks_sharing) {
    const int memory = static_cast<int>(cpu.levels.size()) - 1;
    if (working_set <= 0.0) return memory;
    for (int k = 0; k < memory; ++k) {
        const MemLevel& lvl = cpu.levels[static_cast<std::size_t>(k)];
        const double share =
            lvl.shared ? working_set * std::max(1.0, ranks_sharing) : working_set;
        if (share <= lvl.capacity_bytes) return k;
    }
    return memory;
}

EcmBreakdown EcmModel::decompose(const Processor& cpu, double bytes, int residence,
                                 double mem_leg_bw) {
    const int n = static_cast<int>(cpu.levels.size());
    ARMSTICE_CHECK(n >= 2, "EcmModel::decompose needs a >=2-level hierarchy");
    ARMSTICE_CHECK(residence >= 0 && residence < n, "residence level out of range");
    ARMSTICE_CHECK(bytes >= 0.0, "negative traffic");
    ARMSTICE_CHECK(mem_leg_bw > 0.0, "memory-leg bandwidth must be positive");

    EcmBreakdown out;
    out.n_levels = n;
    out.residence = residence;

    // Legs 1..residence: the leg through level k's interface moves the bytes
    // between level k and level k-1. Data resident in L1 (residence 0) has no
    // hierarchy legs at all — its traffic is in-core, covered by t_flops.
    double sum = 0.0, worst = 0.0;
    for (int k = 1; k <= residence; ++k) {
        const bool memory_leg = (k == n - 1);
        const double bw =
            memory_leg ? mem_leg_bw : cpu.levels[static_cast<std::size_t>(k)].bw_per_core;
        const double t = bytes / bw;
        out.t_leg[static_cast<std::size_t>(k)] = t;
        sum += t;
        worst = std::max(worst, t);
    }
    const double ov = cpu.ecm_overlap;
    out.t_data = (1.0 - ov) * sum + ov * worst;
    return out;
}

} // namespace armstice::arch
