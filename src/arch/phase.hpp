#pragma once
// ComputePhase — the unit of counted work the simulator prices. Application
// skeletons emit phases whose flops/bytes are *exact analytic counts* for the
// paper's problem sizes; property tests cross-check the counts against
// instrumented runs of the real kernels in src/kern (DESIGN.md §1).

#include <string>

namespace armstice::arch {

/// Dominant main-memory access pattern of a phase.
enum class MemPattern {
    stream,     ///< unit-stride streaming (STREAM triad, waxpby, stencil sweeps)
    strided,    ///< regular but non-unit stride (transposes, pencil FFTs)
    gather,     ///< index-driven loads (SpMV column gathers, spectral scatter)
    dependent,  ///< pointer/dependency chains (SymGS sweeps, list traversal)
};

const char* pattern_name(MemPattern p);

/// Per-rank counted work for one bulk-synchronous phase.
struct ComputePhase {
    std::string label;
    double flops = 0.0;           ///< double-precision FLOPs per rank
    double main_bytes = 0.0;      ///< bytes moved to/from the memory domain
    double cache_bytes = 0.0;     ///< additional LLC-resident traffic
    double working_set = 0.0;     ///< resident bytes per rank (capacity checks)
    MemPattern pattern = MemPattern::stream;
    double vector_fraction = 1.0;  ///< fraction of flops in vectorisable loops
    double parallel_fraction = 1.0;///< OpenMP-parallel fraction (Amdahl)
    double efficiency = 1.0;       ///< calibrated residual efficiency (see calibration.cpp)
    double latency_ops = 0.0;      ///< serialized memory dependencies (count)
    double overhead_s = 0.0;       ///< fixed per-phase overhead (loop/launch)

    [[nodiscard]] ComputePhase scaled(double factor) const {
        ComputePhase p = *this;
        p.flops *= factor;
        p.main_bytes *= factor;
        p.cache_bytes *= factor;
        p.latency_ops *= factor;
        p.overhead_s *= factor;
        return p;
    }
};

} // namespace armstice::arch
