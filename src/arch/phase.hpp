#pragma once
// ComputePhase — the unit of counted work the simulator prices. Application
// skeletons emit phases whose flops/bytes are *exact analytic counts* for the
// paper's problem sizes; property tests cross-check the counts against
// instrumented runs of the real kernels in src/kern (DESIGN.md §1).

#include <cstdint>
#include <cstring>
#include <string>

namespace armstice::arch {

/// Dominant main-memory access pattern of a phase.
enum class MemPattern {
    stream,     ///< unit-stride streaming (STREAM triad, waxpby, stencil sweeps)
    strided,    ///< regular but non-unit stride (transposes, pencil FFTs)
    gather,     ///< index-driven loads (SpMV column gathers, spectral scatter)
    dependent,  ///< pointer/dependency chains (SymGS sweeps, list traversal)
};

const char* pattern_name(MemPattern p);

/// Per-rank counted work for one bulk-synchronous phase.
struct ComputePhase {
    std::string label;
    double flops = 0.0;           ///< double-precision FLOPs per rank
    double main_bytes = 0.0;      ///< bytes moved to/from the memory domain
    double cache_bytes = 0.0;     ///< additional LLC-resident traffic
    double working_set = 0.0;     ///< resident bytes per rank (capacity checks)
    MemPattern pattern = MemPattern::stream;
    double vector_fraction = 1.0;  ///< fraction of flops in vectorisable loops
    double parallel_fraction = 1.0;///< OpenMP-parallel fraction (Amdahl)
    double efficiency = 1.0;       ///< calibrated residual efficiency (see calibration.cpp)
    double latency_ops = 0.0;      ///< serialized memory dependencies (count)
    double overhead_s = 0.0;       ///< fixed per-phase overhead (loop/launch)

    [[nodiscard]] ComputePhase scaled(double factor) const {
        ComputePhase p = *this;
        p.flops *= factor;
        p.main_bytes *= factor;
        p.cache_bytes *= factor;
        p.latency_ops *= factor;
        p.overhead_s *= factor;
        return p;
    }

    bool operator==(const ComputePhase&) const = default;
};

/// True when two phases are indistinguishable to CostModel::explain — every
/// pricing input matches bitwise; the label is ignored (it only names the
/// phase for metrics). This is the sharing predicate behind the engine's
/// (phase, ExecContext-class) cost memo.
inline bool same_cost_inputs(const ComputePhase& a, const ComputePhase& b) {
    const auto bits = [](double v) {
        std::uint64_t u;
        std::memcpy(&u, &v, sizeof u);
        return u;
    };
    return bits(a.flops) == bits(b.flops) &&
           bits(a.main_bytes) == bits(b.main_bytes) &&
           bits(a.cache_bytes) == bits(b.cache_bytes) &&
           bits(a.working_set) == bits(b.working_set) &&
           a.pattern == b.pattern &&
           bits(a.vector_fraction) == bits(b.vector_fraction) &&
           bits(a.parallel_fraction) == bits(b.parallel_fraction) &&
           bits(a.efficiency) == bits(b.efficiency) &&
           bits(a.latency_ops) == bits(b.latency_ops) &&
           bits(a.overhead_s) == bits(b.overhead_s);
}

/// FNV-1a hash over exactly the same-cost-inputs fields. Never returns 0 so
/// callers can use 0 as "not yet computed"; collisions are possible and must
/// be resolved with same_cost_inputs before sharing a priced time.
inline std::uint64_t cost_signature(const ComputePhase& p) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xffU;
            h *= 0x100000001b3ULL;
        }
    };
    const auto mixd = [&](double v) {
        std::uint64_t u;
        std::memcpy(&u, &v, sizeof u);
        mix(u);
    };
    mixd(p.flops);
    mixd(p.main_bytes);
    mixd(p.cache_bytes);
    mixd(p.working_set);
    mix(static_cast<std::uint64_t>(p.pattern));
    mixd(p.vector_fraction);
    mixd(p.parallel_fraction);
    mixd(p.efficiency);
    mixd(p.latency_ops);
    mixd(p.overhead_s);
    return h != 0 ? h : 1;
}

} // namespace armstice::arch
