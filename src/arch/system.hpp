#pragma once
// SystemSpec — one of the five benchmarked machines: node architecture plus
// interconnect kind and size. The catalog (system_catalog.cpp) encodes
// Table I of the paper.

#include "arch/processor.hpp"

#include <string>
#include <vector>

namespace armstice::arch {

/// Interconnect families used by the five systems (Table I / §IV).
enum class NetKind {
    tofud,     ///< Fujitsu TofuD 6D mesh/torus (A64FX)
    aries,     ///< Cray Aries dragonfly (ARCHER)
    fdr_ib,    ///< Mellanox FDR InfiniBand (Cirrus)
    omnipath,  ///< Intel OmniPath (EPCC NGIO)
    edr_ib,    ///< Mellanox EDR InfiniBand non-blocking fat tree (Fulhame)
};

const char* net_kind_name(NetKind k);

struct SystemSpec {
    std::string name;
    NodeSpec node;
    NetKind net = NetKind::edr_ib;
    int max_nodes = 16;
    /// Table I "Maximum node DP GFLOP/s" — used verbatim for the paper's
    /// "% of theoretical peak" columns (it differs slightly from the
    /// physically derived node.peak_gflops() for Cascade Lake, where the
    /// paper appears to have used a de-rated AVX-512 frequency).
    double table_peak_gflops = 0.0;
};

/// The five systems of the paper, in Table I order:
/// A64FX, ARCHER, Cirrus, EPCC NGIO, Fulhame.
const std::vector<SystemSpec>& system_catalog();

/// Lookup by Table I name; throws util::Error when unknown.
const SystemSpec& system_by_name(const std::string& name);

/// Convenience accessors used throughout benches/tests.
const SystemSpec& a64fx();
const SystemSpec& archer();
const SystemSpec& cirrus();
const SystemSpec& ngio();
const SystemSpec& fulhame();

} // namespace armstice::arch
