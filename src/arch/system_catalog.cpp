#include "arch/system.hpp"

#include "arch/phase.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace armstice::arch {
namespace {

using util::GB;
using util::GB_per_s;
using util::GHz;
using util::GiB;
using util::KiB;
using util::MiB;
using util::nsec;

// ---------------------------------------------------------------------------
// Node models for the five systems (Table I), with sustained-bandwidth and
// per-core-cap parameters anchored to published measurements:
//  * A64FX:   STREAM triad ~830 GB/s/node (HBM2, 256 GB/s peak per CMG);
//             single-core STREAM ~55 GB/s; SpMV-gather effective ~8 GB/s
//             (fitted to Table V: 7% faster than one Cascade Lake core).
//  * ARCHER:  IvyBridge DDR3-1866 4ch, STREAM ~42 GB/s/socket.
//  * Cirrus:  Broadwell DDR4-2400 4ch, STREAM ~58 GB/s/socket.
//  * NGIO:    Cascade Lake DDR4-2933 6ch, STREAM ~105 GB/s/socket.
//  * Fulhame: ThunderX2 DDR4 8ch, STREAM >240 GB/s/node (paper §II) ->
//             122 GB/s/socket.
// ---------------------------------------------------------------------------

SystemSpec make_a64fx() {
    Processor cpu;
    cpu.name = "Fujitsu A64FX";
    cpu.freq_hz = 2.2 * GHz;
    cpu.core_groups = 4;  // CMGs
    cpu.cores_per_group = 12;
    cpu.domain = MemDomain{8.0 * GiB, 210.0 * GB_per_s, 130.0 * nsec};
    cpu.llc = SharedCache{8.0 * MiB, 80.0 * GB_per_s};
    cpu.isa = VectorIsa{IsaFamily::sve, 512, 2, true};
    cpu.scalar_fpc = 4.0;  // 2 FMA pipes
    cpu.core_stream_bw = 55.0 * GB_per_s;
    cpu.core_gather_bw = 8.07 * GB_per_s;
    // ECM hierarchy (Alappat et al., arXiv:2103.03013): 64 KiB L1D per core
    // (2x64 B loads/cy), 8 MiB L2 per CMG at ~80 GB/s/core sustained, HBM2
    // behind it. The A64FX data paths do NOT overlap — the paper's machine
    // model serializes the L2 and memory legs, which is what makes the L2 a
    // co-bottleneck at full CMG occupancy.
    cpu.levels = {MemLevel{"L1D", 64.0 * KiB, 281.0 * GB_per_s, false},
                  MemLevel{"L2", 8.0 * MiB, 80.0 * GB_per_s, true},
                  MemLevel{"HBM2", 8.0 * GiB, 0.0, true}};
    cpu.ecm_overlap = 0.0;

    SystemSpec sys;
    sys.name = "A64FX";
    sys.node = NodeSpec{"A64FX node", 1, cpu};
    sys.net = NetKind::tofud;
    sys.max_nodes = 48;
    sys.table_peak_gflops = 3379.0;
    return sys;
}

SystemSpec make_archer() {
    Processor cpu;
    cpu.name = "Intel Xeon E5-2697 v2 (IvyBridge)";
    cpu.freq_hz = 2.7 * GHz;
    cpu.core_groups = 1;
    cpu.cores_per_group = 12;
    cpu.domain = MemDomain{32.0 * GB, 42.0 * GB_per_s, 85.0 * nsec};
    cpu.llc = SharedCache{30.0 * MiB, 25.0 * GB_per_s};
    // IvyBridge: AVX 256-bit, separate add+mul pipes, no FMA -> 8 flop/cyc.
    cpu.isa = VectorIsa{IsaFamily::avx, 256, 1, false};
    cpu.scalar_fpc = 2.0;
    cpu.core_stream_bw = 12.0 * GB_per_s;
    cpu.core_gather_bw = 5.5 * GB_per_s;
    // IvyBridge: 32 KiB L1D + 256 KiB L2 per core, 30 MiB shared L3. Intel
    // uncores overlap in-flight transfers across levels (ecm_overlap = 1), so
    // the composed hierarchy time is the slowest leg — identical to the flat
    // model whenever the memory leg dominates.
    cpu.levels = {MemLevel{"L1D", 32.0 * KiB, 86.0 * GB_per_s, false},
                  MemLevel{"L2", 256.0 * KiB, 43.0 * GB_per_s, false},
                  MemLevel{"L3", 30.0 * MiB, 25.0 * GB_per_s, true},
                  MemLevel{"DDR3", 32.0 * GB, 0.0, true}};
    cpu.ecm_overlap = 1.0;

    SystemSpec sys;
    sys.name = "ARCHER";
    sys.node = NodeSpec{"Cray XC30 node", 2, cpu};
    sys.net = NetKind::aries;
    sys.max_nodes = 4920;
    sys.table_peak_gflops = 518.4;
    return sys;
}

SystemSpec make_cirrus() {
    Processor cpu;
    cpu.name = "Intel Xeon E5-2695 (Broadwell)";
    cpu.freq_hz = 2.1 * GHz;
    cpu.core_groups = 1;
    cpu.cores_per_group = 18;
    cpu.domain = MemDomain{128.0 * GB, 58.0 * GB_per_s, 90.0 * nsec};
    cpu.llc = SharedCache{45.0 * MiB, 25.0 * GB_per_s};
    cpu.isa = VectorIsa{IsaFamily::avx, 256, 2, true};  // AVX2 + FMA
    cpu.scalar_fpc = 4.0;
    cpu.core_stream_bw = 14.0 * GB_per_s;
    cpu.core_gather_bw = 6.5 * GB_per_s;
    // Broadwell: 32 KiB L1D + 256 KiB L2 per core, 45 MiB shared L3,
    // overlapping uncore (see the ARCHER note).
    cpu.levels = {MemLevel{"L1D", 32.0 * KiB, 134.0 * GB_per_s, false},
                  MemLevel{"L2", 256.0 * KiB, 67.0 * GB_per_s, false},
                  MemLevel{"L3", 45.0 * MiB, 25.0 * GB_per_s, true},
                  MemLevel{"DDR4", 128.0 * GB, 0.0, true}};
    cpu.ecm_overlap = 1.0;

    SystemSpec sys;
    sys.name = "Cirrus";
    sys.node = NodeSpec{"SGI ICE XA node", 2, cpu};
    sys.net = NetKind::fdr_ib;
    sys.max_nodes = 280;
    sys.table_peak_gflops = 1209.6;
    return sys;
}

SystemSpec make_ngio() {
    Processor cpu;
    cpu.name = "Intel Xeon Platinum 8260M (Cascade Lake)";
    cpu.freq_hz = 2.4 * GHz;
    cpu.core_groups = 1;
    cpu.cores_per_group = 24;
    cpu.domain = MemDomain{96.0 * GB, 105.0 * GB_per_s, 85.0 * nsec};
    cpu.llc = SharedCache{35.75 * MiB, 28.0 * GB_per_s};
    cpu.isa = VectorIsa{IsaFamily::avx512, 512, 2, true};
    cpu.scalar_fpc = 4.0;
    cpu.core_stream_bw = 15.0 * GB_per_s;
    cpu.core_gather_bw = 7.84 * GB_per_s;
    // Cascade Lake: 32 KiB L1D + 1 MiB L2 per core, 35.75 MiB shared
    // (non-inclusive) L3, overlapping uncore (see the ARCHER note).
    cpu.levels = {MemLevel{"L1D", 32.0 * KiB, 300.0 * GB_per_s, false},
                  MemLevel{"L2", 1.0 * MiB, 150.0 * GB_per_s, false},
                  MemLevel{"L3", 35.75 * MiB, 28.0 * GB_per_s, true},
                  MemLevel{"DDR4", 96.0 * GB, 0.0, true}};
    cpu.ecm_overlap = 1.0;

    SystemSpec sys;
    sys.name = "EPCC NGIO";
    sys.node = NodeSpec{"Fujitsu NGIO node", 2, cpu};
    sys.net = NetKind::omnipath;
    sys.max_nodes = 24;
    sys.table_peak_gflops = 2662.4;
    return sys;
}

SystemSpec make_fulhame() {
    Processor cpu;
    cpu.name = "Marvell ThunderX2 (ARMv8)";
    cpu.freq_hz = 2.2 * GHz;
    cpu.core_groups = 1;
    cpu.cores_per_group = 32;
    cpu.domain = MemDomain{128.0 * GB, 122.0 * GB_per_s, 115.0 * nsec};
    cpu.llc = SharedCache{32.0 * MiB, 20.0 * GB_per_s};
    cpu.isa = VectorIsa{IsaFamily::neon, 128, 2, false};
    cpu.scalar_fpc = 4.0;
    cpu.core_stream_bw = 10.0 * GB_per_s;
    cpu.core_gather_bw = 4.07 * GB_per_s;
    // ThunderX2: 32 KiB L1D + 256 KiB L2 per core, 32 MiB shared L3 ring.
    // Its uncore also keeps multiple fills in flight (ecm_overlap = 1).
    cpu.levels = {MemLevel{"L1D", 32.0 * KiB, 140.0 * GB_per_s, false},
                  MemLevel{"L2", 256.0 * KiB, 60.0 * GB_per_s, false},
                  MemLevel{"L3", 32.0 * MiB, 20.0 * GB_per_s, true},
                  MemLevel{"DDR4", 128.0 * GB, 0.0, true}};
    cpu.ecm_overlap = 1.0;

    SystemSpec sys;
    sys.name = "Fulhame";
    sys.node = NodeSpec{"HPE Apollo 70 node", 2, cpu};
    sys.net = NetKind::edr_ib;
    sys.max_nodes = 64;
    sys.table_peak_gflops = 1126.4;
    return sys;
}

} // namespace

const char* net_kind_name(NetKind k) {
    switch (k) {
        case NetKind::tofud: return "Fujitsu TofuD";
        case NetKind::aries: return "Cray Aries";
        case NetKind::fdr_ib: return "Mellanox FDR IB";
        case NetKind::omnipath: return "Intel OmniPath";
        case NetKind::edr_ib: return "Mellanox EDR IB";
    }
    return "?";
}

const char* pattern_name(MemPattern p) {
    switch (p) {
        case MemPattern::stream: return "stream";
        case MemPattern::strided: return "strided";
        case MemPattern::gather: return "gather";
        case MemPattern::dependent: return "dependent";
    }
    return "?";
}

const std::vector<SystemSpec>& system_catalog() {
    static const std::vector<SystemSpec> systems = [] {
        std::vector<SystemSpec> v{make_a64fx(), make_archer(), make_cirrus(),
                                  make_ngio(), make_fulhame()};
        for (const auto& s : v) s.node.validate();
        return v;
    }();
    return systems;
}

const SystemSpec& system_by_name(const std::string& name) {
    for (const auto& s : system_catalog()) {
        if (s.name == name) return s;
    }
    throw util::Error("unknown system: " + name);
}

const SystemSpec& a64fx() { return system_catalog()[0]; }
const SystemSpec& archer() { return system_catalog()[1]; }
const SystemSpec& cirrus() { return system_catalog()[2]; }
const SystemSpec& ngio() { return system_catalog()[3]; }
const SystemSpec& fulhame() { return system_catalog()[4]; }

} // namespace armstice::arch
