#pragma once
// CostModel — maps a counted ComputePhase to seconds on a given processor
// under a given co-residency context. This is the roofline/ECM hybrid of
// DESIGN.md §4.2. All architecture inputs come from the Processor struct;
// all application-level residual efficiencies come from calibration.cpp and
// arrive pre-folded into ComputePhase::efficiency.

#include "arch/ecm.hpp"
#include "arch/phase.hpp"
#include "arch/processor.hpp"
#include "arch/system.hpp"

#include <cstdint>

namespace armstice::arch {

/// Version stamp of the calibrated performance model. Bump this whenever
/// cost-model constants, calibration values (calibration.cpp), the collective
/// model, or any ModelKnobs default changes: the stamp is written into every
/// persistent sweep-cache entry (core/cache.hpp) and a mismatch turns the
/// entry into a miss, so stale results can never leak into regenerated
/// artefacts.
inline constexpr std::uint32_t kModelVersion = 4;  // v4: ECM multi-level memory
                                                   // hierarchy (per-level transfer
                                                   // legs, serialized on A64FX)

/// Model-component switches for the ablation bench (DESIGN.md §4.6).
struct ModelKnobs {
    bool contention = true;       ///< share domain bandwidth between streams
    bool core_bw_cap = true;      ///< apply single-core concurrency limits
    bool gather_penalty = true;   ///< penalise gather/strided vectorisation
    bool cache_model = true;      ///< LLC-resident working sets use LLC bw
    bool amdahl = true;           ///< serial fraction limits thread speedup
    /// Price memory traffic with the ECM per-level decomposition
    /// (arch/ecm.hpp) on processors that carry a MemLevel table. Off — or on
    /// a processor without hierarchy information — the flat v3 single-
    /// bandwidth model prices the phase bit-exactly as before.
    bool ecm = true;
    /// OS/system-noise amplitude: each compute op is stretched by
    /// (1 + os_noise * e) with e ~ Exp(1) capped at 8, deterministic per
    /// (rank, op). In bulk-synchronous loops the per-iteration makespan
    /// then grows like os_noise * ln(ranks) — the standard OS-jitter model —
    /// which is what keeps large-scale parallel efficiencies below 1
    /// (Table VII). Set to 0 to ablate.
    double os_noise = 0.012;
};

/// Execution context: where a rank's phase runs and with how much company.
struct ExecContext {
    const Processor* cpu = nullptr;
    /// Toolchain vectorisation quality (Toolchain::vec_quality).
    double vec_quality = 0.7;
    /// OpenMP threads executing this rank's phase.
    int threads = 1;
    /// Hardware streams (ranks x threads) concurrently active on the rank's
    /// memory domain — the SPMD contention approximation (DESIGN.md §4.4).
    int streams_on_domain = 1;
    /// Memory domains one rank's threads span (threads crossing CMGs
    /// aggregate bandwidth, e.g. minikab 1 process x 48 threads).
    int domains_spanned = 1;
};

/// Context for one process running `jobs` threads on `sys` — the shape the
/// threaded kernel layer (kern::par) and its benches execute: threads pack
/// one memory domain before spanning the next (A64FX CMG pinning), and each
/// thread is one hardware stream on its domain. Used to price measured
/// --jobs sweeps (bench_kernels, ext_spmv_formats) against the model.
ExecContext threaded_context(const SystemSpec& sys, int jobs,
                             double vec_quality = 0.7);

/// Per-term decomposition of a phase's modelled time (seconds).
struct TimeBreakdown {
    double t_flops = 0;
    double t_mem = 0;
    double t_cache = 0;
    double t_latency = 0;
    double t_overhead = 0;
    double total = 0;
    double bw_per_stream = 0;  ///< effective bytes/s granted per stream
    double vspeed = 0;         ///< vector speedup over scalar issue
    /// Per-level transfer decomposition when the ECM path priced t_mem
    /// (ecm.n_levels > 0); zeroed under the flat fallback.
    EcmBreakdown ecm;
};

class CostModel {
public:
    explicit CostModel(ModelKnobs knobs = {}) : knobs_(knobs) {}

    /// Full decomposition; throws util::Error on invalid context.
    [[nodiscard]] TimeBreakdown explain(const ComputePhase& phase,
                                        const ExecContext& ctx) const;

    /// Seconds for one rank to execute `phase` under `ctx`.
    [[nodiscard]] double phase_time(const ComputePhase& phase,
                                    const ExecContext& ctx) const {
        return explain(phase, ctx).total;
    }

    [[nodiscard]] const ModelKnobs& knobs() const { return knobs_; }

private:
    ModelKnobs knobs_;
};

} // namespace armstice::arch
