#include "arch/power.hpp"

#include "util/error.hpp"

#include <map>

namespace armstice::arch {

PowerSpec power_spec(const SystemSpec& sys) {
    static const std::map<std::string, PowerSpec> specs = {
        // idle, dynamic, nic (watts per node)
        {"A64FX", {60.0, 110.0, 10.0}},      // ~170 W peak incl. HBM2 + TofuD
        {"ARCHER", {110.0, 200.0, 15.0}},    // 2x130 W TDP IvyBridge + Aries
        {"Cirrus", {100.0, 190.0, 12.0}},    // 2x120 W Broadwell + FDR HCA
        {"EPCC NGIO", {120.0, 260.0, 12.0}}, // 2x165 W Cascade Lake + OPA
        {"Fulhame", {115.0, 235.0, 12.0}},   // 2x~175 W ThunderX2 + EDR HCA
    };
    const auto it = specs.find(sys.name);
    ARMSTICE_CHECK(it != specs.end(), "no power spec for system " + sys.name);
    return it->second;
}

double node_energy_j(const PowerSpec& p, double busy_seconds, double total_seconds) {
    ARMSTICE_CHECK(busy_seconds >= 0 && total_seconds >= 0, "negative time");
    ARMSTICE_CHECK(busy_seconds <= total_seconds * 1.0001,
                   "busy time exceeds wall time");
    const double busy = std::min(busy_seconds, total_seconds);
    return (p.idle_w + p.nic_w) * total_seconds + p.dynamic_w * busy;
}

double gflops_per_watt(const SystemSpec& sys, double flops, double busy_seconds,
                       double total_seconds, int nodes) {
    ARMSTICE_CHECK(nodes >= 1, "need >=1 node");
    if (total_seconds <= 0) return 0.0;
    const double energy = nodes * node_energy_j(power_spec(sys), busy_seconds,
                                                total_seconds);
    return flops / 1e9 / energy;  // GFLOP/J == GFLOPs/W
}

} // namespace armstice::arch
